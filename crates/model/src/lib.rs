//! # fgdsm-model: exhaustive small-model checker for the coherence core
//!
//! The protocols in `fgdsm-protocol` and the §4.2 compiler contract in
//! `fgdsm-hpf` are subtle exactly where testing is weakest: in the
//! interleavings. This crate closes that gap for small configurations by
//! exhaustively enumerating *every* interleaving of resolve-phase
//! actions (reads, writes, releases, and the ctl primitives
//! `mk_writable` / `implicit_writable` / `send_range` / `ready_to_recv`
//! / `implicit_invalidate` / `flush_range`) over 2–3 nodes and 1–2
//! blocks, up to a bounded depth, against an abstract transition-system
//! model ([`absmodel`]).
//!
//! Three ties keep the model honest about the implementation:
//!
//! 1. **Shared transition core.** Every directory decision the model
//!    makes goes through [`fgdsm_protocol::trans`] — the same pure
//!    functions the stateful protocols call. A rule change lands in
//!    both, or diverges and is caught by (3).
//! 2. **Shared contract.** Every candidate ctl op is gated by the real
//!    [`fgdsm_hpf::ContractTracker`], so the explored space is exactly
//!    the space of contract-legal interleavings.
//! 3. **Conformance replay.** [`conformance`] replays enumerated op
//!    sequences through the real `Dsm` — both the in-process fast path
//!    and the channel-backed wire path — and asserts final directory,
//!    tag, and memory agreement, block by block.
//!
//! The checker ([`checker`]) is a canonicalized-state BFS: the first
//! violation it reports carries a *minimal* counterexample trace, which
//! [`checker::Violation::render`] prints as a numbered interleaving and
//! [`checker::Violation::reproducer`] emits as a standalone `#[test]`.
//! Seeded mutations ([`absmodel::Mutation`]) are deliberate bugs the
//! checker must catch — the model-level half of the fault taxonomy in
//! `fgdsm-fuzz`.
//!
//! Depth is tunable: `FGDSM_MODEL_DEPTH` (default 6) bounds the op
//! sequences tier-1 closes over.

pub mod absmodel;
pub mod checker;
pub mod conformance;

pub use absmodel::{AbsState, Mutation, Op, Proto, WORDS};
pub use checker::{
    check, contract_invisibility, default_depth, enumerate_sequences, replay, CheckOutcome,
    ModelConfig, Violation,
};
pub use conformance::{replay_on_dsm, ConformanceReport};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_env_knob_parses() {
        // Not set in the test environment → default.
        assert!(default_depth() >= 1);
    }

    #[test]
    fn op_display_parse_roundtrip() {
        let ops = [
            Op::Read { p: 0, b: 1 },
            Op::Write {
                p: 1,
                b: 0,
                w: 1,
                multi: true,
            },
            Op::Release,
            Op::MkWritable { o: 1, b: 0 },
            Op::ImplicitWritable { r: 0, b: 0 },
            Op::SendRange { o: 1, r: 0, b: 0 },
            Op::ReadyToRecv { r: 0 },
            Op::ImplicitInvalidate { r: 0, b: 0 },
            Op::FlushRange { f: 1, o: 0, b: 0 },
        ];
        for op in ops {
            let s = op.to_string();
            let back: Op = s.parse().unwrap_or_else(|e| panic!("{s:?}: {e}"));
            assert_eq!(back, op, "round-trip of {s:?}");
        }
        assert!("frobnicate x=1".parse::<Op>().is_err());
    }
}
