//! Bounded exhaustive exploration of the abstract model.
//!
//! [`check`] runs a breadth-first closure over every interleaving of
//! resolve-phase ops up to a configured depth, canonicalizing states so
//! that runs differing only in version labels collapse. BFS order means
//! the first violation found carries a minimal counterexample trace.

use crate::absmodel::{AbsState, Mutation, Op, Proto, WORDS};
use std::collections::HashMap;

/// One model configuration to close.
#[derive(Clone, Copy, Debug)]
pub struct ModelConfig {
    pub nodes: usize,
    pub blocks: usize,
    pub proto: Proto,
    /// Maximum op-sequence length explored.
    pub depth: usize,
    /// Seeded bug, or [`Mutation::None`] for the correctness run.
    pub mutation: Mutation,
}

impl ModelConfig {
    /// The tier-1 default: 2 nodes, 1 block, eager protocol, depth from
    /// `FGDSM_MODEL_DEPTH`.
    pub fn small(proto: Proto) -> Self {
        ModelConfig {
            nodes: 2,
            blocks: 1,
            proto,
            depth: default_depth(),
            mutation: Mutation::None,
        }
    }

    pub fn with_mutation(mut self, m: Mutation) -> Self {
        self.mutation = m;
        self
    }

    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    pub fn with_blocks(mut self, blocks: usize) -> Self {
        self.blocks = blocks;
        self
    }

    pub fn with_depth(mut self, depth: usize) -> Self {
        self.depth = depth;
        self
    }
}

/// Exploration depth for the tier-1 closure: `FGDSM_MODEL_DEPTH`,
/// default 6.
pub fn default_depth() -> usize {
    std::env::var("FGDSM_MODEL_DEPTH")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6)
}

/// A safety violation, with the minimal op interleaving that reaches it.
#[derive(Clone, Debug)]
pub struct Violation {
    pub config: ModelConfig,
    pub trace: Vec<Op>,
    pub message: String,
}

impl Violation {
    /// Human-readable counterexample: the configuration, the violated
    /// property, and the interleaving step by step.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "counterexample ({} nodes, {} block(s), {:?}, mutation {}):\n",
            self.config.nodes,
            self.config.blocks,
            self.config.proto,
            self.config.mutation.name(),
        ));
        for (i, op) in self.trace.iter().enumerate() {
            out.push_str(&format!("  {:>2}. {op}\n", i + 1));
        }
        out.push_str(&format!("  => {}\n", self.message));
        out
    }

    /// A standalone `#[test]` that replays this counterexample — paste
    /// it into any crate depending on `fgdsm-model` and it fails until
    /// the underlying bug is fixed (or passes forever once it is a
    /// regression guard for a seeded mutation).
    pub fn reproducer(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "/// Auto-generated from a model-checker counterexample.\n\
             /// Property violated: {}\n\
             #[test]\n\
             fn model_counterexample_{}() {{\n\
             \x20   use fgdsm_model::{{replay, ModelConfig, Mutation, Op, Proto}};\n\
             \x20   let cfg = ModelConfig {{\n\
             \x20       nodes: {},\n\
             \x20       blocks: {},\n\
             \x20       proto: Proto::{:?},\n\
             \x20       depth: {},\n\
             \x20       mutation: Mutation::{:?},\n\
             \x20   }};\n\
             \x20   let ops: Vec<Op> = [\n",
            self.message.replace('\n', " "),
            self.config.mutation.name(),
            self.config.nodes,
            self.config.blocks,
            self.config.proto,
            self.config.depth,
            self.config.mutation,
        ));
        for op in &self.trace {
            out.push_str(&format!("        \"{op}\",\n"));
        }
        out.push_str(
            "    ]\n\
             \x20   .iter()\n\
             \x20   .map(|s| s.parse().unwrap())\n\
             \x20   .collect();\n\
             \x20   replay(&cfg, &ops).expect_err(\"interleaving must be rejected\");\n\
             }\n",
        );
        out
    }
}

/// Result of one closure run.
#[derive(Debug)]
pub struct CheckOutcome {
    /// Distinct canonical states visited.
    pub states: usize,
    /// Transitions (eligible op applications) taken.
    pub transitions: usize,
    /// First violation found (with a minimal trace), if any.
    pub violation: Option<Violation>,
    /// True when the closure completed with no violation.
    pub closed: bool,
}

/// Every op that could be attempted in a configuration (eligibility is
/// decided per-state by `AbsState::apply`).
fn candidate_ops(cfg: &ModelConfig) -> Vec<Op> {
    let mut ops = Vec::new();
    for p in 0..cfg.nodes {
        for b in 0..cfg.blocks {
            ops.push(Op::Read { p, b });
            for w in 0..WORDS {
                ops.push(Op::Write {
                    p,
                    b,
                    w,
                    multi: false,
                });
                if cfg.proto == Proto::Eager {
                    ops.push(Op::Write {
                        p,
                        b,
                        w,
                        multi: true,
                    });
                }
            }
        }
    }
    ops.push(Op::Release);
    if cfg.proto == Proto::Eager {
        for b in 0..cfg.blocks {
            for o in 0..cfg.nodes {
                ops.push(Op::MkWritable { o, b });
                ops.push(Op::ImplicitWritable { r: o, b });
                ops.push(Op::ImplicitInvalidate { r: o, b });
                for r in 0..cfg.nodes {
                    if r != o {
                        ops.push(Op::SendRange { o, r, b });
                        ops.push(Op::FlushRange { f: r, o, b });
                    }
                }
            }
        }
        for r in 0..cfg.nodes {
            ops.push(Op::ReadyToRecv { r });
        }
    }
    ops
}

/// Exhaustively close the state space of `cfg`. Stops at the first
/// violation; BFS order guarantees its trace is minimal.
pub fn check(cfg: &ModelConfig) -> CheckOutcome {
    let ops = candidate_ops(cfg);
    let init = AbsState::initial(cfg.nodes, cfg.blocks);

    // Arena of visited states with back-pointers for trace recovery.
    let mut arena: Vec<AbsState> = vec![init.clone()];
    let mut parent: Vec<Option<(u32, Op)>> = vec![None];
    let mut depth: Vec<u32> = vec![0];
    let mut visited: HashMap<Vec<u8>, u32> = HashMap::new();
    visited.insert(init.canonical(), 0);

    let trace_to = |arena_parent: &[Option<(u32, Op)>], mut idx: u32, last: Option<Op>| {
        let mut trace = Vec::new();
        if let Some(op) = last {
            trace.push(op);
        }
        while let Some((prev, op)) = arena_parent[idx as usize] {
            trace.push(op);
            idx = prev;
        }
        trace.reverse();
        trace
    };

    if let Err(message) = init.check_invariants(cfg.proto) {
        return CheckOutcome {
            states: 1,
            transitions: 0,
            violation: Some(Violation {
                config: *cfg,
                trace: Vec::new(),
                message,
            }),
            closed: false,
        };
    }

    let mut transitions = 0usize;
    let mut frontier = 0usize;
    while frontier < arena.len() {
        let idx = frontier as u32;
        frontier += 1;
        if depth[idx as usize] as usize >= cfg.depth {
            continue;
        }
        for &op in &ops {
            let next = match arena[idx as usize].apply(cfg.proto, op, cfg.mutation) {
                Ok(None) => continue,
                Ok(Some(next)) => next,
                Err(message) => {
                    return CheckOutcome {
                        states: arena.len(),
                        transitions,
                        violation: Some(Violation {
                            config: *cfg,
                            trace: trace_to(&parent, idx, Some(op)),
                            message,
                        }),
                        closed: false,
                    };
                }
            };
            transitions += 1;
            if let Err(message) = next.check_invariants(cfg.proto) {
                return CheckOutcome {
                    states: arena.len(),
                    transitions,
                    violation: Some(Violation {
                        config: *cfg,
                        trace: trace_to(&parent, idx, Some(op)),
                        message,
                    }),
                    closed: false,
                };
            }
            let key = next.canonical();
            if visited.contains_key(&key) {
                continue;
            }
            let new_idx = arena.len() as u32;
            visited.insert(key, new_idx);
            arena.push(next);
            parent.push(Some((idx, op)));
            depth.push(depth[idx as usize] + 1);
        }
    }

    CheckOutcome {
        states: arena.len(),
        transitions,
        violation: None,
        closed: true,
    }
}

/// Replay a recorded op sequence. `Err` carries the violation; an op
/// that is not even eligible is also reported as a violation (a recorded
/// trace must replay exactly).
pub fn replay(cfg: &ModelConfig, ops: &[Op]) -> Result<AbsState, Violation> {
    let mut st = AbsState::initial(cfg.nodes, cfg.blocks);
    for (i, &op) in ops.iter().enumerate() {
        let fail = |message: String| Violation {
            config: *cfg,
            trace: ops[..=i].to_vec(),
            message,
        };
        match st.apply(cfg.proto, op, cfg.mutation) {
            Ok(Some(next)) => st = next,
            Ok(None) => {
                return Err(fail(format!("step {}: op `{op}` is not eligible", i + 1)));
            }
            Err(message) => return Err(fail(message)),
        }
        if let Err(message) = st.check_invariants(cfg.proto) {
            return Err(fail(message));
        }
    }
    Ok(st)
}

/// Enumerate complete legal op sequences of exactly `len` steps under
/// the unmutated model, depth-first, up to `cap` sequences. With
/// `include_ctl` false only default-protocol ops (reads, writes,
/// releases) are used — the corpus the fuzz bridge and the pure-protocol
/// invisibility replays consume.
pub fn enumerate_sequences(
    cfg: &ModelConfig,
    len: usize,
    include_ctl: bool,
    cap: usize,
) -> Vec<Vec<Op>> {
    let ops: Vec<Op> = candidate_ops(cfg)
        .into_iter()
        .filter(|op| include_ctl || !op.is_ctl())
        .collect();
    let mut out = Vec::new();
    let mut prefix = Vec::new();
    let init = AbsState::initial(cfg.nodes, cfg.blocks);
    dfs(cfg, &ops, &init, len, cap, &mut prefix, &mut out);
    out
}

fn dfs(
    cfg: &ModelConfig,
    ops: &[Op],
    st: &AbsState,
    remaining: usize,
    cap: usize,
    prefix: &mut Vec<Op>,
    out: &mut Vec<Vec<Op>>,
) {
    if out.len() >= cap {
        return;
    }
    if remaining == 0 {
        out.push(prefix.clone());
        return;
    }
    for &op in ops {
        let Ok(Some(next)) = st.apply(cfg.proto, op, Mutation::None) else {
            continue;
        };
        prefix.push(op);
        dfs(cfg, ops, &next, remaining - 1, cap, prefix, out);
        prefix.pop();
        if out.len() >= cap {
            return;
        }
    }
}

/// The contract-bypass invisibility theorem, checked on sampled
/// witnesses: take a legal interleaving that *uses* the ctl primitives,
/// close it out (flush dirty windows, drain deliveries, close windows,
/// release), and confirm the authoritative copies match the sequential
/// reference; then erase every ctl op and replay the rest under the
/// pure default protocol and confirm it produces the *same* sequential
/// reference and matching authoritative copies. Returns the number of
/// witnesses verified (callers assert it is positive).
pub fn contract_invisibility(cfg: &ModelConfig, len: usize, sample: usize) -> usize {
    assert_eq!(
        cfg.mutation,
        Mutation::None,
        "invisibility is a clean-model property"
    );
    let seqs = enumerate_sequences(cfg, len, true, 50_000);
    let with_ctl: Vec<&Vec<Op>> = seqs.iter().filter(|s| s.iter().any(Op::is_ctl)).collect();
    let stride = (with_ctl.len() / sample).max(1);
    let mut verified = 0;

    'witness: for seq in with_ctl.iter().step_by(stride) {
        let Ok(st) = replay(cfg, seq) else {
            panic!("legal enumerated sequence failed to replay");
        };
        // Close out the ctl machinery so every block has one
        // authoritative copy again.
        let Some(final_ctl) = close_out(cfg, st) else {
            continue; // close-out not expressible from here; skip witness
        };
        assert_authoritative_matches_spec(&final_ctl, "ctl run");

        // Erase the ctl ops; replay pure. Reads may become ineligible
        // (the pure run keeps copies valid longer) and are dropped, but
        // a witness whose *writes* cannot replay is discarded — version
        // numbering must line up for the comparison below.
        let mut pure = AbsState::initial(cfg.nodes, cfg.blocks);
        for &op in seq.iter().filter(|op| !op.is_ctl()) {
            match pure.apply(cfg.proto, op, Mutation::None) {
                Ok(Some(next)) => pure = next,
                Ok(None) => match op {
                    Op::Read { .. } | Op::Release => continue,
                    _ => continue 'witness,
                },
                Err(e) => panic!("pure replay of erased witness violated safety: {e}"),
            }
        }
        let Ok(Some(pure)) = pure.apply(cfg.proto, Op::Release, Mutation::None) else {
            panic!("pure release must always be eligible");
        };
        assert_eq!(
            final_ctl.spec, pure.spec,
            "erasing the ctl ops changed the sequential outcome"
        );
        assert_authoritative_matches_spec(&pure, "pure run");
        verified += 1;
    }
    verified
}

/// Drive a post-witness state to quiescence: flush every dirty window,
/// drain pending deliveries, close every window, release. Returns
/// `None` when some step is ineligible (e.g. a dirty flush whose
/// un-written words are stale — the contract requires a send first).
fn close_out(cfg: &ModelConfig, mut st: AbsState) -> Option<AbsState> {
    for b in 0..st.blocks() {
        let fgdsm_protocol::DirState::Excl { owner } = st.dir[b] else {
            continue;
        };
        for f in 0..st.nodes {
            if st.dirty[b] & (1 << f) != 0 {
                st = st
                    .apply(cfg.proto, Op::FlushRange { f, o: owner, b }, Mutation::None)
                    .expect("close-out flush must not violate safety")?;
            }
        }
    }
    for r in 0..st.nodes {
        if !st.pending[r].is_empty() {
            st = st
                .apply(cfg.proto, Op::ReadyToRecv { r }, Mutation::None)
                .expect("close-out ready_to_recv must not violate safety")?;
        }
    }
    for b in 0..st.blocks() {
        for r in 0..st.nodes {
            if st.windows[b] & (1 << r) != 0 {
                st = st
                    .apply(cfg.proto, Op::ImplicitInvalidate { r, b }, Mutation::None)
                    .expect("close-out invalidate must not violate safety")?;
            }
        }
    }
    st.apply(cfg.proto, Op::Release, Mutation::None)
        .expect("close-out release must not violate safety")
}

fn assert_authoritative_matches_spec(st: &AbsState, what: &str) {
    for b in 0..st.blocks() {
        let holder = match st.dir[b] {
            fgdsm_protocol::DirState::Excl { owner } => owner,
            fgdsm_protocol::DirState::Shared { .. } => st.home(b),
            fgdsm_protocol::DirState::Multi { .. } => {
                panic!("{what}: Multi block survived a release")
            }
        };
        assert_eq!(
            st.mem[b][holder], st.spec[b],
            "{what}: authoritative copy of block {b} (node {holder}) diverges from \
             the sequential reference"
        );
    }
}
