//! Conformance bridge: replay model op sequences through the real
//! [`Dsm`] and assert the abstract model and the implementation agree.
//!
//! Model block `b` maps to the first coherence block of real page `b`
//! (RoundRobin homes: page `b` → node `b % n`, exactly the model's
//! `home(b) = b % n`). Model word `w` maps to word `w` of that block;
//! the model's version numbers are written as `f64` values, so the
//! implementation's whole-block copies, word diffs, and wire envelopes
//! all carry them faithfully. After the sequence the driver compares,
//! block by block, the real directory entry, every node's access tag,
//! and every valid copy's contents against the abstract state — on the
//! in-process fast path and on the channel-backed wire path.

use crate::absmodel::{AbsState, Mutation, Op, Proto, WORDS};
use crate::checker::ModelConfig;
use fgdsm_protocol::{ChanTransport, Dsm, Injection, ProtocolKind};
use fgdsm_tempest::{Access, Cluster, CostModel, HomePolicy, SegmentLayout};

/// Outcome of a conformance sweep (see [`replay_on_dsm`] for one run).
#[derive(Debug, Default)]
pub struct ConformanceReport {
    /// Sequences replayed and compared.
    pub sequences: usize,
    /// Block-level state comparisons performed.
    pub compared: usize,
}

fn build_dsm(cfg: &ModelConfig, wire: bool, inject: Option<Injection>) -> Dsm {
    let cost = CostModel::paper_dual_cpu();
    let mut layout = SegmentLayout::new(cost.words_per_page());
    // One page per model block, plus one spare page of headroom.
    layout.alloc(cost.words_per_page() * (cfg.blocks + 1));
    let kind = match cfg.proto {
        Proto::Eager => ProtocolKind::EagerInvalidate,
        Proto::Update => ProtocolKind::WriteUpdate,
    };
    let mut d = Dsm::with_protocol(
        Cluster::new(cfg.nodes, cost, &layout, HomePolicy::RoundRobin),
        kind,
    );
    if wire {
        d.set_wire(Box::new(ChanTransport::new(cfg.nodes)));
    }
    if let Some(inj) = inject {
        d.set_injection(inj);
    }
    d
}

/// Real coherence-block index of model block `b`.
fn real_block(d: &Dsm, b: usize) -> usize {
    let per_page = d.cluster.words_per_page() / d.cluster.words_per_block();
    b * per_page
}

/// Replay `ops` on the abstract model and on a fresh real [`Dsm`]
/// side by side, then compare final directory, tags, and memory.
/// `wire` selects the channel-backed strict wire path; `inject` arms
/// real-engine fault injections (the model always runs clean, so an
/// armed injection is expected to *diverge* — callers assert `Err`).
pub fn replay_on_dsm(
    cfg: &ModelConfig,
    ops: &[Op],
    wire: bool,
    inject: Option<Injection>,
) -> Result<usize, String> {
    let mut st = AbsState::initial(cfg.nodes, cfg.blocks);
    let mut d = build_dsm(cfg, wire, inject);

    for (i, &op) in ops.iter().enumerate() {
        let pre = st.clone();
        st = match st.apply(cfg.proto, op, Mutation::None) {
            Ok(Some(next)) => next,
            Ok(None) => {
                return Err(format!(
                    "step {}: op `{op}` not eligible in the model",
                    i + 1
                ))
            }
            Err(e) => {
                return Err(format!(
                    "step {}: model violation during replay: {e}",
                    i + 1
                ))
            }
        };
        drive(&mut d, &pre, &st, op);
    }
    compare(&d, &st, cfg)
}

/// Mirror one model op onto the real DSM.
fn drive(d: &mut Dsm, pre: &AbsState, post: &AbsState, op: Op) {
    match op {
        Op::Read { p, b } => d.read_access(p, real_block(d, b)),
        Op::Write { p, b, w, multi } => {
            let rb = real_block(d, b);
            if pre.windows[b] & (1 << p) == 0 {
                // Ordinary coherent write: take the fault the model took.
                if multi {
                    d.write_access_multi(p, rb);
                } else {
                    d.write_access_excl(p, rb);
                }
            }
            // Window-holder writes go straight to memory (the §4.2
            // point: the store itself is an ordinary store).
            let (s, _) = d.cluster.block_words(rb);
            d.cluster.node_mem_mut(p)[s + w] = post.spec[b][w] as f64;
        }
        Op::Release => d.release_barrier(),
        Op::MkWritable { o, b } => {
            let rb = real_block(d, b);
            d.mk_writable(o, rb, rb + 1);
        }
        Op::ImplicitWritable { r, b } => {
            let rb = real_block(d, b);
            d.implicit_writable(r, rb, rb + 1, true);
        }
        Op::SendRange { o, r, b } => {
            let rb = real_block(d, b);
            d.send_range(o, &[r], rb, rb + 1, true);
        }
        Op::ReadyToRecv { r } => d.ready_to_recv(r),
        Op::ImplicitInvalidate { r, b } => {
            let rb = real_block(d, b);
            d.implicit_invalidate(r, rb, rb + 1);
        }
        Op::FlushRange { f, o, b } => {
            let rb = real_block(d, b);
            d.flush_range(f, o, rb, rb + 1, true);
        }
    }
}

/// Compare the final real state against the abstract state, block by
/// block. Returns the number of block comparisons on success.
fn compare(d: &Dsm, st: &AbsState, cfg: &ModelConfig) -> Result<usize, String> {
    let mut compared = 0;
    for b in 0..st.blocks() {
        let rb = real_block(d, b);
        let real_dir = d.dir_state(rb);
        if real_dir != st.dir[b] {
            return Err(format!(
                "block {b}: directory diverged — real {real_dir:?}, model {:?}",
                st.dir[b]
            ));
        }
        let (s, _) = d.cluster.block_words(rb);
        for n in 0..cfg.nodes {
            let real_tag = d.cluster.tag(n, rb);
            if real_tag != st.tag[b][n] {
                return Err(format!(
                    "block {b}: node {n} tag diverged — real {real_tag:?}, model {:?}",
                    st.tag[b][n]
                ));
            }
            // Contents are only meaningful for valid copies (plus the
            // home, whose copy is the merge base / authoritative store).
            if real_tag == Access::Invalid && n != st.home(b) {
                continue;
            }
            for w in 0..WORDS {
                let real = d.cluster.node_mem(n)[s + w];
                let model = st.mem[b][n][w] as f64;
                if real != model {
                    return Err(format!(
                        "block {b} word {w}: node {n} contents diverged — real \
                         {real}, model version {}",
                        st.mem[b][n][w]
                    ));
                }
            }
        }
        compared += 1;
    }
    // The implementation's own invariant check runs whenever the model
    // says the sequence ended at a barrier-equivalent point: no open
    // windows, no undelivered promises, no mid-interval Multi state or
    // live twins, and no unpropagated update-protocol writes. The real
    // check is specified at barriers; mid-interval states legitimately
    // fail it.
    let quiescent = st.windows.iter().all(|&m| m == 0)
        && st.dirty.iter().all(|&m| m == 0)
        && st.pending.iter().all(|q| q.is_empty())
        && st
            .dir
            .iter()
            .all(|e| !matches!(e, fgdsm_protocol::DirState::Multi { .. }))
        && st.twin.iter().all(|per| per.iter().all(Option::is_none))
        && st.iww.iter().all(|ws| ws.iter().all(|&m| m == 0));
    if quiescent {
        d.check_consistency()
            .map_err(|e| format!("check_consistency after replay: {e}"))?;
    }
    Ok(compared)
}
