//! The abstract transition-system model of the directory protocol and
//! the §4.2 contract.
//!
//! A model state tracks, for a handful of nodes and blocks, everything
//! the correctness argument depends on and nothing the cost model
//! depends on: the *real* [`DirState`] per block (transitions go through
//! [`fgdsm_protocol::trans`], the same pure decision functions the
//! stateful protocols call — that is the tie between model and
//! implementation), per-node access tags, per-copy memory contents as
//! small version numbers, per-writer twins, the compiler-contract
//! bookkeeping (open `implicit_writable` windows, dirty window copies,
//! pending `send_range` deliveries with their promised contents), and a
//! `spec` array holding the last-written version of every word — the
//! sequential happens-before reference every read and every
//! authoritative copy is judged against.
//!
//! Blocks are [`WORDS`]-words wide (two words: enough to exercise
//! word-granularity diffs, partial writes, and false sharing, small
//! enough to close the space). Block `b` is homed at `b % nodes`,
//! matching the RoundRobin page policy under the conformance mapping.

use fgdsm_hpf::{ContractTracker, CtlOp};
use fgdsm_protocol::trans;
use fgdsm_protocol::DirState;
use fgdsm_tempest::{Access, NodeId};

/// Words per model block.
pub const WORDS: usize = 2;

/// Which protocol the model runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Proto {
    /// The paper's default: eager-invalidate MW release consistency,
    /// with the §4.2 ctl contract available on top.
    Eager,
    /// The §3 aside's write-update protocol (no ctl: `supports_ctl` is
    /// false in the real implementation).
    Update,
}

/// A seeded model-level mutation: one deliberate protocol/contract bug
/// the checker must catch with a minimal counterexample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// No mutation: the model must close with zero violations.
    None,
    /// `send_range` records the delivery promise but delivers nothing —
    /// the model-level shape of the off-by-one section bound.
    SkewSendRange,
    /// `flush_range` performs every tag/directory transition and clears
    /// the dirty bookkeeping, but never copies the data home.
    SkipFlushRange,
    /// `send_range` pushes the *home's* copy instead of the owner's
    /// whenever the home is a third party — the §4.3 stale owner-memo
    /// hazard, routed through the same [`trans::push_source`] the real
    /// ctl plan stage uses when injected.
    StaleOwnerPush,
    /// A write-fault steal forgets to invalidate one reader (the lowest
    /// node id in the sharer mask keeps its stale read-only copy).
    DroppedInvalidate,
    /// The 4-hop read serves the requester from the home *before* the
    /// owner's copy flushes home — an acknowledgement reordering.
    ReorderedAck,
    /// A read miss installs the copy but drops the requester's bit from
    /// the sharer mask.
    ForgottenSharerBit,
}

impl Mutation {
    /// Every seeded mutation (excluding `None`).
    pub const ALL: [Mutation; 6] = [
        Mutation::SkewSendRange,
        Mutation::SkipFlushRange,
        Mutation::StaleOwnerPush,
        Mutation::DroppedInvalidate,
        Mutation::ReorderedAck,
        Mutation::ForgottenSharerBit,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::SkewSendRange => "skew_send_range",
            Mutation::SkipFlushRange => "skip_flush_range",
            Mutation::StaleOwnerPush => "stale_owner_push",
            Mutation::DroppedInvalidate => "dropped_invalidate",
            Mutation::ReorderedAck => "reordered_ack",
            Mutation::ForgottenSharerBit => "forgotten_sharer_bit",
        }
    }
}

/// One resolve-phase action. Ctl ops are per-block (the conformance
/// driver replays each as a one-block range call on the real `Dsm`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// A read access by `p` to block `b` (only eligible on an Invalid
    /// tag, like the real `read_access` fast-path guard).
    Read {
        p: NodeId,
        b: usize,
    },
    /// A store by `p` to word `w` of block `b`. `multi` selects the
    /// false-sharing fault flavor when the store faults; it is
    /// normalized to the state's flavor for non-faulting stores.
    Write {
        p: NodeId,
        b: usize,
        w: usize,
        multi: bool,
    },
    /// A release barrier (merges Multi blocks / propagates updates).
    Release,
    MkWritable {
        o: NodeId,
        b: usize,
    },
    ImplicitWritable {
        r: NodeId,
        b: usize,
    },
    SendRange {
        o: NodeId,
        r: NodeId,
        b: usize,
    },
    ReadyToRecv {
        r: NodeId,
    },
    ImplicitInvalidate {
        r: NodeId,
        b: usize,
    },
    FlushRange {
        f: NodeId,
        o: NodeId,
        b: usize,
    },
}

impl Op {
    /// True for the §4.2 compiler-directed primitives (erased when
    /// replaying a witness under the pure default protocol).
    pub fn is_ctl(&self) -> bool {
        matches!(
            self,
            Op::MkWritable { .. }
                | Op::ImplicitWritable { .. }
                | Op::SendRange { .. }
                | Op::ReadyToRecv { .. }
                | Op::ImplicitInvalidate { .. }
                | Op::FlushRange { .. }
        )
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Op::Read { p, b } => write!(out, "read p={p} b={b}"),
            Op::Write { p, b, w, multi } => write!(out, "write p={p} b={b} w={w} multi={multi}"),
            Op::Release => write!(out, "release"),
            Op::MkWritable { o, b } => write!(out, "mk_writable o={o} b={b}"),
            Op::ImplicitWritable { r, b } => write!(out, "implicit_writable r={r} b={b}"),
            Op::SendRange { o, r, b } => write!(out, "send_range o={o} r={r} b={b}"),
            Op::ReadyToRecv { r } => write!(out, "ready_to_recv r={r}"),
            Op::ImplicitInvalidate { r, b } => write!(out, "implicit_invalidate r={r} b={b}"),
            Op::FlushRange { f, o, b } => write!(out, "flush_range f={f} o={o} b={b}"),
        }
    }
}

impl std::str::FromStr for Op {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let mut it = s.split_whitespace();
        let head = it.next().ok_or("empty op")?;
        let mut kv = std::collections::BTreeMap::new();
        for tok in it {
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| format!("bad token {tok}"))?;
            kv.insert(k.to_string(), v.to_string());
        }
        let num = |k: &str| -> Result<usize, String> {
            kv.get(k)
                .ok_or_else(|| format!("missing {k} in {s:?}"))?
                .parse()
                .map_err(|e| format!("bad {k}: {e}"))
        };
        Ok(match head {
            "read" => Op::Read {
                p: num("p")?,
                b: num("b")?,
            },
            "write" => Op::Write {
                p: num("p")?,
                b: num("b")?,
                w: num("w")?,
                multi: kv.get("multi").map(|v| v == "true").unwrap_or(false),
            },
            "release" => Op::Release,
            "mk_writable" => Op::MkWritable {
                o: num("o")?,
                b: num("b")?,
            },
            "implicit_writable" => Op::ImplicitWritable {
                r: num("r")?,
                b: num("b")?,
            },
            "send_range" => Op::SendRange {
                o: num("o")?,
                r: num("r")?,
                b: num("b")?,
            },
            "ready_to_recv" => Op::ReadyToRecv { r: num("r")? },
            "implicit_invalidate" => Op::ImplicitInvalidate {
                r: num("r")?,
                b: num("b")?,
            },
            "flush_range" => Op::FlushRange {
                f: num("f")?,
                o: num("o")?,
                b: num("b")?,
            },
            other => return Err(format!("unknown op {other:?}")),
        })
    }
}

#[inline]
fn bit(n: NodeId) -> u64 {
    1u64 << n
}

/// One abstract protocol state. See the module docs for the field
/// semantics; everything is plain data and cheaply cloneable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbsState {
    pub nodes: usize,
    /// Real directory state per block.
    pub dir: Vec<DirState>,
    /// `tag[b][n]`: the node's access tag for the block.
    pub tag: Vec<Vec<Access>>,
    /// `mem[b][n]`: the node's copy, as per-word version numbers.
    pub mem: Vec<Vec<[u8; WORDS]>>,
    /// `twin[b][n]`: the pre-write snapshot a Multi/update writer diffs
    /// against at release.
    pub twin: Vec<Vec<Option<[u8; WORDS]>>>,
    /// `windows[b]`: node mask of open `implicit_writable` windows.
    /// Survives `flush_range` and releases (the §4.3 memo).
    pub windows: Vec<u64>,
    /// `dirty[b]`: window holders with unflushed writes.
    pub dirty: Vec<u64>,
    /// `ww[b][n]`: word mask the window holder has written this window.
    pub ww: Vec<Vec<u8>>,
    /// `pending[n]`: in-flight `send_range` deliveries toward `n`, each
    /// a (block, promised contents) pair — the owner's copy at send
    /// time, checked at `ready_to_recv` (delivery integrity).
    pub pending: Vec<Vec<(usize, [u8; WORDS])>>,
    /// `iww[b][w]`: nodes that wrote the word through a diff-merged
    /// flavor (Multi writers / update writers) this interval. Words with
    /// a non-empty mask are interval-racy and excluded from freshness
    /// checks until the release resets the mask.
    pub iww: Vec<[u64; WORDS]>,
    /// `spec[b][w]`: version of the last write in happens-before order —
    /// the sequential reference.
    pub spec: Vec<[u8; WORDS]>,
    /// Next version number to hand out.
    pub next_ver: u8,
}

impl AbsState {
    /// The initial state: every block exclusively owned by its home,
    /// which holds the only (writable) copy; all memory at version 0.
    pub fn initial(nodes: usize, blocks: usize) -> Self {
        let mut st = AbsState {
            nodes,
            dir: Vec::new(),
            tag: vec![vec![Access::Invalid; nodes]; blocks],
            mem: vec![vec![[0; WORDS]; nodes]; blocks],
            twin: vec![vec![None; nodes]; blocks],
            windows: vec![0; blocks],
            dirty: vec![0; blocks],
            ww: vec![vec![0; nodes]; blocks],
            pending: vec![Vec::new(); nodes],
            iww: vec![[0; WORDS]; blocks],
            spec: vec![[0; WORDS]; blocks],
            next_ver: 1,
        };
        for b in 0..blocks {
            let h = st.home(b);
            st.dir.push(DirState::Excl { owner: h });
            st.tag[b][h] = Access::ReadWrite;
        }
        st
    }

    pub fn blocks(&self) -> usize {
        self.dir.len()
    }

    /// Block homes follow the RoundRobin page policy (one model block
    /// per page under the conformance mapping).
    pub fn home(&self, b: usize) -> NodeId {
        b % self.nodes
    }

    fn alloc_ver(&mut self) -> u8 {
        let v = self.next_ver;
        self.next_ver += 1;
        v
    }

    fn block_pending(&self, n: NodeId, b: usize) -> bool {
        self.pending[n].iter().any(|&(pb, _)| pb == b)
    }

    /// Derive the [`ContractTracker`] view of this state — the §4.2
    /// legality rules then gate every candidate ctl op.
    pub fn tracker(&self) -> ContractTracker {
        let mut t = ContractTracker::new(self.nodes, self.blocks());
        for b in 0..self.blocks() {
            if let DirState::Excl { owner } = self.dir[b] {
                t.set_owner(b, owner);
            }
            for n in DirState::nodes(self.windows[b]) {
                t.open_window(b, n);
            }
            for n in DirState::nodes(self.dirty[b]) {
                t.mark_dirty(b, n);
            }
        }
        for n in 0..self.nodes {
            for &(b, _) in &self.pending[n] {
                t.add_pending(n, b);
            }
        }
        t
    }

    /// Apply one op. `Ok(None)` means the op is not eligible in this
    /// state (its guard fails — not an error, just not a successor);
    /// `Ok(Some(next))` is the successor state; `Err` is a detected
    /// safety violation (a stale read or a broken delivery promise).
    /// Structural/freshness invariants of the successor are checked
    /// separately via [`AbsState::check_invariants`].
    pub fn apply(&self, proto: Proto, op: Op, m: Mutation) -> Result<Option<AbsState>, String> {
        match proto {
            Proto::Eager => self.apply_eager(op, m),
            Proto::Update => self.apply_update(op, m),
        }
    }

    /// The stale-read theorem, checked at the moment of the read: every
    /// word the reader observes that is interval-stable (no diff-merged
    /// writer this interval) must carry the version of the last write in
    /// happens-before order.
    fn check_read(&self, p: NodeId, b: usize) -> Result<(), String> {
        for w in 0..WORDS {
            if self.iww[b][w] == 0 && self.mem[b][p][w] != self.spec[b][w] {
                return Err(format!(
                    "stale read: node {p} observes version {} of block {b} word {w}, \
                     but the last write in happens-before order was version {}",
                    self.mem[b][p][w], self.spec[b][w]
                ));
            }
        }
        Ok(())
    }

    fn apply_eager(&self, op: Op, m: Mutation) -> Result<Option<AbsState>, String> {
        match op {
            Op::Read { p, b } => {
                if self.tag[b][p] != Access::Invalid {
                    return Ok(None); // real read_access is a tag-hit no-op
                }
                // Compiler contract: ranges under ctl control are not
                // accessed by third parties while windows are open.
                if self.windows[b] != 0 {
                    return Ok(None);
                }
                let h = self.home(b);
                let cur = self.dir[b];
                let mut st = self.clone();
                match cur {
                    DirState::Shared { .. } => {
                        st.mem[b][p] = st.mem[b][h];
                    }
                    DirState::Excl { owner } if owner == h => {
                        st.mem[b][p] = st.mem[b][h];
                        st.tag[b][h] = Access::ReadOnly;
                    }
                    DirState::Excl { owner } => {
                        if owner == p {
                            return Ok(None); // unreachable in the real protocol
                        }
                        if m == Mutation::ReorderedAck {
                            // Mutation: serve the requester before the
                            // owner's flush lands at the home.
                            st.mem[b][p] = st.mem[b][h];
                            st.mem[b][h] = st.mem[b][owner];
                        } else {
                            // 4-hop: owner flushes home, home serves.
                            st.mem[b][h] = st.mem[b][owner];
                            st.mem[b][p] = st.mem[b][h];
                        }
                        st.tag[b][owner] = Access::ReadOnly;
                        st.tag[b][h] = Access::ReadOnly;
                    }
                    DirState::Multi { writers, .. } => {
                        // Writers flush their diffs so the merge base is
                        // current, then the home serves the reader.
                        for wr in DirState::nodes(writers) {
                            let t = st.twin[b][wr].expect("Multi writer without twin");
                            for w in 0..WORDS {
                                if st.mem[b][wr][w] != t[w] {
                                    st.mem[b][h][w] = st.mem[b][wr][w];
                                }
                            }
                            st.twin[b][wr] = Some(st.mem[b][wr]);
                        }
                        st.mem[b][p] = st.mem[b][h];
                    }
                }
                let mut next = trans::read_next(cur, p, h);
                if m == Mutation::ForgottenSharerBit {
                    if let DirState::Shared { readers } = next {
                        next = DirState::Shared {
                            readers: readers & !DirState::bit(p),
                        };
                    }
                }
                st.dir[b] = next;
                st.tag[b][p] = Access::ReadOnly;
                st.check_read(p, b)?;
                Ok(Some(st))
            }
            Op::Write { p, b, w, multi } => self.apply_eager_write(p, b, w, multi, m),
            Op::Release => {
                // The contract gates the barrier: no dirty window copies
                // (flush first) and no un-received deliveries.
                if self.dirty.iter().any(|&d| d != 0) || self.pending.iter().any(|q| !q.is_empty())
                {
                    return Ok(None);
                }
                let mut st = self.clone();
                for b in 0..st.blocks() {
                    let DirState::Multi { writers, readers } = st.dir[b] else {
                        continue;
                    };
                    let h = st.home(b);
                    for r in DirState::nodes(readers) {
                        st.tag[b][r] = Access::Invalid;
                    }
                    for wr in DirState::nodes(writers) {
                        let t = st.twin[b][wr].expect("Multi writer without twin");
                        for wd in 0..WORDS {
                            if st.mem[b][wr][wd] != t[wd] {
                                st.mem[b][h][wd] = st.mem[b][wr][wd];
                            }
                        }
                        st.tag[b][wr] = Access::Invalid;
                        st.twin[b][wr] = None;
                    }
                    st.tag[b][h] = Access::ReadWrite;
                    st.dir[b] = trans::release_next(h);
                }
                st.iww = vec![[0; WORDS]; st.blocks()];
                Ok(Some(st))
            }
            Op::MkWritable { o, b } => {
                if matches!(self.dir[b], DirState::Multi { .. }) {
                    return Ok(None); // unreachable in the real ctl path
                }
                if self.tag[b][o] == Access::ReadWrite && self.dir[b].is_excl_by(o) {
                    return Ok(None); // idempotent no-op: skip the self-loop
                }
                // A node with its *own* window still open must close it
                // first: its tag is already ReadWrite, so the transition
                // would fetch no data and promote a possibly-stale window
                // copy to the authoritative one.
                if self.windows[b] & bit(o) != 0 {
                    return Ok(None);
                }
                if self
                    .tracker()
                    .step(CtlOp::MkWritable {
                        owner: o,
                        first: b,
                        end: b + 1,
                    })
                    .is_err()
                {
                    return Ok(None);
                }
                let h = self.home(b);
                let need_data = self.tag[b][o] == Access::Invalid;
                let eff = trans::acquire_excl(self.dir[b], o, h);
                let mut st = self.clone();
                for r in DirState::nodes(eff.invalidate_readers) {
                    st.tag[b][r] = Access::Invalid;
                }
                if let Some(prev) = eff.flush_owner {
                    st.mem[b][h] = st.mem[b][prev];
                }
                if let Some(prev) = eff.invalidate_owner {
                    st.tag[b][prev] = Access::Invalid;
                }
                if need_data {
                    st.mem[b][o] = st.mem[b][h];
                }
                if h != o {
                    st.tag[b][h] = Access::Invalid;
                }
                st.tag[b][o] = Access::ReadWrite;
                st.dir[b] = eff.next;
                // Ownership subsumes the node's own window.
                st.windows[b] &= !bit(o);
                st.ww[b][o] = 0;
                Ok(Some(st))
            }
            Op::ImplicitWritable { r, b } => {
                // Windows only open over compiler-owned (Excl) ranges.
                if !matches!(self.dir[b], DirState::Excl { .. }) {
                    return Ok(None);
                }
                if self
                    .tracker()
                    .step(CtlOp::ImplicitWritable {
                        node: r,
                        first: b,
                        end: b + 1,
                    })
                    .is_err()
                {
                    return Ok(None);
                }
                let mut st = self.clone();
                st.windows[b] |= bit(r);
                st.tag[b][r] = Access::ReadWrite; // tags flip, no data moves
                Ok(Some(st))
            }
            Op::SendRange { o, r, b } => {
                if self
                    .tracker()
                    .step(CtlOp::SendRange {
                        owner: o,
                        reader: r,
                        first: b,
                        end: b + 1,
                    })
                    .is_err()
                {
                    return Ok(None);
                }
                // A holder that already wrote must not be overwritten
                // (also enforced by the tracker's dirty rule) and a
                // holder awaiting a delivery cannot be written to again.
                let h = self.home(b);
                let mut st = self.clone();
                let promise = st.mem[b][o];
                match m {
                    Mutation::SkewSendRange => {
                        // Promise recorded, nothing delivered: the
                        // one-block model shape of the skewed bound.
                    }
                    Mutation::StaleOwnerPush => {
                        let src = trans::push_source(o, r, h, true);
                        st.mem[b][r] = st.mem[b][src];
                    }
                    _ => {
                        st.mem[b][r] = st.mem[b][o];
                    }
                }
                st.pending[r].push((b, promise));
                st.pending[r].sort_unstable();
                Ok(Some(st))
            }
            Op::ReadyToRecv { r } => {
                if self.tracker().step(CtlOp::ReadyToRecv { node: r }).is_err() {
                    return Ok(None);
                }
                // Delivery integrity: the §4.2 promise is that by the
                // time ready_to_recv returns, every pushed range holds
                // exactly what the owner sent.
                for &(b, expect) in &self.pending[r] {
                    if self.mem[b][r] != expect {
                        return Err(format!(
                            "broken delivery promise: ready_to_recv at node {r} but \
                             block {b} holds {:?}, owner sent {:?}",
                            self.mem[b][r], expect
                        ));
                    }
                }
                let mut st = self.clone();
                st.pending[r].clear();
                Ok(Some(st))
            }
            Op::ImplicitInvalidate { r, b } => {
                if self
                    .tracker()
                    .step(CtlOp::ImplicitInvalidate {
                        node: r,
                        first: b,
                        end: b + 1,
                    })
                    .is_err()
                {
                    return Ok(None);
                }
                let mut st = self.clone();
                st.windows[b] &= !bit(r);
                st.tag[b][r] = Access::Invalid;
                st.ww[b][r] = 0;
                Ok(Some(st))
            }
            Op::FlushRange { f, o, b } => {
                if self
                    .tracker()
                    .step(CtlOp::FlushRange {
                        writer: f,
                        owner: o,
                        first: b,
                        end: b + 1,
                    })
                    .is_err()
                {
                    return Ok(None);
                }
                // The real flush ships whole blocks, so the contract
                // requires the writer's un-written words to be current
                // (a send_range delivered them, or the writer covered
                // the block) — otherwise the flush would lose data.
                for w in 0..WORDS {
                    if self.ww[b][f] & (1 << w) == 0 && self.mem[b][f][w] != self.mem[b][o][w] {
                        return Ok(None);
                    }
                }
                let h = self.home(b);
                let mut st = self.clone();
                if m != Mutation::SkipFlushRange {
                    st.mem[b][o] = st.mem[b][f];
                }
                st.tag[b][f] = Access::Invalid;
                st.tag[b][o] = Access::ReadWrite;
                let (invalidate_home, next) = trans::flush_fold(f, o, h);
                if invalidate_home {
                    st.tag[b][h] = Access::Invalid;
                }
                st.dir[b] = next;
                st.dirty[b] &= !bit(f);
                st.ww[b][f] = 0;
                // The window (the §4.3 memo) survives the flush.
                Ok(Some(st))
            }
        }
    }

    fn apply_eager_write(
        &self,
        p: NodeId,
        b: usize,
        w: usize,
        multi: bool,
        m: Mutation,
    ) -> Result<Option<AbsState>, String> {
        let h = self.home(b);
        // Window-holder write: the compiler-controlled store.
        if self.windows[b] & bit(p) != 0 {
            if multi || self.tag[b][p] != Access::ReadWrite {
                return Ok(None); // post-flush windows re-arm via the protocol
            }
            if self.block_pending(p, b) {
                return Ok(None); // must ready_to_recv before using the window
            }
            // Contract: window writers touch disjoint words.
            for q in DirState::nodes(self.windows[b]) {
                if q != p && self.ww[b][q] & (1 << w) != 0 {
                    return Ok(None);
                }
            }
            let mut st = self.clone();
            let v = st.alloc_ver();
            st.mem[b][p][w] = v;
            st.spec[b][w] = v;
            st.dirty[b] |= bit(p);
            st.ww[b][p] |= 1 << w;
            return Ok(Some(st));
        }
        // While any window is open on the block, only holders write it
        // (the flush is a whole-block copy; an owner write would race).
        if self.windows[b] != 0 {
            return Ok(None);
        }
        if self.tag[b][p] == Access::ReadWrite {
            // Silent store: no protocol action.
            match self.dir[b] {
                DirState::Excl { owner } if owner == p => {
                    if multi {
                        return Ok(None); // canonical encoding
                    }
                    let mut st = self.clone();
                    let v = st.alloc_ver();
                    st.mem[b][p][w] = v;
                    st.spec[b][w] = v;
                    Ok(Some(st))
                }
                DirState::Multi { writers, .. } if writers & DirState::bit(p) != 0 => {
                    if !multi {
                        return Ok(None); // canonical encoding
                    }
                    // Diff-merge nondeterminism guard: element-level
                    // race freedom means no two writers touch one word.
                    if self.iww[b][w] & !bit(p) != 0 {
                        return Ok(None);
                    }
                    let mut st = self.clone();
                    let v = st.alloc_ver();
                    st.mem[b][p][w] = v;
                    st.spec[b][w] = v;
                    st.iww[b][w] |= bit(p);
                    Ok(Some(st))
                }
                _ => Ok(None), // RW tag not matching the directory: model bug bait
            }
        } else if !multi {
            // Steal-exclusive write fault.
            if matches!(self.dir[b], DirState::Multi { .. }) {
                return Ok(None); // real code routes these to write_access_multi
            }
            if let DirState::Excl { owner } = self.dir[b] {
                if owner == p {
                    return Ok(None); // unreachable: owner faulting own block
                }
            }
            let need_data = self.tag[b][p] == Access::Invalid;
            let eff = trans::acquire_excl(self.dir[b], p, h);
            let mut st = self.clone();
            let mut inval = eff.invalidate_readers;
            if m == Mutation::DroppedInvalidate && inval != 0 {
                inval &= inval - 1; // forget the lowest reader
            }
            for r in DirState::nodes(inval) {
                st.tag[b][r] = Access::Invalid;
            }
            if let Some(prev) = eff.flush_owner {
                st.mem[b][h] = st.mem[b][prev];
            }
            if let Some(prev) = eff.invalidate_owner {
                st.tag[b][prev] = Access::Invalid;
            }
            if need_data {
                st.mem[b][p] = st.mem[b][h];
            }
            if h != p {
                st.tag[b][h] = Access::Invalid;
            }
            st.tag[b][p] = Access::ReadWrite;
            st.dir[b] = eff.next;
            let v = st.alloc_ver();
            st.mem[b][p][w] = v;
            st.spec[b][w] = v;
            Ok(Some(st))
        } else {
            // Multi-writer (false sharing) fault: join the writer set.
            if let DirState::Multi { writers, .. } = self.dir[b] {
                if writers & DirState::bit(p) != 0 {
                    return Ok(None); // silent path covers standing writers
                }
            }
            if self.iww[b][w] & !bit(p) != 0 {
                return Ok(None);
            }
            let eff = trans::enter_multi(self.dir[b], p, h);
            let mut st = self.clone();
            if let Some(prev) = eff.flush_owner {
                st.mem[b][h] = st.mem[b][prev];
            }
            if let Some(prev) = eff.twin_owner {
                st.twin[b][prev] = Some(st.mem[b][prev]);
            }
            for r in DirState::nodes(eff.invalidate_readers) {
                st.tag[b][r] = Access::Invalid;
            }
            if self.tag[b][p] == Access::Invalid {
                st.mem[b][p] = st.mem[b][h];
            }
            st.twin[b][p] = Some(st.mem[b][p]);
            st.tag[b][p] = Access::ReadWrite;
            if eff.invalidate_home {
                st.tag[b][h] = Access::Invalid;
            }
            st.dir[b] = eff.next;
            let v = st.alloc_ver();
            st.mem[b][p][w] = v;
            st.spec[b][w] = v;
            st.iww[b][w] |= bit(p);
            Ok(Some(st))
        }
    }

    fn apply_update(&self, op: Op, _m: Mutation) -> Result<Option<AbsState>, String> {
        match op {
            Op::Read { p, b } => {
                if self.tag[b][p] != Access::Invalid {
                    return Ok(None);
                }
                let h = self.home(b);
                let mut st = self.clone();
                st.mem[b][p] = st.mem[b][h];
                st.tag[b][p] = Access::ReadOnly;
                st.dir[b] = trans::update_share(self.dir[b], p, h);
                st.check_read(p, b)?;
                Ok(Some(st))
            }
            Op::Write { p, b, w, multi } => {
                if multi {
                    return Ok(None); // no Multi state under write-update
                }
                if self.iww[b][w] & !bit(p) != 0 {
                    return Ok(None); // element-level race freedom
                }
                let h = self.home(b);
                let mut st = self.clone();
                if st.tag[b][p] == Access::ReadWrite {
                    if st.twin[b][p].is_none() {
                        // Standing writer, new interval.
                        st.twin[b][p] = Some(st.mem[b][p]);
                        st.dir[b] = trans::update_share(st.dir[b], p, h);
                    }
                } else {
                    if st.tag[b][p] == Access::Invalid {
                        st.mem[b][p] = st.mem[b][h];
                    }
                    st.tag[b][p] = Access::ReadWrite;
                    st.twin[b][p] = Some(st.mem[b][p]);
                    st.dir[b] = trans::update_share(st.dir[b], p, h);
                }
                let v = st.alloc_ver();
                st.mem[b][p][w] = v;
                st.spec[b][w] = v;
                st.iww[b][w] |= bit(p);
                Ok(Some(st))
            }
            Op::Release => {
                let mut st = self.clone();
                for b in 0..st.blocks() {
                    for wr in 0..st.nodes {
                        let Some(t) = st.twin[b][wr] else { continue };
                        st.twin[b][wr] = None;
                        let diff: Vec<usize> =
                            (0..WORDS).filter(|&w| st.mem[b][wr][w] != t[w]).collect();
                        if diff.is_empty() {
                            continue;
                        }
                        let DirState::Shared { readers } = st.dir[b] else {
                            unreachable!("update-protocol writer on a non-Shared block")
                        };
                        for target in DirState::nodes(readers) {
                            if target == wr {
                                continue;
                            }
                            for &w in &diff {
                                st.mem[b][target][w] = st.mem[b][wr][w];
                            }
                        }
                    }
                }
                st.iww = vec![[0; WORDS]; st.blocks()];
                Ok(Some(st))
            }
            // No ctl ops: the real WriteUpdate reports supports_ctl = false.
            _ => Ok(None),
        }
    }

    /// Structural + freshness invariants, checked on every visited
    /// state. Deliberately *stricter* than the implementation's
    /// `check_consistency` (which only runs at barriers): these must
    /// hold at every interleaving point.
    pub fn check_invariants(&self, proto: Proto) -> Result<(), String> {
        for b in 0..self.blocks() {
            // Bookkeeping sanity.
            if self.dirty[b] & !self.windows[b] != 0 {
                return Err(format!("block {b}: dirty bits outside open windows"));
            }
            for n in 0..self.nodes {
                if self.ww[b][n] != 0 && self.windows[b] & bit(n) == 0 {
                    return Err(format!("block {b}: write mask without a window at {n}"));
                }
            }
            if self.windows[b] != 0 && !matches!(self.dir[b], DirState::Excl { .. }) {
                return Err(format!(
                    "block {b}: open windows but directory is {:?}",
                    self.dir[b]
                ));
            }
            match self.dir[b] {
                DirState::Excl { owner } => {
                    if self.tag[b][owner] == Access::Invalid {
                        return Err(format!(
                            "block {b}: directory says Excl({owner}) but the owner's \
                             copy is Invalid"
                        ));
                    }
                    for n in 0..self.nodes {
                        if n == owner {
                            continue;
                        }
                        if self.tag[b][n] != Access::Invalid && self.windows[b] & bit(n) == 0 {
                            return Err(format!(
                                "block {b}: node {n} holds a {:?} copy under \
                                 Excl({owner}) without an open window",
                                self.tag[b][n]
                            ));
                        }
                    }
                }
                DirState::Shared { readers } => {
                    for n in 0..self.nodes {
                        match self.tag[b][n] {
                            Access::ReadOnly => {
                                if readers & DirState::bit(n) == 0 {
                                    return Err(format!(
                                        "block {b}: node {n} is ReadOnly but not in \
                                         the sharer mask"
                                    ));
                                }
                            }
                            Access::ReadWrite => {
                                if proto == Proto::Eager {
                                    return Err(format!(
                                        "block {b}: node {n} is ReadWrite but the \
                                         directory says Shared"
                                    ));
                                }
                                // Update protocol: writers stay RW and
                                // must be registered sharers.
                                if readers & DirState::bit(n) == 0 {
                                    return Err(format!(
                                        "block {b}: update writer {n} missing from \
                                         the sharer mask"
                                    ));
                                }
                            }
                            Access::Invalid => {}
                        }
                    }
                }
                DirState::Multi { writers, readers } => {
                    for n in 0..self.nodes {
                        let is_writer = writers & DirState::bit(n) != 0;
                        match self.tag[b][n] {
                            Access::ReadWrite if !is_writer => {
                                return Err(format!(
                                    "block {b}: node {n} is ReadWrite but not a \
                                     recorded Multi writer"
                                ));
                            }
                            Access::ReadOnly if readers & DirState::bit(n) == 0 => {
                                return Err(format!(
                                    "block {b}: node {n} is ReadOnly but not a \
                                     recorded Multi reader"
                                ));
                            }
                            _ => {}
                        }
                        if is_writer {
                            if self.tag[b][n] != Access::ReadWrite {
                                return Err(format!(
                                    "block {b}: Multi writer {n} is not ReadWrite"
                                ));
                            }
                            if self.twin[b][n].is_none() {
                                return Err(format!("block {b}: Multi writer {n} has no twin"));
                            }
                        }
                    }
                }
            }
        }
        self.check_freshness()
    }

    /// Freshness: every interval-stable word of every coherently valid
    /// copy carries the latest version. Words mid-delivery (pending) or
    /// with unflushed window writes, and copies held under an open
    /// window, are excused — the contract covers them until the
    /// flush/ready_to_recv closes the gap.
    fn check_freshness(&self) -> Result<(), String> {
        for b in 0..self.blocks() {
            if self.dirty[b] != 0 {
                continue;
            }
            if (0..self.nodes).any(|n| self.block_pending(n, b)) {
                continue;
            }
            for w in 0..WORDS {
                if self.iww[b][w] != 0 {
                    continue;
                }
                for n in 0..self.nodes {
                    if self.tag[b][n] == Access::Invalid || self.windows[b] & bit(n) != 0 {
                        continue;
                    }
                    if self.mem[b][n][w] != self.spec[b][w] {
                        return Err(format!(
                            "stale copy: node {n} holds version {} of block {b} word \
                             {w}, last write was version {}",
                            self.mem[b][n][w], self.spec[b][w]
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Canonical byte key for the visited set. Version numbers are
    /// renumbered densely (order-preserving), so states differing only
    /// in version labels collapse into one.
    pub fn canonical(&self) -> Vec<u8> {
        let mut vers: Vec<u8> = Vec::new();
        let mut note = |v: u8| {
            if v != 0 {
                vers.push(v)
            }
        };
        for b in 0..self.blocks() {
            for n in 0..self.nodes {
                for w in 0..WORDS {
                    note(self.mem[b][n][w]);
                }
                if let Some(t) = self.twin[b][n] {
                    for w in 0..WORDS {
                        note(t[w]);
                    }
                }
            }
            for w in 0..WORDS {
                note(self.spec[b][w]);
            }
        }
        for q in &self.pending {
            for &(_, exp) in q {
                for w in 0..WORDS {
                    note(exp[w]);
                }
            }
        }
        vers.sort_unstable();
        vers.dedup();
        let remap = |v: u8| -> u8 {
            if v == 0 {
                0
            } else {
                vers.binary_search(&v).unwrap() as u8 + 1
            }
        };

        let mut key = Vec::with_capacity(64);
        for b in 0..self.blocks() {
            match self.dir[b] {
                DirState::Shared { readers } => {
                    key.push(0);
                    key.extend(readers.to_le_bytes());
                }
                DirState::Excl { owner } => {
                    key.push(1);
                    key.push(owner as u8);
                }
                DirState::Multi { writers, readers } => {
                    key.push(2);
                    key.extend(writers.to_le_bytes());
                    key.extend(readers.to_le_bytes());
                }
            }
            key.extend(self.windows[b].to_le_bytes());
            key.extend(self.dirty[b].to_le_bytes());
            for w in 0..WORDS {
                key.extend(self.iww[b][w].to_le_bytes());
                key.push(remap(self.spec[b][w]));
            }
            for n in 0..self.nodes {
                key.push(match self.tag[b][n] {
                    Access::Invalid => 0,
                    Access::ReadOnly => 1,
                    Access::ReadWrite => 2,
                });
                key.push(self.ww[b][n]);
                for w in 0..WORDS {
                    key.push(remap(self.mem[b][n][w]));
                }
                match self.twin[b][n] {
                    None => key.push(0),
                    Some(t) => {
                        key.push(1);
                        for w in 0..WORDS {
                            key.push(remap(t[w]));
                        }
                    }
                }
            }
        }
        for q in &self.pending {
            key.push(q.len() as u8);
            for &(b, exp) in q {
                key.push(b as u8);
                for w in 0..WORDS {
                    key.push(remap(exp[w]));
                }
            }
        }
        key
    }
}
