//! Conformance: enumerated model sequences replayed through the real
//! `Dsm` — the in-process fast path and the channel-backed wire path —
//! must land on the same directory entries, tags, and memory contents
//! as the abstract model. With a real engine injection armed, the same
//! replays must *diverge* (the injections are bugs the model catches).

use fgdsm_model::{enumerate_sequences, replay_on_dsm, ModelConfig, Op, Proto};
use fgdsm_protocol::Injection;

/// Stride-sample `want` sequences out of an enumeration.
fn sample(seqs: &[Vec<Op>], want: usize) -> Vec<&Vec<Op>> {
    let stride = (seqs.len() / want).max(1);
    seqs.iter().step_by(stride).take(want).collect()
}

#[test]
fn eager_sequences_conform_on_the_fast_path() {
    let cfg = ModelConfig::small(Proto::Eager).with_depth(4);
    let seqs = enumerate_sequences(&cfg, 4, true, 50_000);
    let picked = sample(&seqs, 100);
    assert!(picked.len() >= 100, "enumeration too small: {}", seqs.len());
    for seq in picked {
        replay_on_dsm(&cfg, seq, false, None).unwrap_or_else(|e| {
            panic!(
                "fast-path divergence on {:?}: {e}",
                seq.iter().map(Op::to_string).collect::<Vec<_>>()
            )
        });
    }
}

#[test]
fn eager_sequences_conform_on_the_chan_wire_path() {
    let cfg = ModelConfig::small(Proto::Eager).with_depth(4);
    let seqs = enumerate_sequences(&cfg, 4, true, 50_000);
    let picked = sample(&seqs, 100);
    assert!(picked.len() >= 100, "enumeration too small: {}", seqs.len());
    for seq in picked {
        replay_on_dsm(&cfg, seq, true, None).unwrap_or_else(|e| {
            panic!(
                "wire-path divergence on {:?}: {e}",
                seq.iter().map(Op::to_string).collect::<Vec<_>>()
            )
        });
    }
}

#[test]
fn three_node_sequences_conform() {
    let cfg = ModelConfig::small(Proto::Eager).with_nodes(3).with_depth(3);
    let seqs = enumerate_sequences(&cfg, 3, true, 50_000);
    for seq in sample(&seqs, 60) {
        replay_on_dsm(&cfg, seq, false, None)
            .unwrap_or_else(|e| panic!("3-node divergence on {seq:?}: {e}"));
    }
}

#[test]
fn update_sequences_conform() {
    let cfg = ModelConfig::small(Proto::Update).with_depth(4);
    let seqs = enumerate_sequences(&cfg, 4, false, 50_000);
    for seq in sample(&seqs, 60) {
        replay_on_dsm(&cfg, seq, false, None)
            .unwrap_or_else(|e| panic!("update divergence on {seq:?}: {e}"));
    }
}

/// Armed engine injections must make the real run diverge from the
/// clean model — each fault, at least one witnessing sequence.
#[test]
fn engine_injections_diverge_from_the_clean_model() {
    // skew_send_range: the push is silently dropped (one-block ranges),
    // so the reader's window keeps its stale copy.
    let cfg = ModelConfig::small(Proto::Eager);
    let skew_seq: Vec<Op> = [
        "write p=0 b=0 w=0 multi=false",
        "implicit_writable r=1 b=0",
        "send_range o=0 r=1 b=0",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect();
    replay_on_dsm(&cfg, &skew_seq, false, None).expect("clean replay must conform");
    let inj = Injection {
        skew_send_range: true,
        ..Default::default()
    };
    replay_on_dsm(&cfg, &skew_seq, false, Some(inj))
        .expect_err("skew_send_range must diverge from the clean model");

    // skip_flush_range: the writer's window copy never reaches the
    // owner and no tag/directory transition happens at all.
    let flush_seq: Vec<Op> = [
        "implicit_writable r=1 b=0",
        "write p=1 b=0 w=0 multi=false",
        "flush_range f=1 o=0 b=0",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect();
    replay_on_dsm(&cfg, &flush_seq, false, None).expect("clean replay must conform");
    let inj = Injection {
        skip_flush_range: true,
        ..Default::default()
    };
    replay_on_dsm(&cfg, &flush_seq, false, Some(inj))
        .expect_err("skip_flush_range must diverge from the clean model");

    // stale_owner_push: needs a third-party home — the owner steals the
    // block from its home, then pushes; the injected engine reads the
    // home's never-updated copy instead.
    let cfg3 = ModelConfig::small(Proto::Eager).with_nodes(3);
    let stale_seq: Vec<Op> = [
        "write p=1 b=0 w=0 multi=false",
        "implicit_writable r=2 b=0",
        "send_range o=1 r=2 b=0",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect();
    replay_on_dsm(&cfg3, &stale_seq, false, None).expect("clean replay must conform");
    let inj = Injection {
        stale_owner_push: true,
        ..Default::default()
    };
    replay_on_dsm(&cfg3, &stale_seq, false, Some(inj))
        .expect_err("stale_owner_push must diverge from the clean model");
}
