//! Must-catch mutation sweep: every seeded protocol/contract bug must
//! produce a violation with a *minimal* counterexample trace, and the
//! printed reproducer must round-trip (parse back and replay to the
//! same violation).

use fgdsm_model::{check, replay, ModelConfig, Mutation, Op, Proto};

/// The checker configuration each mutation needs (some hazards only
/// exist with a third-party node) and the length of the minimal
/// counterexample the BFS must find.
fn arena(m: Mutation) -> (ModelConfig, usize) {
    let base = ModelConfig::small(Proto::Eager).with_depth(6);
    match m {
        // A read miss drops the requester's sharer bit: one read.
        Mutation::ForgottenSharerBit => (base, 1),
        // A steal forgets one reader: read, then a foreign write.
        Mutation::DroppedInvalidate => (base, 2),
        // 4-hop read served before the owner's flush lands: needs a
        // reader that is neither owner nor home.
        Mutation::ReorderedAck => (base.with_nodes(3), 2),
        // Window write never copied home: open, write, flush.
        Mutation::SkipFlushRange => (base, 3),
        // Promise recorded, delivery dropped: write, open, send, recv.
        Mutation::SkewSendRange => (base, 4),
        // Stale push from a third-party home: steal (owner ≠ home),
        // open, send, recv.
        Mutation::StaleOwnerPush => (base.with_nodes(3), 4),
        Mutation::None => unreachable!(),
    }
}

#[test]
fn every_mutation_is_caught_with_a_minimal_trace() {
    for m in Mutation::ALL {
        let (cfg, minimal) = arena(m);

        // The same arena must be clean without the mutation — the
        // violation is the bug, not the configuration.
        let clean = check(&cfg);
        assert!(
            clean.violation.is_none(),
            "clean arena for {} found a violation:\n{}",
            m.name(),
            clean.violation.unwrap().render()
        );

        let out = check(&cfg.with_mutation(m));
        let v = out
            .violation
            .unwrap_or_else(|| panic!("mutation {} was not caught", m.name()));
        println!("{}", v.render());
        assert_eq!(
            v.trace.len(),
            minimal,
            "mutation {} caught with a non-minimal trace:\n{}",
            m.name(),
            v.render()
        );
    }
}

/// The counterexample-to-reproducer bridge: the rendered trace parses
/// back into the same ops, and the emitted `#[test]` body's core call —
/// `replay(&cfg, &ops)` — fails exactly as promised.
#[test]
fn reproducer_round_trips() {
    for m in Mutation::ALL {
        let (cfg, _) = arena(m);
        let mutated = cfg.with_mutation(m);
        let v = check(&mutated).violation.expect("mutation must be caught");

        // Display → FromStr round-trip of every op in the trace.
        let reparsed: Vec<Op> = v
            .trace
            .iter()
            .map(|op| op.to_string().parse().unwrap())
            .collect();
        assert_eq!(reparsed, v.trace, "trace of {}", m.name());

        // The reproducer text embeds the same ops and the violation.
        let text = v.reproducer();
        assert!(text.contains("#[test]"), "reproducer is a test");
        assert!(
            text.contains(&format!("Mutation::{m:?}")),
            "reproducer pins the mutation"
        );
        for op in &v.trace {
            assert!(
                text.contains(&format!("\"{op}\"")),
                "reproducer embeds op `{op}`"
            );
        }

        // And the replay it performs does fail.
        let err = replay(&mutated, &v.trace).expect_err("replayed counterexample must fail");
        assert_eq!(err.trace, v.trace);
    }
}

/// A recorded trace replays cleanly when the mutation is off — the
/// interleavings themselves are legal; only the seeded bug breaks them.
#[test]
fn counterexample_traces_are_legal_interleavings() {
    for m in [Mutation::SkewSendRange, Mutation::SkipFlushRange] {
        let (cfg, _) = arena(m);
        let v = check(&cfg.with_mutation(m)).violation.unwrap();
        replay(&cfg, &v.trace).unwrap_or_else(|e| {
            panic!(
                "clean replay of {}'s counterexample failed: {}",
                m.name(),
                e.message
            )
        });
    }
}
