//! Fuzz-corpus cross-pollination: the checker's enumerated default-only
//! op sequences seed a *deterministic* corpus of mini-HPF programs for
//! the differential fuzzer — no RNG anywhere, so every run of this test
//! checks the exact same 100 cases through `check_spec` (sequential
//! reference vs. every backend).

use fgdsm_fuzz::gen::{ArraySpec, FStmt, FuzzSpec, LoopSpec, ReadSpec};
use fgdsm_fuzz::oracle::{check_spec, check_spec_tcp};
use fgdsm_hpf::InjectConfig;
use fgdsm_model::{enumerate_sequences, ModelConfig, Op, Proto};

/// Shape features of one enumerated sequence.
#[derive(Default)]
struct Features {
    reads: usize,
    writes: usize,
    multi_writes: usize,
    releases: usize,
    word1_writes: usize,
}

fn features(seq: &[Op]) -> Features {
    let mut f = Features::default();
    for op in seq {
        match *op {
            Op::Read { .. } => f.reads += 1,
            Op::Write { w, multi, .. } => {
                f.writes += 1;
                if multi {
                    f.multi_writes += 1;
                }
                if w == 1 {
                    f.word1_writes += 1;
                }
            }
            Op::Release => f.releases += 1,
            _ => {}
        }
    }
    f
}

/// Map a sequence's features onto fuzz-spec knobs. The mapping is a
/// dimensional projection, not a simulation: reads become stencil
/// reads, multi-flavor writes select a CYCLIC (false-sharing-heavy)
/// distribution, extra releases become a reduction (an extra
/// synchronization structure), and the corpus index perturbs the array
/// extent so the 100 cases exercise different block alignments.
fn spec_from(seq: &[Op], idx: usize) -> FuzzSpec {
    let f = features(seq);
    let n_read_arrays = f.reads.clamp(1, 2);
    let mut arrays = vec![ArraySpec {
        rank2: false,
        cyclic: f.multi_writes > 0,
        index_for: None,
    }];
    for k in 0..n_read_arrays {
        arrays.push(ArraySpec {
            rank2: false,
            // Mixed distributions when the sequence had both flavors.
            cyclic: f.multi_writes > 0 && k == 0,
            index_for: None,
        });
    }
    let reads = (0..n_read_arrays)
        .map(|k| ReadSpec {
            array: k + 1,
            off: [(f.writes as i64 % 3) - 1, 0],
            via: None,
        })
        .collect();
    FuzzSpec {
        seed: idx as u64,
        nprocs: 2 + (f.reads + f.writes) % 2,
        n1: 24 + 4 * (idx % 7),
        n2: [6, 8],
        body: vec![FStmt::Loop(LoopSpec {
            write: 0,
            dist_by: None,
            self_read: f.multi_writes > 0,
            reads,
            reduce: (f.releases > 1).then_some(0),
            use_t: false,
            use_acc: f.word1_writes > 0,
        })],
        arrays,
        time: (f.releases > 0).then_some((0, 1, 1 + (f.releases as i64).min(2))),
        inject: InjectConfig::default(),
    }
}

/// 100 deterministic cases derived from the model's enumerated
/// sequences, each run through the cross-backend oracle.
#[test]
fn model_derived_corpus_passes_the_oracle() {
    let cfg = ModelConfig::small(Proto::Eager).with_depth(4);
    let seqs = enumerate_sequences(&cfg, 4, false, 50_000);
    assert!(!seqs.is_empty());
    let stride = (seqs.len() / 100).max(1);
    let picked: Vec<&Vec<Op>> = seqs.iter().step_by(stride).take(100).collect();
    assert_eq!(picked.len(), 100, "need a full 100-case corpus");

    let mut distinct = std::collections::BTreeSet::new();
    for (idx, seq) in picked.iter().enumerate() {
        let spec = spec_from(seq, idx);
        distinct.insert(format!("{spec:?}"));
        if let Err(d) = check_spec(&spec) {
            panic!("model-derived case {idx} diverged: {d:?}\nspec: {spec:?}");
        }
    }
    // The projection must not collapse the corpus to a handful of
    // duplicate programs.
    assert!(
        distinct.len() >= 20,
        "corpus collapsed to {} distinct specs",
        distinct.len()
    );
}

/// The same 100 model-derived cases replayed over the socket-backed
/// `tcp` backend: every case runs with each inter-node transfer framed
/// over loopback sockets to spawned `fgdsm-node` processes, bitwise
/// against the reference and byte-identical to `sm_opt[full]`'s serial
/// artifacts. Skips with a notice when the sandbox forbids sockets.
#[test]
fn model_derived_corpus_passes_the_tcp_oracle() {
    if !fgdsm_hpf::tcp_available() {
        eprintln!(
            "notice: sandbox forbids sockets; skipping model_derived_corpus_passes_the_tcp_oracle"
        );
        return;
    }
    let cfg = ModelConfig::small(Proto::Eager).with_depth(4);
    let seqs = enumerate_sequences(&cfg, 4, false, 50_000);
    let stride = (seqs.len() / 100).max(1);
    let picked: Vec<&Vec<Op>> = seqs.iter().step_by(stride).take(100).collect();
    assert_eq!(picked.len(), 100, "need a full 100-case corpus");
    for (idx, seq) in picked.iter().enumerate() {
        let spec = spec_from(seq, idx);
        if let Err(d) = check_spec_tcp(&spec) {
            panic!("model-derived case {idx} diverged over tcp: {d:?}\nspec: {spec:?}");
        }
    }
}

/// Determinism: deriving the corpus twice yields identical specs.
#[test]
fn corpus_derivation_is_deterministic() {
    let cfg = ModelConfig::small(Proto::Eager).with_depth(4);
    let a = enumerate_sequences(&cfg, 4, false, 50_000);
    let b = enumerate_sequences(&cfg, 4, false, 50_000);
    assert_eq!(a, b, "enumeration order must be stable");
    let sa = spec_from(&a[0], 0);
    let sb = spec_from(&b[0], 0);
    assert_eq!(sa, sb);
}
