//! Tier-1 closure runs: the clean model must close its bounded state
//! space with zero violations, for both protocols, and the
//! contract-bypass invisibility theorem must verify on real witnesses.

use fgdsm_model::{check, contract_invisibility, default_depth, ModelConfig, Proto};

fn assert_closed(cfg: &ModelConfig) -> usize {
    let out = check(cfg);
    if let Some(v) = &out.violation {
        panic!("clean model found a violation:\n{}", v.render());
    }
    assert!(out.closed);
    assert!(
        out.states > 1 && out.transitions > 0,
        "closure explored nothing ({} states, {} transitions)",
        out.states,
        out.transitions
    );
    out.states
}

/// The headline run: every interleaving of 2 nodes over 1 block under
/// the eager protocol — reads, writes (both flavors), releases, and the
/// full §4.2 ctl vocabulary — to the configured depth.
#[test]
fn eager_two_nodes_one_block_closes() {
    let cfg = ModelConfig::small(Proto::Eager);
    let states = assert_closed(&cfg);
    // The space must be non-trivial: the ctl ops alone give hundreds of
    // reachable states at the default depth.
    assert!(states > 100, "suspiciously small closure: {states} states");
}

/// Same bound for the write-update protocol (no ctl vocabulary — the
/// real protocol reports `supports_ctl = false`).
#[test]
fn update_two_nodes_one_block_closes() {
    assert_closed(&ModelConfig::small(Proto::Update));
}

/// Three nodes bring in the states two cannot reach: 4-hop reads with a
/// third-party reader, third-party homes for flush/push folding, and
/// multi-writer sets of size two with a reader.
#[test]
fn eager_three_nodes_smoke() {
    let cfg = ModelConfig::small(Proto::Eager)
        .with_nodes(3)
        .with_depth(default_depth().min(4));
    assert_closed(&cfg);
}

/// Two blocks: cross-block interactions (windows on one block while the
/// other moves through Multi, releases touching both).
#[test]
fn eager_two_blocks_smoke() {
    let cfg = ModelConfig::small(Proto::Eager)
        .with_blocks(2)
        .with_depth(default_depth().min(4));
    assert_closed(&cfg);
}

#[test]
fn update_three_nodes_smoke() {
    let cfg = ModelConfig::small(Proto::Update)
        .with_nodes(3)
        .with_depth(default_depth().min(5));
    assert_closed(&cfg);
}

/// The §4.2 soundness theorem, on enumerated witnesses: erasing the ctl
/// primitives from a legal interleaving and replaying it under the pure
/// default protocol reaches the same sequential outcome.
#[test]
fn contract_bypass_is_invisible() {
    let cfg = ModelConfig::small(Proto::Eager);
    let verified = contract_invisibility(&cfg, 5, 50);
    assert!(
        verified >= 10,
        "too few invisibility witnesses verified: {verified}"
    );
}
