//! # fgdsm-testkit: deterministic randomized-testing support
//!
//! A tiny, dependency-free substitute for the external `rand` + `proptest`
//! crates, so the workspace builds and tests with no registry access. Two
//! pieces:
//!
//! * [`Rng`] — a SplitMix64 PRNG (Steele, Lea & Flood, OOPSLA '14 mixing
//!   constants). Deterministic, seedable, and good enough for generating
//!   test inputs — not cryptographic.
//! * [`check_cases`] — a minimal property-harness: runs a closure over N
//!   independently seeded cases, reporting the failing case's seed so a
//!   failure reproduces with `Rng::new(seed)`.
//!
//! The randomized suites that use this crate are feature-gated behind
//! each crate's `proptest` feature (the name kept from the library they
//! replace) and run in CI via
//! `cargo test --workspace --features <crate>/proptest`.

/// SplitMix64: a 64-bit splittable PRNG with strong mixing and a one-word
/// state. Every generator method is a thin shaping of [`Rng::next_u64`].
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeded generator; the same seed always yields the same sequence.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Uniform `i64` in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    /// Uniform `u64` in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform boolean.
    pub fn flag(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Pick one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.range(0, xs.len())]
    }

    /// A vector of `len` items drawn from `f`.
    pub fn vec<T>(&mut self, len: usize, mut f: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        (0..len).map(|_| f(self)).collect()
    }

    /// Pick one element of a non-empty slice, by value.
    ///
    /// ```
    /// let mut r = fgdsm_testkit::Rng::new(9);
    /// let v = r.choice(&[10, 20, 30]);
    /// assert!([10, 20, 30].contains(&v));
    /// ```
    pub fn choice<T: Clone>(&mut self, xs: &[T]) -> T {
        self.pick(xs).clone()
    }

    /// Fisher–Yates shuffle in place. The result is a uniform permutation
    /// of the input (for an ideal generator).
    ///
    /// ```
    /// let mut r = fgdsm_testkit::Rng::new(3);
    /// let mut xs: Vec<usize> = (0..8).collect();
    /// r.shuffle(&mut xs);
    /// xs.sort();
    /// assert_eq!(xs, (0..8).collect::<Vec<_>>());
    /// ```
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.range(0, i + 1);
            xs.swap(i, j);
        }
    }

    /// Weighted pick: returns index `i` with probability
    /// `weights[i] / Σ weights`. Zero-weight entries are never picked.
    /// Panics if the weights are empty or all zero.
    ///
    /// ```
    /// let mut r = fgdsm_testkit::Rng::new(5);
    /// for _ in 0..100 {
    ///     assert_eq!(r.weighted(&[0, 7, 0]), 1);
    /// }
    /// ```
    pub fn weighted(&mut self, weights: &[u64]) -> usize {
        let total: u64 = weights.iter().sum();
        assert!(total > 0, "weighted: empty or all-zero weights");
        let mut x = self.below(total);
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        unreachable!()
    }

    /// Weighted pick over `(weight, value)` pairs, by value.
    ///
    /// ```
    /// let mut r = fgdsm_testkit::Rng::new(11);
    /// let v = r.weighted_choice(&[(1, "a"), (3, "b")]);
    /// assert!(v == "a" || v == "b");
    /// ```
    pub fn weighted_choice<T: Clone>(&mut self, pairs: &[(u64, T)]) -> T {
        let weights: Vec<u64> = pairs.iter().map(|(w, _)| *w).collect();
        pairs[self.weighted(&weights)].1.clone()
    }
}

/// A host wall-clock stopwatch for the perf harnesses. All simulation
/// time in this workspace is *virtual* (charged per shard, deterministic);
/// this measures real elapsed host nanoseconds, which belong only in
/// perf reports — never in a `ClusterReport` or trace.
pub struct Stopwatch {
    start: std::time::Instant,
}

impl Stopwatch {
    /// Start timing now.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Stopwatch {
            start: std::time::Instant::now(),
        }
    }

    /// Elapsed host nanoseconds since construction (saturating).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Nearest-rank percentile of a sample set: the smallest sample such that
/// at least `pct`% of samples are ≤ it. Sorts a copy; `pct` in `(0, 100]`.
/// Panics on an empty sample set. Nearest-rank is monotone in `pct`, so
/// p10 ≤ p50 ≤ p90 always holds for the same samples.
pub fn percentile_ns(samples: &[u64], pct: f64) -> u64 {
    assert!(!samples.is_empty(), "percentile of no samples");
    assert!(pct > 0.0 && pct <= 100.0, "percentile {pct} out of range");
    let mut v = samples.to_vec();
    v.sort_unstable();
    let rank = (pct / 100.0 * v.len() as f64).ceil() as usize;
    v[rank.clamp(1, v.len()) - 1]
}

/// The (p10, median, p90) summary the perf harnesses report.
pub fn summarize_ns(samples: &[u64]) -> (u64, u64, u64) {
    (
        percentile_ns(samples, 10.0),
        percentile_ns(samples, 50.0),
        percentile_ns(samples, 90.0),
    )
}

/// Base seed shared by the workspace's suites: any fixed value works; this
/// one spells "fgdsm" in hex-ish leetspeak so greps find it.
pub const BASE_SEED: u64 = 0xF6D5_2025_0000_0001;

/// Run `prop` over `cases` independently seeded cases. Each case gets a
/// fresh [`Rng`]; on panic the harness re-raises with the case index and
/// seed in the message so the failure replays exactly.
pub fn check_cases(cases: u64, prop: impl Fn(&mut Rng)) {
    for case in 0..cases {
        let seed = BASE_SEED ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = Rng::new(seed);
            prop(&mut rng);
        }));
        if let Err(e) = result {
            let msg = e
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic".into());
            panic!("property failed at case {case} (seed {seed:#x}): {msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequences() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let v = r.range(3, 17);
            assert!((3..17).contains(&v));
            let w = r.range_i64(-5, 5);
            assert!((-5..5).contains(&w));
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn distribution_is_not_degenerate() {
        let mut r = Rng::new(1);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[r.range(0, 8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a = Rng::new(99);
        let mut b = Rng::new(99);
        let mut xs: Vec<u32> = (0..32).collect();
        let mut ys = xs.clone();
        a.shuffle(&mut xs);
        b.shuffle(&mut ys);
        assert_eq!(xs, ys, "same seed, same permutation");
        let mut sorted = xs.clone();
        sorted.sort();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        // 32! >> 2^64 states, but any fixed seed must actually move things.
        assert_ne!(xs, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_respects_zero_weights() {
        let mut r = Rng::new(123);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[r.weighted(&[2, 0, 1, 1])] += 1;
        }
        assert_eq!(counts[1], 0, "zero weight never picked");
        assert!(counts[0] > counts[2], "weight 2 beats weight 1: {counts:?}");
        assert!(counts[2] > 0 && counts[3] > 0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let s = [50, 10, 40, 20, 30];
        assert_eq!(percentile_ns(&s, 10.0), 10);
        assert_eq!(percentile_ns(&s, 50.0), 30);
        assert_eq!(percentile_ns(&s, 90.0), 50);
        assert_eq!(percentile_ns(&s, 100.0), 50);
        assert_eq!(summarize_ns(&[7]), (7, 7, 7));
        let (p10, med, p90) = summarize_ns(&[3, 1]);
        assert!(p10 <= med && med <= p90);
        assert_eq!((p10, med, p90), (1, 1, 3));
    }

    #[test]
    fn stopwatch_advances() {
        let sw = Stopwatch::new();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
    }

    #[test]
    fn check_cases_reports_seed() {
        let err = std::panic::catch_unwind(|| {
            check_cases(4, |rng| {
                // Fail deterministically on every case.
                let v = rng.below(1_000_000);
                assert!(v == u64::MAX, "forced failure {v}");
            });
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("case 0"), "got: {msg}");
        assert!(msg.contains("seed"), "got: {msg}");
    }
}
