//! End-to-end executor tests: a small Jacobi-style program run under every
//! backend must produce identical data, and the optimized executor must
//! show the paper's qualitative effects (fewer misses, fewer messages with
//! bulk transfer, fewer calls with run-time overhead elimination).

use fgdsm_hpf::{
    analysis, execute, ARef, CompDist, Dist, ExecConfig, Kernel, KernelCtx, OptLevel, ParLoop,
    Program, ReduceSpec, Stmt, Subscript,
};
use fgdsm_section::{SymRange, Var};
use fgdsm_tempest::ReduceOp;

// Array ids by declaration order (kernels are plain fn pointers).
const A: fgdsm_hpf::ArrayId = fgdsm_hpf::ArrayId(0);
const B: fgdsm_hpf::ArrayId = fgdsm_hpf::ArrayId(1);

const N: usize = 512; // rows (32 blocks per column at 128-byte blocks)
const M: usize = 48; // columns (distributed)
const ITERS: i64 = 30;

fn init_kernel(ctx: &mut KernelCtx) {
    let a = ctx.h(A);
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            ctx.mem[a.at2(i, j)] = (i * 31 + j * 7) as f64 * 0.125;
        }
    }
}

fn sweep_kernel(ctx: &mut KernelCtx) {
    let a = ctx.h(A);
    let b = ctx.h(B);
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            let v = 0.25
                * (ctx.mem[a.at2(i - 1, j)]
                    + ctx.mem[a.at2(i + 1, j)]
                    + ctx.mem[a.at2(i, j - 1)]
                    + ctx.mem[a.at2(i, j + 1)]);
            ctx.mem[b.at2(i, j)] = v;
        }
    }
}

fn copy_kernel(ctx: &mut KernelCtx) {
    let a = ctx.h(A);
    let b = ctx.h(B);
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            ctx.mem[a.at2(i, j)] = ctx.mem[b.at2(i, j)];
        }
    }
}

fn sum_kernel(ctx: &mut KernelCtx) {
    let a = ctx.h(A);
    let mut acc = 0.0;
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            acc += ctx.mem[a.at2(i, j)];
        }
    }
    ctx.partial = acc;
}

fn jacobi_program() -> Program {
    let t = Var("t");
    let mut b = Program::builder();
    let a = b.array("a", &[N, M], Dist::Block);
    let bb = b.array("b", &[N, M], Dist::Block);
    assert_eq!(a, A);
    assert_eq!(bb, B);
    b.scalar("sum", 0.0);
    b.stmt(Stmt::Par(ParLoop {
        name: "init",
        iter: vec![
            SymRange::new(0, N as i64 - 1),
            SymRange::new(0, M as i64 - 1),
        ],
        dist: CompDist::Owner(a),
        refs: vec![ARef::write(
            a,
            vec![Subscript::loop_var(0), Subscript::loop_var(1)],
        )],
        kernel: Kernel::new(init_kernel),
        cost_per_iter_ns: 50,
        reduction: None,
    }));
    let sweep = Stmt::Par(ParLoop {
        name: "sweep",
        iter: vec![
            SymRange::new(1, N as i64 - 2),
            SymRange::new(1, M as i64 - 2),
        ],
        dist: CompDist::Owner(bb),
        refs: vec![
            ARef::read(a, vec![Subscript::Loop(0, -1), Subscript::loop_var(1)]),
            ARef::read(a, vec![Subscript::Loop(0, 1), Subscript::loop_var(1)]),
            ARef::read(a, vec![Subscript::loop_var(0), Subscript::Loop(1, -1)]),
            ARef::read(a, vec![Subscript::loop_var(0), Subscript::Loop(1, 1)]),
            ARef::write(bb, vec![Subscript::loop_var(0), Subscript::loop_var(1)]),
        ],
        kernel: Kernel::new(sweep_kernel),
        cost_per_iter_ns: 400,
        reduction: None,
    });
    let copy = Stmt::Par(ParLoop {
        name: "copy",
        iter: vec![
            SymRange::new(1, N as i64 - 2),
            SymRange::new(1, M as i64 - 2),
        ],
        dist: CompDist::Owner(a),
        refs: vec![
            ARef::read(bb, vec![Subscript::loop_var(0), Subscript::loop_var(1)]),
            ARef::write(a, vec![Subscript::loop_var(0), Subscript::loop_var(1)]),
        ],
        kernel: Kernel::new(copy_kernel),
        cost_per_iter_ns: 80,
        reduction: None,
    });
    b.stmt(Stmt::Time {
        var: t,
        count: ITERS,
        body: vec![sweep, copy],
    });
    b.stmt(Stmt::Par(ParLoop {
        name: "sum",
        iter: vec![
            SymRange::new(0, N as i64 - 1),
            SymRange::new(0, M as i64 - 1),
        ],
        dist: CompDist::Owner(a),
        refs: vec![ARef::read(
            a,
            vec![Subscript::loop_var(0), Subscript::loop_var(1)],
        )],
        kernel: Kernel::new(sum_kernel),
        cost_per_iter_ns: 30,
        reduction: Some(ReduceSpec {
            op: ReduceOp::Sum,
            target: "sum",
        }),
    }));
    b.build()
}

/// Sequential reference computed with plain Rust arrays.
fn reference() -> (Vec<f64>, f64) {
    let mut a = vec![0.0f64; N * M];
    let mut b = vec![0.0f64; N * M];
    let at = |i: usize, j: usize| i + j * N;
    for j in 0..M {
        for i in 0..N {
            a[at(i, j)] = (i * 31 + j * 7) as f64 * 0.125;
        }
    }
    for _ in 0..ITERS {
        for j in 1..M - 1 {
            for i in 1..N - 1 {
                b[at(i, j)] =
                    0.25 * (a[at(i - 1, j)] + a[at(i + 1, j)] + a[at(i, j - 1)] + a[at(i, j + 1)]);
            }
        }
        for j in 1..M - 1 {
            for i in 1..N - 1 {
                a[at(i, j)] = b[at(i, j)];
            }
        }
    }
    let sum = a.iter().sum();
    (a, sum)
}

fn assert_matches_reference(r: &fgdsm_hpf::RunResult, prog: &Program, label: &str) {
    let (aref, sum) = reference();
    let got = r.array(prog, A);
    assert_eq!(got.len(), aref.len());
    for (i, (g, e)) in got.iter().zip(&aref).enumerate() {
        assert!((g - e).abs() < 1e-12, "{label}: a[{i}] = {g}, expected {e}");
    }
    let gs = r.scalars["sum"];
    assert!(
        (gs - sum).abs() / sum.abs().max(1.0) < 1e-9,
        "{label}: sum {gs} vs {sum}"
    );
}

#[test]
fn unopt_matches_sequential_reference() {
    let prog = jacobi_program();
    let r = execute(&prog, &ExecConfig::sm_unopt(4));
    assert_matches_reference(&r, &prog, "sm-unopt");
}

#[test]
fn opt_matches_sequential_reference() {
    let prog = jacobi_program();
    for (name, opt) in [
        ("base", OptLevel::base()),
        ("base+bulk", OptLevel::base_bulk()),
        ("full", OptLevel::full()),
        ("full+pre", OptLevel::full_pre()),
    ] {
        let r = execute(&prog, &ExecConfig::sm_opt(4).with_opt(opt));
        assert_matches_reference(&r, &prog, name);
    }
}

#[test]
fn mp_matches_sequential_reference() {
    let prog = jacobi_program();
    let r = execute(&prog, &ExecConfig::mp(4));
    assert_matches_reference(&r, &prog, "mp");
}

#[test]
fn uniprocessor_matches_reference() {
    let prog = jacobi_program();
    let r = execute(&prog, &ExecConfig::sm_unopt(1));
    assert_matches_reference(&r, &prog, "uni");
    // No communication on one node.
    assert_eq!(r.report.nodes[0].read_misses, 0);
}

#[test]
fn optimization_removes_most_misses() {
    let prog = jacobi_program();
    let unopt = execute(&prog, &ExecConfig::sm_unopt(4));
    let opt = execute(&prog, &ExecConfig::sm_opt(4));
    let mu = unopt.report.avg_misses();
    let mo = opt.report.avg_misses();
    assert!(
        mo < mu * 0.5,
        "opt misses {mo} should be well under half of unopt {mu}"
    );
    // And execution is faster.
    assert!(opt.total_s() < unopt.total_s());
    // The compiler actually pushed blocks.
    assert!(opt.ctl.blocks_pushed > 0);
    assert!(opt.ctl.send_range > 0);
}

#[test]
fn bulk_reduces_messages() {
    let prog = jacobi_program();
    let base = execute(&prog, &ExecConfig::sm_opt(4).with_opt(OptLevel::base()));
    let bulk = execute(
        &prog,
        &ExecConfig::sm_opt(4).with_opt(OptLevel::base_bulk()),
    );
    assert!(bulk.report.total_msgs() < base.report.total_msgs());
    assert!(bulk.total_s() <= base.total_s());
}

#[test]
fn rtoe_eliminates_calls_and_barriers() {
    let prog = jacobi_program();
    let nb = execute(
        &prog,
        &ExecConfig::sm_opt(4).with_opt(OptLevel::base_bulk()),
    );
    let full = execute(&prog, &ExecConfig::sm_opt(4).with_opt(OptLevel::full()));
    assert_eq!(full.ctl.mk_writable, 0, "rtoe drops mk_writable");
    assert_eq!(full.ctl.implicit_invalidate, 0, "rtoe drops invalidates");
    assert!(nb.ctl.mk_writable > 0);
    assert!(nb.ctl.implicit_invalidate > 0);
    assert!(full.total_s() < nb.total_s());
}

#[test]
fn pre_skips_redundant_transfers() {
    // The "sum" loop re-reads `a`… but jacobi writes `a` every iteration,
    // so build a program with two consecutive reads of the same ghost
    // data: run the sweep twice without the copy in between would change
    // semantics; instead re-run the full program and check PRE counters
    // exist but stay consistent.
    let prog = jacobi_program();
    let r = execute(&prog, &ExecConfig::sm_opt(4).with_opt(OptLevel::full_pre()));
    // a is rewritten between sweeps: most transfers must still happen.
    assert!(r.pre_performed > 0);
    assert_matches_reference(&r, &prog, "pre-correctness");
}

#[test]
fn single_cpu_slower_than_dual() {
    let prog = jacobi_program();
    let dual = execute(&prog, &ExecConfig::sm_unopt(4));
    let single = execute(&prog, &ExecConfig::sm_unopt(4).single_cpu());
    assert!(single.report.comm_s() > dual.report.comm_s());
    assert!(single.total_s() > dual.total_s());
    // Same misses either way — only service costs differ.
    assert_eq!(single.report.avg_misses(), dual.report.avg_misses());
}

#[test]
fn deterministic_repeat_runs() {
    let prog = jacobi_program();
    let r1 = execute(&prog, &ExecConfig::sm_opt(4));
    let r2 = execute(&prog, &ExecConfig::sm_opt(4));
    assert_eq!(r1.report.makespan_ns, r2.report.makespan_ns);
    assert_eq!(r1.report.avg_misses(), r2.report.avg_misses());
    assert_eq!(r1.data, r2.data);
}

#[test]
fn analysis_transfer_volume_matches_ghosts() {
    let prog = jacobi_program();
    let loops = prog.par_loops();
    let sweep = loops.iter().find(|l| l.name == "sweep").unwrap();
    let acc = analysis::analyze(&prog, sweep, &fgdsm_section::Env::new(), 4);
    // Interior nodes exchange one ghost column in each direction.
    let vols: Vec<u64> = (0..4)
        .map(|p| {
            acc.read_transfers
                .iter()
                .filter(|t| t.user == p)
                .map(|t| t.section.count())
                .sum()
        })
        .collect();
    // Edge nodes read one ghost column (N-2 rows), interior two.
    assert_eq!(vols[0], (N - 2) as u64);
    assert_eq!(vols[1], 2 * (N - 2) as u64);
    assert_eq!(vols[2], 2 * (N - 2) as u64);
    assert_eq!(vols[3], (N - 2) as u64);
}

#[test]
fn speedup_over_uniprocessor() {
    let prog = jacobi_program();
    let uni = execute(&prog, &ExecConfig::sm_unopt(1));
    let par = execute(&prog, &ExecConfig::sm_opt(4));
    let speedup = uni.total_s() / par.total_s();
    assert!(
        speedup > 1.2,
        "4-node optimized run should show real speedup, got {speedup:.2} \
         (uni: compute {:.4}s comm {:.4}s total {:.4}s; par: compute {:.4}s comm {:.4}s total {:.4}s, \
         misses {:.0}, node0 stall {:.4}s barrier {:.4}s ctl {:.4}s)",
        uni.report.compute_s(),
        uni.report.comm_s(),
        uni.total_s(),
        par.report.compute_s(),
        par.report.comm_s(),
        par.total_s(),
        par.report.avg_misses(),
        par.report.nodes[0].stall_ns as f64 / 1e9,
        par.report.nodes[0].barrier_ns as f64 / 1e9,
        par.report.nodes[0].ctl_call_ns as f64 / 1e9,
    );
}
