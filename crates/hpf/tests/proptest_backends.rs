//! Generative cross-backend equivalence: random stencil programs
//! (random extents, distribution, stencil offsets up to ±2, coefficient
//! sets, iteration counts, node counts) must produce bit-identical data
//! under the unoptimized DSM, every optimization level, and the
//! message-passing backend — and match a direct sequential evaluation.
//!
//! This is the strongest correctness net in the repository: wide stencils
//! exercise the multiple-writer/reader false-sharing paths, CYCLIC
//! distributions exercise strided sections, and random sizes exercise
//! `shmem_limits` boundary handling at every alignment.
//!
//! Gated behind the `proptest` feature so the default tier-1 test run stays
//! fast: `cargo test -p fgdsm-hpf --features proptest`.
#![cfg(feature = "proptest")]

use fgdsm_hpf::{
    execute, ARef, ArrayId, CompDist, Dist, ExecConfig, Kernel, KernelCtx, OptLevel, ParLoop,
    Program, Stmt, Subscript,
};
use fgdsm_section::{SymRange, Var};
use fgdsm_testkit::{check_cases, Rng};

const A: ArrayId = ArrayId(0);
const B: ArrayId = ArrayId(1);

/// Up to 5 stencil terms, spec passed through replicated scalars (kernels
/// are plain fn pointers and cannot capture).
const MAX_TERMS: usize = 5;
const DI: [&str; MAX_TERMS] = ["st_di0", "st_di1", "st_di2", "st_di3", "st_di4"];
const DJ: [&str; MAX_TERMS] = ["st_dj0", "st_dj1", "st_dj2", "st_dj3", "st_dj4"];
const CO: [&str; MAX_TERMS] = ["st_c0", "st_c1", "st_c2", "st_c3", "st_c4"];

fn init_kernel(ctx: &mut KernelCtx) {
    let a = ctx.h(A);
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            ctx.mem[a.at2(i, j)] = ((i * 37 + j * 11) % 64) as f64 * 0.03125 - 1.0;
        }
    }
}

fn stencil_kernel(ctx: &mut KernelCtx) {
    let a = ctx.h(A);
    let b = ctx.h(B);
    let n = ctx.scalar("st_n") as usize;
    let mut terms = [(0i64, 0i64, 0.0f64); MAX_TERMS];
    for (k, t) in terms.iter_mut().enumerate().take(n) {
        *t = (
            ctx.scalar(DI[k]) as i64,
            ctx.scalar(DJ[k]) as i64,
            ctx.scalar(CO[k]),
        );
    }
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            let mut acc = 0.0;
            for &(di, dj, c) in &terms[..n] {
                acc += c * ctx.mem[a.at2(i + di, j + dj)];
            }
            ctx.mem[b.at2(i, j)] = acc;
        }
    }
}

fn copy_kernel(ctx: &mut KernelCtx) {
    let a = ctx.h(A);
    let b = ctx.h(B);
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            ctx.mem[a.at2(i, j)] = ctx.mem[b.at2(i, j)];
        }
    }
}

#[derive(Debug, Clone)]
struct Spec {
    n: usize,
    m: usize,
    iters: i64,
    dist: Dist,
    nprocs: usize,
    terms: Vec<(i64, i64, f64)>,
    block_bytes: usize,
}

fn random_spec(rng: &mut Rng) -> Spec {
    let n_terms = rng.range(1, MAX_TERMS + 1);
    Spec {
        n: rng.range(17, 64),
        m: rng.range(9, 40),
        iters: rng.range_i64(1, 4),
        dist: *rng.pick(&[Dist::Block, Dist::Cyclic]),
        nprocs: rng.range(1, 8),
        terms: rng.vec(n_terms, |r| {
            (
                r.range_i64(-2, 3),
                r.range_i64(-2, 3),
                r.range_i64(-4, 5) as f64 * 0.25,
            )
        }),
        block_bytes: *rng.pick(&[32usize, 64, 128]),
    }
}

fn build(spec: &Spec) -> Program {
    let t = Var("t");
    let (n, m) = (spec.n as i64, spec.m as i64);
    let mut b = Program::builder();
    let a = b.array("a", &[spec.n, spec.m], spec.dist);
    let bb = b.array("b", &[spec.n, spec.m], spec.dist);
    assert_eq!((a, bb), (A, B));
    b.scalar("st_n", spec.terms.len() as f64);
    for (k, &(di, dj, c)) in spec.terms.iter().enumerate() {
        b.scalar(DI[k], di as f64)
            .scalar(DJ[k], dj as f64)
            .scalar(CO[k], c);
    }
    let here = vec![Subscript::loop_var(0), Subscript::loop_var(1)];
    b.stmt(Stmt::Par(ParLoop {
        name: "init",
        iter: vec![SymRange::new(0, n - 1), SymRange::new(0, m - 1)],
        dist: CompDist::Owner(a),
        refs: vec![ARef::write(a, here.clone())],
        kernel: Kernel::new(init_kernel),
        cost_per_iter_ns: 10,
        reduction: None,
    }));
    // Interior margin 2 keeps every ±2 offset in bounds.
    let mut refs = vec![ARef::write(bb, here.clone())];
    for &(di, dj, _) in &spec.terms {
        refs.push(ARef::read(
            a,
            vec![Subscript::Loop(0, di), Subscript::Loop(1, dj)],
        ));
    }
    b.stmt(Stmt::Time {
        var: t,
        count: spec.iters,
        body: vec![
            Stmt::Par(ParLoop {
                name: "stencil",
                iter: vec![SymRange::new(2, n - 3), SymRange::new(2, m - 3)],
                dist: CompDist::Owner(bb),
                refs,
                kernel: Kernel::new(stencil_kernel),
                cost_per_iter_ns: 50,
                reduction: None,
            }),
            Stmt::Par(ParLoop {
                name: "copy",
                iter: vec![SymRange::new(2, n - 3), SymRange::new(2, m - 3)],
                dist: CompDist::Owner(a),
                refs: vec![ARef::read(bb, here.clone()), ARef::write(a, here.clone())],
                kernel: Kernel::new(copy_kernel),
                cost_per_iter_ns: 10,
                reduction: None,
            }),
        ],
    });
    b.build()
}

fn reference(spec: &Spec) -> Vec<f64> {
    let (n, m) = (spec.n, spec.m);
    let at = |i: i64, j: i64| i as usize + j as usize * n;
    let mut a = vec![0.0f64; n * m];
    let mut b = vec![0.0f64; n * m];
    for j in 0..m {
        for i in 0..n {
            a[i + j * n] = ((i * 37 + j * 11) % 64) as f64 * 0.03125 - 1.0;
        }
    }
    for _ in 0..spec.iters {
        for j in 2..m as i64 - 2 {
            for i in 2..n as i64 - 2 {
                let mut acc = 0.0;
                for &(di, dj, c) in &spec.terms {
                    acc += c * a[at(i + di, j + dj)];
                }
                b[at(i, j)] = acc;
            }
        }
        for j in 2..m as i64 - 2 {
            for i in 2..n as i64 - 2 {
                a[at(i, j)] = b[at(i, j)];
            }
        }
    }
    a
}

#[test]
fn all_backends_agree_on_random_stencils() {
    check_cases(48, |rng| {
        let spec = random_spec(rng);
        let prog = build(&spec);
        let expect = reference(&spec);
        let configs: Vec<(&str, ExecConfig)> = vec![
            ("unopt", ExecConfig::sm_unopt(spec.nprocs)),
            ("unopt-1cpu", ExecConfig::sm_unopt(spec.nprocs).single_cpu()),
            (
                "base",
                ExecConfig::sm_opt(spec.nprocs).with_opt(OptLevel::base()),
            ),
            ("full", ExecConfig::sm_opt(spec.nprocs)),
            (
                "pre",
                ExecConfig::sm_opt(spec.nprocs).with_opt(OptLevel::full_pre()),
            ),
            ("mp", ExecConfig::mp(spec.nprocs)),
        ];
        for (name, mut cfg) in configs {
            cfg.cost.block_bytes = spec.block_bytes;
            let r = execute(&prog, &cfg);
            let got = r.array(&prog, A);
            for (idx, (g, e)) in got.iter().zip(&expect).enumerate() {
                assert!(
                    g.to_bits() == e.to_bits(),
                    "{name} {spec:?}: element {idx}: {g} != {e}"
                );
            }
        }
    });
}

/// Access-set soundness: for every node, the resolved read section is
/// exactly the disjoint union of its owned part and its incoming
/// transfers — nothing is lost, nothing is double-counted.
#[test]
fn non_owner_sets_partition_read_sections() {
    check_cases(64, |rng| {
        let spec = random_spec(rng);
        let prog = build(&spec);
        let loops = prog.par_loops();
        let sweep = loops.iter().find(|l| l.name == "stencil").unwrap();
        let env = fgdsm_section::Env::new();
        let acc = fgdsm_hpf::analysis::analyze(&prog, sweep, &env, spec.nprocs);
        let decl = prog.array(A);
        for p in 0..spec.nprocs {
            // Union of this node's read sections of `a` (by elements).
            let mut read_elems = std::collections::HashSet::new();
            for (ri, r) in sweep.refs.iter().enumerate() {
                if r.array == A && r.mode == fgdsm_hpf::RefMode::Read {
                    for pt in acc.sections[p][ri].points() {
                        read_elems.insert(pt);
                    }
                }
            }
            let owned = decl.owner_section(p, spec.nprocs);
            let owned_part: std::collections::HashSet<_> = read_elems
                .iter()
                .filter(|pt| owned.contains(pt))
                .cloned()
                .collect();
            // Transfers from *different* stencil references may overlap
            // (they are coalesced at block level by the executor); the
            // union, not disjointness, is the invariant.
            let mut transferred = std::collections::HashSet::new();
            for t in acc
                .read_transfers
                .iter()
                .filter(|t| t.user == p && t.array == A.0)
            {
                for pt in t.section.points() {
                    assert!(!owned.contains(&pt), "owned element transferred");
                    assert!(
                        decl.owner_of(pt[1], spec.nprocs) == t.owner,
                        "transfer attributed to the wrong owner"
                    );
                    transferred.insert(pt);
                }
            }
            // owned ∪ transferred == read set.
            let mut covered = owned_part;
            covered.extend(transferred);
            assert_eq!(covered, read_elems);
        }
    });
}
