//! Property tests for the owner relation: BLOCK and CYCLIC owner ranges
//! must exactly partition the distributed dimension and agree with
//! `owner_of`, for every processor count.

use fgdsm_hpf::{ArrayDecl, Dist};
use proptest::prelude::*;

fn decl(dist: Dist, n: usize) -> ArrayDecl {
    ArrayDecl {
        name: "a",
        extents: vec![4, n],
        dist,
    }
}

proptest! {
    #[test]
    fn owner_ranges_partition_block(n in 1usize..200, nprocs in 1usize..17) {
        let a = decl(Dist::Block, n);
        let mut seen = vec![false; n];
        for p in 0..nprocs {
            for j in a.owner_range(p, nprocs).iter() {
                prop_assert!(!seen[j as usize], "column {} owned twice", j);
                seen[j as usize] = true;
                prop_assert_eq!(a.owner_of(j, nprocs), p);
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "every column must be owned");
    }

    #[test]
    fn owner_ranges_partition_cyclic(n in 1usize..200, nprocs in 1usize..17) {
        let a = decl(Dist::Cyclic, n);
        let mut seen = vec![false; n];
        for p in 0..nprocs {
            for j in a.owner_range(p, nprocs).iter() {
                prop_assert!(!seen[j as usize]);
                seen[j as usize] = true;
                prop_assert_eq!(a.owner_of(j, nprocs), p);
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn owner_sections_are_disjoint_and_complete(
        n in 1usize..100,
        nprocs in 1usize..9,
        dist in prop_oneof![Just(Dist::Block), Just(Dist::Cyclic)],
    ) {
        let a = decl(dist, n);
        let total: u64 = (0..nprocs)
            .map(|p| a.owner_section(p, nprocs).count())
            .sum();
        prop_assert_eq!(total, (4 * n) as u64);
        for p in 0..nprocs {
            for q in p + 1..nprocs {
                let sp = a.owner_section(p, nprocs);
                let sq = a.owner_section(q, nprocs);
                prop_assert!(
                    sp.intersect(&sq).iter().all(|s| s.is_empty()),
                    "owner sections of {} and {} overlap", p, q
                );
            }
        }
    }
}
