//! Property tests for the owner relation: BLOCK and CYCLIC owner ranges
//! must exactly partition the distributed dimension and agree with
//! `owner_of`, for every processor count.
//!
//! Gated behind the `proptest` feature so the default tier-1 test run stays
//! fast: `cargo test -p fgdsm-hpf --features proptest`.
#![cfg(feature = "proptest")]

use fgdsm_hpf::{ArrayDecl, Dist};
use fgdsm_testkit::{check_cases, Rng};

fn decl(dist: Dist, n: usize) -> ArrayDecl {
    ArrayDecl {
        name: "a",
        extents: vec![4, n],
        dist,
    }
}

fn check_partition(dist: Dist, n: usize, nprocs: usize) {
    let a = decl(dist, n);
    let mut seen = vec![false; n];
    for p in 0..nprocs {
        for j in a.owner_range(p, nprocs).iter() {
            assert!(!seen[j as usize], "column {j} owned twice");
            seen[j as usize] = true;
            assert_eq!(a.owner_of(j, nprocs), p);
        }
    }
    assert!(seen.iter().all(|&s| s), "every column must be owned");
}

#[test]
fn owner_ranges_partition_block() {
    check_cases(128, |rng| {
        check_partition(Dist::Block, rng.range(1, 200), rng.range(1, 17));
    });
}

#[test]
fn owner_ranges_partition_cyclic() {
    check_cases(128, |rng| {
        check_partition(Dist::Cyclic, rng.range(1, 200), rng.range(1, 17));
    });
}

#[test]
fn owner_sections_are_disjoint_and_complete() {
    check_cases(128, |rng| {
        let n = rng.range(1, 100);
        let nprocs = rng.range(1, 9);
        let dist = *rng.pick(&[Dist::Block, Dist::Cyclic]);
        let a = decl(dist, n);
        let total: u64 = (0..nprocs)
            .map(|p| a.owner_section(p, nprocs).count())
            .sum();
        assert_eq!(total, (4 * n) as u64);
        for p in 0..nprocs {
            for q in p + 1..nprocs {
                let sp = a.owner_section(p, nprocs);
                let sq = a.owner_section(q, nprocs);
                assert!(
                    sp.intersect(&sq).iter().all(|s| s.is_empty()),
                    "owner sections of {p} and {q} overlap"
                );
            }
        }
    });
}
