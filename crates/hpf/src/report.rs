//! Compiler diagnostics: a human-readable report of what the analysis
//! found and what the planner decided, per parallel loop — the analogue
//! of `pghpf -Minfo` output, and the fastest way to understand why a
//! given loop did or did not get compiler-orchestrated communication.

use crate::analysis::{self};
use crate::dist::Dist;
use crate::ir::{CompDist, ParLoop, Program, RefMode};
use crate::plan::{shmem_limits, ArrayMeta, CtlRanges};
use fgdsm_section::Env;
use std::fmt::Write;

/// Per-loop analysis summary.
#[derive(Clone, Debug)]
pub struct LoopReport {
    pub loop_name: &'static str,
    /// (array name, owner, user, elements, ctl blocks, boundary words,
    /// indirect?) per read transfer.
    pub transfers: Vec<TransferReport>,
    /// Total elements communicated.
    pub total_elements: u64,
    /// Total blocks eligible for compiler control.
    pub ctl_blocks: usize,
    /// Total boundary words left to the default protocol.
    pub boundary_words: usize,
    /// Read transfers excluded because of indirect subscripts.
    pub indirect_transfers: usize,
}

/// One analyzed transfer.
#[derive(Clone, Debug)]
pub struct TransferReport {
    pub array: &'static str,
    pub owner: usize,
    pub user: usize,
    pub section: String,
    pub elements: u64,
    pub ctl_blocks: usize,
    pub boundary_words: usize,
    pub indirect: bool,
}

/// Analyze every parallel loop of `prog` under `env` and summarize the
/// communication the compiler would orchestrate on `nprocs` nodes with
/// `words_per_block`-word cache blocks.
pub fn analyze_program(
    prog: &Program,
    env: &Env,
    nprocs: usize,
    words_per_block: usize,
) -> Vec<LoopReport> {
    // Reconstruct array placements the same way the executor does.
    let mut metas = Vec::with_capacity(prog.arrays.len());
    let mut layout = fgdsm_tempest::SegmentLayout::new(512);
    for (i, a) in prog.arrays.iter().enumerate() {
        let base = layout.alloc(a.len());
        metas.push(ArrayMeta {
            id: crate::dist::ArrayId(i),
            base,
            layout: a.layout(),
        });
    }
    prog.par_loops()
        .into_iter()
        .map(|l| analyze_loop(prog, l, env, nprocs, words_per_block, &metas))
        .collect()
}

fn analyze_loop(
    prog: &Program,
    l: &ParLoop,
    env: &Env,
    nprocs: usize,
    wpb: usize,
    metas: &[ArrayMeta],
) -> LoopReport {
    let acc = analysis::analyze(prog, l, env, nprocs);
    let mut transfers = Vec::new();
    let mut total_elements = 0;
    let mut ctl_blocks = 0;
    let mut boundary_words = 0;
    let mut indirect_transfers = 0;
    for t in &acc.read_transfers {
        let cr: CtlRanges = if t.indirect {
            indirect_transfers += 1;
            CtlRanges::default()
        } else if let Some(runs) = metas[t.array].runs(&t.section) {
            shmem_limits(&runs, wpb)
        } else {
            CtlRanges::default()
        };
        total_elements += t.section.count();
        ctl_blocks += cr.ctl_blocks();
        boundary_words += cr.boundary_words();
        transfers.push(TransferReport {
            array: prog.arrays[t.array].name,
            owner: t.owner,
            user: t.user,
            section: format!("{}", t.section),
            elements: t.section.count(),
            ctl_blocks: cr.ctl_blocks(),
            boundary_words: cr.boundary_words(),
            indirect: t.indirect,
        });
    }
    LoopReport {
        loop_name: l.name,
        transfers,
        total_elements,
        ctl_blocks,
        boundary_words,
        indirect_transfers,
    }
}

/// Render the reports as `-Minfo`-style text.
pub fn render(prog: &Program, reports: &[LoopReport], nprocs: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "communication report, {nprocs} nodes");
    for (i, a) in prog.arrays.iter().enumerate() {
        let _ = writeln!(
            out,
            "  array {:<10} {:>10} elements, {}",
            a.name,
            a.len(),
            match a.dist {
                Dist::Block => "BLOCK distributed (last dim)",
                Dist::Cyclic => "CYCLIC distributed (last dim)",
                Dist::Replicated => "replicated",
            }
        );
        let _ = i;
    }
    for r in reports {
        let _ = writeln!(out, "loop `{}`:", r.loop_name);
        if r.transfers.is_empty() {
            let _ = writeln!(out, "  no interprocessor communication");
            continue;
        }
        for t in &r.transfers {
            if t.indirect {
                let _ = writeln!(
                    out,
                    "  {}[indirect] {} -> {}: unanalyzable, default protocol",
                    t.array, t.owner, t.user
                );
            } else {
                let _ = writeln!(
                    out,
                    "  {}{} {} -> {}: {} elements, {} blocks under compiler control, {} boundary words",
                    t.array, t.section, t.owner, t.user, t.elements, t.ctl_blocks, t.boundary_words
                );
            }
        }
        let covered = r.ctl_blocks * 16;
        let _ = writeln!(
            out,
            "  summary: {} elements / {} blocks controlled (~{} words) / {} boundary words / {} indirect",
            r.total_elements, r.ctl_blocks, covered, r.boundary_words, r.indirect_transfers
        );
    }
    out
}

/// Does a loop's distribution pin it to one processor (ON HOME style)?
pub fn is_single_owner(l: &ParLoop) -> bool {
    matches!(l.dist, CompDist::OwnerOfIndex(..))
}

/// Count of loop references by mode (quick structural summary).
pub fn ref_counts(l: &ParLoop) -> (usize, usize) {
    let reads = l.refs.iter().filter(|r| r.mode == RefMode::Read).count();
    (reads, l.refs.len() - reads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Dist;
    use crate::ir::{ARef, Kernel, KernelCtx, ParLoop, Stmt, Subscript};
    use fgdsm_section::SymRange;

    fn nk(_: &mut KernelCtx) {}

    fn prog() -> Program {
        let mut b = Program::builder();
        let a = b.array("a", &[64, 32], Dist::Block);
        let bb = b.array("b", &[64, 32], Dist::Block);
        b.stmt(Stmt::Par(ParLoop {
            name: "sweep",
            iter: vec![SymRange::new(1, 62), SymRange::new(1, 30)],
            dist: CompDist::Owner(bb),
            refs: vec![
                ARef::read(a, vec![Subscript::loop_var(0), Subscript::Loop(1, -1)]),
                ARef::read(a, vec![Subscript::loop_var(0), Subscript::Loop(1, 1)]),
                ARef::write(bb, vec![Subscript::loop_var(0), Subscript::loop_var(1)]),
            ],
            kernel: Kernel::new(nk),
            cost_per_iter_ns: 100,
            reduction: None,
        }));
        b.build()
    }

    #[test]
    fn report_finds_ghost_transfers() {
        let p = prog();
        let reports = analyze_program(&p, &Env::new(), 4, 16);
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.loop_name, "sweep");
        // Interior nodes exchange ghost columns with both neighbors.
        assert!(!r.transfers.is_empty());
        assert!(r.total_elements > 0);
        assert!(r.ctl_blocks > 0);
        assert!(r.boundary_words > 0); // 62-row ghosts are not block-aligned
        assert_eq!(r.indirect_transfers, 0);
    }

    #[test]
    fn render_produces_readable_text() {
        let p = prog();
        let reports = analyze_program(&p, &Env::new(), 4, 16);
        let text = render(&p, &reports, 4);
        assert!(text.contains("loop `sweep`"));
        assert!(text.contains("BLOCK distributed"));
        assert!(text.contains("blocks under compiler control"));
    }

    #[test]
    fn ref_counts_and_single_owner() {
        let p = prog();
        let l = p.par_loops()[0];
        assert_eq!(ref_counts(l), (2, 1));
        assert!(!is_single_owner(l));
    }
}
