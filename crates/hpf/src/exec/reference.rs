//! The sequential reference interpreter: ground truth for the
//! differential-testing oracle.
//!
//! Runs a mini-HPF program against a single flat memory with no cluster,
//! no protocol and no cost model — just the language semantics. Every
//! loop is still partitioned with the same [`crate::analysis::analyze`]
//! the backends use and each node's kernel runs over exactly its own
//! iteration points, so owner-computes semantics (including replicated
//! reduction partials from idle nodes) are preserved bit-for-bit:
//!
//! * Arrays land at the same page-aligned word addresses as in the
//!   engine ([`super::engine::layout_arrays`] is shared), so kernels and
//!   [`ReferenceResult::array`] use the same absolute offsets.
//! * Reductions combine the per-node partials with the identical fold
//!   `Cluster::allreduce` / `MpRuntime::allreduce` apply, so floating-
//!   point results are byte-identical, not merely close.
//!
//! Because all nodes share one memory, a loop that read array elements
//! another node writes *in the same superstep* would see post-write
//! values where a DSM node sees pre-superstep values. Such programs are
//! outside the language contract (the BSP engine gives them no defined
//! meaning either) and the fuzz generator never emits them.

use super::engine::layout_arrays;
use super::ExecConfig;
use crate::analysis;
use crate::ir::{ArrayHandle, KernelCtx, ParLoop, Program, Stmt};
use crate::plan::ArrayMeta;
use fgdsm_section::{Env, Range};
use fgdsm_tempest::ReduceOp;
use std::collections::BTreeMap;

/// What the reference interpreter produces: final memory and scalars,
/// plus the array placement needed to extract per-array contents.
#[derive(Clone, Debug)]
pub struct ReferenceResult {
    /// Final contents of the whole (page-padded) segment.
    pub data: Vec<f64>,
    /// Final replicated scalar values.
    pub scalars: BTreeMap<&'static str, f64>,
    pub metas: Vec<ArrayMeta>,
}

impl ReferenceResult {
    /// Extract the final contents of one array (same shape as
    /// [`super::RunResult::array`]).
    pub fn array(&self, prog: &Program, id: crate::dist::ArrayId) -> Vec<f64> {
        let meta = &self.metas[id.0];
        let len = prog.array(id).len();
        self.data[meta.base..meta.base + len].to_vec()
    }
}

/// Execute `prog` sequentially. Only `cfg.nprocs`, `cfg.base_env` and the
/// cost model's page size (for array placement) are read; the backend,
/// protocol, parallelism and injection knobs are ignored.
pub fn execute_reference(prog: &Program, cfg: &ExecConfig) -> ReferenceResult {
    let (layout, metas, handles) = layout_arrays(prog, cfg);
    let mut data = vec![0.0f64; layout.total_words()];
    let mut env = cfg.base_env.clone();
    let mut scalars: BTreeMap<&'static str, f64> = prog.scalars.iter().copied().collect();
    run_stmts(
        prog,
        cfg,
        &handles,
        &mut data,
        &mut env,
        &mut scalars,
        &prog.body,
    );
    ReferenceResult {
        data,
        scalars,
        metas,
    }
}

fn run_stmts(
    prog: &Program,
    cfg: &ExecConfig,
    handles: &[ArrayHandle],
    data: &mut Vec<f64>,
    env: &mut Env,
    scalars: &mut BTreeMap<&'static str, f64>,
    stmts: &[Stmt],
) {
    for s in stmts {
        match s {
            Stmt::Par(l) => run_par(prog, cfg, handles, data, env, scalars, l),
            Stmt::Time { var, count, body } => {
                let saved = env.get(*var);
                for t in 0..*count {
                    env.set(*var, t);
                    run_stmts(prog, cfg, handles, data, env, scalars, body);
                }
                if let Some(v) = saved {
                    env.set(*var, v);
                }
            }
            Stmt::Scalar { name, f } => {
                let v = f(scalars);
                scalars.insert(name, v);
            }
        }
    }
}

fn run_par(
    prog: &Program,
    cfg: &ExecConfig,
    handles: &[ArrayHandle],
    data: &mut [f64],
    env: &Env,
    scalars: &mut BTreeMap<&'static str, f64>,
    l: &ParLoop,
) {
    let nprocs = cfg.nprocs;
    let acc = analysis::analyze(prog, l, env, nprocs);
    let mut partials = vec![0.0f64; nprocs];
    #[allow(clippy::needless_range_loop)] // p indexes acc.iters and partials alike
    for p in 0..nprocs {
        let iter = &acc.iters[p];
        if iter.iter().any(Range::is_empty) {
            continue;
        }
        let mut ctx = KernelCtx {
            mem: data,
            iter,
            env,
            scalars,
            partial: 0.0,
            node: p,
            nprocs,
            handles,
        };
        l.kernel.call(&mut ctx);
        partials[p] = ctx.partial;
    }
    if let Some(rs) = l.reduction {
        // The exact fold both cluster allreduces apply — including the
        // 0.0 partials of idle nodes — so floats match byte-for-byte.
        let v = match rs.op {
            ReduceOp::Sum => partials.iter().sum(),
            ReduceOp::Max => partials.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            ReduceOp::Min => partials.iter().copied().fold(f64::INFINITY, f64::min),
        };
        scalars.insert(rs.target, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Dist;
    use crate::exec::execute;
    use crate::ir::{ARef, Kernel, ReduceSpec, Subscript};
    use fgdsm_section::SymRange;

    const A: crate::dist::ArrayId = crate::dist::ArrayId(0);

    fn fill_and_sum() -> Program {
        let mut b = Program::builder();
        let a = b.array("a", &[32, 16], Dist::Block);
        b.scalar("total", 0.0);
        let here = vec![Subscript::loop_var(0), Subscript::loop_var(1)];
        b.stmt(Stmt::Par(ParLoop {
            name: "fill",
            iter: vec![SymRange::new(0, 31), SymRange::new(0, 15)],
            dist: crate::ir::CompDist::Owner(a),
            refs: vec![ARef::write(a, here.clone())],
            kernel: Kernel::new(move |ctx: &mut KernelCtx| {
                let h = ctx.h(A);
                for j in ctx.iter[1].iter() {
                    for i in ctx.iter[0].iter() {
                        let v = (i * 3 + j) as f64 * 0.25;
                        ctx.mem[h.at2(i, j)] = v;
                        ctx.partial += v;
                    }
                }
            }),
            cost_per_iter_ns: 10,
            reduction: Some(ReduceSpec {
                op: fgdsm_tempest::ReduceOp::Sum,
                target: "total",
            }),
        }));
        b.build()
    }

    #[test]
    fn reference_matches_backends_bit_for_bit() {
        let prog = fill_and_sum();
        let cfg = crate::exec::ExecConfig::sm_unopt(4);
        let reference = execute_reference(&prog, &cfg);
        for cfg in [
            crate::exec::ExecConfig::sm_unopt(4),
            crate::exec::ExecConfig::sm_opt(4),
            crate::exec::ExecConfig::mp(4),
        ] {
            let r = execute(&prog, &cfg);
            assert_eq!(reference.array(&prog, A), r.array(&prog, A));
            assert_eq!(
                reference.scalars["total"].to_bits(),
                r.scalars["total"].to_bits()
            );
        }
    }
}
