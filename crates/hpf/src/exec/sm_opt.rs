//! The optimized shared-memory backend: compiler-orchestrated incoherence
//! (§4.2) with optional bulk transfer, run-time overhead elimination
//! (§4.3) and partial-redundancy elimination of transfers.

use super::backend::CommBackend;
use super::engine::EngineCore;
use crate::analysis::LoopAccess;
use crate::ir::{ParLoop, RefMode};
use crate::plan::{shmem_limits, OptLevel};
use crate::redundancy::PreCache;
use std::collections::BTreeMap;

/// Per-loop access analysis finds the producer→consumer transfers,
/// `shmem_limits` shrinks them to whole blocks, and the §4.2 call
/// contract (`mk_writable` / barrier / `implicit_writable` / barrier /
/// `send` + `ready_to_recv` / loop / `implicit_invalidate` / barrier)
/// moves the data. Boundary blocks and cold misses still take the default
/// path ([`EngineCore::resolve_default`] runs after the contract).
pub struct SmOpt {
    opt: OptLevel,
    pre: PreCache,
    /// Non-owner-write flushes pending for the current loop's cleanup:
    /// (writer, owner, first, end, array).
    pending_flushes: Vec<(usize, usize, usize, usize, usize)>,
    /// Reader invalidations pending for the current loop's cleanup.
    pending_invalidate: Vec<(usize, usize, usize)>,
}

impl SmOpt {
    pub fn new(opt: OptLevel) -> Self {
        SmOpt {
            opt,
            pre: PreCache::new(),
            pending_flushes: Vec::new(),
            pending_invalidate: Vec::new(),
        }
    }

    /// Build the per-loop compiler-control schedule and execute the §4.2
    /// contract up to (and including) the data push.
    fn comm_ctl(&mut self, core: &mut EngineCore, acc: &LoopAccess) {
        let wpb = core.wpb;
        // Merged send entries: (owner, array, first, end) → readers.
        let mut sends: BTreeMap<(usize, usize, usize, usize), Vec<usize>> = BTreeMap::new();
        // Incoming ranges per node (for implicit_writable / invalidate).
        let mut incoming: BTreeMap<usize, Vec<(usize, usize, usize)>> = BTreeMap::new();
        // Non-owner-write flushes: (writer, owner, first, end, array).
        let mut flushes: Vec<(usize, usize, usize, usize, usize)> = Vec::new();

        let opt = self.opt;
        // Collect per (owner, array, user): the ctl ranges of every
        // transfer, then merge overlapping/adjacent ranges — two stencil
        // references to the same ghost column (e.g. `p(i,j-1)` and
        // `p(i-1,j-1)` in shallow's loop 100) produce almost-identical
        // sections that would otherwise be pushed twice.
        type UserKey = (usize, usize, usize, bool); // (owner, array, user, is_write)
        let mut per_user: BTreeMap<UserKey, Vec<(usize, usize)>> = BTreeMap::new();
        for (t, is_write) in acc
            .read_transfers
            .iter()
            .map(|t| (t, false))
            .chain(acc.write_transfers.iter().map(|t| (t, true)))
        {
            if t.indirect {
                continue; // statically unanalyzable: default protocol only
            }
            let Some(runs) = core.metas[t.array].runs(&t.section) else {
                continue; // unsupported shape: left entirely to the default protocol
            };
            let cr = shmem_limits(&runs, wpb);
            if !cr.ctl.is_empty() {
                per_user
                    .entry((t.owner, t.array, t.user, is_write))
                    .or_default()
                    .extend(cr.ctl.iter().copied());
            }
        }
        for ((owner, array, user, is_write), mut ranges) in per_user {
            ranges.sort_unstable();
            let mut merged: Vec<(usize, usize)> = Vec::with_capacity(ranges.len());
            for (f, e) in ranges {
                match merged.last_mut() {
                    Some(last) if f <= last.1 => last.1 = last.1.max(e),
                    _ => merged.push((f, e)),
                }
            }
            for (f, e) in merged {
                let (f, e) = if core.cfg.inject.force_boundary {
                    // Tolerated perturbation: retreat each ctl range by one
                    // block per end, forcing the dropped boundary blocks
                    // onto the default-protocol path (resolve_default runs
                    // after the contract and covers every section).
                    (f + 1, e.saturating_sub(1))
                } else {
                    (f, e)
                };
                if f >= e {
                    continue;
                }
                if opt.pre && !is_write && self.pre.is_valid(user, array, f, e, wpb) {
                    self.pre.skipped += 1;
                    continue;
                }
                if !is_write {
                    self.pre.performed += 1;
                }
                sends.entry((owner, array, f, e)).or_default().push(user);
                incoming.entry(user).or_default().push((array, f, e));
                if is_write {
                    flushes.push((user, owner, f, e, array));
                    // The write-back is part of the planned section volume.
                    core.note_planned(array, (e - f) as u64);
                }
            }
        }
        self.pending_flushes = flushes;
        self.pending_invalidate = incoming
            .iter()
            .flat_map(|(&n, v)| v.iter().map(move |&(_, f, e)| (n, f, e)))
            .collect();
        if sends.is_empty() {
            return;
        }

        // Phase A: owners acquire write ownership. RTOE elides the
        // acquire where the default protocol already left the owner
        // exclusive — but a prior loop's boundary-path non-owner writes
        // can have moved a block to another node (its dir-exclusive
        // writer), and sending without reacquiring would push the owner's
        // stale copy over current data. So under RTOE, acquire exactly
        // the blocks whose directory state contradicts the assumption;
        // in the steady state (owners exclusive) no call is issued and
        // no overhead is paid.
        let mut by_owner: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
        for &(o, _, f, e) in sends.keys() {
            by_owner.entry(o).or_default().push((f, e));
        }
        let mut acquired = false;
        for (o, mut ranges) in by_owner {
            ranges.sort_unstable();
            ranges.dedup();
            for (f, e) in ranges {
                if !self.opt.rtoe {
                    core.dsm.mk_writable(o, f, e);
                    acquired = true;
                    continue;
                }
                let mut b = f;
                while b < e {
                    if core.dsm.dir_state(b).is_excl_by(o) {
                        b += 1;
                        continue;
                    }
                    let s = b;
                    while b < e && !core.dsm.dir_state(b).is_excl_by(o) {
                        b += 1;
                    }
                    core.dsm.mk_writable(o, s, b);
                    acquired = true;
                }
            }
        }
        if acquired {
            core.dsm.release_barrier();
        }

        // Phase B: receivers tag the landing blocks writable.
        for (&n, ranges) in &incoming {
            let mut rs: Vec<(usize, usize)> = ranges.iter().map(|&(_, f, e)| (f, e)).collect();
            rs.sort_unstable();
            rs.dedup();
            for (f, e) in rs {
                core.dsm.implicit_writable(n, f, e, self.opt.rtoe);
            }
        }
        core.dsm.release_barrier();

        // Phase C: owners push, receivers wait on the counting semaphore.
        // Plan → apply: the sequential plan pass does all call-site
        // bookkeeping, then disjoint (owner, reader) plans apply on up to
        // `resolve_workers` threads with a deterministic merge.
        let mut entries: Vec<fgdsm_protocol::SendEntry> = Vec::with_capacity(sends.len());
        for (&(o, a, f, e), readers) in &sends {
            let mut rs = readers.clone();
            rs.sort_unstable();
            rs.dedup();
            if self.opt.pre {
                for &r in &rs {
                    self.pre.record_delivery(r, a, f, e);
                }
            }
            // One copy of the section reaches every reader.
            core.note_planned(a, ((e - f) * rs.len()) as u64);
            entries.push(fgdsm_protocol::SendEntry {
                owner: o,
                readers: rs,
                first: f,
                end: e,
                array: a as u32,
            });
        }
        let plans = core.dsm.plan_sends(&entries, self.opt.bulk);
        core.dsm.apply_plans(&plans, core.resolve_workers);
        core.dsm.recycle_plans(plans);
        for &n in incoming.keys() {
            core.dsm.ready_to_recv(n);
        }
    }

    /// The post-loop half of the contract: readers discard compiler-
    /// controlled copies (skipped under RTOE), non-owner writers flush —
    /// through the same plan/apply pipeline as the pushes, so disjoint
    /// (writer, owner) flushes also apply concurrently.
    fn cleanup_ctl(&mut self, core: &mut EngineCore) {
        let entries: Vec<fgdsm_protocol::FlushEntry> = std::mem::take(&mut self.pending_flushes)
            .into_iter()
            .map(|(w, o, f, e, a)| fgdsm_protocol::FlushEntry {
                writer: w,
                owner: o,
                first: f,
                end: e,
                array: a as u32,
            })
            .collect();
        let plans = core.dsm.plan_flushes(&entries, self.opt.bulk);
        core.dsm.apply_plans(&plans, core.resolve_workers);
        core.dsm.recycle_plans(plans);
        let inval = std::mem::take(&mut self.pending_invalidate);
        if !self.opt.rtoe {
            for (n, f, e) in inval {
                core.dsm.implicit_invalidate(n, f, e);
            }
            // The closing barrier of the contract doubles as the loop-end
            // barrier executed by post_loop.
        }
    }
}

impl CommBackend for SmOpt {
    fn name(&self) -> &'static str {
        "sm-opt"
    }

    fn validate(&self, core: &EngineCore) {
        assert!(
            !self.opt.ctl || core.dsm.supports_ctl(),
            "compiler-orchestrated incoherence requires the eager-invalidate protocol \
             (got {})",
            core.dsm.protocol_name()
        );
    }

    fn resolve(&mut self, core: &mut EngineCore, l: &ParLoop, acc: &LoopAccess) {
        self.pre.tick();
        if self.opt.ctl {
            self.comm_ctl(core, acc);
        }
        core.resolve_default(l, acc);
    }

    fn note_kernel_writes(&mut self, core: &mut EngineCore, l: &ParLoop, acc: &LoopAccess) {
        if !self.opt.pre {
            return;
        }
        for p in 0..core.cfg.nprocs {
            for (ri, r) in l.refs.iter().enumerate() {
                if r.mode == RefMode::Write && !acc.sections[p][ri].is_empty() {
                    for (s, len) in core.section_runs(r.array.0, &acc.sections[p][ri]) {
                        self.pre.record_write(r.array.0, s, len);
                    }
                }
            }
        }
    }

    fn post_loop(&mut self, core: &mut EngineCore, _l: &ParLoop, _acc: &LoopAccess) {
        if self.opt.ctl {
            self.cleanup_ctl(core);
        }
        core.dsm.release_barrier();
    }

    fn finish(&mut self, core: &mut EngineCore) {
        core.dsm.release_barrier();
    }

    fn gather(&mut self, core: &mut EngineCore) -> Vec<f64> {
        core.gather_by_directory()
    }

    fn pre_stats(&self) -> (u64, u64) {
        (self.pre.skipped, self.pre.performed)
    }
}
