//! The channel-backed distributed backend: `sm_opt`'s full §4.2 contract
//! with every inter-node transfer round-tripped through encoded
//! [`fgdsm_protocol::WireMsg`] bytes.
//!
//! The backend itself delegates the whole superstep protocol to
//! [`SmOpt`] at the full optimization level — the difference is the data
//! path the engine installs for it: strict wire mode over a
//! [`fgdsm_protocol::ChanTransport`], whose per-node mpsc worker threads
//! receive only owned byte frames (no shard memory crosses a channel),
//! decode each envelope, and echo a re-encoded copy back. Every word a
//! node learns therefore survived `WireMsg::to_bytes` → channel →
//! `WireMsg::from_bytes` — exactly the seam a real distributed port
//! would cut — while charges and counters stay byte-identical to
//! `sm_opt`, which the determinism suite and the fuzz oracle pin.

use super::backend::CommBackend;
use super::engine::EngineCore;
use super::sm_opt::SmOpt;
use crate::analysis::LoopAccess;
use crate::ir::ParLoop;
use crate::plan::OptLevel;
use fgdsm_tempest::ReduceOp;

/// `sm_opt(full)` behind the channel transport (see module docs).
pub struct Chan {
    inner: SmOpt,
}

impl Chan {
    pub fn new() -> Self {
        Chan {
            inner: SmOpt::new(OptLevel::full()),
        }
    }
}

impl Default for Chan {
    fn default() -> Self {
        Self::new()
    }
}

impl CommBackend for Chan {
    fn name(&self) -> &'static str {
        "chan"
    }

    fn validate(&self, core: &EngineCore) {
        assert!(
            core.dsm.wire_strict(),
            "chan backend requires strict wire mode (engine installs it)"
        );
        self.inner.validate(core);
    }

    fn resolve(&mut self, core: &mut EngineCore, l: &ParLoop, acc: &LoopAccess) {
        self.inner.resolve(core, l, acc);
    }

    fn note_kernel_writes(&mut self, core: &mut EngineCore, l: &ParLoop, acc: &LoopAccess) {
        self.inner.note_kernel_writes(core, l, acc);
    }

    fn reduce(&mut self, core: &mut EngineCore, partials: &[f64], op: ReduceOp) -> f64 {
        self.inner.reduce(core, partials, op)
    }

    fn post_loop(&mut self, core: &mut EngineCore, l: &ParLoop, acc: &LoopAccess) {
        self.inner.post_loop(core, l, acc);
    }

    fn finish(&mut self, core: &mut EngineCore) {
        self.inner.finish(core);
    }

    fn gather(&mut self, core: &mut EngineCore) -> Vec<f64> {
        self.inner.gather(core)
    }

    fn pre_stats(&self) -> (u64, u64) {
        self.inner.pre_stats()
    }
}
