//! The message-passing backend: owner-computes with direct marshalled
//! messages, no coherence machinery at all.

use super::backend::CommBackend;
use super::engine::EngineCore;
use crate::analysis::LoopAccess;
use crate::ir::{ParLoop, RefMode};
use fgdsm_protocol::{MpRuntime, MpSendPlan};
use fgdsm_tempest::ReduceOp;
use std::collections::{BTreeMap, BTreeSet};

/// One marshalled message per (owner → user, section) pair — except that
/// a section shipped from one owner to three or more readers (e.g. `lu`'s
/// pivot column) goes through the runtime's broadcast tree, as `pghpf`'s
/// runtime does. Pays the PGI runtime's per-message overhead.
pub struct Mp {
    mp: MpRuntime,
}

impl Mp {
    pub fn new(nprocs: usize) -> Self {
        Mp {
            mp: MpRuntime::new(nprocs),
        }
    }
}

impl CommBackend for Mp {
    fn name(&self) -> &'static str {
        "mp"
    }

    fn resolve(&mut self, core: &mut EngineCore, l: &ParLoop, acc: &LoopAccess) {
        let mut users: BTreeSet<usize> = BTreeSet::new();
        // Planned strided sends, merged per (owner, user) pair.
        let mut plans: BTreeMap<(usize, usize), MpSendPlan> = BTreeMap::new();
        // Group identical sections by (owner, array, section).
        let mut groups: BTreeMap<(usize, usize, String), Vec<usize>> = BTreeMap::new();
        for t in acc.read_transfers.iter().chain(&acc.write_transfers) {
            groups
                .entry((t.owner, t.array, format!("{}", t.section)))
                .or_default()
                .push(t.user);
        }
        for t in acc.read_transfers.iter().chain(&acc.write_transfers) {
            let meta = &core.metas[t.array];
            let Some(runs) = meta.runs(&t.section) else {
                // Fall back to per-point packing in one message.
                let pts = t.section.points();
                for pt in &pts {
                    let off = meta.offset(pt);
                    core.dsm.wire_copy(t.owner, t.user, off, 1);
                }
                continue;
            };
            let group = &groups[&(t.owner, t.array, format!("{}", t.section))];
            if group.len() >= 3 {
                // Broadcast once, on behalf of the whole group.
                if group[0] == t.user {
                    for sr in &runs.runs {
                        self.mp.broadcast(
                            &mut core.dsm,
                            t.owner,
                            group,
                            sr.base,
                            sr.run_len,
                            sr.stride.max(1),
                            sr.count,
                        );
                    }
                }
            } else {
                // Plan → apply: accumulate the strided sections per
                // (owner, user) pair; disjoint pairs apply concurrently
                // after the broadcasts, with inboxes folded in plan order.
                let plan = plans
                    .entry((t.owner, t.user))
                    .or_insert_with(|| self.mp.take_send_plan(t.owner, t.user));
                for sr in &runs.runs {
                    plan.sections
                        .push((sr.base, sr.run_len, sr.stride.max(1), sr.count));
                }
            }
            users.insert(t.user);
        }
        let mut plan_vec = self.mp.take_send_plan_vec();
        plan_vec.extend(plans.into_values());
        let plans = plan_vec;
        self.mp
            .apply_send_plans(&mut core.dsm, &plans, core.resolve_workers);
        self.mp.recycle_send_plans(plans);
        for &u in &users {
            self.mp.recv_all(&mut core.dsm.cluster, u);
        }
        // Map each node's own written pages (first touch).
        for p in 0..core.cfg.nprocs {
            for (ri, r) in l.refs.iter().enumerate() {
                if r.mode == RefMode::Write && !acc.sections[p][ri].is_empty() {
                    for (s, len) in core.section_runs(r.array.0, &acc.sections[p][ri]) {
                        core.dsm.cluster.map_range(p, s, len);
                    }
                }
            }
        }
    }

    fn reduce(&mut self, core: &mut EngineCore, partials: &[f64], op: ReduceOp) -> f64 {
        self.mp.allreduce(&mut core.dsm.cluster, partials, op)
    }

    fn post_loop(&mut self, _core: &mut EngineCore, _l: &ParLoop, _acc: &LoopAccess) {
        // Point-to-point synchronization only: no loop-end barrier.
    }

    fn finish(&mut self, core: &mut EngineCore) {
        core.dsm.cluster.barrier();
    }

    /// Gather from the distribution owners (there is no directory).
    fn gather(&mut self, core: &mut EngineCore) -> Vec<f64> {
        let words = core.dsm.cluster.seg_words();
        let mut out = vec![0.0f64; words];
        for (i, a) in core.prog.arrays.iter().enumerate() {
            for p in 0..core.cfg.nprocs {
                let sec = a.owner_section(p, core.cfg.nprocs);
                if sec.is_empty() {
                    continue;
                }
                for (s, len) in core.section_runs(i, &sec) {
                    out[s..s + len].copy_from_slice(&core.dsm.cluster.node_mem(p)[s..s + len]);
                }
            }
        }
        out
    }
}
