//! Executors: run a mini-HPF program over the simulated DSM.
//!
//! The executor is split into a backend-agnostic BSP **superstep driver**
//! ([`engine`]) and four pluggable **communication backends** behind the
//! [`backend::CommBackend`] trait:
//!
//! * [`sm_unopt::SmUnopt`] — every remote access goes through the default
//!   protocol: before a loop's kernels run, each node's declared
//!   read/write sections are resolved block-by-block (faults,
//!   invalidations, 4-hop forwards), exactly what the authors'
//!   unoptimized shared-memory compiler emits.
//! * [`sm_opt::SmOpt`] — the compiler-orchestrated incoherence of §4.2:
//!   per-loop access analysis finds the producer→consumer transfers,
//!   `shmem_limits` shrinks them to whole blocks, and the §4.2 call
//!   contract (`mk_writable` / barrier / `implicit_writable` / barrier /
//!   `send` + `ready_to_recv` / loop / `implicit_invalidate` / barrier)
//!   moves the data; boundary blocks and cold misses still take the
//!   default path. [`OptLevel`] toggles bulk transfer, run-time overhead
//!   elimination and the PRE extension (Figure 4).
//! * [`mp::Mp`] — the message-passing backend: owner-computes with direct
//!   marshalled messages, no coherence machinery at all, paying the PGI
//!   runtime's per-message overhead.
//! * [`chan::Chan`] — `sm_opt`'s full contract over a channel transport:
//!   every inter-node transfer is encoded into a
//!   [`fgdsm_protocol::WireMsg`] envelope, carried between per-node
//!   worker threads that share no shard memory, decoded, and applied
//!   from the payload — the seam a real distributed port would use.
//!   Byte-identical to `sm_opt` (determinism suite + fuzz oracle).
//!   [`WireMode`] / `FGDSM_WIRE=strict` force the same envelope
//!   round-trip under the sm_* and mp backends for differential testing.
//!
//! Execution is BSP, and every superstep is split into two explicit
//! phases. The **resolve phase** discovers every cross-node transfer the
//! loop needs against the state the previous superstep left behind; its
//! data movement is split into a sequential *plan* pass (call-site
//! bookkeeping, payload grouping — see [`fgdsm_protocol::TransferPlan`])
//! and an *apply* stage that executes node-disjoint plans concurrently
//! over disjoint shard pairs, folding shared state in plan index order.
//! The **compute phase** then runs each node's kernel against that
//! node's own [`fgdsm_tempest::NodeShard`] only — zero cross-node access
//! — dispatched across real threads ([`std::thread::scope`]). Neither
//! phase's threading changes a single virtual-time charge: serial and
//! parallel runs produce byte-identical reports and traces.
//! [`ParallelMode`] / the `FGDSM_PAR` env var select the worker count
//! for both phases ([`ExecConfig::resolve_parallel`] can pin the resolve
//! phase separately).
//!
//! Set `FGDSM_TRACE=<path>` to export the structured event trace of a run
//! as JSON (see [`fgdsm_tempest::NodeTrace`]), or call [`execute_traced`]
//! to get the same document back directly.

pub mod backend;
pub mod chan;
pub mod engine;
pub mod mp;
pub mod reference;
pub mod sm_opt;
pub mod sm_unopt;
pub mod tcp;

pub use reference::{execute_reference, ReferenceResult};
pub use tcp::tcp_available;

use crate::ir::Program;
use crate::plan::{ArrayMeta, OptLevel};
use backend::CommBackend;
use fgdsm_protocol::{CtlStats, ProtocolKind};
use fgdsm_section::Env;
use fgdsm_tempest::{CacheModel, ClusterReport, CostModel, MetricsRegistry, WireSpan};
use std::collections::BTreeMap;

/// Which executor to use.
#[derive(Clone, Copy, Debug)]
pub enum Backend {
    /// Default protocol only.
    SmUnopt,
    /// Compiler-orchestrated incoherence at the given optimization level.
    SmOpt(OptLevel),
    /// Message-passing backend.
    Mp,
    /// Channel-backed distributed backend: `sm_opt`'s full contract, but
    /// every inter-node transfer round-trips through encoded
    /// [`fgdsm_protocol::WireMsg`] bytes carried by per-node channel
    /// worker threads that share no shard memory. Byte-identical to
    /// `sm_opt` at the full optimization level (pinned by the determinism
    /// suite and the fuzz oracle).
    Chan,
    /// Socket-backed multi-process distributed backend: `sm_opt`'s full
    /// contract, but every inter-node transfer is framed over a real
    /// socket (TCP loopback, or Unix-domain where TCP is forbidden) to a
    /// spawned `fgdsm-node` worker *process* that owns a mirror of the
    /// shard words, decodes each envelope with the paranoid wire
    /// decoder, applies it, and re-encodes the reply from its own
    /// memory. Byte-identical to `sm_opt` at the full optimization
    /// level. Peer death and recv deadlines surface as typed
    /// [`fgdsm_protocol::WireError`]s through [`try_execute`].
    Tcp,
}

/// Whether inter-node data movement must round-trip through encoded
/// [`fgdsm_protocol::WireMsg`] envelopes. The strict path exists for
/// differential testing: it is behaviorally identical to the zero-copy
/// fast path — same charges, same counters, bit-identical data — and the
/// determinism suite holds it to that.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum WireMode {
    /// Honor the `FGDSM_WIRE` env var (`strict` → strict); fast
    /// otherwise.
    #[default]
    Auto,
    /// Zero-copy fast path (shard-to-shard copies).
    Fast,
    /// Envelope every transfer: encode → transport → decode → apply.
    Strict,
}

impl WireMode {
    /// Resolve to the concrete strictness (reads `FGDSM_WIRE` on `Auto`).
    pub fn is_strict(self) -> bool {
        match self {
            WireMode::Strict => true,
            WireMode::Fast => false,
            WireMode::Auto => std::env::var("FGDSM_WIRE")
                .map(|v| v.trim().eq_ignore_ascii_case("strict"))
                .unwrap_or(false),
        }
    }
}

/// Whether wall-clock telemetry (the [`fgdsm_tempest::metrics`]
/// registry: per-`WireMsg`-class encode/route/decode/apply histograms on
/// the coordinator, recv/apply/re-encode histograms in the workers) is
/// recorded for a run. Purely a side-channel knob: canonical reports,
/// traces, and profiles are byte-identical with metrics on or off — the
/// guard suite holds it to that. Zero-cost when off: no clocks are read.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MetricsMode {
    /// Honor the `FGDSM_METRICS` env var (`1`/`true`/`on` → on); off
    /// otherwise.
    #[default]
    Auto,
    /// Record wall-clock telemetry.
    On,
    /// No telemetry, no clock reads.
    Off,
}

impl MetricsMode {
    /// Resolve to the concrete setting (reads `FGDSM_METRICS` on `Auto`).
    pub fn enabled(self) -> bool {
        match self {
            MetricsMode::On => true,
            MetricsMode::Off => false,
            MetricsMode::Auto => fgdsm_tempest::metrics::env_enabled(),
        }
    }
}

/// How page homes are assigned relative to the data distribution.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum HomeAssign {
    /// The HPF runtime places pages to match each array's distribution,
    /// so owners of BLOCK-distributed data are home to their own pages
    /// (CYCLIC arrays still interleave owners within a page). This is how
    /// the paper's system behaves: first writes by owners do not fault;
    /// `lu` pays page *mapping* cost, not ownership misses.
    #[default]
    DataAligned,
    /// Pages round-robin across nodes regardless of the distribution.
    RoundRobin,
    /// Contiguous page chunks per node.
    Blocked,
}

/// How the compute phase and the resolve phase's apply stage are
/// scheduled onto host threads. Purely a wall-clock knob: virtual-time
/// charges are per-shard and plan merges are index-ordered, so every
/// setting produces byte-identical [`ClusterReport`]s and trace streams.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ParallelMode {
    /// Honor the `FGDSM_PAR` env var (`0` or `1` → serial, `n` → `n`
    /// workers); if unset, use the host's available cores.
    #[default]
    Auto,
    /// Run everything on the driver thread, one node at a time.
    Serial,
    /// Spawn up to `n` scoped worker threads per phase.
    Threads(usize),
}

impl ParallelMode {
    /// Resolve to a concrete worker count (≥ 1).
    pub fn workers(self) -> usize {
        match self {
            ParallelMode::Serial => 1,
            ParallelMode::Threads(n) => n.max(1),
            ParallelMode::Auto => match std::env::var("FGDSM_PAR") {
                Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
                Err(_) => std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            },
        }
    }
}

/// How worker threads are provisioned when a phase runs parallel.
/// Wall-clock only — the pool and scoped paths dispatch and fold the
/// identical deterministic work items.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PoolMode {
    /// Honor the `FGDSM_POOL` env var (`0` or `scoped` → scoped threads);
    /// defaults to the persistent pool.
    #[default]
    Auto,
    /// One long-lived [`fgdsm_tempest::WorkerPool`] per `execute`, shared
    /// by the compute phase and the resolve phase's apply waves.
    Persistent,
    /// Legacy behavior: fresh [`std::thread::scope`] spawns per phase.
    Scoped,
}

impl PoolMode {
    /// Whether a persistent pool should be created for this run.
    pub fn persistent(self) -> bool {
        match self {
            PoolMode::Persistent => true,
            PoolMode::Scoped => false,
            PoolMode::Auto => match std::env::var("FGDSM_POOL") {
                Ok(v) => {
                    let v = v.trim();
                    !(v == "0" || v.eq_ignore_ascii_case("scoped"))
                }
                Err(_) => true,
            },
        }
    }
}

/// A full execution configuration.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    pub nprocs: usize,
    pub cost: CostModel,
    pub cache: CacheModel,
    pub home: HomeAssign,
    pub backend: Backend,
    /// Default coherence protocol (compiler-orchestrated incoherence is
    /// only supported over the eager-invalidate protocol).
    pub protocol: ProtocolKind,
    /// Bindings for problem-level symbolics referenced by the program.
    pub base_env: Env,
    /// Host-thread scheduling for both superstep phases (wall-clock only;
    /// never affects results).
    pub parallel: ParallelMode,
    /// Override the resolve phase's apply-stage scheduling; `None` follows
    /// `parallel`. Lets tests pin serial resolve against threaded compute
    /// (and vice versa) in one run.
    pub resolve_parallel: Option<ParallelMode>,
    /// Worker provisioning for parallel phases: persistent pool vs fresh
    /// scoped threads (wall-clock only; never affects results).
    pub pool: PoolMode,
    /// Wire discipline for inter-node data movement: zero-copy fast path
    /// or strict envelope round-tripping (`FGDSM_WIRE=strict`). The
    /// `chan` backend is always strict regardless of this knob.
    pub wire: WireMode,
    /// Wall-clock telemetry (`FGDSM_METRICS=1`): per-message-class
    /// latency histograms on both sides of the wire, merged into
    /// [`RunResult::metrics`]. Side-channel only — canonical artifacts
    /// are byte-identical either way.
    pub metrics: MetricsMode,
    /// Fault-injection knobs for the differential fuzzer (all off by
    /// default; the protocol-level mutations additionally require the
    /// `fault-inject` cargo feature).
    pub inject: InjectConfig,
}

/// Fault-injection configuration: *tolerated* perturbations the §4.2
/// contract must survive without changing results, plus *must-catch*
/// protocol mutations (forwarded to
/// [`fgdsm_protocol::Dsm::set_injection`]) whose incoherence the
/// differential oracle has to detect. Everything defaults to off and the
/// tolerated knobs are honest config — they only reorder or de-optimize
/// work the contract already claims is order-independent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InjectConfig {
    /// Shuffle the node service order of the default-protocol resolve
    /// sub-phases with this seed. Faults of independent nodes commute, so
    /// results must not change.
    pub shuffle_resolve: Option<u64>,
    /// Clear the `implicit_writable` memo (and the tags it records)
    /// before every superstep's resolve, de-optimizing run-time-overhead
    /// elimination back to the slow path.
    pub clear_iw_memo: bool,
    /// Shrink every compiler-controlled block range by one block at each
    /// end, forcing those boundary blocks onto the default-protocol path.
    pub force_boundary: bool,
    /// Must-catch: off-by-one `send_range` bounds (needs `fault-inject`).
    pub skew_send_range: bool,
    /// Must-catch: skip `flush_range` entirely (needs `fault-inject`).
    pub skip_flush_range: bool,
    /// Must-catch: redirect `send_range` pushes to the (possibly stale)
    /// home copy whenever the home is a third party — the §4.3 stale
    /// owner-memo hazard (needs `fault-inject`).
    pub stale_owner_push: bool,
    /// Must-catch: reverse the plan order of the resolve phase's apply
    /// stage under a parallel resolve — a nondeterministic merge the
    /// differential oracle must detect (needs `fault-inject`).
    pub reorder_plan_apply: bool,
    /// Must-catch: fold the parallel apply stage's outcomes rotated out
    /// of plan-index order — the merge mistake a worker-pool integration
    /// could make (needs `fault-inject`).
    pub misfold_pool: bool,
    /// Must-catch: flip a byte inside the first envelope routed in strict
    /// wire mode — `WireMsg::from_bytes` must reject the frame and fail
    /// the run loudly, proving decode validation has teeth (needs
    /// `fault-inject` and an envelope path: the `chan` backend or
    /// `FGDSM_WIRE=strict`).
    pub corrupt_envelope: bool,
    /// Must-catch: overwrite the length prefix of the first data frame
    /// the coordinator sends with an oversized value — the node's
    /// framing layer must reject it against [`fgdsm_protocol::MAX_FRAME_BYTES`]
    /// before allocating, and the run must fail loudly. Transport-level
    /// (lives in `fgdsm-net`, not the protocol), so it does **not**
    /// require the `fault-inject` feature — but it only has an effect on
    /// the `tcp` backend.
    pub corrupt_frame_len: bool,
    /// Fault-tolerance harness knob: arm node `n` of the `tcp` backend
    /// with a [`fgdsm_net::NodeFault`] (exit or wedge after a batch
    /// count). The coordinator must surface a typed
    /// [`fgdsm_protocol::WireError`] within the configured deadline —
    /// no hang, no partial artifact. Transport-level; no effect on
    /// in-process backends.
    pub tcp_node_fault: Option<(u32, fgdsm_net::NodeFault)>,
    /// Must-catch: skip the coordinator's per-class `payload_bytes.*`
    /// metrics counter for the first envelope encoded — the run itself
    /// and the double-entry books stay correct, so only the telemetry
    /// conservation invariant ([`RunResult::check_metrics_conservation`])
    /// can catch the undercount (needs `fault-inject`, metrics on, and
    /// an envelope path).
    pub undercount_metrics: bool,
}

impl ExecConfig {
    /// Unoptimized shared memory on the paper's dual-cpu cluster.
    pub fn sm_unopt(nprocs: usize) -> Self {
        ExecConfig {
            nprocs,
            cost: CostModel::paper_dual_cpu(),
            cache: CacheModel::paper(),
            home: HomeAssign::DataAligned,
            backend: Backend::SmUnopt,
            protocol: ProtocolKind::EagerInvalidate,
            base_env: Env::new(),
            parallel: ParallelMode::Auto,
            resolve_parallel: None,
            pool: PoolMode::Auto,
            wire: WireMode::Auto,
            metrics: MetricsMode::Auto,
            inject: InjectConfig::default(),
        }
    }

    /// Optimized shared memory (full §4.2 + §4.3 optimizations).
    pub fn sm_opt(nprocs: usize) -> Self {
        ExecConfig {
            backend: Backend::SmOpt(OptLevel::full()),
            ..Self::sm_unopt(nprocs)
        }
    }

    /// Message-passing backend.
    pub fn mp(nprocs: usize) -> Self {
        ExecConfig {
            backend: Backend::Mp,
            ..Self::sm_unopt(nprocs)
        }
    }

    /// Channel-backed distributed backend (`FGDSM_BACKEND=chan`): the
    /// full `sm_opt` contract with every transfer round-tripped through
    /// encoded envelopes over per-node channel workers.
    pub fn chan(nprocs: usize) -> Self {
        ExecConfig {
            backend: Backend::Chan,
            ..Self::sm_unopt(nprocs)
        }
    }

    /// Socket-backed multi-process backend (`FGDSM_BACKEND=tcp`): the
    /// full `sm_opt` contract with every transfer framed over loopback
    /// TCP (or UDS) to spawned `fgdsm-node` worker processes. Check
    /// [`tcp_available`] first — sandboxes may forbid sockets.
    pub fn tcp(nprocs: usize) -> Self {
        ExecConfig {
            backend: Backend::Tcp,
            ..Self::sm_unopt(nprocs)
        }
    }

    /// Switch to the single-cpu cost model.
    pub fn single_cpu(mut self) -> Self {
        self.cost = CostModel {
            cpu: fgdsm_tempest::CpuMode::Single,
            ..self.cost
        };
        self
    }

    /// Replace the optimization level (must be an SmOpt config).
    pub fn with_opt(mut self, opt: OptLevel) -> Self {
        self.backend = Backend::SmOpt(opt);
        self
    }

    /// Run the default protocol as write-update instead of
    /// eager-invalidate (unoptimized shared memory only).
    pub fn write_update(mut self) -> Self {
        self.protocol = ProtocolKind::WriteUpdate;
        self
    }

    /// Pin both superstep phases to the driver thread.
    pub fn serial(mut self) -> Self {
        self.parallel = ParallelMode::Serial;
        self
    }

    /// Dispatch both superstep phases across up to `n` scoped threads.
    pub fn threads(mut self, n: usize) -> Self {
        self.parallel = ParallelMode::Threads(n);
        self
    }

    /// Pin the resolve phase's apply stage to the driver thread, leaving
    /// the compute phase on `parallel`.
    pub fn resolve_serial(mut self) -> Self {
        self.resolve_parallel = Some(ParallelMode::Serial);
        self
    }

    /// Dispatch the resolve phase's apply stage across up to `n` scoped
    /// threads, leaving the compute phase on `parallel`.
    pub fn resolve_threads(mut self, n: usize) -> Self {
        self.resolve_parallel = Some(ParallelMode::Threads(n));
        self
    }

    /// Provision parallel phases from one persistent worker pool.
    pub fn pooled(mut self) -> Self {
        self.pool = PoolMode::Persistent;
        self
    }

    /// Provision parallel phases with fresh scoped threads per phase
    /// (the pre-pool behavior).
    pub fn scoped(mut self) -> Self {
        self.pool = PoolMode::Scoped;
        self
    }

    /// Force every inter-node transfer through an encoded wire envelope
    /// (the `FGDSM_WIRE=strict` differential-testing path).
    pub fn strict(mut self) -> Self {
        self.wire = WireMode::Strict;
        self
    }

    /// Record wall-clock telemetry for this run regardless of
    /// `FGDSM_METRICS`.
    pub fn metered(mut self) -> Self {
        self.metrics = MetricsMode::On;
        self
    }

    /// Disable wall-clock telemetry for this run regardless of
    /// `FGDSM_METRICS`.
    pub fn unmetered(mut self) -> Self {
        self.metrics = MetricsMode::Off;
        self
    }

    /// Replace the fault-injection configuration.
    pub fn with_inject(mut self, inject: InjectConfig) -> Self {
        self.inject = inject;
        self
    }
}

/// One contract-planned transfer: the §4.2 schedule decided to move
/// `blocks` whole cache blocks of `array` during superstep `step` (loop
/// `loop_id`). The profiler compares these against the measured per-loop
/// traffic to expose loops the contract failed to cover (bytes moved by
/// default-protocol faults instead).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedXfer {
    pub step: u32,
    pub loop_id: u32,
    pub array: u32,
    pub blocks: u64,
    pub bytes: u64,
}

/// The result of executing a program.
#[derive(Clone, Debug)]
pub struct RunResult {
    pub report: ClusterReport,
    pub scalars: BTreeMap<&'static str, f64>,
    /// Gathered canonical contents of the global segment.
    pub data: Vec<f64>,
    pub metas: Vec<ArrayMeta>,
    pub ctl: CtlStats,
    /// PRE statistics: transfers skipped as redundant / performed.
    pub pre_skipped: u64,
    pub pre_performed: u64,
    /// Contract-planned transfer volumes, in planning order (empty for
    /// backends that plan nothing: `sm_unopt`, `mp`).
    pub planned: Vec<PlannedXfer>,
    /// Envelope frames routed through the wire layer (0 on the zero-copy
    /// fast path). Wire accounting only — deliberately outside the
    /// canonical report so strict and fast runs stay byte-identical.
    pub wire_frames: u64,
    /// Total on-wire payload bytes carried by those frames.
    pub wire_payload_bytes: u64,
    /// Merged wall-clock telemetry (`None` when metrics are off):
    /// coordinator keys under `coord.`, per-worker keys under `node<i>.`
    /// for the `tcp` backend. Side-channel only — never feeds the
    /// canonical report.
    pub metrics: Option<MetricsRegistry>,
    /// Wall-clock spans of the wire transport's batch round-trips
    /// (empty when metrics are off), feeding the merged Chrome trace.
    pub wire_spans: Vec<WireSpan>,
}

impl RunResult {
    /// Extract the gathered contents of one array.
    pub fn array(&self, prog: &Program, id: crate::dist::ArrayId) -> Vec<f64> {
        let meta = &self.metas[id.0];
        let len = prog.array(id).len();
        self.data[meta.base..meta.base + len].to_vec()
    }

    /// Total execution time in seconds (Figure 3's quantity).
    pub fn total_s(&self) -> f64 {
        self.report.total_s()
    }

    /// Measured host time spent inside the wire transport's `route`
    /// calls (0 on the zero-copy fast path). Real time, like
    /// [`fgdsm_tempest::ClusterReport::wall_ns`] — outside the canonical
    /// report so strict/fast/socket runs stay byte-identical.
    pub fn wire_route_ns(&self) -> u64 {
        self.report.wire_route_ns
    }

    /// The merged wall-clock metrics registry, if telemetry was on.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_ref()
    }

    /// Double-entry conservation over the telemetry side channel: the
    /// per-class `payload_bytes.*` counters — coordinator's, and each
    /// worker's when present — must each sum to exactly
    /// [`RunResult::wire_payload_bytes`]. `Ok(())` when metrics are off
    /// (nothing to check) or no frames were routed.
    pub fn check_metrics_conservation(&self) -> Result<(), String> {
        let Some(reg) = self.metrics.as_ref() else {
            return Ok(());
        };
        let coord: u64 = reg
            .iter()
            .filter(|(k, _)| k.starts_with("coord.payload_bytes."))
            .filter_map(|(_, m)| m.as_counter())
            .sum();
        if coord != self.wire_payload_bytes {
            return Err(format!(
                "metrics conservation: coordinator per-class payload counters sum to {coord}, \
                 but the run routed {} payload bytes",
                self.wire_payload_bytes
            ));
        }
        // Worker registries (tcp backend only): every node that shipped
        // metrics home must account for the full payload volume it saw.
        let mut nodes: Vec<&str> = reg
            .iter()
            .filter_map(|(k, _)| k.split_once('.').map(|(tag, _)| tag))
            .filter(|tag| tag.starts_with("node"))
            .collect();
        nodes.dedup();
        let per_node_total: u64 = nodes
            .iter()
            .map(|tag| {
                reg.iter()
                    .filter(|(k, _)| {
                        k.strip_prefix(tag)
                            .and_then(|r| r.strip_prefix('.'))
                            .is_some_and(|r| r.starts_with("payload_bytes."))
                    })
                    .filter_map(|(_, m)| m.as_counter())
                    .sum::<u64>()
            })
            .sum();
        if !nodes.is_empty() && per_node_total != self.wire_payload_bytes {
            return Err(format!(
                "metrics conservation: worker per-class payload counters sum to {per_node_total} \
                 across {} nodes, but the run routed {} payload bytes",
                nodes.len(),
                self.wire_payload_bytes
            ));
        }
        Ok(())
    }

    /// Splice this run's wall-clock wire spans (and per-process track
    /// labels) into a canonical Chrome trace, producing one merged
    /// Perfetto document: the coordinator's virtual-time tracks plus a
    /// wall-clock pid track per worker process. The canonical `base` is
    /// never modified — this is a derived, side-channel document.
    pub fn merged_chrome(&self, base: &str) -> String {
        fgdsm_tempest::metrics::merge_chrome(base, &self.wire_spans)
    }
}

/// Instantiate the communication backend for a configuration — the one
/// and only place the [`Backend`] enum is dispatched on.
fn make_backend(cfg: &ExecConfig) -> Box<dyn CommBackend> {
    match cfg.backend {
        Backend::SmUnopt => Box::new(sm_unopt::SmUnopt),
        Backend::SmOpt(opt) => Box::new(sm_opt::SmOpt::new(opt)),
        Backend::Mp => Box::new(mp::Mp::new(cfg.nprocs)),
        Backend::Chan => Box::new(chan::Chan::new()),
        Backend::Tcp => Box::new(tcp::Tcp::new()),
    }
}

/// Execute `prog` under `cfg`.
pub fn execute(prog: &Program, cfg: &ExecConfig) -> RunResult {
    engine::run(prog, cfg, make_backend(cfg), false, false).0
}

/// How an execution failed. The engine reports failures by panicking —
/// typed [`fgdsm_protocol::WireError`] payloads for transport-level
/// failures (peer death, recv deadline, framing cap), strings for
/// everything else (decode rejections, invariant violations).
/// [`try_execute`] catches both and hands them back as values.
#[derive(Clone, Debug)]
pub enum ExecError {
    /// The wire transport failed: a peer process died, a recv deadline
    /// fired, or a frame length exceeded the cap.
    Wire(fgdsm_protocol::WireError),
    /// Any other engine panic, stringified (decode failures keep their
    /// pinned `wire: envelope decode failed in transit: …` message).
    Panic(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Wire(e) => write!(f, "wire transport failed: {e}"),
            ExecError::Panic(msg) => write!(f, "execution panicked: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Execute `prog` under `cfg`, catching engine failures as typed values
/// instead of unwinding. This is the fault-tolerant entry point for the
/// distributed backends: a killed `fgdsm-node` process surfaces as
/// `Err(ExecError::Wire(WireError::PeerGone(n)))`, a wedged one as
/// `Err(ExecError::Wire(WireError::Timeout(n)))` — within the configured
/// recv deadline, with no partial artifacts. Successful runs are
/// indistinguishable from [`execute`].
pub fn try_execute(prog: &Program, cfg: &ExecConfig) -> Result<RunResult, ExecError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| execute(prog, cfg))) {
        Ok(r) => Ok(r),
        Err(payload) => {
            let payload = match payload.downcast::<fgdsm_protocol::WireError>() {
                Ok(we) => return Err(ExecError::Wire(*we)),
                Err(p) => p,
            };
            let msg = match payload.downcast::<String>() {
                Ok(s) => *s,
                Err(p) => match p.downcast::<&'static str>() {
                    Ok(s) => (*s).to_string(),
                    Err(_) => "non-string panic payload".to_string(),
                },
            };
            Err(ExecError::Panic(msg))
        }
    }
}

/// Execute `prog` under `cfg` and also return the structured event-trace
/// JSON (the same document `FGDSM_TRACE=<path>` would write), without
/// touching the process environment — tests that compare trace streams
/// across configurations use this to stay race-free under a parallel
/// test harness.
pub fn execute_traced(prog: &Program, cfg: &ExecConfig) -> (RunResult, String) {
    let (result, trace, _) = engine::run(prog, cfg, make_backend(cfg), true, false);
    (result, trace.expect("trace requested"))
}

/// Execute `prog` under `cfg` and also return both profiler exports: the
/// structured event-trace JSON and the Chrome trace-event timeline (the
/// documents `FGDSM_TRACE=<path>` / `FGDSM_CHROME=<path>` would write).
/// Both are pure functions of virtual-time state — byte-identical across
/// serial and threaded runs.
pub fn execute_profiled(prog: &Program, cfg: &ExecConfig) -> (RunResult, String, String) {
    let (result, trace, chrome) = engine::run(prog, cfg, make_backend(cfg), true, true);
    (
        result,
        trace.expect("trace requested"),
        chrome.expect("chrome trace requested"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Dist;
    use crate::ir::{ARef, Kernel, KernelCtx, ParLoop, Stmt, Subscript};
    use fgdsm_section::SymRange;

    const A: crate::dist::ArrayId = crate::dist::ArrayId(0);

    fn fill_kernel(ctx: &mut KernelCtx) {
        let a = ctx.h(A);
        for j in ctx.iter[1].iter() {
            for i in ctx.iter[0].iter() {
                ctx.mem[a.at2(i, j)] = (i + 100 * j) as f64;
            }
        }
    }

    fn tiny_program(rows: usize, cols: usize, dist: Dist) -> Program {
        let mut b = Program::builder();
        let a = b.array("a", &[rows, cols], dist);
        b.stmt(Stmt::Par(ParLoop {
            name: "fill",
            iter: vec![
                SymRange::new(0, rows as i64 - 1),
                SymRange::new(0, cols as i64 - 1),
            ],
            dist: crate::ir::CompDist::Owner(a),
            refs: vec![ARef::write(
                a,
                vec![Subscript::loop_var(0), Subscript::loop_var(1)],
            )],
            kernel: Kernel::new(fill_kernel),
            cost_per_iter_ns: 20,
            reduction: None,
        }));
        b.build()
    }

    #[test]
    fn config_builders() {
        let c = ExecConfig::sm_opt(8).single_cpu();
        assert!(matches!(c.backend, Backend::SmOpt(_)));
        assert_eq!(c.cost.cpu, fgdsm_tempest::CpuMode::Single);
        let c2 = ExecConfig::sm_unopt(4).with_opt(OptLevel::base());
        assert!(matches!(c2.backend, Backend::SmOpt(o) if o.ctl && !o.bulk));
        assert!(matches!(ExecConfig::mp(2).backend, Backend::Mp));
    }

    #[test]
    fn parallel_mode_resolves_to_worker_counts() {
        assert_eq!(ParallelMode::Serial.workers(), 1);
        assert_eq!(ParallelMode::Threads(0).workers(), 1);
        assert_eq!(ParallelMode::Threads(4).workers(), 4);
        assert!(ParallelMode::Auto.workers() >= 1);
        assert_eq!(
            ExecConfig::sm_unopt(4).threads(2).parallel,
            ParallelMode::Threads(2)
        );
        assert_eq!(
            ExecConfig::sm_unopt(4).serial().parallel,
            ParallelMode::Serial
        );
        // resolve_parallel defaults to following `parallel`, and the
        // builders pin it independently.
        assert_eq!(ExecConfig::sm_unopt(4).resolve_parallel, None);
        assert_eq!(
            ExecConfig::sm_unopt(4)
                .serial()
                .resolve_threads(3)
                .resolve_parallel,
            Some(ParallelMode::Threads(3))
        );
        assert_eq!(
            ExecConfig::sm_unopt(4).resolve_serial().resolve_parallel,
            Some(ParallelMode::Serial)
        );
    }

    #[test]
    fn threaded_compute_phase_matches_serial_exactly() {
        // Uneven split on purpose: 4 shards over 3 workers.
        let prog = tiny_program(64, 64, Dist::Block);
        let (rs, ts) = execute_traced(&prog, &ExecConfig::sm_unopt(4).serial());
        let (rp, tp) = execute_traced(&prog, &ExecConfig::sm_unopt(4).threads(3));
        assert_eq!(rs.report.to_json(), rp.report.to_json());
        assert_eq!(ts, tp, "per-node event streams must be identical");
        assert_eq!(rs.data, rp.data);
        assert_eq!(rs.scalars, rp.scalars);
    }

    #[test]
    fn data_aligned_homes_eliminate_owner_cold_write_faults() {
        let prog = tiny_program(64, 64, Dist::Block);
        let mut aligned = ExecConfig::sm_unopt(4);
        aligned.home = HomeAssign::DataAligned;
        let mut rr = ExecConfig::sm_unopt(4);
        rr.home = HomeAssign::RoundRobin;
        let ra = execute(&prog, &aligned);
        let rb = execute(&prog, &rr);
        // Owners are home to their data: the init writes never fault.
        let misses_aligned: u64 = ra.report.nodes.iter().map(|n| n.misses()).sum();
        let misses_rr: u64 = rb.report.nodes.iter().map(|n| n.misses()).sum();
        assert_eq!(misses_aligned, 0, "aligned homes: no cold write faults");
        assert!(misses_rr > 0, "round-robin homes: owners must fault");
        // Same data either way.
        assert_eq!(ra.data, rb.data);
    }

    #[test]
    fn all_home_policies_agree_on_data() {
        let prog = tiny_program(40, 24, Dist::Cyclic);
        let mut results = Vec::new();
        for home in [
            HomeAssign::DataAligned,
            HomeAssign::RoundRobin,
            HomeAssign::Blocked,
        ] {
            let mut cfg = ExecConfig::sm_opt(4);
            cfg.home = home;
            results.push(execute(&prog, &cfg).data);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn run_result_array_extracts_values() {
        let prog = tiny_program(8, 6, Dist::Block);
        let r = execute(&prog, &ExecConfig::sm_unopt(2));
        let a = r.array(&prog, A);
        assert_eq!(a.len(), 48);
        assert_eq!(a[0], 0.0);
        assert_eq!(a[8], 100.0); // (0,1)
        assert_eq!(a[7 + 5 * 8], (7 + 500) as f64);
    }

    #[test]
    fn makespan_is_positive_and_monotone_with_work() {
        // Page-aligned owner chunks on both sizes, so the comparison is
        // pure compute (no boundary faults).
        let small = tiny_program(64, 32, Dist::Block);
        let big = tiny_program(128, 64, Dist::Block);
        let rs = execute(&small, &ExecConfig::sm_unopt(2));
        let rb = execute(&big, &ExecConfig::sm_unopt(2));
        assert!(rs.total_s() > 0.0);
        assert!(rb.total_s() > rs.total_s());
    }

    #[test]
    fn scalar_statements_update_replicated_state() {
        let mut b = Program::builder();
        let a = b.array("a", &[8, 8], Dist::Block);
        b.scalar("x", 2.0);
        b.stmt(Stmt::Par(ParLoop {
            name: "fill",
            iter: vec![SymRange::new(0, 7), SymRange::new(0, 7)],
            dist: crate::ir::CompDist::Owner(a),
            refs: vec![ARef::write(
                a,
                vec![Subscript::loop_var(0), Subscript::loop_var(1)],
            )],
            kernel: Kernel::new(fill_kernel),
            cost_per_iter_ns: 10,
            reduction: None,
        }));
        b.stmt(Stmt::Scalar {
            name: "x",
            f: |s| s["x"] * 10.0 + 1.0,
        });
        b.stmt(Stmt::Scalar {
            name: "y",
            f: |s| s["x"] - 1.0,
        });
        let prog = b.build();
        let r = execute(&prog, &ExecConfig::sm_unopt(2));
        assert_eq!(r.scalars["x"], 21.0);
        assert_eq!(r.scalars["y"], 20.0);
    }

    #[test]
    #[should_panic(expected = "eager-invalidate")]
    fn ctl_over_write_update_is_rejected() {
        let prog = tiny_program(8, 8, Dist::Block);
        let cfg = ExecConfig::sm_opt(2).write_update();
        execute(&prog, &cfg);
    }
}
