//! The backend-agnostic BSP superstep driver and the shared execution
//! state ([`EngineCore`]) every backend works against.
//!
//! The driver walks the program statement list; for each parallel loop it
//! analyzes accesses (with a compile-time cache for static loops) and
//! runs one superstep in two explicit phases:
//!
//! * **Resolve phase**: the backend's [`CommBackend::resolve`] discovers
//!   and services every cross-node fault / ctl transfer / message the
//!   loop needs, against the state the previous superstep left behind.
//!   Default-protocol faults and the ctl tag transitions run sequentially
//!   in deterministic node order; the bulk data movement is planned
//!   sequentially and applied over disjoint shard pairs, concurrently
//!   when `resolve_workers > 1` (see [`fgdsm_protocol::TransferPlan`]) —
//!   with shared state folded in plan index order, so the threading never
//!   changes a report or trace byte.
//! * **Compute phase** ([`compute_phase`]): each node's kernel runs
//!   against its own [`NodeShard`] with zero cross-node access, so the
//!   driver may dispatch the shards across [`std::thread::scope`]
//!   workers. Every charge, event and memory write in this phase is
//!   shard-local and its cost is a pure function of the loop analysis,
//!   so the schedule cannot perturb the virtual-time results: serial and
//!   threaded runs are byte-identical.
//!
//! Afterwards the backend observes writes, performs the reduction, runs
//! `post_loop`, and the driver stamps a superstep boundary into the event
//! trace. Nothing in this module inspects which backend is running.

use super::backend::CommBackend;
use super::{ExecConfig, HomeAssign, RunResult};
use crate::analysis::{self, LoopAccess};
use crate::ir::{ArrayHandle, KernelCtx, ParLoop, Program, RefMode, Stmt};
use crate::plan::{covering_blocks_into, ArrayMeta};
use fgdsm_protocol::Dsm;
use fgdsm_section::{Env, Range, Section};
use fgdsm_tempest::{
    CacheAligned, ChargeKind, Cluster, HomePolicy, Job, NodeShard, SegmentLayout, WorkerPool,
    NO_LOOP, NO_STEP,
};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use std::sync::Arc;

/// Minimum total kernel iteration count (summed over nodes) before the
/// compute phase dispatches onto worker threads: below this, even parked
/// pool workers cost more to wake than the kernels cost to run, and a
/// serial compute is faster. The compute analogue of
/// [`fgdsm_protocol::PAR_APPLY_MIN_WORDS`]; determinism is unaffected
/// either way.
pub const PAR_COMPUTE_MIN_POINTS: u64 = 2048;

/// Shared execution state: the program binding, the DSM, and the helpers
/// every backend composes (section linearization, default-protocol
/// resolution, the indirect-access inspector, directory-based gather).
pub struct EngineCore<'p> {
    pub prog: &'p Program,
    pub cfg: &'p ExecConfig,
    pub metas: Vec<ArrayMeta>,
    pub handles: Vec<ArrayHandle>,
    pub dsm: Dsm,
    pub env: Env,
    pub scalars: BTreeMap<&'static str, f64>,
    /// Words per cache block.
    pub wpb: usize,
    /// Resolved compute-phase worker count (from `cfg.parallel`, capped
    /// later by `nprocs`). Resolved once per run so `FGDSM_PAR` is read
    /// a single time.
    pub workers: usize,
    /// Resolved worker count for the resolve phase's plan-apply stage
    /// (`cfg.resolve_parallel`, falling back to `cfg.parallel`).
    pub resolve_workers: usize,
    /// Supersteps executed so far; salts the `shuffle_resolve`
    /// perturbation so each loop instance gets a distinct node order.
    pub supersteps: u64,
    /// Compile-time analysis cache: loops whose access structure mentions
    /// no symbolic variables are analyzed once (keyed by loop address,
    /// stable for the duration of a run).
    analysis_cache: BTreeMap<usize, Rc<LoopAccess>>,
    /// Profiler loop ids in program order, keyed by loop address like
    /// `analysis_cache` (assigned by `run` over the body it executes).
    loop_ids: BTreeMap<usize, u32>,
    /// Superstep index of the in-flight superstep ([`NO_STEP`] between
    /// loops); stamps [`PlannedXfer`](super::PlannedXfer) records.
    pub cur_step: u32,
    /// Loop id of the in-flight superstep ([`NO_LOOP`] between loops).
    pub cur_loop: u32,
    /// Contract-planned transfer volumes, recorded by the backends via
    /// [`EngineCore::note_planned`] — the "predicted" side of the
    /// profiler's predicted-vs-observed comparison.
    pub planned: Vec<super::PlannedXfer>,
    /// Recycled compute-phase reduction slots, one padded cache line per
    /// node so concurrent workers' stores never share a line.
    partials_scratch: Vec<CacheAligned<f64>>,
    /// Recycled per-node covering-block buffers for `resolve_default`
    /// (write covers, read covers) — reused across supersteps with their
    /// capacity intact.
    cover_scratch: (CoverScratch, CoverScratch),
}

/// Per-node `(first, end)` covering-block buffers, one vector per node.
type CoverScratch = Vec<Vec<(usize, usize)>>;

/// Allocate every program array into a fresh page-aligned segment layout.
/// Shared by the engine and the sequential reference interpreter so both
/// agree on absolute word addresses (and therefore on `ArrayMeta` bases).
pub(crate) fn layout_arrays(
    prog: &Program,
    cfg: &ExecConfig,
) -> (SegmentLayout, Vec<ArrayMeta>, Vec<ArrayHandle>) {
    let mut layout = SegmentLayout::new(cfg.cost.words_per_page());
    let mut metas = Vec::with_capacity(prog.arrays.len());
    let mut handles = Vec::with_capacity(prog.arrays.len());
    for (i, a) in prog.arrays.iter().enumerate() {
        let base = layout.alloc(a.len());
        metas.push(ArrayMeta {
            id: crate::dist::ArrayId(i),
            base,
            layout: a.layout(),
        });
        handles.push(ArrayHandle::new(base, &a.extents));
    }
    (layout, metas, handles)
}

impl<'p> EngineCore<'p> {
    pub fn new(prog: &'p Program, cfg: &'p ExecConfig) -> Self {
        let (layout, metas, handles) = layout_arrays(prog, cfg);
        let policy = match cfg.home {
            HomeAssign::RoundRobin => HomePolicy::RoundRobin,
            HomeAssign::Blocked => HomePolicy::Blocked,
            HomeAssign::DataAligned => {
                let wpp = cfg.cost.words_per_page();
                let n_pages = layout.total_words().max(wpp).div_ceil(wpp);
                let mut homes: Vec<usize> = (0..n_pages).map(|p| p % cfg.nprocs).collect(); // padding pages interleave
                for (i, a) in prog.arrays.iter().enumerate() {
                    let meta = &metas[i];
                    let last_stride = meta.layout.stride(a.extents.len() - 1);
                    let first_page = meta.base / wpp;
                    let end_page = (meta.base + a.len()).div_ceil(wpp);
                    #[allow(clippy::needless_range_loop)]
                    for page in first_page..end_page {
                        let off = (page * wpp).saturating_sub(meta.base);
                        let j = ((off / last_stride) as i64).min(a.dist_extent() as i64 - 1);
                        homes[page] = a.owner_of(j, cfg.nprocs);
                    }
                }
                HomePolicy::Explicit(homes)
            }
        };
        let cluster = Cluster::new(cfg.nprocs, cfg.cost.clone(), &layout, policy);
        #[allow(unused_mut)]
        let mut dsm = Dsm::with_protocol(cluster, cfg.protocol);
        #[cfg(feature = "fault-inject")]
        dsm.set_injection(fgdsm_protocol::Injection {
            skew_send_range: cfg.inject.skew_send_range,
            skip_flush_range: cfg.inject.skip_flush_range,
            stale_owner_push: cfg.inject.stale_owner_push,
            reorder_plan_apply: cfg.inject.reorder_plan_apply,
            misfold_pool: cfg.inject.misfold_pool,
            corrupt_envelope: cfg.inject.corrupt_envelope,
            undercount_metrics: cfg.inject.undercount_metrics,
        });
        #[cfg(not(feature = "fault-inject"))]
        assert!(
            !cfg.inject.skew_send_range
                && !cfg.inject.skip_flush_range
                && !cfg.inject.stale_owner_push
                && !cfg.inject.reorder_plan_apply
                && !cfg.inject.misfold_pool
                && !cfg.inject.corrupt_envelope
                && !cfg.inject.undercount_metrics,
            "protocol-level fault injection requires the `fault-inject` feature"
        );
        // Strict wire mode: the chan backend always routes envelopes
        // (through real channel workers) and the tcp backend through
        // spawned node processes; the other backends do so when
        // `WireMode` asks (loopback transport — same encode/decode
        // round-trip, no threads).
        match cfg.backend {
            super::Backend::Chan => {
                dsm.set_wire(Box::new(fgdsm_protocol::ChanTransport::new(cfg.nprocs)));
            }
            super::Backend::Tcp => {
                let geom = fgdsm_net::NetGeometry {
                    nprocs: cfg.nprocs,
                    wpb: cfg.cost.words_per_block() as u32,
                    seg_words: layout.total_words() as u64,
                };
                let opts = fgdsm_net::SocketOpts {
                    corrupt_frame_len: cfg.inject.corrupt_frame_len,
                    node_fault: cfg.inject.tcp_node_fault,
                    metrics: cfg.metrics.enabled(),
                    ..fgdsm_net::SocketOpts::default()
                };
                match fgdsm_net::SocketTransport::spawn(geom, opts) {
                    Ok(t) => dsm.set_wire(Box::new(t)),
                    Err(e) => panic!(
                        "tcp backend: cannot start node processes: {e} \
                         (check fgdsm_hpf::exec::tcp_available() before \
                         selecting Backend::Tcp)"
                    ),
                }
            }
            _ if cfg.wire.is_strict() => {
                dsm.set_wire(Box::new(fgdsm_protocol::Loopback));
            }
            _ => {}
        }
        // Wall-clock telemetry: a side channel over the wire seam only —
        // virtual-time state never sees it, so canonical artifacts stay
        // byte-identical with it on or off.
        if cfg.metrics.enabled() {
            dsm.enable_wire_metrics();
        }
        EngineCore {
            prog,
            cfg,
            metas,
            handles,
            dsm,
            env: cfg.base_env.clone(),
            scalars: prog.scalars.iter().copied().collect(),
            wpb: cfg.cost.words_per_block(),
            workers: cfg.parallel.workers(),
            resolve_workers: cfg.resolve_parallel.unwrap_or(cfg.parallel).workers(),
            supersteps: 0,
            analysis_cache: BTreeMap::new(),
            loop_ids: BTreeMap::new(),
            cur_step: NO_STEP,
            cur_loop: NO_LOOP,
            planned: Vec::new(),
            partials_scratch: Vec::new(),
            cover_scratch: (Vec::new(), Vec::new()),
        }
    }

    /// Profiler id of a loop: its position in program order, assigned by
    /// `run` before execution starts ([`NO_LOOP`] if unregistered).
    pub fn loop_id(&self, l: &ParLoop) -> u32 {
        self.loop_ids
            .get(&(l as *const ParLoop as usize))
            .copied()
            .unwrap_or(NO_LOOP)
    }

    /// Record a contract-planned transfer of `blocks` whole cache blocks
    /// of `array`, attributed to the in-flight superstep.
    pub fn note_planned(&mut self, array: usize, blocks: u64) {
        self.planned.push(super::PlannedXfer {
            step: self.cur_step,
            loop_id: self.cur_loop,
            array: array as u32,
            blocks,
            bytes: blocks * self.cfg.cost.block_bytes as u64,
        });
    }

    /// Per-loop access analysis with the compile-time/run-time split of
    /// §4.1: loops with a fixed access structure are analyzed once;
    /// symbolic loops re-evaluate their descriptors under the current
    /// environment.
    fn analyze(&mut self, l: &ParLoop) -> Rc<LoopAccess> {
        let key = l as *const ParLoop as usize;
        if let Some(hit) = self.analysis_cache.get(&key) {
            return hit.clone();
        }
        let fresh = Rc::new(analysis::analyze(self.prog, l, &self.env, self.cfg.nprocs));
        if l.is_static() {
            self.analysis_cache.insert(key, fresh.clone());
        }
        fresh
    }

    /// Word runs (absolute) of a section, with a fallback for shapes the
    /// linearizer declines (enumerate points; only small sections occur).
    pub fn section_runs(&self, array: usize, sec: &Section) -> Vec<(usize, usize)> {
        let meta = &self.metas[array];
        if let Some(lr) = meta.runs(sec) {
            return lr.iter_runs().collect();
        }
        assert!(
            sec.count() <= 1 << 20,
            "unoptimizable section too large to enumerate"
        );
        sec.points().iter().map(|pt| (meta.offset(pt), 1)).collect()
    }

    /// Default-protocol access resolution: make every declared section
    /// accessible before kernels run, counting faults. Sub-phases: all
    /// nodes' writes (with multi-writer detection for false-shared
    /// boundary blocks), then all nodes' reads.
    #[allow(clippy::needless_range_loop)] // per-node loops index several parallel vecs
    pub fn resolve_default(&mut self, l: &ParLoop, acc: &LoopAccess) {
        let nprocs = self.cfg.nprocs;
        let wpb = self.wpb;
        // Per node: merged covering block ranges for writes and reads.
        // Recycled across supersteps (taken out of `self` so the borrow
        // checker allows the `&self` helper calls below; restored at the
        // end of the function, which has no early returns).
        let (mut wcover, mut rcover) = std::mem::take(&mut self.cover_scratch);
        wcover.resize_with(nprocs, Vec::new);
        rcover.resize_with(nprocs, Vec::new);
        // Boundary candidates: the first and last block of every raw write
        // run (before merging). A block written by two nodes necessarily
        // contains a section boundary of each, so it is an extremal block
        // of at least one raw run of every writer.
        let mut candidates: BTreeSet<usize> = BTreeSet::new();
        for p in 0..nprocs {
            let mut wruns = fgdsm_section::LinearRanges::empty();
            let mut rruns = fgdsm_section::LinearRanges::empty();
            for (ri, r) in l.refs.iter().enumerate() {
                let sec = &acc.sections[p][ri];
                if sec.is_empty() {
                    continue;
                }
                if r.is_indirect() {
                    // Inspector: resolve the blocks this node actually
                    // touches by reading the index array (a real DSM
                    // faults on demand; the conservative section would
                    // grossly over-fault).
                    for off in self.inspect_indirect(p, r, &acc.iters[p]) {
                        rruns.runs.push(fgdsm_section::StridedRange {
                            base: off,
                            run_len: 1,
                            stride: 0,
                            count: 1,
                        });
                    }
                    continue;
                }
                let runs = self.section_runs(r.array.0, sec);
                if r.mode == RefMode::Write {
                    for &(s, len) in &runs {
                        if len > 0 {
                            candidates.insert(s / wpb);
                            candidates.insert((s + len - 1) / wpb);
                        }
                    }
                }
                let target = match r.mode {
                    RefMode::Write => &mut wruns,
                    RefMode::Read => &mut rruns,
                };
                for (s, len) in runs {
                    target.runs.push(fgdsm_section::StridedRange {
                        base: s,
                        run_len: len,
                        stride: 0,
                        count: 1,
                    });
                }
            }
            covering_blocks_into(&wruns, wpb, &mut wcover[p]);
            covering_blocks_into(&rruns, wpb, &mut rcover[p]);
        }
        // A candidate block needs the multiple-writer (twin/diff) path if
        // two or more nodes write it, or if one node writes it while
        // another reads it in the same interval — in the real system the
        // writer would simply re-fault after the reader's downgrade; in
        // the BSP engine the writer must keep its writable copy through
        // the read sub-phase.
        let contains = |ranges: &[(usize, usize)], b: usize| -> bool {
            let idx = ranges.partition_point(|&(_, e)| e <= b);
            idx < ranges.len() && ranges[idx].0 <= b
        };
        let multi: BTreeSet<usize> = candidates
            .into_iter()
            .filter(|&b| {
                let writers: Vec<usize> =
                    (0..nprocs).filter(|&p| contains(&wcover[p], b)).collect();
                writers.len() >= 2
                    || (writers.len() == 1
                        && (0..nprocs).any(|p| p != writers[0] && contains(&rcover[p], b)))
            })
            .collect();
        // Node visiting order for the sub-phases. Under the tolerated
        // `shuffle_resolve` perturbation the order is randomized per
        // superstep: the protocol contract must be insensitive to which
        // node faults first.
        let mut order: Vec<usize> = (0..nprocs).collect();
        if let Some(seed) = self.cfg.inject.shuffle_resolve {
            fgdsm_testkit::Rng::new(seed ^ self.supersteps).shuffle(&mut order);
        }
        // Sub-phase: writes.
        for &p in &order {
            for &(f, e) in &wcover[p] {
                for b in f..e {
                    if multi.contains(&b) {
                        self.dsm.write_access_multi(p, b);
                    } else {
                        self.dsm.write_access_excl(p, b);
                    }
                }
            }
        }
        // Sub-phase: reads.
        for &p in &order {
            for &(f, e) in &rcover[p] {
                for b in f..e {
                    self.dsm.read_access(p, b);
                }
            }
        }
        self.cover_scratch = (wcover, rcover);
    }

    /// Inspector for indirect references (`x(idx(i))`): enumerate the
    /// element offsets node `p` will gather, by reading its (owned,
    /// current) copy of the index array. Supports the common 1-D gather.
    pub fn inspect_indirect(&self, p: usize, r: &crate::ir::ARef, iter: &[Range]) -> Vec<usize> {
        use crate::ir::Subscript;
        let [Subscript::Indirect(idx_aid, c)] = r.subs.as_slice() else {
            panic!("indirect references must be 1-D gathers x(idx(i))");
        };
        let idx_meta = &self.metas[idx_aid.0];
        let target = &self.metas[r.array.0];
        let extent = self.prog.array(r.array).len() as i64;
        let mem = self.dsm.cluster.node_mem(p);
        let mut out = Vec::with_capacity(iter[0].count() as usize);
        for i in iter[0].iter() {
            let v = mem[idx_meta.base + (i + c) as usize];
            let j = v as i64;
            assert!(
                (0..extent).contains(&j),
                "indirect index {j} out of bounds (extent {extent})"
            );
            out.push(target.base + j as usize);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Gather the canonical segment contents by directory state: copy
    /// from the node the directory records as holding current data (the
    /// gather the shared-memory backends use). Bulk-copies each page from
    /// its home — the canonical source for every `Shared`/`Multi` block
    /// and for every block traffic never moved — then patches the blocks
    /// the directory records as exclusively owned away from home, so the
    /// per-block work scales with traffic instead of segment size.
    pub fn gather_by_directory(&self) -> Vec<f64> {
        let cl = &self.dsm.cluster;
        let words = cl.seg_words();
        let wpp = cl.words_per_page();
        let mut out = vec![0.0f64; words];
        for page_start in (0..words).step_by(wpp) {
            let end = (page_start + wpp).min(words);
            let h = cl.home_of_word(page_start);
            out[page_start..end].copy_from_slice(&cl.node_mem(h)[page_start..end]);
        }
        for b in self.dsm.dirty_dir_blocks() {
            if let fgdsm_protocol::DirState::Excl { owner } = self.dsm.dir_state(b) {
                let (s, e) = cl.block_words(b);
                out[s..e].copy_from_slice(&cl.node_mem(owner)[s..e]);
            }
        }
        out
    }
}

/// Run `prog` under `cfg` with the given communication backend. When
/// `want_trace` is set, the structured event-trace JSON is also rendered
/// and returned (the same document `FGDSM_TRACE=<path>` writes).
pub(super) fn run(
    prog: &Program,
    cfg: &ExecConfig,
    mut backend: Box<dyn CommBackend>,
    want_trace: bool,
    want_chrome: bool,
) -> (RunResult, Option<String>, Option<String>) {
    let wall_start = std::time::Instant::now();
    let mut core = EngineCore::new(prog, cfg);
    // Persistent worker pool: spawned once here, reused by every
    // superstep's compute phase and resolve-apply waves. Skipped when
    // both phases are pinned serial, or when `PoolMode` asks for the
    // legacy scoped-thread spawns.
    let pool_workers = core.workers.max(core.resolve_workers);
    if pool_workers > 1 && cfg.pool.persistent() {
        core.dsm
            .cluster
            .set_worker_pool(Some(Arc::new(WorkerPool::new(pool_workers))));
    }
    backend.validate(&core);
    let body = prog.body.clone();
    // Register profiler loop ids over the body actually executed (the
    // clone), in program order — the same order `Program::par_loops`
    // yields, so report consumers can map ids back to loop names.
    for (i, l) in crate::ir::par_loops_of(&body).into_iter().enumerate() {
        core.loop_ids.insert(l as *const ParLoop as usize, i as u32);
    }
    exec_stmts(&mut core, backend.as_mut(), &body);
    // Final synchronization so the report reflects a completed program.
    backend.finish(&mut core);
    let data = backend.gather(&mut core);
    let (pre_skipped, pre_performed) = backend.pre_stats();
    let mut trace = None;
    if want_trace {
        trace = Some(core.dsm.cluster.trace_json());
    }
    if let Ok(path) = std::env::var("FGDSM_TRACE") {
        if !path.is_empty() {
            let json = trace
                .clone()
                .unwrap_or_else(|| core.dsm.cluster.trace_json());
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("FGDSM_TRACE: cannot write {path}: {e}");
            }
        }
    }
    let mut chrome = None;
    if want_chrome {
        chrome = Some(core.dsm.cluster.trace_chrome());
    }
    if let Ok(path) = std::env::var("FGDSM_CHROME") {
        if !path.is_empty() {
            let json = chrome
                .clone()
                .unwrap_or_else(|| core.dsm.cluster.trace_chrome());
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("FGDSM_CHROME: cannot write {path}: {e}");
            }
        }
    }
    let mut report = core.dsm.cluster.report();
    // Host time, stamped outside the deterministic virtual-time state
    // (excluded from the canonical report encoding).
    report.wall_ns = wall_start.elapsed().as_nanos() as u64;
    report.wire_route_ns = core.dsm.wire_route_ns();
    // Post-run invariants: the protocol left a consistent directory and
    // the trace is sane. These hold for every backend on every program;
    // the fuzz oracle (and every test) gets them for free.
    if let Err(e) = core.dsm.check_consistency() {
        panic!("post-run protocol consistency check failed: {e}");
    }
    assert!(
        report.traffic_balanced(),
        "post-run trace invariant violated: sent {} msgs / {} bytes but received {} msgs / {} bytes",
        report.total_msgs(),
        report.total_bytes(),
        report.total_msgs_recv(),
        report.total_bytes_recv()
    );
    assert!(
        core.dsm.cluster.clocks_monotone(),
        "post-run trace invariant violated: a node clock moved backwards"
    );
    // Profiler invariants: per-superstep interval deltas sum exactly to
    // the whole-run per-node stats, and the block heatmaps account for
    // every miss and byte. Pure functions of virtual-time state, so they
    // hold on every backend / scheduling combination.
    if let Err(e) = report.check_profile_invariants() {
        panic!("post-run profile invariant violated: {e}");
    }
    let (wire_frames, wire_payload_bytes) = core.dsm.wire_stats();
    // Orderly wire teardown: collect the peers' `ByeStats`, reconcile
    // their double-entry books against ours (divergence is a loud, typed
    // panic), and merge every process's metric registry under node-tagged
    // keys. Runs with metrics on or off — reconciliation is free and
    // should always happen on an orderly shutdown.
    let (metrics, wire_spans) = core.dsm.wire_finish();
    let result = RunResult {
        report,
        scalars: core.scalars,
        data,
        metas: core.metas,
        ctl: core.dsm.ctl_stats(),
        pre_skipped,
        pre_performed,
        planned: core.planned,
        wire_frames,
        wire_payload_bytes,
        metrics,
        wire_spans,
    };
    (result, trace, chrome)
}

fn exec_stmts(core: &mut EngineCore, backend: &mut dyn CommBackend, stmts: &[Stmt]) {
    for s in stmts {
        match s {
            Stmt::Par(l) => exec_par(core, backend, l),
            Stmt::Time { var, count, body } => {
                let saved = core.env.get(*var);
                for t in 0..*count {
                    core.env.set(*var, t);
                    exec_stmts(core, backend, body);
                }
                if let Some(v) = saved {
                    core.env.set(*var, v);
                }
            }
            Stmt::Scalar { name, f } => {
                let v = f(&core.scalars);
                core.scalars.insert(name, v);
                for n in 0..core.cfg.nprocs {
                    core.dsm.cluster.charge(n, 100, ChargeKind::Compute);
                }
            }
        }
    }
}

/// One superstep, in two explicit phases: the **resolve phase** (backend
/// communication against the previous superstep's state — planned
/// sequentially, applied over disjoint shard pairs with up to
/// `resolve_workers` threads), then the **compute phase** (kernels on
/// their own shards, possibly threaded), then write observation,
/// reduction, backend cleanup and the superstep boundary.
fn exec_par(core: &mut EngineCore, backend: &mut dyn CommBackend, l: &ParLoop) {
    let nprocs = core.cfg.nprocs;
    let acc = core.analyze(l);
    let acc = &*acc;
    core.supersteps += 1;

    // Open the profiler interval: every event from here to the closing
    // `end_superstep` is stamped with (superstep index, loop id).
    let step = (core.supersteps - 1) as u32;
    let loop_id = core.loop_id(l);
    core.cur_step = step;
    core.cur_loop = loop_id;
    core.dsm.cluster.begin_superstep(step, loop_id);

    // --- Resolve phase: all cross-node traffic, deterministic order. ---
    if core.cfg.inject.clear_iw_memo {
        // Tolerated perturbation: forget every first-time memoization
        // before the loop resolves, as if each loop instance were the
        // first. `clear_iw_memo` also invalidates the covered tags so the
        // RTOE excuse is not needed for copies that no longer exist.
        core.dsm.clear_iw_memo();
    }
    backend.resolve(core, l, acc);

    // --- Compute phase: zero cross-node access from here to the join. --
    // One padded cache line per node (recycled across supersteps):
    // adjacent nodes' reduction slots never false-share even when a
    // chunk boundary puts them on different workers.
    let mut partials = std::mem::take(&mut core.partials_scratch);
    partials.clear();
    partials.resize(nprocs, CacheAligned(0.0));
    compute_phase(core, l, acc, &mut partials);

    backend.note_kernel_writes(core, l, acc);

    // Reduction.
    if let Some(rs) = l.reduction {
        let plain: Vec<f64> = partials.iter().map(|c| c.0).collect();
        let v = backend.reduce(core, &plain, rs.op);
        core.scalars.insert(rs.target, v);
    }
    core.partials_scratch = partials;

    // End of loop: backend cleanup + synchronization, then close the
    // profiler interval (stamps the superstep boundary into the event
    // trace, snapshots per-node stats, and runs the false-sharing scan).
    backend.post_loop(core, l, acc);
    core.dsm.cluster.end_superstep(step, loop_id);
    core.cur_step = NO_STEP;
    core.cur_loop = NO_LOOP;
}

/// The compute phase of one superstep: run each node's kernel against
/// that node's shard, charging the (analysis-determined) compute cost to
/// the shard's clock. Per-node work touches only `&mut NodeShard` plus
/// shared immutable state, so the shards can be split across workers —
/// the installed persistent [`WorkerPool`] when one exists, scoped
/// threads otherwise. Contiguous chunking keeps each shard on exactly
/// one worker and per-shard state makes the outcome independent of the
/// schedule — the serial path below produces byte-identical traces.
/// Loops below [`PAR_COMPUTE_MIN_POINTS`] total iterations run serially
/// regardless: waking workers would cost more than the kernels.
fn compute_phase(
    core: &mut EngineCore,
    l: &ParLoop,
    acc: &LoopAccess,
    partials: &mut [CacheAligned<f64>],
) {
    let EngineCore {
        cfg,
        handles,
        dsm,
        env,
        scalars,
        workers,
        ..
    } = core;
    let nprocs = cfg.nprocs;
    let (env, scalars, handles) = (&*env, &*scalars, &handles[..]);
    let cache = &cfg.cache;

    let run_node = |sh: &mut NodeShard, partial: &mut CacheAligned<f64>| {
        let p = sh.id();
        let iter = &acc.iters[p];
        if iter.iter().any(Range::is_empty) {
            return;
        }
        let points: u64 = iter.iter().map(Range::count).product();
        let ws_bytes: u64 = acc.sections[p].iter().map(|s| s.count() * 8).sum();
        let factor = cache.factor(ws_bytes);
        let cost = (points as f64 * l.cost_per_iter_ns as f64 * factor) as u64;
        sh.charge(cost, ChargeKind::Compute);
        let mut ctx = KernelCtx {
            mem: sh.mem_mut(),
            iter,
            env,
            scalars,
            partial: 0.0,
            node: p,
            nprocs,
            handles,
        };
        l.kernel.call(&mut ctx);
        partial.0 = ctx.partial;
    };

    // Volume gate: total kernel iterations this superstep, summed over
    // nodes. Tiny steps (grav's moment loops, scalar-ish updates) run
    // serially even when `FGDSM_PAR` asks for workers.
    let total_points: u64 = (0..nprocs)
        .map(|p| {
            let iter = &acc.iters[p];
            if iter.iter().any(Range::is_empty) {
                0
            } else {
                iter.iter().map(Range::count).product()
            }
        })
        .sum();
    let pool = dsm.cluster.worker_pool().cloned();
    let shards = dsm.cluster.shards_mut();
    let mut workers = (*workers).min(nprocs).max(1);
    if total_points < PAR_COMPUTE_MIN_POINTS {
        workers = 1;
    }
    if workers > 1 {
        let chunk = nprocs.div_ceil(workers);
        let run_node = &run_node;
        if let Some(pool) = &pool {
            let jobs: Vec<Job> = shards
                .chunks_mut(chunk)
                .zip(partials.chunks_mut(chunk))
                .map(|(shard_chunk, partial_chunk)| {
                    Box::new(move || {
                        for (sh, partial) in shard_chunk.iter_mut().zip(partial_chunk.iter_mut()) {
                            run_node(sh, partial);
                        }
                    }) as Job
                })
                .collect();
            pool.run(jobs);
        } else {
            std::thread::scope(|s| {
                for (shard_chunk, partial_chunk) in
                    shards.chunks_mut(chunk).zip(partials.chunks_mut(chunk))
                {
                    s.spawn(move || {
                        for (sh, partial) in shard_chunk.iter_mut().zip(partial_chunk.iter_mut()) {
                            run_node(sh, partial);
                        }
                    });
                }
            });
        }
    } else {
        for (sh, partial) in shards.iter_mut().zip(partials.iter_mut()) {
            run_node(sh, partial);
        }
    }
}
