//! The backend-agnostic BSP superstep driver and the shared execution
//! state ([`EngineCore`]) every backend works against.
//!
//! The driver walks the program statement list; for each parallel loop it
//! analyzes accesses (with a compile-time cache for static loops), hands
//! the loop to the backend's `pre_loop`, runs the kernels in deterministic
//! node order, lets the backend observe writes and perform the reduction,
//! runs `post_loop`, and stamps a superstep boundary into the event trace.
//! Nothing in this module inspects which backend is running.

use super::backend::CommBackend;
use super::{ExecConfig, HomeAssign, RunResult};
use crate::analysis::{self, LoopAccess};
use crate::ir::{ArrayHandle, KernelCtx, ParLoop, Program, RefMode, Stmt};
use crate::plan::{covering_blocks, ArrayMeta};
use fgdsm_protocol::Dsm;
use fgdsm_section::{Env, Range, Section};
use fgdsm_tempest::{ChargeKind, Cluster, HomePolicy, SegmentLayout};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// Shared execution state: the program binding, the DSM, and the helpers
/// every backend composes (section linearization, default-protocol
/// resolution, the indirect-access inspector, directory-based gather).
pub struct EngineCore<'p> {
    pub prog: &'p Program,
    pub cfg: &'p ExecConfig,
    pub metas: Vec<ArrayMeta>,
    pub handles: Vec<ArrayHandle>,
    pub dsm: Dsm,
    pub env: Env,
    pub scalars: BTreeMap<&'static str, f64>,
    /// Words per cache block.
    pub wpb: usize,
    /// Compile-time analysis cache: loops whose access structure mentions
    /// no symbolic variables are analyzed once (keyed by loop address,
    /// stable for the duration of a run).
    analysis_cache: BTreeMap<usize, Rc<LoopAccess>>,
}

impl<'p> EngineCore<'p> {
    pub fn new(prog: &'p Program, cfg: &'p ExecConfig) -> Self {
        let mut layout = SegmentLayout::new(cfg.cost.words_per_page());
        let mut metas = Vec::with_capacity(prog.arrays.len());
        let mut handles = Vec::with_capacity(prog.arrays.len());
        for (i, a) in prog.arrays.iter().enumerate() {
            let base = layout.alloc(a.len());
            metas.push(ArrayMeta {
                id: crate::dist::ArrayId(i),
                base,
                layout: a.layout(),
            });
            handles.push(ArrayHandle::new(base, &a.extents));
        }
        let policy = match cfg.home {
            HomeAssign::RoundRobin => HomePolicy::RoundRobin,
            HomeAssign::Blocked => HomePolicy::Blocked,
            HomeAssign::DataAligned => {
                let wpp = cfg.cost.words_per_page();
                let n_pages = layout.total_words().max(wpp).div_ceil(wpp);
                let mut homes: Vec<usize> = (0..n_pages).map(|p| p % cfg.nprocs).collect(); // padding pages interleave
                for (i, a) in prog.arrays.iter().enumerate() {
                    let meta = &metas[i];
                    let last_stride = meta.layout.stride(a.extents.len() - 1);
                    let first_page = meta.base / wpp;
                    let end_page = (meta.base + a.len()).div_ceil(wpp);
                    #[allow(clippy::needless_range_loop)]
                    for page in first_page..end_page {
                        let off = (page * wpp).saturating_sub(meta.base);
                        let j = ((off / last_stride) as i64).min(a.dist_extent() as i64 - 1);
                        homes[page] = a.owner_of(j, cfg.nprocs);
                    }
                }
                HomePolicy::Explicit(homes)
            }
        };
        let cluster = Cluster::new(cfg.nprocs, cfg.cost.clone(), &layout, policy);
        EngineCore {
            prog,
            cfg,
            metas,
            handles,
            dsm: Dsm::with_protocol(cluster, cfg.protocol),
            env: cfg.base_env.clone(),
            scalars: prog.scalars.iter().copied().collect(),
            wpb: cfg.cost.words_per_block(),
            analysis_cache: BTreeMap::new(),
        }
    }

    /// Per-loop access analysis with the compile-time/run-time split of
    /// §4.1: loops with a fixed access structure are analyzed once;
    /// symbolic loops re-evaluate their descriptors under the current
    /// environment.
    fn analyze(&mut self, l: &ParLoop) -> Rc<LoopAccess> {
        let key = l as *const ParLoop as usize;
        if let Some(hit) = self.analysis_cache.get(&key) {
            return hit.clone();
        }
        let fresh = Rc::new(analysis::analyze(self.prog, l, &self.env, self.cfg.nprocs));
        if l.is_static() {
            self.analysis_cache.insert(key, fresh.clone());
        }
        fresh
    }

    /// Word runs (absolute) of a section, with a fallback for shapes the
    /// linearizer declines (enumerate points; only small sections occur).
    pub fn section_runs(&self, array: usize, sec: &Section) -> Vec<(usize, usize)> {
        let meta = &self.metas[array];
        if let Some(lr) = meta.runs(sec) {
            return lr.iter_runs().collect();
        }
        assert!(
            sec.count() <= 1 << 20,
            "unoptimizable section too large to enumerate"
        );
        sec.points().iter().map(|pt| (meta.offset(pt), 1)).collect()
    }

    /// Default-protocol access resolution: make every declared section
    /// accessible before kernels run, counting faults. Sub-phases: all
    /// nodes' writes (with multi-writer detection for false-shared
    /// boundary blocks), then all nodes' reads.
    #[allow(clippy::needless_range_loop)] // per-node loops index several parallel vecs
    pub fn resolve_default(&mut self, l: &ParLoop, acc: &LoopAccess) {
        let nprocs = self.cfg.nprocs;
        let wpb = self.wpb;
        // Per node: merged covering block ranges for writes and reads.
        let mut wcover: Vec<Vec<(usize, usize)>> = vec![vec![]; nprocs];
        let mut rcover: Vec<Vec<(usize, usize)>> = vec![vec![]; nprocs];
        // Boundary candidates: the first and last block of every raw write
        // run (before merging). A block written by two nodes necessarily
        // contains a section boundary of each, so it is an extremal block
        // of at least one raw run of every writer.
        let mut candidates: BTreeSet<usize> = BTreeSet::new();
        for p in 0..nprocs {
            let mut wruns = fgdsm_section::LinearRanges::empty();
            let mut rruns = fgdsm_section::LinearRanges::empty();
            for (ri, r) in l.refs.iter().enumerate() {
                let sec = &acc.sections[p][ri];
                if sec.is_empty() {
                    continue;
                }
                if r.is_indirect() {
                    // Inspector: resolve the blocks this node actually
                    // touches by reading the index array (a real DSM
                    // faults on demand; the conservative section would
                    // grossly over-fault).
                    for off in self.inspect_indirect(p, r, &acc.iters[p]) {
                        rruns.runs.push(fgdsm_section::StridedRange {
                            base: off,
                            run_len: 1,
                            stride: 0,
                            count: 1,
                        });
                    }
                    continue;
                }
                let runs = self.section_runs(r.array.0, sec);
                if r.mode == RefMode::Write {
                    for &(s, len) in &runs {
                        if len > 0 {
                            candidates.insert(s / wpb);
                            candidates.insert((s + len - 1) / wpb);
                        }
                    }
                }
                let target = match r.mode {
                    RefMode::Write => &mut wruns,
                    RefMode::Read => &mut rruns,
                };
                for (s, len) in runs {
                    target.runs.push(fgdsm_section::StridedRange {
                        base: s,
                        run_len: len,
                        stride: 0,
                        count: 1,
                    });
                }
            }
            wcover[p] = covering_blocks(&wruns, wpb);
            rcover[p] = covering_blocks(&rruns, wpb);
        }
        // A candidate block needs the multiple-writer (twin/diff) path if
        // two or more nodes write it, or if one node writes it while
        // another reads it in the same interval — in the real system the
        // writer would simply re-fault after the reader's downgrade; in
        // the BSP engine the writer must keep its writable copy through
        // the read sub-phase.
        let contains = |ranges: &[(usize, usize)], b: usize| -> bool {
            let idx = ranges.partition_point(|&(_, e)| e <= b);
            idx < ranges.len() && ranges[idx].0 <= b
        };
        let multi: BTreeSet<usize> = candidates
            .into_iter()
            .filter(|&b| {
                let writers: Vec<usize> =
                    (0..nprocs).filter(|&p| contains(&wcover[p], b)).collect();
                writers.len() >= 2
                    || (writers.len() == 1
                        && (0..nprocs).any(|p| p != writers[0] && contains(&rcover[p], b)))
            })
            .collect();
        // Sub-phase: writes.
        for p in 0..nprocs {
            for &(f, e) in &wcover[p] {
                for b in f..e {
                    if multi.contains(&b) {
                        self.dsm.write_access_multi(p, b);
                    } else {
                        self.dsm.write_access_excl(p, b);
                    }
                }
            }
        }
        // Sub-phase: reads.
        for p in 0..nprocs {
            for &(f, e) in &rcover[p] {
                for b in f..e {
                    self.dsm.read_access(p, b);
                }
            }
        }
    }

    /// Inspector for indirect references (`x(idx(i))`): enumerate the
    /// element offsets node `p` will gather, by reading its (owned,
    /// current) copy of the index array. Supports the common 1-D gather.
    pub fn inspect_indirect(&self, p: usize, r: &crate::ir::ARef, iter: &[Range]) -> Vec<usize> {
        use crate::ir::Subscript;
        let [Subscript::Indirect(idx_aid, c)] = r.subs.as_slice() else {
            panic!("indirect references must be 1-D gathers x(idx(i))");
        };
        let idx_meta = &self.metas[idx_aid.0];
        let target = &self.metas[r.array.0];
        let extent = self.prog.array(r.array).len() as i64;
        let mem = self.dsm.cluster.node_mem(p);
        let mut out = Vec::with_capacity(iter[0].count() as usize);
        for i in iter[0].iter() {
            let v = mem[idx_meta.base + (i + c) as usize];
            let j = v as i64;
            assert!(
                (0..extent).contains(&j),
                "indirect index {j} out of bounds (extent {extent})"
            );
            out.push(target.base + j as usize);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Gather the canonical segment contents by directory state: for each
    /// block, copy from the node the directory records as holding current
    /// data (the gather the shared-memory backends use).
    pub fn gather_by_directory(&self) -> Vec<f64> {
        let words = self.dsm.cluster.seg_words();
        let mut out = vec![0.0f64; words];
        for b in 0..self.dsm.cluster.n_blocks() {
            let src = match self.dsm.dir_state(b) {
                fgdsm_protocol::DirState::Excl { owner } => owner,
                _ => self.dsm.cluster.home_of_block(b),
            };
            let (s, e) = self.dsm.cluster.block_words(b);
            out[s..e].copy_from_slice(&self.dsm.cluster.node_mem(src)[s..e]);
        }
        out
    }
}

/// Run `prog` under `cfg` with the given communication backend.
pub(super) fn run(
    prog: &Program,
    cfg: &ExecConfig,
    mut backend: Box<dyn CommBackend>,
) -> RunResult {
    let mut core = EngineCore::new(prog, cfg);
    backend.validate(&core);
    let body = prog.body.clone();
    exec_stmts(&mut core, backend.as_mut(), &body);
    // Final synchronization so the report reflects a completed program.
    backend.finish(&mut core);
    let data = backend.gather(&mut core);
    let (pre_skipped, pre_performed) = backend.pre_stats();
    if let Ok(path) = std::env::var("FGDSM_TRACE") {
        if !path.is_empty() {
            if let Err(e) = std::fs::write(&path, core.dsm.cluster.trace().to_json()) {
                eprintln!("FGDSM_TRACE: cannot write {path}: {e}");
            }
        }
    }
    RunResult {
        report: core.dsm.cluster.report(),
        scalars: core.scalars,
        data,
        metas: core.metas,
        ctl: core.dsm.ctl_stats(),
        pre_skipped,
        pre_performed,
    }
}

fn exec_stmts(core: &mut EngineCore, backend: &mut dyn CommBackend, stmts: &[Stmt]) {
    for s in stmts {
        match s {
            Stmt::Par(l) => exec_par(core, backend, l),
            Stmt::Time { var, count, body } => {
                let saved = core.env.get(*var);
                for t in 0..*count {
                    core.env.set(*var, t);
                    exec_stmts(core, backend, body);
                }
                if let Some(v) = saved {
                    core.env.set(*var, v);
                }
            }
            Stmt::Scalar { name, f } => {
                let v = f(&core.scalars);
                core.scalars.insert(name, v);
                for n in 0..core.cfg.nprocs {
                    core.dsm.cluster.charge(n, 100, ChargeKind::Compute);
                }
            }
        }
    }
}

/// One superstep: backend communication, kernels in node order, write
/// observation, reduction, backend cleanup, superstep boundary.
fn exec_par(core: &mut EngineCore, backend: &mut dyn CommBackend, l: &ParLoop) {
    let nprocs = core.cfg.nprocs;
    let acc = core.analyze(l);
    let acc = &*acc;

    backend.pre_loop(core, l, acc);

    // Kernels, in node order.
    let mut partials = vec![0.0f64; nprocs];
    #[allow(clippy::needless_range_loop)]
    for p in 0..nprocs {
        let iter = &acc.iters[p];
        if iter.iter().any(Range::is_empty) {
            continue;
        }
        let points: u64 = iter.iter().map(Range::count).product();
        let ws_bytes: u64 = acc.sections[p].iter().map(|s| s.count() * 8).sum();
        let factor = core.cfg.cache.factor(ws_bytes);
        let cost = (points as f64 * l.cost_per_iter_ns as f64 * factor) as u64;
        core.dsm.cluster.charge(p, cost, ChargeKind::Compute);
        let mut ctx = KernelCtx {
            mem: core.dsm.cluster.node_mem_mut(p),
            iter,
            env: &core.env,
            scalars: &core.scalars,
            partial: 0.0,
            node: p,
            nprocs,
            handles: &core.handles,
        };
        (l.kernel)(&mut ctx);
        partials[p] = ctx.partial;
    }

    backend.note_kernel_writes(core, l, acc);

    // Reduction.
    if let Some(rs) = l.reduction {
        let v = backend.reduce(core, &partials, rs.op);
        core.scalars.insert(rs.target, v);
    }

    // End of loop: backend cleanup + synchronization, then mark the
    // superstep boundary in the event trace.
    backend.post_loop(core, l, acc);
    core.dsm.cluster.record_superstep();
}
