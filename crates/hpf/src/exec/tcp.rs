//! The socket-backed multi-process distributed backend: `sm_opt`'s full
//! §4.2 contract with every inter-node transfer framed over a real
//! socket to a spawned worker *process*.
//!
//! Like [`super::chan::Chan`], the backend delegates the whole superstep
//! protocol to [`SmOpt`] at the full optimization level — the difference
//! is the data path the engine installs for it: strict wire mode over a
//! [`fgdsm_net::SocketTransport`]. Each node is an `fgdsm-node` child
//! process reached over loopback TCP (or a Unix-domain socket where TCP
//! is forbidden); every envelope is length-prefix framed, decoded by the
//! node with the paranoid wire decoder, applied to the node's own mirror
//! of the shard words, and the reply re-encoded from that memory — so
//! every word a node learns round-tripped through a real kernel socket
//! and a separate address space. Charges and counters stay byte-identical
//! to `sm_opt`, which the determinism suite and the fuzz oracle pin.
//!
//! Failure semantics: a dead node (EOF) surfaces as
//! [`fgdsm_protocol::WireError::PeerGone`], a wedged one as
//! [`fgdsm_protocol::WireError::Timeout`] once the `FGDSM_NET_TIMEOUT_MS`
//! recv deadline fires — both typed, both catchable via
//! [`super::try_execute`].

use super::backend::CommBackend;
use super::engine::EngineCore;
use super::sm_opt::SmOpt;
use crate::analysis::LoopAccess;
use crate::ir::ParLoop;
use crate::plan::OptLevel;
use fgdsm_tempest::ReduceOp;

/// Can the `tcp` backend run here? True when the sandbox lets us bind a
/// loopback TCP or Unix-domain socket (honors `FGDSM_NET`). Callers that
/// get `false` should skip with a notice rather than fail.
pub fn tcp_available() -> bool {
    fgdsm_net::available_kind().is_some()
}

/// `sm_opt(full)` behind the socket transport (see module docs).
pub struct Tcp {
    inner: SmOpt,
}

impl Tcp {
    pub fn new() -> Self {
        Tcp {
            inner: SmOpt::new(OptLevel::full()),
        }
    }
}

impl Default for Tcp {
    fn default() -> Self {
        Self::new()
    }
}

impl CommBackend for Tcp {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn validate(&self, core: &EngineCore) {
        assert!(
            core.dsm.wire_strict(),
            "tcp backend requires strict wire mode (engine installs it)"
        );
        self.inner.validate(core);
    }

    fn resolve(&mut self, core: &mut EngineCore, l: &ParLoop, acc: &LoopAccess) {
        self.inner.resolve(core, l, acc);
    }

    fn note_kernel_writes(&mut self, core: &mut EngineCore, l: &ParLoop, acc: &LoopAccess) {
        self.inner.note_kernel_writes(core, l, acc);
    }

    fn reduce(&mut self, core: &mut EngineCore, partials: &[f64], op: ReduceOp) -> f64 {
        self.inner.reduce(core, partials, op)
    }

    fn post_loop(&mut self, core: &mut EngineCore, l: &ParLoop, acc: &LoopAccess) {
        self.inner.post_loop(core, l, acc);
    }

    fn finish(&mut self, core: &mut EngineCore) {
        self.inner.finish(core);
    }

    fn gather(&mut self, core: &mut EngineCore) -> Vec<f64> {
        self.inner.gather(core)
    }

    fn pre_stats(&self) -> (u64, u64) {
        self.inner.pre_stats()
    }
}
