//! The pluggable communication-backend interface.
//!
//! The BSP superstep driver ([`super::engine`]) is backend-agnostic: for
//! each parallel loop it calls the hooks below in a fixed order, and a
//! backend decides how declared accesses become data movement — default
//! protocol faults, the §4.2 compiler-directed contract, or marshalled
//! messages. The driver never matches on [`super::Backend`].

use super::engine::EngineCore;
use crate::analysis::LoopAccess;
use crate::ir::ParLoop;
use fgdsm_tempest::ReduceOp;

/// One communication strategy for the superstep driver.
///
/// Hook order per parallel loop: [`pre_loop`](CommBackend::pre_loop) →
/// kernels (driver) → [`note_kernel_writes`](CommBackend::note_kernel_writes)
/// → [`reduce`](CommBackend::reduce) (if the loop reduces) →
/// [`post_loop`](CommBackend::post_loop). After the whole program:
/// [`finish`](CommBackend::finish) then [`gather`](CommBackend::gather).
pub trait CommBackend {
    /// Backend name for diagnostics.
    fn name(&self) -> &'static str;

    /// Check configuration invariants before the run starts (e.g. the
    /// §4.2 contract requires a protocol that supports it).
    fn validate(&self, _core: &EngineCore) {}

    /// Make every access the loop declares serviceable before kernels
    /// run: resolve faults, execute the ctl contract, or ship messages.
    fn pre_loop(&mut self, core: &mut EngineCore, l: &ParLoop, acc: &LoopAccess);

    /// Observe the writes the kernels just performed (e.g. PRE's
    /// redundancy cache invalidation).
    fn note_kernel_writes(&mut self, _core: &mut EngineCore, _l: &ParLoop, _acc: &LoopAccess) {}

    /// Combine per-node partial reduction values into the replicated
    /// scalar result, charging the reduction's communication.
    fn reduce(&mut self, core: &mut EngineCore, partials: &[f64], op: ReduceOp) -> f64 {
        core.dsm.cluster.allreduce(partials, op)
    }

    /// End-of-loop cleanup and synchronization (release/barrier for the
    /// shared-memory backends; nothing for message passing, which
    /// synchronizes point-to-point).
    fn post_loop(&mut self, core: &mut EngineCore, l: &ParLoop, acc: &LoopAccess);

    /// Final synchronization after the whole program.
    fn finish(&mut self, core: &mut EngineCore);

    /// Gather the canonical segment contents from the node copies.
    fn gather(&mut self, core: &mut EngineCore) -> Vec<f64>;

    /// PRE statistics `(skipped, performed)`; zero for backends without
    /// the redundancy-elimination extension.
    fn pre_stats(&self) -> (u64, u64) {
        (0, 0)
    }
}
