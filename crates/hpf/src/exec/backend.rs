//! The pluggable communication-backend interface.
//!
//! The BSP superstep driver ([`super::engine`]) is backend-agnostic: for
//! each parallel loop it calls the hooks below in a fixed order, and a
//! backend decides how declared accesses become data movement — default
//! protocol faults, the §4.2 compiler-directed contract, or marshalled
//! messages. The driver never matches on [`super::Backend`].

use super::engine::EngineCore;
use crate::analysis::LoopAccess;
use crate::ir::ParLoop;
use fgdsm_tempest::ReduceOp;

/// One communication strategy for the superstep driver.
///
/// Hook order per parallel loop: [`resolve`](CommBackend::resolve) →
/// compute phase (driver: kernels on their own shards, possibly on real
/// threads) → [`note_kernel_writes`](CommBackend::note_kernel_writes)
/// → [`reduce`](CommBackend::reduce) (if the loop reduces) →
/// [`post_loop`](CommBackend::post_loop). After the whole program:
/// [`finish`](CommBackend::finish) then [`gather`](CommBackend::gather).
///
/// `resolve` *is* the superstep's resolve phase: it is driven from the
/// driver thread with the whole cluster in scope (bulk data movement may
/// fan out over `EngineCore::resolve_workers` threads through the
/// plan/apply pipeline) and must leave every access the loop declares
/// serviceable from the accessing node's own shard — after it returns,
/// the driver assumes kernels perform zero cross-node access. Everything
/// after the kernels (`note_kernel_writes`, `reduce`, `post_loop`) runs
/// on the driver thread again.
pub trait CommBackend {
    /// Backend name for diagnostics.
    fn name(&self) -> &'static str;

    /// Check configuration invariants before the run starts (e.g. the
    /// §4.2 contract requires a protocol that supports it).
    fn validate(&self, _core: &EngineCore) {}

    /// The resolve phase: discover and service every cross-node transfer
    /// the loop needs — resolve faults, execute the ctl contract, or ship
    /// messages — against the state the previous superstep left behind.
    fn resolve(&mut self, core: &mut EngineCore, l: &ParLoop, acc: &LoopAccess);

    /// Observe the writes the kernels just performed (e.g. PRE's
    /// redundancy cache invalidation).
    fn note_kernel_writes(&mut self, _core: &mut EngineCore, _l: &ParLoop, _acc: &LoopAccess) {}

    /// Combine per-node partial reduction values into the replicated
    /// scalar result, charging the reduction's communication.
    fn reduce(&mut self, core: &mut EngineCore, partials: &[f64], op: ReduceOp) -> f64 {
        core.dsm.cluster.allreduce(partials, op)
    }

    /// End-of-loop cleanup and synchronization (release/barrier for the
    /// shared-memory backends; nothing for message passing, which
    /// synchronizes point-to-point).
    fn post_loop(&mut self, core: &mut EngineCore, l: &ParLoop, acc: &LoopAccess);

    /// Final synchronization after the whole program.
    fn finish(&mut self, core: &mut EngineCore);

    /// Gather the canonical segment contents from the node copies.
    fn gather(&mut self, core: &mut EngineCore) -> Vec<f64>;

    /// PRE statistics `(skipped, performed)`; zero for backends without
    /// the redundancy-elimination extension.
    fn pre_stats(&self) -> (u64, u64) {
        (0, 0)
    }
}
