//! The unoptimized shared-memory backend: default protocol only.

use super::backend::CommBackend;
use super::engine::EngineCore;
use crate::analysis::LoopAccess;
use crate::ir::ParLoop;

/// Every remote access goes through the default protocol: before a loop's
/// kernels run, each node's declared read/write sections are resolved
/// block-by-block (faults, invalidations, 4-hop forwards) — exactly what
/// the authors' unoptimized shared-memory compiler emits.
pub struct SmUnopt;

impl CommBackend for SmUnopt {
    fn name(&self) -> &'static str {
        "sm-unopt"
    }

    fn resolve(&mut self, core: &mut EngineCore, l: &ParLoop, acc: &LoopAccess) {
        core.resolve_default(l, acc);
    }

    fn post_loop(&mut self, core: &mut EngineCore, _l: &ParLoop, _acc: &LoopAccess) {
        core.dsm.release_barrier();
    }

    fn finish(&mut self, core: &mut EngineCore) {
        core.dsm.release_barrier();
    }

    fn gather(&mut self, core: &mut EngineCore) -> Vec<f64> {
        core.gather_by_directory()
    }
}
