//! Lowering access sets to cache-block ranges and optimization levels.
//!
//! `shmem_limits` (§4.2, Figure 2A): a transfer section is linearized to
//! contiguous (or 2-D strided) virtual-address runs, and each run is
//! shrunk to the whole blocks strictly inside it. The whole blocks go
//! under compiler control; the head/tail *boundary* words stay with the
//! default protocol — this is what limits `grav` (small extents, edge
//! effects "pronounced at 128-byte blocksize") and late `lu` iterations.

use crate::dist::ArrayId;
use fgdsm_section::{block_subset, ColumnMajor, LinearRanges, Section};

/// Which of the paper's optimizations are enabled (Figure 4's ablation).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OptLevel {
    /// Compiler-orchestrated sender-initiated transfers (§4.2). Off ⇒
    /// pure default protocol.
    pub ctl: bool,
    /// Bulk transfer: group contiguous blocks into large payloads (§4.2).
    pub bulk: bool,
    /// Run-time overhead elimination: drop `mk_writable` /
    /// `implicit_invalidate` and their barriers, memoize
    /// `implicit_writable` (§4.3).
    pub rtoe: bool,
    /// PRE-style redundant-communication elimination (§4.3 / future
    /// work): skip a transfer whose data is still valid at the reader.
    pub pre: bool,
}

impl OptLevel {
    /// No optimizations: the unoptimized shared-memory baseline.
    pub fn unopt() -> Self {
        OptLevel {
            ctl: false,
            bulk: false,
            rtoe: false,
            pre: false,
        }
    }

    /// Figure 4 "base optimizations": sender-initiated transfers only.
    pub fn base() -> Self {
        OptLevel {
            ctl: true,
            bulk: false,
            rtoe: false,
            pre: false,
        }
    }

    /// Figure 4 second bar: base + bulk transfer.
    pub fn base_bulk() -> Self {
        OptLevel {
            ctl: true,
            bulk: true,
            rtoe: false,
            pre: false,
        }
    }

    /// Figure 4 third bar (the paper's full optimization set): base +
    /// bulk + run-time overhead elimination.
    pub fn full() -> Self {
        OptLevel {
            ctl: true,
            bulk: true,
            rtoe: true,
            pre: false,
        }
    }

    /// Full plus the PRE-based redundant-communication elimination the
    /// paper leaves as future work.
    pub fn full_pre() -> Self {
        OptLevel {
            ctl: true,
            bulk: true,
            rtoe: true,
            pre: true,
        }
    }

    /// Every meaningful toggle combination: the unoptimized baseline plus
    /// all eight `ctl = true` settings of bulk × rtoe × pre (the other
    /// flags are dead when `ctl` is off). The differential-testing oracle
    /// walks this list.
    pub fn all_combos() -> Vec<Self> {
        let mut out = vec![OptLevel::unopt()];
        for bits in 0..8u8 {
            out.push(OptLevel {
                ctl: true,
                bulk: bits & 1 != 0,
                rtoe: bits & 2 != 0,
                pre: bits & 4 != 0,
            });
        }
        out
    }
}

/// Placement of one array in the global segment.
#[derive(Clone, Debug)]
pub struct ArrayMeta {
    pub id: ArrayId,
    /// Word offset of the array base (page-aligned).
    pub base: usize,
    pub layout: ColumnMajor,
}

impl ArrayMeta {
    /// Linearize a section of this array to absolute word runs in the
    /// global segment. Returns `None` for shapes the compiler declines to
    /// optimize (never happens for the shapes our distributions produce).
    pub fn runs(&self, sec: &Section) -> Option<LinearRanges> {
        let mut lr = self.layout.linearize(sec)?;
        for r in &mut lr.runs {
            r.base += self.base;
        }
        Some(lr)
    }

    /// Absolute word offset of an element.
    pub fn offset(&self, index: &[i64]) -> usize {
        self.base + self.layout.offset(index)
    }
}

/// The `shmem_limits` result for one transfer: whole-block ranges under
/// compiler control plus boundary word runs left to the default protocol.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CtlRanges {
    /// Block ranges `[first, end)` fully covered by the section.
    pub ctl: Vec<(usize, usize)>,
    /// Boundary word runs `(start_word, len)` not block-aligned.
    pub boundary: Vec<(usize, usize)>,
}

impl CtlRanges {
    /// Total blocks under compiler control.
    pub fn ctl_blocks(&self) -> usize {
        self.ctl.iter().map(|(f, e)| e - f).sum()
    }

    /// Total boundary words.
    pub fn boundary_words(&self) -> usize {
        self.boundary.iter().map(|(_, l)| l).sum()
    }
}

/// Apply `shmem_limits` to every run of a linearized section.
pub fn shmem_limits(runs: &LinearRanges, words_per_block: usize) -> CtlRanges {
    let bs = words_per_block * 8;
    let mut out = CtlRanges::default();
    for (start, len) in runs.iter_runs() {
        if len == 0 {
            continue;
        }
        let sub = block_subset(start * 8, (start + len) * 8, bs);
        if sub.is_empty() {
            out.boundary.push((start, len));
            continue;
        }
        if sub.head_bytes > 0 {
            out.boundary.push((start, sub.head_bytes / 8));
        }
        out.ctl.push((sub.first_block, sub.end_block));
        if sub.tail_bytes > 0 {
            out.boundary
                .push((sub.end_block * words_per_block, sub.tail_bytes / 8));
        }
    }
    // Coalesce adjacent ctl ranges (several exactly-adjacent runs, e.g.
    // whole columns, merge into one range → one bulk train).
    out.ctl.sort_unstable();
    let mut merged: Vec<(usize, usize)> = Vec::with_capacity(out.ctl.len());
    for (f, e) in out.ctl.drain(..) {
        match merged.last_mut() {
            Some(last) if last.1 == f => last.1 = e,
            _ => merged.push((f, e)),
        }
    }
    out.ctl = merged;
    out
}

/// Blocks covered (fully or partially) by a set of word runs — the blocks
/// the *default* protocol must make accessible for the section.
pub fn covering_blocks(runs: &LinearRanges, words_per_block: usize) -> Vec<(usize, usize)> {
    let mut merged = Vec::new();
    covering_blocks_into(runs, words_per_block, &mut merged);
    merged
}

/// [`covering_blocks`] writing into a caller-supplied buffer (cleared
/// first) so the engine's per-superstep resolve scratch can recycle its
/// capacity instead of reallocating.
pub fn covering_blocks_into(
    runs: &LinearRanges,
    words_per_block: usize,
    merged: &mut Vec<(usize, usize)>,
) {
    merged.clear();
    let mut out: Vec<(usize, usize)> = Vec::new();
    for (start, len) in runs.iter_runs() {
        if len == 0 {
            continue;
        }
        let f = start / words_per_block;
        let e = (start + len).div_ceil(words_per_block);
        out.push((f, e));
    }
    out.sort_unstable();
    for (f, e) in out {
        match merged.last_mut() {
            Some(last) if f <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((f, e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdsm_section::{Range, StridedRange};

    fn runs_of(v: &[(usize, usize)]) -> LinearRanges {
        LinearRanges {
            runs: v
                .iter()
                .map(|&(base, run_len)| StridedRange {
                    base,
                    run_len,
                    stride: 0,
                    count: 1,
                })
                .collect(),
        }
    }

    #[test]
    fn shmem_limits_aligned_column() {
        // One run of 256 words starting block-aligned: all ctl, no boundary.
        let cr = shmem_limits(&runs_of(&[(256, 256)]), 16);
        assert_eq!(cr.ctl, vec![(16, 32)]);
        assert!(cr.boundary.is_empty());
        assert_eq!(cr.ctl_blocks(), 16);
    }

    #[test]
    fn shmem_limits_unaligned_has_boundaries() {
        // Run 10..300: head 10..16, ctl blocks 1..18, tail 288..300.
        let cr = shmem_limits(&runs_of(&[(10, 290)]), 16);
        assert_eq!(cr.ctl, vec![(1, 18)]);
        assert_eq!(cr.boundary, vec![(10, 6), (288, 12)]);
        assert_eq!(cr.boundary_words(), 18);
    }

    #[test]
    fn shmem_limits_tiny_run_all_boundary() {
        let cr = shmem_limits(&runs_of(&[(3, 8)]), 16);
        assert!(cr.ctl.is_empty());
        assert_eq!(cr.boundary, vec![(3, 8)]);
    }

    #[test]
    fn shmem_limits_merges_adjacent() {
        // Two adjacent aligned runs merge into one ctl range.
        let cr = shmem_limits(&runs_of(&[(0, 128), (128, 128)]), 16);
        assert_eq!(cr.ctl, vec![(0, 16)]);
    }

    #[test]
    fn covering_blocks_rounds_out() {
        let cb = covering_blocks(&runs_of(&[(10, 10)]), 16);
        assert_eq!(cb, vec![(0, 2)]);
        let cb2 = covering_blocks(&runs_of(&[(0, 16), (16, 16)]), 16);
        assert_eq!(cb2, vec![(0, 2)]);
        let cb3 = covering_blocks(&runs_of(&[(0, 8), (64, 8)]), 16);
        assert_eq!(cb3, vec![(0, 1), (4, 5)]);
    }

    #[test]
    fn meta_runs_shift_by_base() {
        let meta = ArrayMeta {
            id: ArrayId(0),
            base: 1024,
            layout: ColumnMajor::new(&[8, 8]),
        };
        let sec = Section::new(vec![Range::new(0, 7), Range::new(2, 3)]);
        let lr = meta.runs(&sec).unwrap();
        let runs: Vec<_> = lr.iter_runs().collect();
        assert_eq!(runs[0].0, 1024 + 16);
    }

    #[test]
    fn opt_level_presets() {
        assert!(!OptLevel::unopt().ctl);
        assert!(OptLevel::base().ctl && !OptLevel::base().bulk);
        assert!(OptLevel::base_bulk().bulk && !OptLevel::base_bulk().rtoe);
        assert!(OptLevel::full().rtoe && !OptLevel::full().pre);
        assert!(OptLevel::full_pre().pre);
    }
}
