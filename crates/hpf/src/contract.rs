//! The §4.2 compiler/run-time contract as a checkable predicate.
//!
//! The optimized executor takes blocks out of directory coherence for the
//! duration of a compiler-controlled window: `mk_writable` installs an
//! exclusive owner, `implicit_writable` opens a writable window at a
//! non-owner without telling the directory, `send_range`/`ready_to_recv`
//! push data into open windows, `flush_range` returns a window-holder's
//! writes to the owner, and `implicit_invalidate` closes the window. The
//! directory stays deliberately wrong (Figure 2C–2E) — the contract is
//! what makes that safe.
//!
//! [`ContractTracker`] is that contract as executable legality rules:
//! feed it the [`CtlOp`] stream of a run and it errs on the first
//! primitive the contract forbids. The `fgdsm-model` checker uses it as
//! the guard for every candidate ctl action, so the state space it
//! explores is exactly the space of contract-legal interleavings — and a
//! seeded mutation that breaks a rule surfaces as a checker
//! counterexample rather than silent corruption.

use fgdsm_tempest::NodeId;
use std::collections::BTreeSet;

/// One contract-relevant action, in program order. Block indices are the
/// protocol's cache-block indices; ranges are `[first, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtlOp {
    /// `owner` takes the range exclusively (invalidating every copy).
    MkWritable {
        owner: NodeId,
        first: usize,
        end: usize,
    },
    /// `node` opens a writable window over the owner's range without a
    /// directory transition.
    ImplicitWritable {
        node: NodeId,
        first: usize,
        end: usize,
    },
    /// The owner pushes the range into `reader`'s open window.
    SendRange {
        owner: NodeId,
        reader: NodeId,
        first: usize,
        end: usize,
    },
    /// `node` commits to having received every pending push.
    ReadyToRecv { node: NodeId },
    /// `node` closes its window over the range, discarding its copy.
    ImplicitInvalidate {
        node: NodeId,
        first: usize,
        end: usize,
    },
    /// `writer` returns its window-copy of the owner's range.
    FlushRange {
        writer: NodeId,
        owner: NodeId,
        first: usize,
        end: usize,
    },
    /// An ordinary store by `node` to one block (the contract constrains
    /// who may write while windows are open).
    Write { node: NodeId, block: usize },
    /// A release barrier ends the interval.
    Release,
}

/// Per-block contract state.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
struct BlockState {
    /// The exclusive owner `mk_writable` installed (None until the block
    /// first comes under compiler control or a free write claims it).
    owner: Option<NodeId>,
    /// Nodes holding an open `implicit_writable` window.
    windows: u64,
    /// Window-holders that have written and not yet flushed.
    dirty: u64,
}

/// The contract as a little operational semantics: legal ops advance the
/// state, illegal ops return `Err` naming the violated rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContractTracker {
    blocks: Vec<BlockState>,
    /// Blocks with a push in flight toward each node (cleared by
    /// `ReadyToRecv`).
    pending: Vec<BTreeSet<usize>>,
}

#[inline]
fn bit(n: NodeId) -> u64 {
    debug_assert!(n < 64);
    1u64 << n
}

impl ContractTracker {
    /// A tracker over `n_blocks` blocks and `nprocs` nodes, with no
    /// owners, windows, or pending pushes.
    pub fn new(nprocs: usize, n_blocks: usize) -> Self {
        ContractTracker {
            blocks: vec![BlockState::default(); n_blocks],
            pending: vec![BTreeSet::new(); nprocs],
        }
    }

    // ---- from-parts constructors (the model derives a tracker from an
    // ---- abstract state rather than replaying history) ----

    /// Record `node` as the exclusive owner of `b`.
    pub fn set_owner(&mut self, b: usize, node: NodeId) {
        self.blocks[b].owner = Some(node);
    }

    /// Record an open window at `node` over `b`.
    pub fn open_window(&mut self, b: usize, node: NodeId) {
        self.blocks[b].windows |= bit(node);
    }

    /// Record unflushed window writes by `node` to `b`.
    pub fn mark_dirty(&mut self, b: usize, node: NodeId) {
        self.blocks[b].dirty |= bit(node);
    }

    /// Record an in-flight push of `b` toward `node`.
    pub fn add_pending(&mut self, node: NodeId, b: usize) {
        self.pending[node].insert(b);
    }

    // ---- read-side accessors ----

    /// The recorded exclusive owner of `b`, if any.
    pub fn owner(&self, b: usize) -> Option<NodeId> {
        self.blocks[b].owner
    }

    /// Whether `node` holds an open window over `b`.
    pub fn window_open(&self, b: usize, node: NodeId) -> bool {
        self.blocks[b].windows & bit(node) != 0
    }

    /// Whether `node` has unflushed window writes to `b`.
    pub fn is_dirty(&self, b: usize, node: NodeId) -> bool {
        self.blocks[b].dirty & bit(node) != 0
    }

    /// Whether any push toward `node` is still pending.
    pub fn has_pending(&self, node: NodeId) -> bool {
        !self.pending[node].is_empty()
    }

    /// Advance by one op, or report the first contract rule it violates.
    pub fn step(&mut self, op: CtlOp) -> Result<(), String> {
        match op {
            CtlOp::MkWritable { owner, first, end } => {
                for b in first..end {
                    let st = &mut self.blocks[b];
                    if st.windows & !bit(owner) != 0 {
                        return Err(format!(
                            "mk_writable(owner={owner}) on block {b} while a foreign \
                             window is open (mask {:#x})",
                            st.windows
                        ));
                    }
                    st.owner = Some(owner);
                    // Taking ownership subsumes the node's own window.
                    st.windows &= !bit(owner);
                    st.dirty &= !bit(owner);
                }
                Ok(())
            }
            CtlOp::ImplicitWritable { node, first, end } => {
                for b in first..end {
                    let st = &mut self.blocks[b];
                    if st.owner == Some(node) {
                        return Err(format!(
                            "implicit_writable by node {node}, the owner of block {b}: \
                             owners write directly"
                        ));
                    }
                    if st.windows & bit(node) != 0 {
                        return Err(format!(
                            "implicit_writable reopens node {node}'s already-open \
                             window on block {b}"
                        ));
                    }
                    st.windows |= bit(node);
                }
                Ok(())
            }
            CtlOp::SendRange {
                owner,
                reader,
                first,
                end,
            } => {
                if reader == owner {
                    return Err(format!("send_range from node {owner} to itself"));
                }
                for b in first..end {
                    let st = &self.blocks[b];
                    if st.owner != Some(owner) {
                        return Err(format!(
                            "send_range by node {owner} of block {b}, owned by {:?}",
                            st.owner
                        ));
                    }
                    if st.windows & bit(reader) == 0 {
                        return Err(format!(
                            "send_range of block {b} into node {reader}'s closed window"
                        ));
                    }
                    if st.dirty & bit(reader) != 0 {
                        return Err(format!(
                            "send_range of block {b} would overwrite node {reader}'s \
                             dirty window copy"
                        ));
                    }
                    if self.pending[reader].contains(&b) {
                        return Err(format!(
                            "send_range re-pushes block {b} to node {reader} before \
                             ready_to_recv"
                        ));
                    }
                }
                for b in first..end {
                    self.pending[reader].insert(b);
                }
                Ok(())
            }
            CtlOp::ReadyToRecv { node } => {
                if self.pending[node].is_empty() {
                    return Err(format!(
                        "ready_to_recv at node {node} with no pending delivery"
                    ));
                }
                self.pending[node].clear();
                Ok(())
            }
            CtlOp::ImplicitInvalidate { node, first, end } => {
                for b in first..end {
                    let st = &self.blocks[b];
                    if st.windows & bit(node) == 0 {
                        return Err(format!(
                            "implicit_invalidate of block {b} at node {node}, whose \
                             window is not open"
                        ));
                    }
                    if st.dirty & bit(node) != 0 {
                        return Err(format!(
                            "implicit_invalidate of block {b} would discard node \
                             {node}'s dirty data: flush_range first"
                        ));
                    }
                    if self.pending[node].contains(&b) {
                        return Err(format!(
                            "implicit_invalidate of block {b} at node {node} with a \
                             push still pending"
                        ));
                    }
                }
                for b in first..end {
                    self.blocks[b].windows &= !bit(node);
                }
                Ok(())
            }
            CtlOp::FlushRange {
                writer,
                owner,
                first,
                end,
            } => {
                if writer == owner {
                    return Err(format!("flush_range from node {writer} to itself"));
                }
                for b in first..end {
                    let st = &self.blocks[b];
                    if st.owner != Some(owner) {
                        return Err(format!(
                            "flush_range of block {b} toward node {owner}, but the \
                             owner is {:?}",
                            st.owner
                        ));
                    }
                    if st.windows & bit(writer) == 0 {
                        return Err(format!(
                            "flush_range of block {b} by node {writer}, whose window \
                             is not open"
                        ));
                    }
                    if st.dirty & bit(writer) == 0 {
                        return Err(format!(
                            "flush_range of block {b} by node {writer}, which wrote \
                             nothing"
                        ));
                    }
                }
                for b in first..end {
                    // The window stays open (§4.3: the memo survives a
                    // flush) — only the dirty data went home.
                    self.blocks[b].dirty &= !bit(writer);
                }
                Ok(())
            }
            CtlOp::Write { node, block } => {
                let st = &mut self.blocks[block];
                if st.windows != 0 {
                    if st.windows & bit(node) != 0 {
                        st.dirty |= bit(node);
                    } else if st.owner != Some(node) {
                        return Err(format!(
                            "write to block {block} by node {node} while windows are \
                             open: only the owner or a window-holder may write"
                        ));
                    }
                } else {
                    // No windows: an ordinary coherent write — the
                    // protocol grants exclusivity to the writer.
                    st.owner = Some(node);
                }
                Ok(())
            }
            CtlOp::Release => {
                for (b, st) in self.blocks.iter().enumerate() {
                    if st.dirty != 0 {
                        return Err(format!(
                            "release with unflushed dirty window copies of block {b} \
                             (mask {:#x})",
                            st.dirty
                        ));
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> ContractTracker {
        ContractTracker::new(3, 4)
    }

    /// The canonical legal window: mk_writable → implicit_writable →
    /// send_range → ready_to_recv → window write → flush_range →
    /// implicit_invalidate → release.
    #[test]
    fn legal_window_lifecycle() {
        let mut c = t();
        for op in [
            CtlOp::MkWritable {
                owner: 0,
                first: 0,
                end: 2,
            },
            CtlOp::ImplicitWritable {
                node: 1,
                first: 0,
                end: 2,
            },
            CtlOp::SendRange {
                owner: 0,
                reader: 1,
                first: 0,
                end: 2,
            },
            CtlOp::ReadyToRecv { node: 1 },
            CtlOp::Write { node: 1, block: 0 },
            CtlOp::FlushRange {
                writer: 1,
                owner: 0,
                first: 0,
                end: 1,
            },
            CtlOp::ImplicitInvalidate {
                node: 1,
                first: 0,
                end: 2,
            },
            CtlOp::Release,
        ] {
            c.step(op).unwrap_or_else(|e| panic!("{op:?}: {e}"));
        }
    }

    #[test]
    fn send_needs_ownership_and_open_window() {
        let mut c = t();
        c.step(CtlOp::MkWritable {
            owner: 0,
            first: 0,
            end: 1,
        })
        .unwrap();
        // Closed window at the reader.
        assert!(c
            .step(CtlOp::SendRange {
                owner: 0,
                reader: 1,
                first: 0,
                end: 1
            })
            .is_err());
        // Wrong owner.
        c.step(CtlOp::ImplicitWritable {
            node: 1,
            first: 0,
            end: 1,
        })
        .unwrap();
        assert!(c
            .step(CtlOp::SendRange {
                owner: 2,
                reader: 1,
                first: 0,
                end: 1
            })
            .is_err());
    }

    #[test]
    fn dirty_window_blocks_invalidate_and_release() {
        let mut c = t();
        c.step(CtlOp::MkWritable {
            owner: 0,
            first: 0,
            end: 1,
        })
        .unwrap();
        c.step(CtlOp::ImplicitWritable {
            node: 1,
            first: 0,
            end: 1,
        })
        .unwrap();
        c.step(CtlOp::Write { node: 1, block: 0 }).unwrap();
        assert!(c
            .step(CtlOp::ImplicitInvalidate {
                node: 1,
                first: 0,
                end: 1
            })
            .is_err());
        assert!(c.step(CtlOp::Release).is_err());
        c.step(CtlOp::FlushRange {
            writer: 1,
            owner: 0,
            first: 0,
            end: 1,
        })
        .unwrap();
        c.step(CtlOp::Release).unwrap();
        // §4.3: the window survived the flush.
        assert!(c.window_open(0, 1));
    }

    #[test]
    fn ready_to_recv_requires_a_pending_push() {
        let mut c = t();
        assert!(c.step(CtlOp::ReadyToRecv { node: 1 }).is_err());
    }

    #[test]
    fn third_party_write_during_window_is_illegal() {
        let mut c = t();
        c.step(CtlOp::MkWritable {
            owner: 0,
            first: 0,
            end: 1,
        })
        .unwrap();
        c.step(CtlOp::ImplicitWritable {
            node: 1,
            first: 0,
            end: 1,
        })
        .unwrap();
        assert!(c.step(CtlOp::Write { node: 2, block: 0 }).is_err());
        // The owner itself may still write.
        c.step(CtlOp::Write { node: 0, block: 0 }).unwrap();
    }

    #[test]
    fn free_write_claims_ownership() {
        let mut c = t();
        c.step(CtlOp::Write { node: 2, block: 3 }).unwrap();
        assert_eq!(c.owner(3), Some(2));
    }
}
