//! HPF data distributions and the owner relation (§4.1).
//!
//! The paper's simplifying assumption, kept here: "only the last dimension
//! of a global array is distributed (either blockwise or cyclically) on a
//! linear arrangement of processors". The *owner* of element `a(..., j)`
//! is the processor the distribution logically places column/plane `j` on
//! — distinct from the *home* node of the underlying page, which Tempest
//! assigns independently.

use fgdsm_section::{ColumnMajor, Range, Section};

/// Distribution of an array's last dimension over processors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dist {
    /// `(*,...,BLOCK)`: contiguous chunks of ⌈N/P⌉ columns per processor.
    Block,
    /// `(*,...,CYCLIC)`: column `j` on processor `j mod P`.
    Cyclic,
    /// Replicated: every processor logically owns the whole array (used
    /// for small read-mostly arrays); no non-owner sets arise.
    Replicated,
}

/// Identifier of a distributed array inside a [`crate::ir::Program`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ArrayId(pub usize);

/// Declaration of one distributed array.
#[derive(Clone, Debug)]
pub struct ArrayDecl {
    pub name: &'static str,
    pub extents: Vec<usize>,
    pub dist: Dist,
}

impl ArrayDecl {
    /// Column-major layout of the array.
    pub fn layout(&self) -> ColumnMajor {
        ColumnMajor::new(&self.extents)
    }

    /// Total elements.
    pub fn len(&self) -> usize {
        self.extents.iter().product()
    }

    /// True if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extent of the distributed (last) dimension.
    pub fn dist_extent(&self) -> usize {
        *self.extents.last().expect("arrays have ≥1 dimension")
    }

    /// The range of last-dimension indices processor `p` of `nprocs` owns.
    pub fn owner_range(&self, p: usize, nprocs: usize) -> Range {
        let n = self.dist_extent() as i64;
        match self.dist {
            Dist::Block => {
                let chunk = (n + nprocs as i64 - 1) / nprocs as i64;
                let lo = p as i64 * chunk;
                let hi = ((p as i64 + 1) * chunk - 1).min(n - 1);
                if lo > hi {
                    Range::empty()
                } else {
                    Range::new(lo, hi)
                }
            }
            Dist::Cyclic => {
                if (p as i64) >= n {
                    Range::empty()
                } else {
                    let last = p as i64 + ((n - 1 - p as i64) / nprocs as i64) * nprocs as i64;
                    Range::strided(p as i64, last, nprocs as i64)
                }
            }
            Dist::Replicated => Range::new(0, n - 1),
        }
    }

    /// The full section processor `p` owns: all of every dimension except
    /// the distributed last one.
    pub fn owner_section(&self, p: usize, nprocs: usize) -> Section {
        let mut dims: Vec<Range> = self
            .extents
            .iter()
            .map(|&e| Range::new(0, e as i64 - 1))
            .collect();
        *dims.last_mut().unwrap() = self.owner_range(p, nprocs);
        Section::new(dims)
    }

    /// Owner of last-dimension index `j`.
    pub fn owner_of(&self, j: i64, nprocs: usize) -> usize {
        debug_assert!(j >= 0 && (j as usize) < self.dist_extent());
        match self.dist {
            Dist::Block => {
                let n = self.dist_extent() as i64;
                let chunk = (n + nprocs as i64 - 1) / nprocs as i64;
                (j / chunk) as usize
            }
            Dist::Cyclic => (j as usize) % nprocs,
            Dist::Replicated => 0,
        }
    }

    /// Bytes of memory the array occupies (for Table 2).
    pub fn bytes(&self) -> usize {
        self.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(dist: Dist, extents: &[usize]) -> ArrayDecl {
        ArrayDecl {
            name: "a",
            extents: extents.to_vec(),
            dist,
        }
    }

    #[test]
    fn block_owner_ranges_partition() {
        let a = arr(Dist::Block, &[16, 100]);
        let mut total = 0;
        for p in 0..8 {
            let r = a.owner_range(p, 8);
            total += r.count();
            for j in r.iter() {
                assert_eq!(a.owner_of(j, 8), p);
            }
        }
        assert_eq!(total, 100);
    }

    #[test]
    fn block_uneven_tail() {
        let a = arr(Dist::Block, &[4, 10]);
        // chunk = ceil(10/4) = 3: p0:0-2 p1:3-5 p2:6-8 p3:9
        assert_eq!(a.owner_range(0, 4), Range::new(0, 2));
        assert_eq!(a.owner_range(3, 4), Range::new(9, 9));
        let a2 = arr(Dist::Block, &[4, 8]);
        // chunk = 2, all even
        assert_eq!(a2.owner_range(3, 4), Range::new(6, 7));
    }

    #[test]
    fn cyclic_owner_ranges_partition() {
        let a = arr(Dist::Cyclic, &[8, 37]);
        let mut total = 0;
        for p in 0..8 {
            let r = a.owner_range(p, 8);
            total += r.count();
            for j in r.iter() {
                assert_eq!(a.owner_of(j, 8), p);
            }
        }
        assert_eq!(total, 37);
        assert_eq!(a.owner_range(0, 8), Range::strided(0, 32, 8));
        assert_eq!(a.owner_range(4, 8), Range::strided(4, 36, 8));
    }

    #[test]
    fn owner_section_shape() {
        let a = arr(Dist::Block, &[16, 100]);
        let s = a.owner_section(2, 4);
        assert_eq!(s.dims[0], Range::new(0, 15));
        assert_eq!(s.dims[1], Range::new(50, 74));
    }

    #[test]
    fn replicated_owns_everything() {
        let a = arr(Dist::Replicated, &[8, 8]);
        for p in 0..4 {
            assert_eq!(a.owner_range(p, 4).count(), 8);
        }
    }

    #[test]
    fn more_procs_than_columns() {
        let a = arr(Dist::Block, &[4, 3]);
        // chunk = 1: p0,p1,p2 own one column; p3 owns none.
        assert!(a.owner_range(3, 4).is_empty());
        assert_eq!(a.owner_range(2, 4), Range::new(2, 2));
    }
}
