//! # fgdsm-hpf: the paper's primary contribution
//!
//! A mini-HPF front end and the compiler passes of §4:
//!
//! * [`dist`] — HPF data distributions (last-dimension BLOCK/CYCLIC) and
//!   the owner relation;
//! * [`ir`] — the program representation: distributed arrays,
//!   INDEPENDENT parallel loops with affine array references, sequential
//!   time loops, reductions, and native kernels;
//! * [`analysis`] — access-set analysis: non-owner-read / non-owner-write
//!   sets per processor, split into point-to-point transfers (§4.1);
//! * [`plan`] — `shmem_limits` block subsetting and the optimization
//!   levels of Figure 4 (base / +bulk / +run-time-overhead-elimination),
//!   plus the PRE extension;
//! * [`redundancy`] — the transfer cache behind redundant-communication
//!   elimination (§4.3);
//! * [`report`] — `-Minfo`-style diagnostics of the per-loop analysis
//!   and planning decisions;
//! * [`exec`] — execution: a backend-agnostic BSP superstep driver
//!   ([`exec::engine`]) plus four pluggable communication backends
//!   behind the [`exec::backend::CommBackend`] trait — unoptimized
//!   shared memory ([`exec::sm_unopt`]), optimized shared memory with
//!   compiler-orchestrated incoherence ([`exec::sm_opt`]), message
//!   passing ([`exec::mp`]), and a channel-backed distributed backend
//!   whose every transfer round-trips through encoded wire envelopes
//!   ([`exec::chan`], `FGDSM_WIRE=strict` forces the same discipline on
//!   the others) — all over the same program. Set `FGDSM_TRACE=<path>`
//!   to export a run's structured event trace as JSON.

pub mod analysis;
pub mod contract;
pub mod dist;
pub mod exec;
pub mod ir;
pub mod plan;
pub mod redundancy;
pub mod report;

pub use analysis::{analyze, LoopAccess, Transfer};
pub use contract::{ContractTracker, CtlOp};
pub use dist::{ArrayDecl, ArrayId, Dist};
pub use exec::{
    execute, execute_profiled, execute_reference, execute_traced, tcp_available, try_execute,
    Backend, ExecConfig, ExecError, InjectConfig, MetricsMode, ParallelMode, PlannedXfer, PoolMode,
    ReferenceResult, RunResult, WireMode,
};
pub use ir::{
    ARef, ArrayHandle, CompDist, Kernel, KernelCtx, KernelFn, ParLoop, Program, ProgramBuilder,
    ReduceSpec, RefMode, Stmt, Subscript,
};
pub use plan::{covering_blocks, shmem_limits, ArrayMeta, CtlRanges, OptLevel};
pub use redundancy::PreCache;
pub use report::{analyze_program, render, LoopReport, TransferReport};
