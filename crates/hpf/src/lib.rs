//! # fgdsm-hpf: the paper's primary contribution
//!
//! A mini-HPF front end and the compiler passes of §4:
//!
//! * [`dist`] — HPF data distributions (last-dimension BLOCK/CYCLIC) and
//!   the owner relation;
//! * [`ir`] — the program representation: distributed arrays,
//!   INDEPENDENT parallel loops with affine array references, sequential
//!   time loops, reductions, and native kernels;
//! * [`analysis`] — access-set analysis: non-owner-read / non-owner-write
//!   sets per processor, split into point-to-point transfers (§4.1);
//! * [`plan`] — `shmem_limits` block subsetting and the optimization
//!   levels of Figure 4 (base / +bulk / +run-time-overhead-elimination),
//!   plus the PRE extension;
//! * [`redundancy`] — the transfer cache behind redundant-communication
//!   elimination (§4.3);
//! * [`report`] — `-Minfo`-style diagnostics of the per-loop analysis
//!   and planning decisions;
//! * [`exec`] — executors: unoptimized shared memory (default protocol
//!   only), optimized shared memory (compiler-orchestrated incoherence),
//!   and the message-passing backend, all over the same program.

pub mod analysis;
pub mod dist;
pub mod exec;
pub mod ir;
pub mod plan;
pub mod redundancy;
pub mod report;

pub use analysis::{analyze, LoopAccess, Transfer};
pub use dist::{ArrayDecl, ArrayId, Dist};
pub use exec::{execute, Backend, ExecConfig, RunResult};
pub use ir::{
    ARef, ArrayHandle, CompDist, KernelCtx, KernelFn, ParLoop, Program, ProgramBuilder, RefMode,
    ReduceSpec, Stmt, Subscript,
};
pub use plan::{covering_blocks, shmem_limits, ArrayMeta, CtlRanges, OptLevel};
pub use redundancy::PreCache;
pub use report::{analyze_program, render, LoopReport, TransferReport};
