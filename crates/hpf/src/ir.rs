//! The mini-HPF program representation.
//!
//! A [`Program`] is a set of distributed array declarations plus a
//! statement list of INDEPENDENT parallel loops, sequential time-step
//! loops, and replicated scalar assignments. Each parallel loop carries:
//!
//! * its iteration space (symbolic ranges — bounds may mention time-loop
//!   variables, as in `lu`'s triangular loops);
//! * a computation distribution (owner-computes on a named array, or a
//!   block partition of a loop dimension — the paper: "the compiler can
//!   use the INDEPENDENT directive to divide a loop in any fashion");
//! * the set of **array references with affine subscripts** that the
//!   access analysis consumes — this is exactly the information `pghpf`
//!   extracts from HPF source;
//! * a native kernel that performs the arithmetic, given resolved views.
//!
//! The declared references are the analysis's contract with the kernel: a
//! kernel must touch only elements covered by its references (the test
//! suite cross-validates optimized, unoptimized and sequential executions
//! to catch violations).

use crate::dist::{ArrayDecl, ArrayId};
use fgdsm_section::{Affine, Env, Range, SymRange, Var};
use fgdsm_tempest::ReduceOp;
use std::collections::BTreeMap;

/// One subscript position of an array reference.
#[derive(Clone, Debug)]
pub enum Subscript {
    /// Loop-index variable `iter[d]` plus a constant offset (stencils:
    /// `a(i, j-1)`).
    Loop(usize, i64),
    /// A single symbolic point (e.g. the pivot column `a(_, k)` in `lu`).
    At(Affine),
    /// An explicit symbolic range independent of loop variables
    /// (e.g. `a(k+1:n-1, k)`).
    Span(SymRange),
    /// The whole extent of this dimension.
    All,
    /// Indirect subscript: the index comes from element `idx(i₀ + c)` of
    /// another (1-D, owned-read) array — `x(idx(i))` gathers. Static
    /// analysis cannot bound these, so references containing one are never
    /// taken under compiler control (the paper's §7 future work: codes
    /// "that show a mix of simple affine array subscript and indirect
    /// array subscripts, and are not amenable to purely message-passing
    /// approaches"). The simulator resolves the actually-touched blocks
    /// with an inspector over the index array at run time.
    Indirect(ArrayId, i64),
}

impl Subscript {
    /// The loop variable `iter[d]` with no offset.
    pub fn loop_var(d: usize) -> Self {
        Subscript::Loop(d, 0)
    }

    /// Resolve to a concrete range given this node's iteration ranges, the
    /// environment, and the dimension extent.
    pub fn resolve(&self, iter: &[Range], env: &Env, extent: usize) -> Range {
        match self {
            Subscript::Loop(d, c) => {
                let r = iter[*d];
                if r.is_empty() {
                    Range::empty()
                } else {
                    Range::strided(r.lo + c, r.hi + c, r.stride)
                }
            }
            Subscript::At(a) => {
                let x = a.eval(env);
                Range::new(x, x)
            }
            Subscript::Span(sr) => sr.eval(env),
            // Conservative: an indirect subscript may reach anywhere.
            Subscript::All | Subscript::Indirect(..) => Range::new(0, extent as i64 - 1),
        }
    }

    /// True for indirect (statically unanalyzable) subscripts.
    pub fn is_indirect(&self) -> bool {
        matches!(self, Subscript::Indirect(..))
    }
}

impl ARef {
    /// True if any subscript is indirect — the reference is then excluded
    /// from compiler-controlled communication.
    pub fn is_indirect(&self) -> bool {
        self.subs.iter().any(Subscript::is_indirect)
    }
}

/// Read or write access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RefMode {
    Read,
    Write,
}

/// One array reference in a parallel loop.
#[derive(Clone, Debug)]
pub struct ARef {
    pub array: ArrayId,
    pub subs: Vec<Subscript>,
    pub mode: RefMode,
}

impl ARef {
    /// A read reference.
    pub fn read(array: ArrayId, subs: Vec<Subscript>) -> Self {
        ARef {
            array,
            subs,
            mode: RefMode::Read,
        }
    }

    /// A write reference.
    pub fn write(array: ArrayId, subs: Vec<Subscript>) -> Self {
        ARef {
            array,
            subs,
            mode: RefMode::Write,
        }
    }
}

/// How a parallel loop's iterations are divided among processors.
#[derive(Clone, Debug)]
pub enum CompDist {
    /// Owner-computes on the given array: the loop variable appearing in
    /// the array's distributed (last) dimension subscript is partitioned
    /// by that array's owner ranges.
    Owner(ArrayId),
    /// BLOCK partition of loop dimension `d` across processors.
    BlockDim(usize),
    /// Every iteration executes on the owner of the array's distributed
    /// index given by the affine expression (e.g. `lu`'s pivot-column
    /// scaling, which only the owner of column `k` performs — an ON HOME
    /// directive in HPF terms).
    OwnerOfIndex(ArrayId, Affine),
}

/// Reduction carried by a parallel loop: kernels accumulate into
/// `KernelCtx::partial`; the combined value is stored in the named
/// replicated scalar.
#[derive(Clone, Copy, Debug)]
pub struct ReduceSpec {
    pub op: ReduceOp,
    pub target: &'static str,
}

/// Resolved metadata handed to kernels for address computation.
#[derive(Clone, Copy, Debug)]
pub struct ArrayHandle {
    /// Word offset of the array base in the node's segment copy.
    pub base: usize,
    strides: [usize; 3],
    ndims: usize,
}

impl ArrayHandle {
    /// Build a handle from a base offset and the array's extents.
    pub fn new(base: usize, extents: &[usize]) -> Self {
        assert!((1..=3).contains(&extents.len()), "1-3 dimensional arrays");
        let mut strides = [0usize; 3];
        let mut s = 1;
        for (d, &e) in extents.iter().enumerate() {
            strides[d] = s;
            s *= e;
        }
        ArrayHandle {
            base,
            strides,
            ndims: extents.len(),
        }
    }

    /// Word offset of `a(i)`.
    #[inline(always)]
    pub fn at1(&self, i: i64) -> usize {
        debug_assert_eq!(self.ndims, 1);
        self.base + i as usize
    }

    /// Word offset of `a(i, j)`.
    #[inline(always)]
    pub fn at2(&self, i: i64, j: i64) -> usize {
        debug_assert_eq!(self.ndims, 2);
        self.base + i as usize + j as usize * self.strides[1]
    }

    /// Word offset of `a(i, j, k)`.
    #[inline(always)]
    pub fn at3(&self, i: i64, j: i64, k: i64) -> usize {
        debug_assert_eq!(self.ndims, 3);
        self.base + i as usize + j as usize * self.strides[1] + k as usize * self.strides[2]
    }
}

/// Execution context passed to kernels: the node's segment memory, its
/// iteration sub-ranges, the symbolic environment, replicated scalars and
/// the reduction accumulator.
pub struct KernelCtx<'a> {
    /// This node's copy of the whole shared segment.
    pub mem: &'a mut [f64],
    /// Concrete per-dimension iteration ranges assigned to this node.
    pub iter: &'a [Range],
    /// Bindings of time-loop and problem symbolics.
    pub env: &'a Env,
    /// Replicated scalar values (reduction results etc.).
    pub scalars: &'a BTreeMap<&'static str, f64>,
    /// Reduction accumulator (combined across nodes per `ReduceSpec`).
    pub partial: f64,
    /// Executing node id.
    pub node: usize,
    /// Number of nodes.
    pub nprocs: usize,
    pub(crate) handles: &'a [ArrayHandle],
}

impl KernelCtx<'_> {
    /// Address-computation handle for an array.
    #[inline(always)]
    pub fn h(&self, id: ArrayId) -> ArrayHandle {
        self.handles[id.0]
    }

    /// Value of a replicated scalar.
    pub fn scalar(&self, name: &str) -> f64 {
        *self
            .scalars
            .get(name)
            .unwrap_or_else(|| panic!("unknown scalar `{name}`"))
    }

    /// Value of a symbolic variable.
    pub fn sym(&self, v: Var) -> i64 {
        self.env
            .get(v)
            .unwrap_or_else(|| panic!("unbound symbolic `{v}`"))
    }
}

/// A compiled loop-body kernel: pure array arithmetic over the resolved
/// context. Wraps a shared closure, so program builders (and generators)
/// can capture array ids, extents or coefficients; cloning is cheap
/// (`Arc`) and kernels cross the compute-phase thread boundary
/// (`Send + Sync`). Plain `fn` items coerce, so `Kernel::new(my_kernel)`
/// works for the static-kernel style the apps use.
#[derive(Clone)]
pub struct Kernel(std::sync::Arc<dyn Fn(&mut KernelCtx) + Send + Sync>);

impl Kernel {
    /// Wrap a closure (or `fn` item) as a kernel.
    pub fn new(f: impl Fn(&mut KernelCtx) + Send + Sync + 'static) -> Self {
        Kernel(std::sync::Arc::new(f))
    }

    /// Run the kernel over one node's resolved context.
    pub fn call(&self, ctx: &mut KernelCtx) {
        (self.0)(ctx)
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Kernel(..)")
    }
}

impl<F: Fn(&mut KernelCtx) + Send + Sync + 'static> From<F> for Kernel {
    fn from(f: F) -> Self {
        Kernel::new(f)
    }
}

/// Kernel function type: the plain-`fn` form of a kernel body, still
/// convertible into [`Kernel`] via `Kernel::new` / `.into()`.
pub type KernelFn = fn(&mut KernelCtx);

/// Scalar update function: computes a new replicated scalar from the
/// current scalar table.
pub type ScalarFn = fn(&BTreeMap<&'static str, f64>) -> f64;

/// An INDEPENDENT parallel loop.
#[derive(Clone)]
pub struct ParLoop {
    pub name: &'static str,
    /// Iteration space, one symbolic range per loop dimension.
    pub iter: Vec<SymRange>,
    pub dist: CompDist,
    pub refs: Vec<ARef>,
    pub kernel: Kernel,
    /// Virtual compute cost per iteration point, in ns (calibrated per
    /// kernel to 66 MHz HyperSPARC throughput).
    pub cost_per_iter_ns: u64,
    pub reduction: Option<ReduceSpec>,
}

impl ParLoop {
    /// The symbolic variables the loop's *analysis* depends on: variables
    /// in the iteration bounds, in affine subscripts, and in an ON-HOME
    /// owner expression. A loop with none (the common stencil case) has a
    /// fixed access structure — the compiler analyzes it once, at compile
    /// time; loops like `lu`'s (bounds in `k`) re-evaluate per iteration,
    /// "invoking the code-fragments with the values of symbolic
    /// variables" as the paper's Omega-generated code does.
    pub fn analysis_vars(&self) -> std::collections::BTreeSet<Var> {
        let mut vars = std::collections::BTreeSet::new();
        let mut add_affine = |a: &Affine| vars.extend(a.vars());
        for sr in &self.iter {
            add_affine(&sr.lo);
            add_affine(&sr.hi);
        }
        for r in &self.refs {
            for s in &r.subs {
                match s {
                    Subscript::At(a) => vars.extend(a.vars()),
                    Subscript::Span(sr) => {
                        vars.extend(sr.lo.vars());
                        vars.extend(sr.hi.vars());
                    }
                    Subscript::Loop(..) | Subscript::All | Subscript::Indirect(..) => {}
                }
            }
        }
        if let CompDist::OwnerOfIndex(_, a) = &self.dist {
            vars.extend(a.vars());
        }
        vars
    }

    /// True if the access structure is compile-time constant.
    pub fn is_static(&self) -> bool {
        self.analysis_vars().is_empty()
    }
}

impl std::fmt::Debug for ParLoop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParLoop")
            .field("name", &self.name)
            .field("iter", &self.iter)
            .field("refs", &self.refs.len())
            .finish()
    }
}

/// A statement in the program body.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// An INDEPENDENT parallel loop (one BSP superstep).
    Par(ParLoop),
    /// A sequential time-step loop binding `var` to `0..count`.
    Time {
        var: Var,
        count: i64,
        body: Vec<Stmt>,
    },
    /// Replicated scalar assignment, computed identically on every node.
    Scalar { name: &'static str, f: ScalarFn },
}

/// A complete mini-HPF program.
#[derive(Clone, Debug)]
pub struct Program {
    pub arrays: Vec<ArrayDecl>,
    pub body: Vec<Stmt>,
    /// Initial values of replicated scalars.
    pub scalars: Vec<(&'static str, f64)>,
}

/// Every parallel loop in a statement list, in program order (recursing
/// into `Time` bodies). The position of a loop in this list is its
/// profiler loop id — the engine and report consumers must agree on it,
/// so they both walk through here.
pub fn par_loops_of(stmts: &[Stmt]) -> Vec<&ParLoop> {
    fn walk<'a>(stmts: &'a [Stmt], out: &mut Vec<&'a ParLoop>) {
        for s in stmts {
            match s {
                Stmt::Par(l) => out.push(l),
                Stmt::Time { body, .. } => walk(body, out),
                Stmt::Scalar { .. } => {}
            }
        }
    }
    let mut out = Vec::new();
    walk(stmts, &mut out);
    out
}

impl Program {
    /// Start building a program.
    pub fn builder() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Look up an array declaration.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0]
    }

    /// Total bytes of distributed array data (Table 2's "Memory" column).
    pub fn memory_bytes(&self) -> usize {
        self.arrays.iter().map(ArrayDecl::bytes).sum()
    }

    /// Iterate over every parallel loop in the body (recursively).
    pub fn par_loops(&self) -> Vec<&ParLoop> {
        par_loops_of(&self.body)
    }

    /// Validate structural invariants (dimensions match, ids in range).
    pub fn validate(&self) -> Result<(), String> {
        for l in self.par_loops() {
            for r in &l.refs {
                let a = self
                    .arrays
                    .get(r.array.0)
                    .ok_or_else(|| format!("loop {}: unknown array id {:?}", l.name, r.array))?;
                if r.subs.len() != a.extents.len() {
                    return Err(format!(
                        "loop {}: ref to `{}` has {} subscripts, array has {} dims",
                        l.name,
                        a.name,
                        r.subs.len(),
                        a.extents.len()
                    ));
                }
                for s in &r.subs {
                    if let Subscript::Loop(d, _) = s {
                        if *d >= l.iter.len() {
                            return Err(format!(
                                "loop {}: subscript uses loop dim {d} but loop has {} dims",
                                l.name,
                                l.iter.len()
                            ));
                        }
                    }
                    if let Subscript::Indirect(idx, _) = s {
                        if r.mode == RefMode::Write {
                            return Err(format!(
                                "loop {}: indirect writes (scatter) are not supported",
                                l.name
                            ));
                        }
                        if r.subs.len() != 1 || a.extents.len() != 1 {
                            return Err(format!(
                                "loop {}: indirect references must be 1-D gathers x(idx(i))",
                                l.name
                            ));
                        }
                        let idecl = self
                            .arrays
                            .get(idx.0)
                            .ok_or_else(|| format!("loop {}: unknown index array", l.name))?;
                        if idecl.extents.len() != 1 {
                            return Err(format!(
                                "loop {}: index array `{}` must be 1-D",
                                l.name, idecl.name
                            ));
                        }
                    }
                }
            }
            if let CompDist::Owner(a) = &l.dist {
                self.find_partition_var(l, *a)
                    .map_err(|e| format!("loop {}: {e}", l.name))?;
            }
        }
        Ok(())
    }

    /// For owner-computes loops: which loop variable indexes the
    /// distributed dimension of the partition array, and with what offset.
    pub fn find_partition_var(&self, l: &ParLoop, a: ArrayId) -> Result<(usize, i64), String> {
        let decl = &self.arrays[a.0];
        let last = decl.extents.len() - 1;
        for r in &l.refs {
            if r.array == a {
                if let Subscript::Loop(d, c) = r.subs[last] {
                    return Ok((d, c));
                }
            }
        }
        Err(format!(
            "no reference to partition array `{}` with a loop-variable subscript in its distributed dimension",
            decl.name
        ))
    }
}

/// Builder for [`Program`].
#[derive(Default)]
pub struct ProgramBuilder {
    arrays: Vec<ArrayDecl>,
    body: Vec<Stmt>,
    scalars: Vec<(&'static str, f64)>,
}

impl ProgramBuilder {
    /// Declare a distributed array; returns its id.
    pub fn array(
        &mut self,
        name: &'static str,
        extents: &[usize],
        dist: crate::dist::Dist,
    ) -> ArrayId {
        let id = ArrayId(self.arrays.len());
        self.arrays.push(ArrayDecl {
            name,
            extents: extents.to_vec(),
            dist,
        });
        id
    }

    /// Declare a replicated scalar with an initial value.
    pub fn scalar(&mut self, name: &'static str, init: f64) -> &mut Self {
        self.scalars.push((name, init));
        self
    }

    /// Append a statement.
    pub fn stmt(&mut self, s: Stmt) -> &mut Self {
        self.body.push(s);
        self
    }

    /// Finish, validating the program.
    pub fn build(self) -> Program {
        let p = Program {
            arrays: self.arrays,
            body: self.body,
            scalars: self.scalars,
        };
        if let Err(e) = p.validate() {
            panic!("invalid program: {e}");
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Dist;

    fn noop_kernel(_: &mut KernelCtx) {}

    #[test]
    fn subscript_resolution() {
        let iter = [Range::new(5, 10), Range::new(0, 3)];
        let env = Env::new().bind(Var("k"), 7);
        assert_eq!(
            Subscript::Loop(0, -1).resolve(&iter, &env, 100),
            Range::new(4, 9)
        );
        assert_eq!(
            Subscript::At(Affine::var(Var("k"))).resolve(&iter, &env, 100),
            Range::new(7, 7)
        );
        assert_eq!(Subscript::All.resolve(&iter, &env, 12), Range::new(0, 11));
        assert_eq!(
            Subscript::Span(SymRange::new(Affine::var(Var("k")).plus_const(1), 99))
                .resolve(&iter, &env, 100),
            Range::new(8, 99)
        );
    }

    #[test]
    fn handle_addressing_column_major() {
        let h = ArrayHandle::new(100, &[8, 6]);
        assert_eq!(h.at2(0, 0), 100);
        assert_eq!(h.at2(1, 0), 101);
        assert_eq!(h.at2(0, 1), 108);
        let h3 = ArrayHandle::new(0, &[4, 4, 4]);
        assert_eq!(h3.at3(1, 2, 3), 1 + 8 + 48);
    }

    #[test]
    fn builder_and_validate() {
        let mut b = Program::builder();
        let a = b.array("a", &[16, 32], Dist::Block);
        b.stmt(Stmt::Par(ParLoop {
            name: "touch",
            iter: vec![SymRange::new(0, 15), SymRange::new(0, 31)],
            dist: CompDist::Owner(a),
            refs: vec![ARef::write(
                a,
                vec![Subscript::loop_var(0), Subscript::loop_var(1)],
            )],
            kernel: Kernel::new(noop_kernel),
            cost_per_iter_ns: 100,
            reduction: None,
        }));
        let p = b.build();
        assert_eq!(p.par_loops().len(), 1);
        assert_eq!(p.memory_bytes(), 16 * 32 * 8);
        let (d, c) = p.find_partition_var(p.par_loops()[0], a).unwrap();
        assert_eq!((d, c), (1, 0));
    }

    #[test]
    #[should_panic(expected = "invalid program")]
    fn mismatched_subscripts_rejected() {
        let mut b = Program::builder();
        let a = b.array("a", &[16, 32], Dist::Block);
        b.stmt(Stmt::Par(ParLoop {
            name: "bad",
            iter: vec![SymRange::new(0, 15)],
            dist: CompDist::BlockDim(0),
            refs: vec![ARef::read(a, vec![Subscript::loop_var(0)])], // 1 sub, 2 dims
            kernel: Kernel::new(noop_kernel),
            cost_per_iter_ns: 1,
            reduction: None,
        }));
        b.build();
    }

    #[test]
    fn time_loop_nesting_found() {
        let mut b = Program::builder();
        let a = b.array("a", &[8, 8], Dist::Block);
        let inner = Stmt::Par(ParLoop {
            name: "inner",
            iter: vec![SymRange::new(0, 7), SymRange::new(0, 7)],
            dist: CompDist::Owner(a),
            refs: vec![ARef::write(
                a,
                vec![Subscript::loop_var(0), Subscript::loop_var(1)],
            )],
            kernel: Kernel::new(noop_kernel),
            cost_per_iter_ns: 1,
            reduction: None,
        });
        b.stmt(Stmt::Time {
            var: Var("t"),
            count: 10,
            body: vec![inner],
        });
        let p = b.build();
        assert_eq!(p.par_loops().len(), 1);
    }
}
