//! Redundant-communication elimination (§4.3).
//!
//! "If there is no intervening write to the same non-owner read data
//! between two loops, it need not be re-communicated at the second loop."
//! The paper casts this as partial redundancy elimination and leaves the
//! implementation to future work; we implement the run-time equivalent: a
//! transfer cache keyed by (reader, array, block range) recording the
//! epoch at which the data was delivered, invalidated by any overlapping
//! write. A cached, still-valid transfer is skipped entirely — no
//! `implicit_writable`, no send, no receive wait.
//!
//! Used only together with run-time overhead elimination (the reader's
//! tags must survive the loop for the cached copy to stay accessible).

use std::collections::BTreeMap;

/// Epoch counter: one tick per parallel-loop execution.
pub type Epoch = u64;

/// Delivered block intervals `(first, end, epoch)` for one (reader, array).
type DeliveryList = Vec<(usize, usize, Epoch)>;

/// Per-array log of written word runs, with the epoch of each write.
#[derive(Default, Debug)]
struct WriteLog {
    /// (start, len, epoch), appended in epoch order.
    writes: Vec<(usize, usize, Epoch)>,
}

const WRITE_LOG_CAP: usize = 16_384;

/// The transfer cache plus write logs.
#[derive(Default, Debug)]
pub struct PreCache {
    epoch: Epoch,
    logs: BTreeMap<usize, WriteLog>,
    /// (reader, array) → delivered block intervals with their epochs.
    delivered: BTreeMap<(usize, usize), DeliveryList>,
    /// Statistics: transfers skipped as redundant.
    pub skipped: u64,
    /// Statistics: transfers actually performed.
    pub performed: u64,
}

impl PreCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance to the next parallel loop.
    pub fn tick(&mut self) -> Epoch {
        self.epoch += 1;
        self.epoch
    }

    /// Record that `array`'s word run `(start, len)` was written this
    /// epoch (from the loop's declared write sections).
    pub fn record_write(&mut self, array: usize, start: usize, len: usize) {
        if len == 0 {
            return;
        }
        let log = self.logs.entry(array).or_default();
        log.writes.push((start, len, self.epoch));
        if log.writes.len() > WRITE_LOG_CAP {
            // Conservative compaction: drop all cache entries for this
            // array and restart its log.
            log.writes.clear();
            self.delivered.retain(|&(_, a), _| a != array);
        }
    }

    /// True if no recorded write overlaps words `[ws, we)` of `array`
    /// after epoch `since`.
    fn clean_since(&self, array: usize, ws: usize, we: usize, since: Epoch) -> bool {
        if let Some(log) = self.logs.get(&array) {
            for &(start, len, ep) in log.writes.iter().rev() {
                if ep <= since {
                    break; // older writes were visible in the delivery
                }
                if start < we && start + len > ws {
                    return false;
                }
            }
        }
        true
    }

    /// Is the block range `[first, end)` of `array` still valid at
    /// `reader` from previous deliveries — i.e. covered by the union of
    /// delivered intervals that have seen no overlapping write since?
    pub fn is_valid(
        &self,
        reader: usize,
        array: usize,
        first: usize,
        end: usize,
        words_per_block: usize,
    ) -> bool {
        if end <= first {
            return true;
        }
        let Some(entries) = self.delivered.get(&(reader, array)) else {
            return false;
        };
        let mut valid: Vec<(usize, usize)> = entries
            .iter()
            .filter(|&&(f, e, ep)| {
                self.clean_since(array, f * words_per_block, e * words_per_block, ep)
            })
            .map(|&(f, e, _)| (f, e))
            .collect();
        valid.sort_unstable();
        // Sweep: does the union of valid intervals cover [first, end)?
        let mut need = first;
        for (f, e) in valid {
            if f > need {
                return false;
            }
            need = need.max(e);
            if need >= end {
                return true;
            }
        }
        false
    }

    /// Record delivery of `[first, end)` of `array` to `reader` now.
    pub fn record_delivery(&mut self, reader: usize, array: usize, first: usize, end: usize) {
        let entries = self.delivered.entry((reader, array)).or_default();
        entries.push((first, end, self.epoch));
        // Bound per-key state: drop the oldest deliveries beyond a small
        // window (conservative — merely forgets skippable transfers).
        const DELIVERY_CAP: usize = 64;
        if entries.len() > DELIVERY_CAP {
            entries.drain(..entries.len() - DELIVERY_CAP);
        }
    }

    /// Drop everything (e.g. when switching programs).
    pub fn clear(&mut self) {
        self.logs.clear();
        self.delivered.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_range_is_not_valid() {
        let c = PreCache::new();
        assert!(!c.is_valid(1, 0, 0, 4, 16));
    }

    #[test]
    fn delivery_then_valid_until_written() {
        let mut c = PreCache::new();
        c.tick();
        c.record_delivery(1, 0, 0, 4);
        c.tick();
        assert!(c.is_valid(1, 0, 0, 4, 16));
        // A write elsewhere in the array does not invalidate.
        c.record_write(0, 1000, 50);
        assert!(c.is_valid(1, 0, 0, 4, 16));
        // An overlapping write does (blocks 0..4 = words 0..64).
        c.record_write(0, 60, 10);
        assert!(!c.is_valid(1, 0, 0, 4, 16));
    }

    #[test]
    fn writes_before_delivery_do_not_invalidate() {
        let mut c = PreCache::new();
        c.tick();
        c.record_write(0, 0, 64);
        c.record_delivery(1, 0, 0, 4);
        c.tick();
        assert!(c.is_valid(1, 0, 0, 4, 16));
    }

    #[test]
    fn different_reader_or_range_is_separate() {
        let mut c = PreCache::new();
        c.tick();
        c.record_delivery(1, 0, 0, 4);
        assert!(!c.is_valid(2, 0, 0, 4, 16));
        assert!(!c.is_valid(1, 0, 0, 5, 16));
        assert!(!c.is_valid(1, 1, 0, 4, 16));
    }

    #[test]
    fn log_compaction_conservatively_invalidates() {
        let mut c = PreCache::new();
        c.tick();
        c.record_delivery(1, 0, 0, 4);
        for i in 0..WRITE_LOG_CAP + 1 {
            c.record_write(0, 100_000 + i, 1);
        }
        // Cache entry for array 0 dropped by compaction.
        assert!(!c.is_valid(1, 0, 0, 4, 16));
    }
}
