//! Access-set analysis (§4.1).
//!
//! For each distributed array referenced in a parallel loop, compute per
//! processor the *non-owner-read* and *non-owner-write* sets — "the set
//! difference of the array sections that a processor reads or writes and
//! the array sections it owns" — and split them by owning processor into
//! point-to-point transfers.
//!
//! The symbolic half (building descriptors parametric in loop symbolics)
//! lives in the IR; this module is the run-time half, the analogue of
//! invoking Omega's generated code "with the values of symbolic variables
//! to obtain the bounds of the corresponding access sets". It runs once
//! per loop execution and costs O(P² · refs) tiny rectangle operations.

use crate::dist::Dist;
use crate::ir::{CompDist, ParLoop, Program, RefMode};
use fgdsm_section::{Env, Range, Section};

/// One point-to-point transfer obligation: `user` accesses `section` of
/// `array`, which `owner` owns.
#[derive(Clone, Debug, PartialEq)]
pub struct Transfer {
    pub array: usize,
    pub owner: usize,
    pub user: usize,
    pub section: Section,
    /// True if the originating reference has an indirect subscript: the
    /// section is then a conservative over-approximation and the transfer
    /// must not be taken under compiler control.
    pub indirect: bool,
}

/// The resolved access structure of one parallel loop execution.
#[derive(Clone, Debug, Default)]
pub struct LoopAccess {
    /// Per node: concrete iteration ranges (empty range ⇒ node idle).
    pub iters: Vec<Vec<Range>>,
    /// Per node, per ref: the resolved array section it touches.
    pub sections: Vec<Vec<Section>>,
    /// Non-owner reads, split by owner (the producer→consumer transfers
    /// the compiler takes under explicit control).
    pub read_transfers: Vec<Transfer>,
    /// Non-owner writes, split by owner (flushed back after the loop).
    pub write_transfers: Vec<Transfer>,
}

/// Resolve the iteration partition of `l` for node `p`.
pub fn partition(prog: &Program, l: &ParLoop, env: &Env, p: usize, nprocs: usize) -> Vec<Range> {
    let full: Vec<Range> = l.iter.iter().map(|sr| sr.eval(env)).collect();
    match &l.dist {
        CompDist::Owner(aid) => {
            let (d, c) = prog
                .find_partition_var(l, *aid)
                .expect("validated at build time");
            let own = prog.array(*aid).owner_range(p, nprocs);
            // Iterations whose target element falls in the owner range:
            // var + c ∈ own  ⇔  var ∈ own − c.
            let shifted = if own.is_empty() {
                Range::empty()
            } else {
                Range::strided(own.lo - c, own.hi - c, own.stride)
            };
            let pieces = full[d].intersect(&shifted);
            let mut out = full;
            out[d] = match pieces.len() {
                0 => Range::empty(),
                1 => pieces[0],
                _ => panic!(
                    "iteration partition of loop `{}` split into {} pieces; \
                     unsupported distribution/iteration combination",
                    l.name,
                    pieces.len()
                ),
            };
            out
        }
        CompDist::BlockDim(d) => {
            let d = *d;
            let r = full[d];
            let n = r.count() as i64;
            let chunk = (n + nprocs as i64 - 1) / nprocs.max(1) as i64;
            let lo = r.lo + p as i64 * chunk;
            let hi = (r.lo + (p as i64 + 1) * chunk - 1).min(r.hi);
            let mut out = full;
            out[d] = if lo > hi || n == 0 {
                Range::empty()
            } else {
                Range::new(lo, hi)
            };
            out
        }
        CompDist::OwnerOfIndex(aid, expr) => {
            let j = expr.eval(env);
            let decl = prog.array(*aid);
            let mine = j >= 0 && (j as usize) < decl.dist_extent() && decl.owner_of(j, nprocs) == p;
            if mine {
                full
            } else {
                full.iter().map(|_| Range::empty()).collect()
            }
        }
    }
}

/// Clip a resolved reference section to the array bounds (stencil offsets
/// step outside at the domain edge; HPF codes guard those accesses, so
/// the analysis clips rather than faults).
fn clip_to_array(sec: Section, extents: &[usize]) -> Section {
    let dims = sec
        .dims
        .into_iter()
        .zip(extents)
        .map(|(r, &e)| {
            if r.is_empty() {
                r
            } else {
                let pieces = r.intersect(&Range::new(0, e as i64 - 1));
                match pieces.len() {
                    0 => Range::empty(),
                    1 => pieces[0],
                    _ => unreachable!("clipping a range against a dense range cannot split"),
                }
            }
        })
        .collect();
    Section::new(dims)
}

/// Analyze one execution of a parallel loop under `env`.
pub fn analyze(prog: &Program, l: &ParLoop, env: &Env, nprocs: usize) -> LoopAccess {
    let mut acc = LoopAccess {
        iters: Vec::with_capacity(nprocs),
        sections: Vec::with_capacity(nprocs),
        ..Default::default()
    };
    for p in 0..nprocs {
        let iter = partition(prog, l, env, p, nprocs);
        let idle = iter.iter().any(Range::is_empty);
        let mut secs = Vec::with_capacity(l.refs.len());
        for r in &l.refs {
            let decl = prog.array(r.array);
            let sec = if idle {
                Section::new(vec![Range::empty(); decl.extents.len()])
            } else {
                let dims = r
                    .subs
                    .iter()
                    .enumerate()
                    .map(|(d, s)| s.resolve(&iter, env, decl.extents[d]))
                    .collect();
                clip_to_array(Section::new(dims), &decl.extents)
            };
            secs.push(sec);
        }
        acc.iters.push(iter);
        acc.sections.push(secs);
    }
    // Non-owner sets, split by owner.
    for p in 0..nprocs {
        for (ri, r) in l.refs.iter().enumerate() {
            let decl = prog.array(r.array);
            if decl.dist == Dist::Replicated {
                continue;
            }
            let sec = &acc.sections[p][ri];
            if sec.is_empty() {
                continue;
            }
            let owned = decl.owner_section(p, nprocs);
            for piece in sec.subtract(&owned) {
                for q in 0..nprocs {
                    if q == p {
                        continue;
                    }
                    for part in piece.intersect(&decl.owner_section(q, nprocs)) {
                        if part.is_empty() {
                            continue;
                        }
                        let t = Transfer {
                            array: r.array.0,
                            owner: q,
                            user: p,
                            section: part,
                            indirect: r.is_indirect(),
                        };
                        match r.mode {
                            RefMode::Read => acc.read_transfers.push(t),
                            RefMode::Write => acc.write_transfers.push(t),
                        }
                    }
                }
            }
        }
    }
    // Deduplicate identical read transfers (two reads of the same ghost
    // section in one loop need only one push).
    acc.read_transfers.dedup();
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Dist;
    use crate::ir::{ARef, Kernel, KernelCtx, ParLoop, Program, Stmt, Subscript};
    use fgdsm_section::{Affine, SymRange, Var};

    fn nk(_: &mut KernelCtx) {}

    /// A jacobi-like program: b(i,j) = stencil of a(i,j±1), a,b 16x64 BLOCK.
    fn stencil_prog() -> Program {
        let mut b = Program::builder();
        let a = b.array("a", &[16, 64], Dist::Block);
        let bb = b.array("b", &[16, 64], Dist::Block);
        b.stmt(Stmt::Par(ParLoop {
            name: "sweep",
            iter: vec![SymRange::new(1, 14), SymRange::new(1, 62)],
            dist: CompDist::Owner(bb),
            refs: vec![
                ARef::read(a, vec![Subscript::loop_var(0), Subscript::Loop(1, -1)]),
                ARef::read(a, vec![Subscript::loop_var(0), Subscript::Loop(1, 1)]),
                ARef::read(a, vec![Subscript::Loop(0, -1), Subscript::loop_var(1)]),
                ARef::read(a, vec![Subscript::Loop(0, 1), Subscript::loop_var(1)]),
                ARef::write(bb, vec![Subscript::loop_var(0), Subscript::loop_var(1)]),
            ],
            kernel: Kernel::new(nk),
            cost_per_iter_ns: 100,
            reduction: None,
        }));
        b.build()
    }

    #[test]
    fn stencil_partition_owner_computes() {
        let p = stencil_prog();
        let l = &p.par_loops()[0].clone();
        let env = Env::new();
        // 64 cols / 4 procs = 16 each; iter dim1 clipped to 1..62.
        let it0 = partition(&p, l, &env, 0, 4);
        assert_eq!(it0[1], Range::new(1, 15));
        let it3 = partition(&p, l, &env, 3, 4);
        assert_eq!(it3[1], Range::new(48, 62));
        let it1 = partition(&p, l, &env, 1, 4);
        assert_eq!(it1[1], Range::new(16, 31));
    }

    #[test]
    fn stencil_ghost_columns_found() {
        let p = stencil_prog();
        let l = &p.par_loops()[0].clone();
        let acc = analyze(&p, l, &Env::new(), 4);
        // Node 1 (cols 16..31) reads ghost col 15 from node 0 and col 32
        // from node 2.
        let mine: Vec<_> = acc.read_transfers.iter().filter(|t| t.user == 1).collect();
        assert_eq!(mine.len(), 2);
        let from0 = mine.iter().find(|t| t.owner == 0).unwrap();
        assert_eq!(from0.section.dims[1], Range::new(15, 15));
        assert_eq!(from0.section.dims[0], Range::new(1, 14));
        let from2 = mine.iter().find(|t| t.owner == 2).unwrap();
        assert_eq!(from2.section.dims[1], Range::new(32, 32));
        // No non-owner writes in owner-computes stencil.
        assert!(acc.write_transfers.is_empty());
        // Edge nodes have only one ghost.
        assert_eq!(acc.read_transfers.iter().filter(|t| t.user == 0).count(), 1);
    }

    #[test]
    fn idle_nodes_get_empty_sections() {
        let p = stencil_prog();
        let l = &p.par_loops()[0].clone();
        // 64 cols over 40 procs: chunk=2, nodes 32.. are idle.
        let acc = analyze(&p, l, &Env::new(), 40);
        assert!(acc.iters[39][1].is_empty());
        assert!(acc.sections[39].iter().all(Section::is_empty));
    }

    /// An lu-like broadcast: all nodes read column k of a CYCLIC array.
    fn lu_prog() -> Program {
        let k = Var("k");
        let mut b = Program::builder();
        let a = b.array("a", &[64, 64], Dist::Cyclic);
        b.stmt(Stmt::Time {
            var: k,
            count: 63,
            body: vec![Stmt::Par(ParLoop {
                name: "update",
                iter: vec![
                    SymRange::new(Affine::var(k).plus_const(1), 63), // rows i>k
                    SymRange::new(Affine::var(k).plus_const(1), 63), // cols j>k
                ],
                dist: CompDist::Owner(a),
                refs: vec![
                    // pivot column a(k+1:63, k): read by every node
                    ARef::read(
                        a,
                        vec![
                            Subscript::Span(SymRange::new(Affine::var(k).plus_const(1), 63)),
                            Subscript::At(Affine::var(k)),
                        ],
                    ),
                    ARef::read(a, vec![Subscript::loop_var(0), Subscript::loop_var(1)]),
                    ARef::write(a, vec![Subscript::loop_var(0), Subscript::loop_var(1)]),
                ],
                kernel: Kernel::new(nk),
                cost_per_iter_ns: 120,
                reduction: None,
            })],
        });
        b.build()
    }

    #[test]
    fn lu_pivot_column_broadcast() {
        let p = lu_prog();
        let l = &p.par_loops()[0].clone();
        let env = Env::new().bind(Var("k"), 8);
        let acc = analyze(&p, l, &env, 4);
        // Column 8 is owned by node 0 (8 mod 4); nodes 1..3 receive it.
        let pivot: Vec<_> = acc
            .read_transfers
            .iter()
            .filter(|t| t.section.dims[1] == Range::new(8, 8))
            .collect();
        let users: std::collections::BTreeSet<_> = pivot.iter().map(|t| t.user).collect();
        assert_eq!(users, [1, 2, 3].into_iter().collect());
        assert!(pivot.iter().all(|t| t.owner == 0));
        // Rows k+1..63 only.
        assert!(pivot.iter().all(|t| t.section.dims[0] == Range::new(9, 63)));
        // The update's own-column reads/writes generate no transfers.
        assert!(acc.write_transfers.is_empty());
    }

    #[test]
    fn lu_partition_is_cyclic_strided() {
        let p = lu_prog();
        let l = &p.par_loops()[0].clone();
        let env = Env::new().bind(Var("k"), 8);
        // Node 1 owns columns 1,5,9,... intersected with 9..63 → 9,13,...
        let it = partition(&p, l, &env, 1, 4);
        assert_eq!(it[1], Range::strided(9, 61, 4));
        // Node 0: 12,16,...,60
        let it0 = partition(&p, l, &env, 0, 4);
        assert_eq!(it0[1], Range::strided(12, 60, 4));
    }

    #[test]
    fn clip_stops_stencil_overhang() {
        // A reference i-1 over iter 0..14 would reach -1: clipped.
        let p = stencil_prog();
        let l = p.par_loops()[0].clone();
        let mut l2 = l.clone();
        l2.iter[0] = SymRange::new(0, 15);
        let acc = analyze(&p, &l2, &Env::new(), 4);
        for secs in &acc.sections {
            for s in secs {
                if !s.is_empty() {
                    assert!(s.dims[0].lo >= 0);
                    assert!(s.dims[0].hi <= 15);
                }
            }
        }
    }
}
