//! Executors: run a mini-HPF program over the simulated DSM.
//!
//! Three backends over identical programs and data:
//!
//! * **SmUnopt** — every remote access goes through the default protocol:
//!   before a loop's kernels run, each node's declared read/write sections
//!   are resolved block-by-block (faults, invalidations, 4-hop forwards),
//!   exactly what the authors' unoptimized shared-memory compiler emits.
//! * **SmOpt** — the compiler-orchestrated incoherence of §4.2: per-loop
//!   access analysis finds the producer→consumer transfers, `shmem_limits`
//!   shrinks them to whole blocks, and the §4.2 call contract
//!   (`mk_writable` / barrier / `implicit_writable` / barrier / `send` +
//!   `ready_to_recv` / loop / `implicit_invalidate` / barrier) moves the
//!   data; boundary blocks and cold misses still take the default path.
//!   [`OptLevel`] toggles bulk transfer, run-time overhead elimination and
//!   the PRE extension (Figure 4).
//! * **Mp** — the message-passing backend: owner-computes with direct
//!   marshalled messages, no coherence machinery at all, paying the PGI
//!   runtime's per-message overhead.
//!
//! Execution is BSP: within a superstep, sub-phases run in deterministic
//! node order (all write accesses, all read accesses, all kernels); each
//! node's virtual clock advances independently and barriers align them.

use crate::analysis::{self, LoopAccess};
use crate::ir::{ArrayHandle, KernelCtx, ParLoop, Program, RefMode, Stmt};
use crate::plan::{covering_blocks, shmem_limits, ArrayMeta, OptLevel};
use crate::redundancy::PreCache;
use fgdsm_protocol::{CtlStats, Dsm, MpRuntime, ProtocolKind};
use fgdsm_section::{Env, Range, Section};
use fgdsm_tempest::{
    CacheModel, ChargeKind, Cluster, ClusterReport, CostModel, HomePolicy, SegmentLayout,
};
use std::collections::{BTreeMap, BTreeSet};

/// Which executor to use.
#[derive(Clone, Copy, Debug)]
pub enum Backend {
    /// Default protocol only.
    SmUnopt,
    /// Compiler-orchestrated incoherence at the given optimization level.
    SmOpt(OptLevel),
    /// Message-passing backend.
    Mp,
}

/// How page homes are assigned relative to the data distribution.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum HomeAssign {
    /// The HPF runtime places pages to match each array's distribution,
    /// so owners of BLOCK-distributed data are home to their own pages
    /// (CYCLIC arrays still interleave owners within a page). This is how
    /// the paper's system behaves: first writes by owners do not fault;
    /// `lu` pays page *mapping* cost, not ownership misses.
    #[default]
    DataAligned,
    /// Pages round-robin across nodes regardless of the distribution.
    RoundRobin,
    /// Contiguous page chunks per node.
    Blocked,
}

/// A full execution configuration.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    pub nprocs: usize,
    pub cost: CostModel,
    pub cache: CacheModel,
    pub home: HomeAssign,
    pub backend: Backend,
    /// Default coherence protocol (compiler-orchestrated incoherence is
    /// only supported over the eager-invalidate protocol).
    pub protocol: ProtocolKind,
    /// Bindings for problem-level symbolics referenced by the program.
    pub base_env: Env,
}

impl ExecConfig {
    /// Unoptimized shared memory on the paper's dual-cpu cluster.
    pub fn sm_unopt(nprocs: usize) -> Self {
        ExecConfig {
            nprocs,
            cost: CostModel::paper_dual_cpu(),
            cache: CacheModel::paper(),
            home: HomeAssign::DataAligned,
            backend: Backend::SmUnopt,
            protocol: ProtocolKind::EagerInvalidate,
            base_env: Env::new(),
        }
    }

    /// Optimized shared memory (full §4.2 + §4.3 optimizations).
    pub fn sm_opt(nprocs: usize) -> Self {
        ExecConfig {
            backend: Backend::SmOpt(OptLevel::full()),
            ..Self::sm_unopt(nprocs)
        }
    }

    /// Message-passing backend.
    pub fn mp(nprocs: usize) -> Self {
        ExecConfig {
            backend: Backend::Mp,
            ..Self::sm_unopt(nprocs)
        }
    }

    /// Switch to the single-cpu cost model.
    pub fn single_cpu(mut self) -> Self {
        self.cost = CostModel {
            cpu: fgdsm_tempest::CpuMode::Single,
            ..self.cost
        };
        self
    }

    /// Replace the optimization level (must be an SmOpt config).
    pub fn with_opt(mut self, opt: OptLevel) -> Self {
        self.backend = Backend::SmOpt(opt);
        self
    }

    /// Run the default protocol as write-update instead of
    /// eager-invalidate (unoptimized shared memory only).
    pub fn write_update(mut self) -> Self {
        self.protocol = ProtocolKind::WriteUpdate;
        self
    }
}

/// The result of executing a program.
#[derive(Clone, Debug)]
pub struct RunResult {
    pub report: ClusterReport,
    pub scalars: BTreeMap<&'static str, f64>,
    /// Gathered canonical contents of the global segment.
    pub data: Vec<f64>,
    pub metas: Vec<ArrayMeta>,
    pub ctl: CtlStats,
    /// PRE statistics: transfers skipped as redundant / performed.
    pub pre_skipped: u64,
    pub pre_performed: u64,
}

impl RunResult {
    /// Extract the gathered contents of one array.
    pub fn array(&self, prog: &Program, id: crate::dist::ArrayId) -> Vec<f64> {
        let meta = &self.metas[id.0];
        let len = prog.array(id).len();
        self.data[meta.base..meta.base + len].to_vec()
    }

    /// Total execution time in seconds (Figure 3's quantity).
    pub fn total_s(&self) -> f64 {
        self.report.total_s()
    }
}

/// Execute `prog` under `cfg`.
pub fn execute(prog: &Program, cfg: &ExecConfig) -> RunResult {
    Engine::new(prog, cfg).run()
}

struct Engine<'p> {
    prog: &'p Program,
    cfg: &'p ExecConfig,
    metas: Vec<ArrayMeta>,
    handles: Vec<ArrayHandle>,
    dsm: Dsm,
    mp: MpRuntime,
    env: Env,
    scalars: BTreeMap<&'static str, f64>,
    pre: PreCache,
    wpb: usize,
    opt: OptLevel,
    /// Non-owner-write flushes pending for the current loop's cleanup.
    pending_flushes: Vec<(usize, usize, usize, usize)>,
    /// Reader invalidations pending for the current loop's cleanup.
    pending_invalidate: Vec<(usize, usize, usize)>,
    /// Compile-time analysis cache: loops whose access structure mentions
    /// no symbolic variables are analyzed once (keyed by loop address,
    /// stable for the duration of a run).
    analysis_cache: BTreeMap<usize, std::rc::Rc<LoopAccess>>,
}

impl<'p> Engine<'p> {
    fn new(prog: &'p Program, cfg: &'p ExecConfig) -> Self {
        let mut layout = SegmentLayout::new(cfg.cost.words_per_page());
        let mut metas = Vec::with_capacity(prog.arrays.len());
        let mut handles = Vec::with_capacity(prog.arrays.len());
        for (i, a) in prog.arrays.iter().enumerate() {
            let base = layout.alloc(a.len());
            metas.push(ArrayMeta {
                id: crate::dist::ArrayId(i),
                base,
                layout: a.layout(),
            });
            handles.push(ArrayHandle::new(base, &a.extents));
        }
        let policy = match cfg.home {
            HomeAssign::RoundRobin => HomePolicy::RoundRobin,
            HomeAssign::Blocked => HomePolicy::Blocked,
            HomeAssign::DataAligned => {
                let wpp = cfg.cost.words_per_page();
                let n_pages = layout.total_words().max(wpp).div_ceil(wpp);
                let mut homes: Vec<usize> =
                    (0..n_pages).map(|p| p % cfg.nprocs).collect(); // padding pages interleave
                for (i, a) in prog.arrays.iter().enumerate() {
                    let meta = &metas[i];
                    let last_stride = meta.layout.stride(a.extents.len() - 1);
                    let first_page = meta.base / wpp;
                    let end_page = (meta.base + a.len()).div_ceil(wpp);
                    #[allow(clippy::needless_range_loop)]
                    for page in first_page..end_page {
                        let off = (page * wpp).saturating_sub(meta.base);
                        let j = ((off / last_stride) as i64).min(a.dist_extent() as i64 - 1);
                        homes[page] = a.owner_of(j, cfg.nprocs);
                    }
                }
                HomePolicy::Explicit(homes)
            }
        };
        let cluster = Cluster::new(cfg.nprocs, cfg.cost.clone(), &layout, policy);
        let wpb = cfg.cost.words_per_block();
        let opt = match cfg.backend {
            Backend::SmOpt(o) => o,
            _ => OptLevel::unopt(),
        };
        Engine {
            prog,
            cfg,
            metas,
            handles,
            dsm: Dsm::with_protocol(cluster, cfg.protocol),
            mp: MpRuntime::new(cfg.nprocs),
            env: cfg.base_env.clone(),
            scalars: prog.scalars.iter().copied().collect(),
            pre: PreCache::new(),
            wpb,
            opt,
            pending_flushes: Vec::new(),
            pending_invalidate: Vec::new(),
            analysis_cache: BTreeMap::new(),
        }
    }

    fn run(mut self) -> RunResult {
        assert!(
            !(self.opt.ctl && self.dsm.protocol() == ProtocolKind::WriteUpdate),
            "compiler-orchestrated incoherence requires the eager-invalidate protocol"
        );
        let body = self.prog.body.clone();
        self.exec_stmts(&body);
        // Final synchronization so the report reflects a completed program.
        if !matches!(self.cfg.backend, Backend::Mp) {
            self.dsm.release_barrier();
        } else {
            self.dsm.cluster.barrier();
        }
        let data = self.gather();
        RunResult {
            report: self.dsm.cluster.report(),
            scalars: self.scalars,
            data,
            metas: self.metas,
            ctl: self.dsm.ctl_stats(),
            pre_skipped: self.pre.skipped,
            pre_performed: self.pre.performed,
        }
    }

    fn exec_stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::Par(l) => self.exec_par(l),
                Stmt::Time { var, count, body } => {
                    let saved = self.env.get(*var);
                    for t in 0..*count {
                        self.env.set(*var, t);
                        self.exec_stmts(body);
                    }
                    if let Some(v) = saved {
                        self.env.set(*var, v);
                    }
                }
                Stmt::Scalar { name, f } => {
                    let v = f(&self.scalars);
                    self.scalars.insert(name, v);
                    for n in 0..self.cfg.nprocs {
                        self.dsm.cluster.charge(n, 100, ChargeKind::Compute);
                    }
                }
            }
        }
    }

    /// Word runs (absolute) of a section, with a fallback for shapes the
    /// linearizer declines (enumerate points; only small sections occur).
    fn section_runs(&self, array: usize, sec: &Section) -> Vec<(usize, usize)> {
        let meta = &self.metas[array];
        if let Some(lr) = meta.runs(sec) {
            return lr.iter_runs().collect();
        }
        assert!(
            sec.count() <= 1 << 20,
            "unoptimizable section too large to enumerate"
        );
        sec.points().iter().map(|pt| (meta.offset(pt), 1)).collect()
    }

    fn exec_par(&mut self, l: &ParLoop) {
        let nprocs = self.cfg.nprocs;
        // Compile-time/run-time split (§4.1): loops with a fixed access
        // structure are analyzed once; symbolic loops re-evaluate their
        // descriptors under the current environment.
        let key = l as *const ParLoop as usize;
        let acc: std::rc::Rc<LoopAccess> = if let Some(hit) = self.analysis_cache.get(&key) {
            hit.clone()
        } else {
            let fresh = std::rc::Rc::new(analysis::analyze(self.prog, l, &self.env, nprocs));
            if l.is_static() {
                self.analysis_cache.insert(key, fresh.clone());
            }
            fresh
        };
        let acc = &*acc;
        self.pre.tick();

        match self.cfg.backend {
            Backend::Mp => self.comm_mp(l, acc),
            Backend::SmOpt(_) if self.opt.ctl => {
                self.comm_ctl(l, acc);
                self.resolve_default(l, acc);
            }
            _ => self.resolve_default(l, acc),
        }

        // Kernels, in node order.
        let mut partials = vec![0.0f64; nprocs];
        #[allow(clippy::needless_range_loop)]
        for p in 0..nprocs {
            let iter = &acc.iters[p];
            if iter.iter().any(Range::is_empty) {
                continue;
            }
            let points: u64 = iter.iter().map(Range::count).product();
            let ws_bytes: u64 = acc.sections[p].iter().map(|s| s.count() * 8).sum();
            let factor = self.cfg.cache.factor(ws_bytes);
            let cost = (points as f64 * l.cost_per_iter_ns as f64 * factor) as u64;
            self.dsm.cluster.charge(p, cost, ChargeKind::Compute);
            let mut ctx = KernelCtx {
                mem: self.dsm.cluster.node_mem_mut(p),
                iter,
                env: &self.env,
                scalars: &self.scalars,
                partial: 0.0,
                node: p,
                nprocs,
                handles: &self.handles,
            };
            (l.kernel)(&mut ctx);
            partials[p] = ctx.partial;
        }

        // Record writes for PRE invalidation.
        if self.opt.pre {
            for p in 0..nprocs {
                for (ri, r) in l.refs.iter().enumerate() {
                    if r.mode == RefMode::Write && !acc.sections[p][ri].is_empty() {
                        for (s, len) in self.section_runs(r.array.0, &acc.sections[p][ri]) {
                            self.pre.record_write(r.array.0, s, len);
                        }
                    }
                }
            }
        }

        // Reduction.
        if let Some(rs) = l.reduction {
            let v = match self.cfg.backend {
                Backend::Mp => self.mp.allreduce(&mut self.dsm.cluster, &partials, rs.op),
                _ => self.dsm.cluster.allreduce(&partials, rs.op),
            };
            self.scalars.insert(rs.target, v);
        }

        // End of loop: cleanup phase + barrier.
        match self.cfg.backend {
            Backend::Mp => {} // point-to-point synchronization only
            _ => {
                if self.opt.ctl {
                    self.cleanup_ctl(l, acc);
                }
                self.dsm.release_barrier();
            }
        }
    }

    /// Default-protocol access resolution: make every declared section
    /// accessible before kernels run, counting faults. Sub-phases: all
    /// nodes' writes (with multi-writer detection for false-shared
    /// boundary blocks), then all nodes' reads.
    #[allow(clippy::needless_range_loop)] // per-node loops index several parallel vecs
    fn resolve_default(&mut self, l: &ParLoop, acc: &LoopAccess) {
        let nprocs = self.cfg.nprocs;
        let wpb = self.wpb;
        // Per node: merged covering block ranges for writes and reads.
        let mut wcover: Vec<Vec<(usize, usize)>> = vec![vec![]; nprocs];
        let mut rcover: Vec<Vec<(usize, usize)>> = vec![vec![]; nprocs];
        // Boundary candidates: the first and last block of every raw write
        // run (before merging). A block written by two nodes necessarily
        // contains a section boundary of each, so it is an extremal block
        // of at least one raw run of every writer.
        let mut candidates: BTreeSet<usize> = BTreeSet::new();
        for p in 0..nprocs {
            let mut wruns = fgdsm_section::LinearRanges::empty();
            let mut rruns = fgdsm_section::LinearRanges::empty();
            for (ri, r) in l.refs.iter().enumerate() {
                let sec = &acc.sections[p][ri];
                if sec.is_empty() {
                    continue;
                }
                if r.is_indirect() {
                    // Inspector: resolve the blocks this node actually
                    // touches by reading the index array (a real DSM
                    // faults on demand; the conservative section would
                    // grossly over-fault).
                    for off in self.inspect_indirect(p, r, &acc.iters[p]) {
                        rruns.runs.push(fgdsm_section::StridedRange {
                            base: off,
                            run_len: 1,
                            stride: 0,
                            count: 1,
                        });
                    }
                    continue;
                }
                let runs = self.section_runs(r.array.0, sec);
                if r.mode == RefMode::Write {
                    for &(s, len) in &runs {
                        if len > 0 {
                            candidates.insert(s / wpb);
                            candidates.insert((s + len - 1) / wpb);
                        }
                    }
                }
                let target = match r.mode {
                    RefMode::Write => &mut wruns,
                    RefMode::Read => &mut rruns,
                };
                for (s, len) in runs {
                    target.runs.push(fgdsm_section::StridedRange {
                        base: s,
                        run_len: len,
                        stride: 0,
                        count: 1,
                    });
                }
            }
            wcover[p] = covering_blocks(&wruns, wpb);
            rcover[p] = covering_blocks(&rruns, wpb);
        }
        // A candidate block needs the multiple-writer (twin/diff) path if
        // two or more nodes write it, or if one node writes it while
        // another reads it in the same interval — in the real system the
        // writer would simply re-fault after the reader's downgrade; in
        // the BSP engine the writer must keep its writable copy through
        // the read sub-phase.
        let contains = |ranges: &[(usize, usize)], b: usize| -> bool {
            let idx = ranges.partition_point(|&(_, e)| e <= b);
            idx < ranges.len() && ranges[idx].0 <= b
        };
        let multi: BTreeSet<usize> = candidates
            .into_iter()
            .filter(|&b| {
                let writers: Vec<usize> = (0..nprocs)
                    .filter(|&p| contains(&wcover[p], b))
                    .collect();
                writers.len() >= 2
                    || (writers.len() == 1
                        && (0..nprocs)
                            .any(|p| p != writers[0] && contains(&rcover[p], b)))
            })
            .collect();
        // Sub-phase: writes.
        for p in 0..nprocs {
            for &(f, e) in &wcover[p] {
                for b in f..e {
                    if multi.contains(&b) {
                        self.dsm.write_access_multi(p, b);
                    } else {
                        self.dsm.write_access_excl(p, b);
                    }
                }
            }
        }
        // Sub-phase: reads.
        for p in 0..nprocs {
            for &(f, e) in &rcover[p] {
                for b in f..e {
                    self.dsm.read_access(p, b);
                }
            }
        }
    }

    /// Build the per-loop compiler-control schedule and execute the §4.2
    /// contract up to (and including) the data push.
    fn comm_ctl(&mut self, _l: &ParLoop, acc: &LoopAccess) {
        let wpb = self.wpb;
        // Merged send entries: (owner, array, first, end) → readers.
        let mut sends: BTreeMap<(usize, usize, usize, usize), Vec<usize>> = BTreeMap::new();
        // Incoming ranges per node (for implicit_writable / invalidate).
        let mut incoming: BTreeMap<usize, Vec<(usize, usize, usize)>> = BTreeMap::new();
        // Non-owner-write flushes: (writer, owner, first, end).
        let mut flushes: Vec<(usize, usize, usize, usize)> = Vec::new();

        let opt = self.opt;
        // Collect per (owner, array, user): the ctl ranges of every
        // transfer, then merge overlapping/adjacent ranges — two stencil
        // references to the same ghost column (e.g. `p(i,j-1)` and
        // `p(i-1,j-1)` in shallow's loop 100) produce almost-identical
        // sections that would otherwise be pushed twice.
        type UserKey = (usize, usize, usize, bool); // (owner, array, user, is_write)
        let mut per_user: BTreeMap<UserKey, Vec<(usize, usize)>> = BTreeMap::new();
        for (t, is_write) in acc
            .read_transfers
            .iter()
            .map(|t| (t, false))
            .chain(acc.write_transfers.iter().map(|t| (t, true)))
        {
            if t.indirect {
                continue; // statically unanalyzable: default protocol only
            }
            let Some(runs) = self.metas[t.array].runs(&t.section) else {
                continue; // unsupported shape: left entirely to the default protocol
            };
            let cr = shmem_limits(&runs, wpb);
            if !cr.ctl.is_empty() {
                per_user
                    .entry((t.owner, t.array, t.user, is_write))
                    .or_default()
                    .extend(cr.ctl.iter().copied());
            }
        }
        for ((owner, array, user, is_write), mut ranges) in per_user {
            ranges.sort_unstable();
            let mut merged: Vec<(usize, usize)> = Vec::with_capacity(ranges.len());
            for (f, e) in ranges {
                match merged.last_mut() {
                    Some(last) if f <= last.1 => last.1 = last.1.max(e),
                    _ => merged.push((f, e)),
                }
            }
            for (f, e) in merged {
                if opt.pre && !is_write && self.pre.is_valid(user, array, f, e, wpb) {
                    self.pre.skipped += 1;
                    continue;
                }
                if !is_write {
                    self.pre.performed += 1;
                }
                sends.entry((owner, array, f, e)).or_default().push(user);
                incoming.entry(user).or_default().push((array, f, e));
                if is_write {
                    flushes.push((user, owner, f, e));
                }
            }
        }
        self.pending_flushes = flushes;
        self.pending_invalidate = incoming
            .iter()
            .flat_map(|(&n, v)| v.iter().map(move |&(_, f, e)| (n, f, e)))
            .collect();
        if sends.is_empty() {
            return;
        }

        // Phase A: owners acquire write ownership (skipped under RTOE —
        // the default protocol already left owners exclusive).
        if !self.opt.rtoe {
            let mut by_owner: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
            for &(o, _, f, e) in sends.keys() {
                by_owner.entry(o).or_default().push((f, e));
            }
            for (o, mut ranges) in by_owner {
                ranges.sort_unstable();
                ranges.dedup();
                for (f, e) in ranges {
                    self.dsm.mk_writable(o, f, e);
                }
            }
            self.dsm.release_barrier();
        }

        // Phase B: receivers tag the landing blocks writable.
        for (&n, ranges) in &incoming {
            let mut rs: Vec<(usize, usize)> = ranges.iter().map(|&(_, f, e)| (f, e)).collect();
            rs.sort_unstable();
            rs.dedup();
            for (f, e) in rs {
                self.dsm.implicit_writable(n, f, e, self.opt.rtoe);
            }
        }
        self.dsm.release_barrier();

        // Phase C: owners push, receivers wait on the counting semaphore.
        for (&(o, _a, f, e), readers) in &sends {
            let mut rs = readers.clone();
            rs.sort_unstable();
            rs.dedup();
            self.dsm.send_range(o, &rs, f, e, self.opt.bulk);
            if self.opt.pre {
                for &r in &rs {
                    self.pre.record_delivery(r, _a, f, e);
                }
            }
        }
        for &n in incoming.keys() {
            self.dsm.ready_to_recv(n);
        }
    }

    /// The post-loop half of the contract: readers discard compiler-
    /// controlled copies (skipped under RTOE), non-owner writers flush.
    fn cleanup_ctl(&mut self, _l: &ParLoop, _acc: &LoopAccess) {
        let flushes = std::mem::take(&mut self.pending_flushes);
        for (w, o, f, e) in flushes {
            self.dsm.flush_range(w, o, f, e, self.opt.bulk);
        }
        let inval = std::mem::take(&mut self.pending_invalidate);
        if !self.opt.rtoe {
            for (n, f, e) in inval {
                self.dsm.implicit_invalidate(n, f, e);
            }
            // The closing barrier of the contract doubles as the loop-end
            // barrier executed by exec_par.
        }
    }

    /// Message-passing transfers: one marshalled message per
    /// (owner → user, section) pair — except that a section shipped from
    /// one owner to three or more readers (e.g. `lu`'s pivot column) goes
    /// through the runtime's broadcast tree, as `pghpf`'s runtime does.
    fn comm_mp(&mut self, _l: &ParLoop, acc: &LoopAccess) {
        let mut users: BTreeSet<usize> = BTreeSet::new();
        // Group identical sections by (owner, array, section).
        let mut groups: BTreeMap<(usize, usize, String), Vec<usize>> = BTreeMap::new();
        for t in acc.read_transfers.iter().chain(&acc.write_transfers) {
            groups
                .entry((t.owner, t.array, format!("{}", t.section)))
                .or_default()
                .push(t.user);
        }
        for t in acc.read_transfers.iter().chain(&acc.write_transfers) {
            let meta = &self.metas[t.array];
            let Some(runs) = meta.runs(&t.section) else {
                // Fall back to per-point packing in one message.
                let pts = t.section.points();
                for pt in &pts {
                    let off = meta.offset(pt);
                    self.dsm.cluster.copy_words(t.owner, t.user, off, 1);
                }
                continue;
            };
            let group = &groups[&(t.owner, t.array, format!("{}", t.section))];
            if group.len() >= 3 {
                // Broadcast once, on behalf of the whole group.
                if group[0] == t.user {
                    for sr in &runs.runs {
                        self.mp.broadcast(
                            &mut self.dsm.cluster,
                            t.owner,
                            group,
                            sr.base,
                            sr.run_len,
                            sr.stride.max(1),
                            sr.count,
                        );
                    }
                }
            } else {
                for sr in &runs.runs {
                    self.mp.send_strided(
                        &mut self.dsm.cluster,
                        t.owner,
                        t.user,
                        sr.base,
                        sr.run_len,
                        sr.stride.max(1),
                        sr.count,
                    );
                }
            }
            users.insert(t.user);
        }
        for &u in &users {
            self.mp.recv_all(&mut self.dsm.cluster, u);
        }
        // Map each node's own written pages (first touch).
        for p in 0..self.cfg.nprocs {
            for (ri, r) in _l.refs.iter().enumerate() {
                if r.mode == RefMode::Write && !acc.sections[p][ri].is_empty() {
                    for (s, len) in self.section_runs(r.array.0, &acc.sections[p][ri]) {
                        self.dsm.cluster.map_range(p, s, len);
                    }
                }
            }
        }
    }

    /// Inspector for indirect references (`x(idx(i))`): enumerate the
    /// element offsets node `p` will gather, by reading its (owned,
    /// current) copy of the index array. Supports the common 1-D gather.
    fn inspect_indirect(&self, p: usize, r: &crate::ir::ARef, iter: &[Range]) -> Vec<usize> {
        use crate::ir::Subscript;
        let [Subscript::Indirect(idx_aid, c)] = r.subs.as_slice() else {
            panic!("indirect references must be 1-D gathers x(idx(i))");
        };
        let idx_meta = &self.metas[idx_aid.0];
        let target = &self.metas[r.array.0];
        let extent = self.prog.array(r.array).len() as i64;
        let mem = self.dsm.cluster.node_mem(p);
        let mut out = Vec::with_capacity(iter[0].count() as usize);
        for i in iter[0].iter() {
            let v = mem[idx_meta.base + (i + c) as usize];
            let j = v as i64;
            assert!(
                (0..extent).contains(&j),
                "indirect index {j} out of bounds (extent {extent})"
            );
            out.push(target.base + j as usize);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Gather the canonical segment contents: for each block, copy from
    /// the node the directory records as holding current data (MP: from
    /// the distribution owner).
    fn gather(&mut self) -> Vec<f64> {
        let words = self.dsm.cluster.seg_words();
        let mut out = vec![0.0f64; words];
        match self.cfg.backend {
            Backend::Mp => {
                for (i, a) in self.prog.arrays.iter().enumerate() {
                    for p in 0..self.cfg.nprocs {
                        let sec = a.owner_section(p, self.cfg.nprocs);
                        if sec.is_empty() {
                            continue;
                        }
                        for (s, len) in self.section_runs(i, &sec) {
                            out[s..s + len].copy_from_slice(&self.dsm.cluster.node_mem(p)[s..s + len]);
                        }
                    }
                }
            }
            _ => {
                for b in 0..self.dsm.cluster.n_blocks() {
                    let src = match self.dsm.dir_state(b) {
                        fgdsm_protocol::DirState::Excl { owner } => owner,
                        _ => self.dsm.cluster.home_of_block(b),
                    };
                    let (s, e) = self.dsm.cluster.block_words(b);
                    out[s..e].copy_from_slice(&self.dsm.cluster.node_mem(src)[s..e]);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Dist;
    use crate::ir::{ARef, KernelCtx, ParLoop, Subscript};
    use fgdsm_section::SymRange;

    const A: crate::dist::ArrayId = crate::dist::ArrayId(0);

    fn fill_kernel(ctx: &mut KernelCtx) {
        let a = ctx.h(A);
        for j in ctx.iter[1].iter() {
            for i in ctx.iter[0].iter() {
                ctx.mem[a.at2(i, j)] = (i + 100 * j) as f64;
            }
        }
    }

    fn tiny_program(rows: usize, cols: usize, dist: Dist) -> Program {
        let mut b = Program::builder();
        let a = b.array("a", &[rows, cols], dist);
        b.stmt(Stmt::Par(ParLoop {
            name: "fill",
            iter: vec![
                SymRange::new(0, rows as i64 - 1),
                SymRange::new(0, cols as i64 - 1),
            ],
            dist: crate::ir::CompDist::Owner(a),
            refs: vec![ARef::write(
                a,
                vec![Subscript::loop_var(0), Subscript::loop_var(1)],
            )],
            kernel: fill_kernel,
            cost_per_iter_ns: 20,
            reduction: None,
        }));
        b.build()
    }

    #[test]
    fn config_builders() {
        let c = ExecConfig::sm_opt(8).single_cpu();
        assert!(matches!(c.backend, Backend::SmOpt(_)));
        assert_eq!(c.cost.cpu, fgdsm_tempest::CpuMode::Single);
        let c2 = ExecConfig::sm_unopt(4).with_opt(OptLevel::base());
        assert!(matches!(c2.backend, Backend::SmOpt(o) if o.ctl && !o.bulk));
        assert!(matches!(ExecConfig::mp(2).backend, Backend::Mp));
    }

    #[test]
    fn data_aligned_homes_eliminate_owner_cold_write_faults() {
        let prog = tiny_program(64, 64, Dist::Block);
        let mut aligned = ExecConfig::sm_unopt(4);
        aligned.home = HomeAssign::DataAligned;
        let mut rr = ExecConfig::sm_unopt(4);
        rr.home = HomeAssign::RoundRobin;
        let ra = execute(&prog, &aligned);
        let rb = execute(&prog, &rr);
        // Owners are home to their data: the init writes never fault.
        let misses_aligned: u64 = ra.report.nodes.iter().map(|n| n.misses()).sum();
        let misses_rr: u64 = rb.report.nodes.iter().map(|n| n.misses()).sum();
        assert_eq!(misses_aligned, 0, "aligned homes: no cold write faults");
        assert!(misses_rr > 0, "round-robin homes: owners must fault");
        // Same data either way.
        assert_eq!(ra.data, rb.data);
    }

    #[test]
    fn all_home_policies_agree_on_data() {
        let prog = tiny_program(40, 24, Dist::Cyclic);
        let mut results = Vec::new();
        for home in [HomeAssign::DataAligned, HomeAssign::RoundRobin, HomeAssign::Blocked] {
            let mut cfg = ExecConfig::sm_opt(4);
            cfg.home = home;
            results.push(execute(&prog, &cfg).data);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn run_result_array_extracts_values() {
        let prog = tiny_program(8, 6, Dist::Block);
        let r = execute(&prog, &ExecConfig::sm_unopt(2));
        let a = r.array(&prog, A);
        assert_eq!(a.len(), 48);
        assert_eq!(a[0], 0.0);
        assert_eq!(a[8], 100.0); // (0,1)
        assert_eq!(a[7 + 5 * 8], (7 + 500) as f64);
    }

    #[test]
    fn makespan_is_positive_and_monotone_with_work() {
        // Page-aligned owner chunks on both sizes, so the comparison is
        // pure compute (no boundary faults).
        let small = tiny_program(64, 32, Dist::Block);
        let big = tiny_program(128, 64, Dist::Block);
        let rs = execute(&small, &ExecConfig::sm_unopt(2));
        let rb = execute(&big, &ExecConfig::sm_unopt(2));
        assert!(rs.total_s() > 0.0);
        assert!(rb.total_s() > rs.total_s());
    }

    #[test]
    fn scalar_statements_update_replicated_state() {
        let mut b = Program::builder();
        let a = b.array("a", &[8, 8], Dist::Block);
        b.scalar("x", 2.0);
        b.stmt(Stmt::Par(ParLoop {
            name: "fill",
            iter: vec![SymRange::new(0, 7), SymRange::new(0, 7)],
            dist: crate::ir::CompDist::Owner(a),
            refs: vec![ARef::write(
                a,
                vec![Subscript::loop_var(0), Subscript::loop_var(1)],
            )],
            kernel: fill_kernel,
            cost_per_iter_ns: 10,
            reduction: None,
        }));
        b.stmt(Stmt::Scalar {
            name: "x",
            f: |s| s["x"] * 10.0 + 1.0,
        });
        b.stmt(Stmt::Scalar {
            name: "y",
            f: |s| s["x"] - 1.0,
        });
        let prog = b.build();
        let r = execute(&prog, &ExecConfig::sm_unopt(2));
        assert_eq!(r.scalars["x"], 21.0);
        assert_eq!(r.scalars["y"], 20.0);
    }
}
