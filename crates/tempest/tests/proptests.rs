//! Property tests for the cluster substrate: clock/charge accounting,
//! barrier alignment, page-mapping idempotence and segment layout.
//!
//! Gated behind the `proptest` feature so the default tier-1 test run stays
//! fast: `cargo test -p fgdsm-tempest --features proptest`.
#![cfg(feature = "proptest")]

use fgdsm_tempest::{ChargeKind, Cluster, CostModel, HomePolicy, SegmentLayout};
use fgdsm_testkit::{check_cases, Rng};

fn cluster(nprocs: usize, words: usize) -> Cluster {
    let cfg = CostModel::paper_dual_cpu();
    let mut layout = SegmentLayout::new(cfg.words_per_page());
    layout.alloc(words);
    Cluster::new(nprocs, cfg, &layout, HomePolicy::RoundRobin)
}

#[test]
fn charges_accumulate_exactly() {
    check_cases(64, |rng| {
        let n_charges = rng.range(0, 64);
        let charges: Vec<(usize, u64, u8)> = rng.vec(n_charges, |r| {
            (r.range(0, 4), r.below(100_000), r.below(3) as u8)
        });
        let mut c = cluster(4, 2048);
        let mut expect = [[0u64; 3]; 4];
        for &(node, ns, kind) in &charges {
            let k = match kind {
                0 => ChargeKind::Compute,
                1 => ChargeKind::Stall,
                _ => ChargeKind::CtlCall,
            };
            c.charge(node, ns, k);
            expect[node][kind as usize] += ns;
        }
        #[allow(clippy::needless_range_loop)]
        for n in 0..4 {
            let st = c.stats(n);
            assert_eq!(st.compute_ns, expect[n][0]);
            assert_eq!(st.stall_ns, expect[n][1]);
            assert_eq!(st.ctl_call_ns, expect[n][2]);
            assert_eq!(c.clock_ns(n), expect[n][0] + expect[n][1] + expect[n][2]);
        }
    });
}

#[test]
fn barrier_aligns_all_clocks_past_the_max() {
    check_cases(64, |rng| {
        let pre: Vec<u64> = rng.vec(4, |r| r.below(1_000_000));
        let mut c = cluster(4, 2048);
        for (n, &ns) in pre.iter().enumerate() {
            c.charge(n, ns, ChargeKind::Compute);
        }
        let max_before = *pre.iter().max().unwrap();
        c.barrier();
        let t = c.clock_ns(0);
        assert!(t >= max_before + c.cfg().barrier_cost_ns(4));
        for n in 1..4 {
            assert_eq!(c.clock_ns(n), t);
        }
        // Barrier wait accounting: the slowest node waited the least.
        let slowest = pre.iter().enumerate().max_by_key(|(_, &v)| v).unwrap().0;
        for n in 0..4 {
            assert!(c.stats(slowest).barrier_ns <= c.stats(n).barrier_ns);
        }
    });
}

#[test]
fn map_range_charges_each_page_once() {
    check_cases(64, |rng| {
        let n_ranges = rng.range(1, 20);
        let ranges: Vec<(usize, usize)> =
            rng.vec(n_ranges, |r| (r.range(0, 4000), r.range(1, 600)));
        let mut c = cluster(2, 4096);
        let mut mapped_total = 0;
        for &(start, len) in &ranges {
            let len = len.min(4096 - start.min(4095));
            if len == 0 {
                continue;
            }
            let start = start.min(4095);
            let n1 = c.map_range(1, start, len.min(4096 - start));
            mapped_total += n1;
            // Second touch is free.
            assert_eq!(c.map_range(1, start, len.min(4096 - start)), 0);
        }
        assert_eq!(c.stats(1).pages_mapped, mapped_total);
        assert!(mapped_total <= 8); // 4096 words = 8 pages
    });
}

#[test]
fn segment_layout_never_overlaps() {
    check_cases(64, |rng| {
        let n_sizes = rng.range(1, 12);
        let sizes: Vec<usize> = rng.vec(n_sizes, |r| r.range(1, 3000));
        let mut layout = SegmentLayout::new(512);
        let mut allocs = Vec::new();
        for &sz in &sizes {
            let base = layout.alloc(sz);
            assert_eq!(base % 512, 0, "allocations are page-aligned");
            allocs.push((base, sz));
        }
        for (i, &(b1, s1)) in allocs.iter().enumerate() {
            for &(b2, s2) in &allocs[i + 1..] {
                assert!(b1 + s1 <= b2 || b2 + s2 <= b1, "allocations overlap");
            }
        }
        assert!(layout.total_words() >= allocs.iter().map(|&(b, s)| b + s).max().unwrap());
    });
}

#[test]
fn copy_words_is_exact() {
    check_cases(64, |rng| {
        let start = rng.range(0, 1000);
        let len = rng.range(0, 500).min(2048 - start);
        let seed = rng.below(1000);
        let mut c = cluster(3, 2048);
        for w in 0..2048 {
            c.node_mem_mut(0)[w] = (w as f64) * 0.5 + seed as f64;
        }
        c.copy_words(0, 2, start, len);
        for w in 0..2048 {
            let expect = if w >= start && w < start + len {
                (w as f64) * 0.5 + seed as f64
            } else {
                0.0
            };
            assert_eq!(c.node_mem(2)[w].to_bits(), expect.to_bits());
        }
    });
}

#[test]
fn merged_percentiles_bound_the_per_part_percentiles() {
    use fgdsm_tempest::Histogram;
    check_cases(128, |rng| {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let na = rng.range(1, 200);
        let nb = rng.range(1, 200);
        for _ in 0..na {
            // Spread samples across the full bucket range, including the
            // saturating top bucket.
            let bits = rng.range(0, 65) as u32;
            let v = if bits == 0 {
                0
            } else {
                rng.below(u64::MAX >> (64 - bits)) | (1u64 << (bits - 1))
            };
            a.record(v);
        }
        for _ in 0..nb {
            let bits = rng.range(1, 40);
            let v = rng.below(1u64 << bits);
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), a.count() + b.count());
        assert_eq!(merged.min(), a.min().min(b.min()));
        assert_eq!(merged.max(), a.max().max(b.max()));
        for p in [0.5, 0.9, 0.99] {
            let (pa, pb, pm) = (a.percentile(p), b.percentile(p), merged.percentile(p));
            assert!(
                pa.min(pb) <= pm && pm <= pa.max(pb),
                "p{p}: merged {pm} outside [{}, {}]",
                pa.min(pb),
                pa.max(pb)
            );
        }
    });
}
