//! Transport-agnostic envelope delivery between nodes.
//!
//! [`Mailbox`] is the staging area the wire-format refactor splits out
//! of the old monolithic plan/apply path: planning *posts* encoded byte
//! frames addressed to a destination node, a transport *routes* each
//! destination's inbox (in-process loopback, channel-backed worker
//! threads, or — next — a real socket), and apply *consumes* the routed
//! frames in posting order. The mailbox itself never interprets frame
//! contents; it only guarantees per-destination FIFO order and recycles
//! frame buffers through a [`VecPool`] so steady-state supersteps
//! allocate nothing (the PR-6 scratch discipline).

use std::collections::VecDeque;

use crate::scratch::VecPool;

/// Per-node FIFO queues of encoded byte frames plus a recycling pool
/// for the frame buffers themselves.
#[derive(Debug)]
pub struct Mailbox {
    inboxes: Vec<VecDeque<Vec<u8>>>,
    bufs: VecPool<u8>,
}

impl Mailbox {
    /// A mailbox with one inbox per node.
    pub fn new(nprocs: usize) -> Self {
        Mailbox {
            inboxes: (0..nprocs).map(|_| VecDeque::new()).collect(),
            bufs: VecPool::default(),
        }
    }

    /// An empty frame buffer — recycled with its previous capacity if
    /// one is shelved, freshly allocated otherwise.
    pub fn take_buf(&mut self) -> Vec<u8> {
        self.bufs.take()
    }

    /// Shelve a consumed frame buffer for reuse.
    pub fn recycle_buf(&mut self, buf: Vec<u8>) {
        self.bufs.put(buf);
    }

    /// Queue an encoded frame for delivery to `dst`.
    pub fn post(&mut self, dst: usize, frame: Vec<u8>) {
        self.inboxes[dst].push_back(frame);
    }

    /// Drain `dst`'s inbox in posting order (the transport routes the
    /// returned batch as one delivery).
    pub fn take_inbox(&mut self, dst: usize) -> Vec<Vec<u8>> {
        self.inboxes[dst].drain(..).collect()
    }

    /// Frames currently queued for `dst`.
    pub fn pending(&self, dst: usize) -> usize {
        self.inboxes[dst].len()
    }

    /// True when every inbox has been drained — apply must leave the
    /// mailbox in this state (undelivered frames mean lost transfers).
    pub fn all_delivered(&self) -> bool {
        self.inboxes.iter().all(|q| q.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_destination_fifo_and_recycling() {
        let mut m = Mailbox::new(2);
        let mut a = m.take_buf();
        a.extend_from_slice(b"first");
        let mut b = m.take_buf();
        b.extend_from_slice(b"second");
        m.post(1, a);
        m.post(1, b);
        m.post(0, vec![9]);
        assert_eq!(m.pending(1), 2);
        assert!(!m.all_delivered());
        let got = m.take_inbox(1);
        assert_eq!(got, vec![b"first".to_vec(), b"second".to_vec()]);
        assert_eq!(m.take_inbox(0), vec![vec![9]]);
        assert!(m.all_delivered());
        let cap = got[0].capacity();
        for f in got {
            m.recycle_buf(f);
        }
        assert_eq!(m.take_buf().capacity(), cap, "frame buffer recycled");
    }
}
