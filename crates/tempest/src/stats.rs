//! Per-node event counters and timing breakdowns.
//!
//! These are the quantities the paper reports: Table 3 decomposes execution
//! into compute time and communication time (stall waiting for misses and
//! transfers + protocol occupancy + synchronization) and counts per-node
//! misses; Figure 3's speedups derive from total virtual time.

/// Apply a callback macro to every counter field of [`NodeStats`], in
/// declaration order — the single source of truth for field-generic code
/// (interval deltas, accumulation, the canonical JSON encoding and the
/// profile invariant checks). Adding a field here and to the struct is
/// all it takes for every consumer to pick it up.
macro_rules! with_stat_fields {
    ($cb:ident) => {
        $cb!(
            compute_ns,
            stall_ns,
            handler_ns,
            barrier_ns,
            ctl_call_ns,
            read_misses,
            write_misses,
            msgs_sent,
            bytes_sent,
            msgs_recv,
            bytes_recv,
            pages_mapped,
            mk_writable_calls,
            implicit_writable_calls,
            implicit_invalidate_calls,
            send_range_calls,
            ready_recv_calls,
            flush_range_calls,
            blocks_pushed,
            reductions
        );
    };
}

/// Counters and time breakdown for one node.
#[derive(Clone, Default, Debug, PartialEq)]
pub struct NodeStats {
    /// Time spent computing (kernel execution).
    pub compute_ns: u64,
    /// Time stalled waiting for remote data (miss service, transfer waits).
    pub stall_ns: u64,
    /// Protocol handler occupancy executed on this node on behalf of
    /// remote requests (charged to the compute clock only in single-cpu
    /// mode, but always accounted here).
    pub handler_ns: u64,
    /// Time spent waiting at barriers.
    pub barrier_ns: u64,
    /// Time spent in compiler-inserted protocol calls (mk_writable,
    /// implicit_writable, send, ready_to_recv, implicit_invalidate, flush).
    pub ctl_call_ns: u64,
    /// Read misses taken through the default protocol.
    pub read_misses: u64,
    /// Write misses / upgrades taken through the default protocol.
    pub write_misses: u64,
    /// Messages sent (any kind).
    pub msgs_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Messages received (every send records a matching receive on the
    /// destination shard, so cluster-wide sent == received).
    pub msgs_recv: u64,
    /// Payload bytes received.
    pub bytes_recv: u64,
    /// Pages mapped on first touch.
    pub pages_mapped: u64,
    /// Calls to each compiler-directed primitive, for ablation reporting.
    pub mk_writable_calls: u64,
    pub implicit_writable_calls: u64,
    pub implicit_invalidate_calls: u64,
    pub send_range_calls: u64,
    pub ready_recv_calls: u64,
    pub flush_range_calls: u64,
    /// Blocks pushed by compiler-directed sends.
    pub blocks_pushed: u64,
    /// Reductions participated in.
    pub reductions: u64,
}

impl NodeStats {
    /// Total misses (read + write).
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// The paper's "communication time": everything that is not kernel
    /// computation — miss stalls, compiler-call overhead, synchronization,
    /// and (in single-cpu mode, where it steals the compute CPU) handler
    /// occupancy. `handler_in_comm` selects whether handler time counts.
    ///
    /// This is the single timing decomposition in the codebase: the
    /// report's `comm_s`/`total_s` and the executors' `RunResult::total_s`
    /// all derive from it (or from the makespan) rather than re-summing
    /// counters themselves.
    pub fn comm_ns(&self, handler_in_comm: bool) -> u64 {
        let h = if handler_in_comm { self.handler_ns } else { 0 };
        self.stall_ns + self.barrier_ns + self.ctl_call_ns + h
    }

    /// Field-wise difference `self − prev`. Counters are monotone, so a
    /// later snapshot dominates an earlier one field by field; panics on
    /// underflow (which would mean a counter ran backwards).
    pub fn delta(&self, prev: &NodeStats) -> NodeStats {
        let mut out = NodeStats::default();
        macro_rules! sub {
            ($($f:ident),* $(,)?) => { $(out.$f = self.$f - prev.$f;)* };
        }
        with_stat_fields!(sub);
        out
    }

    /// Field-wise accumulate `other` into `self` — the inverse of
    /// [`NodeStats::delta`]: summing every interval delta reproduces the
    /// whole-run snapshot exactly.
    pub fn accumulate(&mut self, other: &NodeStats) {
        macro_rules! add {
            ($($f:ident),* $(,)?) => { $(self.$f += other.$f;)* };
        }
        with_stat_fields!(add);
    }

    /// True if every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == NodeStats::default()
    }

    /// Append the canonical JSON object for this node's counters to
    /// `out` — the per-node encoding shared by
    /// [`ClusterReport::to_json`] and the profile artifacts. Fields
    /// appear in declaration order.
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write;
        out.push('{');
        let mut first = true;
        macro_rules! emit {
            ($($f:ident),* $(,)?) => { $(
                if !first {
                    out.push(',');
                }
                first = false;
                write!(out, "\"{}\":{}", stringify!($f), self.$f).unwrap();
            )* };
        }
        with_stat_fields!(emit);
        let _ = first;
        out.push('}');
    }

    /// Visit every counter as a `(name, value)` pair, in declaration
    /// order — lets external checkers (the determinism suite, the fuzz
    /// invariants) compare stats field by field without hand-listing the
    /// fields.
    pub fn for_each_field(&self, mut f: impl FnMut(&'static str, u64)) {
        macro_rules! visit {
            ($($fld:ident),* $(,)?) => { $(f(stringify!($fld), self.$fld);)* };
        }
        with_stat_fields!(visit);
    }
}

/// Aggregated view over all nodes of a run.
///
/// Derived from the structured event traces ([`crate::trace::NodeTrace`],
/// one per shard): the per-node stats are the traces' folded aggregates,
/// so the report and the event log always agree.
#[derive(Clone, Debug, Default)]
pub struct ClusterReport {
    /// Per-node stats snapshot.
    pub nodes: Vec<NodeStats>,
    /// Whether handler occupancy steals compute-CPU time (single-cpu mode).
    pub handler_in_comm: bool,
    /// Final virtual time of the run (max node clock after last barrier).
    pub makespan_ns: u64,
    /// Host wall-clock the run took, in ns. Unlike every other field this
    /// is *real* time, stamped by the executor: it varies run to run and
    /// with `FGDSM_PAR`, so it is deliberately excluded from the
    /// canonical [`ClusterReport::to_json`] encoding (which must be
    /// byte-identical between serial and parallel execution).
    pub wall_ns: u64,
    /// Host time spent inside the wire transport's `route` calls, in ns
    /// (0 on the zero-copy fast path). Like [`ClusterReport::wall_ns`]
    /// this is *real* time — it measures the installed transport (channel
    /// hop, socket round-trip), varies run to run, and is deliberately
    /// excluded from the canonical [`ClusterReport::to_json`] encoding so
    /// socket-backed and in-process runs stay byte-identical.
    pub wire_route_ns: u64,
    /// Per-superstep interval deltas: one entry per superstep (plus a
    /// trailing catch-all for events outside any superstep), each holding
    /// the per-node stats delta accrued during that superstep. Summing
    /// every interval reproduces [`ClusterReport::nodes`] exactly (see
    /// [`ClusterReport::check_profile_invariants`]). Excluded from
    /// [`ClusterReport::to_json`]; encoded by
    /// [`ClusterReport::profile_json`].
    pub intervals: Vec<crate::profile::StepInterval>,
    /// Multi-word blocks faulted by ≥2 distinct nodes within one
    /// superstep — the co-residency hazard `shmem_limits` shrinking
    /// exists to avoid.
    pub false_sharing: Vec<crate::profile::FalseSharingFlag>,
    /// Per-node block heatmaps folded from the event stream.
    pub heatmaps: Vec<crate::profile::NodeHeatmap>,
}

impl ClusterReport {
    /// Average per-node miss count.
    pub fn avg_misses(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes.iter().map(|n| n.misses() as f64).sum::<f64>() / self.nodes.len() as f64
    }

    /// Maximum per-node compute time in seconds.
    pub fn compute_s(&self) -> f64 {
        self.nodes.iter().map(|n| n.compute_ns).max().unwrap_or(0) as f64 / 1e9
    }

    /// Maximum per-node communication time in seconds.
    pub fn comm_s(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.comm_ns(self.handler_in_comm))
            .max()
            .unwrap_or(0) as f64
            / 1e9
    }

    /// Run makespan in seconds.
    pub fn total_s(&self) -> f64 {
        self.makespan_ns as f64 / 1e9
    }

    /// Total messages sent across all nodes.
    pub fn total_msgs(&self) -> u64 {
        self.nodes.iter().map(|n| n.msgs_sent).sum()
    }

    /// Total payload bytes sent across all nodes.
    pub fn total_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.bytes_sent).sum()
    }

    /// Total messages received across all nodes.
    pub fn total_msgs_recv(&self) -> u64 {
        self.nodes.iter().map(|n| n.msgs_recv).sum()
    }

    /// Total payload bytes received across all nodes.
    pub fn total_bytes_recv(&self) -> u64 {
        self.nodes.iter().map(|n| n.bytes_recv).sum()
    }

    /// Trace invariant: every message sent was received somewhere —
    /// cluster-wide message and byte counters balance between senders
    /// and receivers. The executors assert this at the end of every run.
    pub fn traffic_balanced(&self) -> bool {
        self.total_msgs() == self.total_msgs_recv() && self.total_bytes() == self.total_bytes_recv()
    }

    /// Host wall-clock in seconds (0 when the executor did not stamp it).
    pub fn wall_s(&self) -> f64 {
        self.wall_ns as f64 / 1e9
    }

    /// Canonical JSON encoding of the *deterministic* run state: makespan,
    /// handler accounting mode and every per-node counter — but **not**
    /// `wall_ns`, which is host time. The determinism suite compares these
    /// strings byte-for-byte between serial and threaded execution, so the
    /// encoding must stay a pure function of the virtual-time state.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        write!(
            out,
            "{{\"makespan_ns\":{},\"handler_in_comm\":{},\"nodes\":[",
            self.makespan_ns, self.handler_in_comm
        )
        .unwrap();
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            n.write_json(&mut out);
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_time_composition() {
        let s = NodeStats {
            stall_ns: 100,
            barrier_ns: 50,
            ctl_call_ns: 25,
            handler_ns: 10,
            compute_ns: 1000,
            ..Default::default()
        };
        assert_eq!(s.comm_ns(false), 175);
        assert_eq!(s.comm_ns(true), 185);
    }

    #[test]
    fn report_aggregates() {
        let mut r = ClusterReport {
            nodes: vec![],
            ..Default::default()
        };
        r.nodes = vec![
            NodeStats {
                read_misses: 10,
                write_misses: 2,
                compute_ns: 3_000_000_000,
                ..Default::default()
            },
            NodeStats {
                read_misses: 6,
                compute_ns: 1_000_000_000,
                ..Default::default()
            },
        ];
        r.makespan_ns = 4_000_000_000;
        assert_eq!(r.avg_misses(), 9.0);
        assert_eq!(r.compute_s(), 3.0);
        assert_eq!(r.total_s(), 4.0);
    }

    #[test]
    fn traffic_balance_accessor() {
        let mut r = ClusterReport {
            nodes: vec![
                NodeStats {
                    msgs_sent: 3,
                    bytes_sent: 200,
                    msgs_recv: 1,
                    bytes_recv: 72,
                    ..Default::default()
                },
                NodeStats {
                    msgs_sent: 1,
                    bytes_sent: 72,
                    msgs_recv: 3,
                    bytes_recv: 200,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        assert_eq!(r.total_msgs(), 4);
        assert_eq!(r.total_msgs_recv(), 4);
        assert_eq!(r.total_bytes(), 272);
        assert_eq!(r.total_bytes_recv(), 272);
        assert!(r.traffic_balanced());
        r.nodes[0].bytes_recv += 1;
        assert!(!r.traffic_balanced());
    }

    #[test]
    fn delta_and_accumulate_roundtrip() {
        let a = NodeStats {
            compute_ns: 100,
            read_misses: 3,
            bytes_sent: 64,
            ..Default::default()
        };
        let b = NodeStats {
            compute_ns: 250,
            read_misses: 7,
            bytes_sent: 64,
            reductions: 1,
            ..Default::default()
        };
        let d = b.delta(&a);
        assert_eq!(d.compute_ns, 150);
        assert_eq!(d.read_misses, 4);
        assert_eq!(d.bytes_sent, 0);
        assert_eq!(d.reductions, 1);
        let mut back = a.clone();
        back.accumulate(&d);
        assert_eq!(back, b);
        assert!(!d.is_zero());
        assert!(b.delta(&b).is_zero());
        let mut names = vec![];
        b.for_each_field(|n, _| names.push(n));
        assert_eq!(names.len(), 20, "every counter visited exactly once");
        assert_eq!(names[0], "compute_ns");
    }

    #[test]
    fn canonical_json_ignores_wall_clock() {
        let mut r = ClusterReport {
            nodes: vec![NodeStats {
                compute_ns: 123,
                read_misses: 4,
                ..Default::default()
            }],
            handler_in_comm: true,
            makespan_ns: 999,
            wall_ns: 0,
            ..Default::default()
        };
        let a = r.to_json();
        r.wall_ns = 55_555; // host time must not perturb the encoding
        r.wire_route_ns = 7_777; // measured transport time is host time too
        let b = r.to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"makespan_ns\":999,\"handler_in_comm\":true,"));
        assert!(a.contains("\"compute_ns\":123"));
        assert!(a.contains("\"read_misses\":4"));
        assert!(!a.contains("wall"));
        assert_eq!(r.wall_s(), 55_555.0 / 1e9);
    }
}
