//! A coarse cache-locality model for compute-time accounting.
//!
//! The paper's speedups are measured against a uniprocessor run whose
//! working set does not fit in cache ("they are not blocked for cache
//! performance, which explains the superlinear speedups"). Distributing an
//! array over 8 nodes shrinks each node's working set by ~8×, often moving
//! it from memory-bound to cache-resident. This model captures only that
//! first-order effect: per-element compute cost is inflated by a factor
//! that grows smoothly from 1 (fits in L2) toward `1 + max_penalty` (far
//! exceeds L2).

/// Compute-cost inflation as a function of per-node working-set size.
#[derive(Clone, Copy, Debug)]
pub struct CacheModel {
    /// Effective cache capacity in bytes (SS-20 HyperSPARC: 1 MB L2).
    pub capacity_bytes: u64,
    /// Asymptotic extra cost factor for working sets ≫ capacity.
    pub max_penalty: f64,
}

impl CacheModel {
    /// The paper machine's 1 MB L2 with a 60% out-of-cache penalty.
    pub fn paper() -> Self {
        CacheModel {
            capacity_bytes: 1 << 20,
            max_penalty: 0.6,
        }
    }

    /// A model with no cache effect (factor always 1).
    pub fn flat() -> Self {
        CacheModel {
            capacity_bytes: u64::MAX,
            max_penalty: 0.0,
        }
    }

    /// Multiplicative factor applied to per-element compute cost for a
    /// working set of `ws_bytes`.
    pub fn factor(&self, ws_bytes: u64) -> f64 {
        if ws_bytes <= self.capacity_bytes {
            1.0
        } else {
            let excess = 1.0 - self.capacity_bytes as f64 / ws_bytes as f64;
            1.0 + self.max_penalty * excess
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_in_cache_is_free() {
        let m = CacheModel::paper();
        assert_eq!(m.factor(1 << 19), 1.0);
        assert_eq!(m.factor(1 << 20), 1.0);
    }

    #[test]
    fn penalty_grows_monotonically() {
        let m = CacheModel::paper();
        let f2 = m.factor(2 << 20);
        let f8 = m.factor(8 << 20);
        let f64m = m.factor(64 << 20);
        assert!(1.0 < f2 && f2 < f8 && f8 < f64m);
        assert!(f64m < 1.0 + m.max_penalty);
    }

    #[test]
    fn superlinear_speedup_possible() {
        // 8 MB total working set: uniprocessor pays the penalty, each of 8
        // nodes (1 MB each) does not → per-element speedup > 8 possible.
        let m = CacheModel::paper();
        let uni = m.factor(8 << 20);
        let node = m.factor(1 << 20);
        assert!(uni / node > 1.0);
    }

    #[test]
    fn flat_model_is_one() {
        let m = CacheModel::flat();
        assert_eq!(m.factor(u64::MAX / 2), 1.0);
    }
}
