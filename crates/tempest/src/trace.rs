//! Structured per-node event trace with virtual timestamps.
//!
//! Every observable protocol action — block faults, tag upgrades,
//! compiler-directed control calls, bulk transfers, messages, barriers,
//! reductions, superstep boundaries — is recorded as a typed [`Event`]
//! stamped with the acting node's virtual clock. The trace is the *single
//! source of truth* for run statistics: events are folded online into the
//! node's [`NodeStats`] as they are recorded, and the
//! [`ClusterReport`](crate::stats::ClusterReport) the executors hand back
//! is derived from the traces, so the Table 3 decomposition (compute vs.
//! communication time, miss counts) and the event log can never disagree.
//!
//! Each [`NodeTrace`] belongs to exactly one
//! [`NodeShard`](crate::shard::NodeShard), so recording an event during
//! the compute phase touches only shard-local state — no cross-node
//! synchronization, which is what lets the compute phase run on real
//! threads while staying deterministic.
//!
//! Recent events are additionally kept in a bounded ring buffer for
//! inspection and JSON export; when the ring wraps, only the raw entries
//! are dropped — the folded aggregates remain exact, and
//! [`NodeTrace::dropped`] reports how many entries fell off.

use crate::cluster::ChargeKind;
use crate::stats::NodeStats;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Default per-node ring capacity (entries kept for export).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Sentinel superstep index: the event happened outside any superstep
/// (initialization, final gather, the run-ending barrier).
pub const NO_STEP: u32 = u32::MAX;

/// Sentinel loop id: the event is not attributable to a parallel loop.
pub const NO_LOOP: u32 = u32::MAX;

/// Sentinel block index: the message is not attributable to one cache
/// block (reduction partials, marshalled multi-block payload remainders).
pub const NO_BLOCK: u32 = u32::MAX;

/// Sentinel array id: the transfer is not attributable to a source array.
pub const NO_ARRAY: u32 = u32::MAX;

/// Which kind of access-control fault a node took.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Load from an `Invalid` block: fetch a clean copy.
    Read,
    /// Store to an `Invalid` block: fetch an exclusive/writable copy.
    Write,
    /// Store to a `ReadOnly` copy: ownership upgrade.
    Upgrade,
    /// Store entering the multiple-writer (twin/diff) path.
    MultiWrite,
}

/// The compiler-directed protocol primitives of §4.2.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CtlPrim {
    MkWritable,
    ImplicitWritable,
    ImplicitInvalidate,
    SendRange,
    ReadyToRecv,
    FlushRange,
}

/// One typed trace event. Variants carry exactly the quantities folded
/// into [`NodeStats`], so replaying a trace reproduces the aggregates.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Event {
    /// An access-control fault on `block`.
    Fault { block: usize, kind: FaultKind },
    /// A compiler-directed control call was issued (the node performing
    /// the work: the owner for sends/flushes, the user otherwise).
    Ctl { prim: CtlPrim },
    /// Blocks pushed to a consumer by a compiler-directed send:
    /// `blocks` contiguous blocks starting at `first_block`, carved out
    /// of array `array` by the compiler's contract ([`NO_ARRAY`] when the
    /// caller did not thread the array through).
    CtlSend {
        blocks: u64,
        first_block: u32,
        array: u32,
    },
    /// A message left this node carrying `bytes` of payload. `block` is
    /// the cache block the transfer serviced ([`NO_BLOCK`] when the
    /// payload is not block-addressed, e.g. reduction partials); bulk
    /// payloads spanning several contiguous blocks are attributed to
    /// their first block.
    Msg { bytes: u64, block: u32 },
    /// A message arrived at this node carrying `bytes` of payload. Every
    /// `Msg` on a sender has a matching `MsgRecv` on the destination, so
    /// the cluster-wide counters balance (see
    /// [`ClusterReport::traffic_balanced`](crate::stats::ClusterReport::traffic_balanced)).
    MsgRecv { bytes: u64 },
    /// Virtual time charged to this node's clock.
    Charge { kind: ChargeKind, ns: u64 },
    /// Protocol-handler occupancy executed on this node (already scaled
    /// for the cpu configuration).
    Handler { ns: u64 },
    /// Pages newly mapped on first touch.
    PageMap { pages: u64 },
    /// Time spent waiting for the others at a synchronization point.
    BarrierWait { ns: u64 },
    /// This node passed a global barrier.
    Barrier,
    /// This node participated in a reduction.
    Reduction,
    /// The executor finished superstep `step`, which ran parallel loop
    /// `loop_id` — consumers can segment the event stream on these
    /// markers without replaying engine state.
    Superstep { step: u32, loop_id: u32 },
}

/// An event plus the virtual time at which it completed on its node and
/// the superstep/loop context in force when it was recorded
/// ([`NO_STEP`]/[`NO_LOOP`] outside any superstep).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TraceEntry {
    pub t_ns: u64,
    pub step: u32,
    pub loop_id: u32,
    pub event: Event,
}

/// Per-block communication heat, folded online from the event stream —
/// one accumulator per cache block this node faulted on, pushed, or sent
/// payload bytes for.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct BlockHeat {
    /// Read misses this node took on the block.
    pub read_misses: u64,
    /// Write misses/upgrades this node took on the block.
    pub write_misses: u64,
    /// Of the write misses, how many were ownership upgrades.
    pub upgrades: u64,
    /// Times the block was pushed from this node by a compiler-directed
    /// send.
    pub pushed: u64,
    /// Payload bytes sent from this node attributed to the block.
    pub bytes_sent: u64,
}

/// One node's event ring plus exact folded aggregates. Owned by that
/// node's [`NodeShard`](crate::shard::NodeShard); purely node-local.
#[derive(Clone, Debug)]
pub struct NodeTrace {
    capacity: usize,
    ring: VecDeque<TraceEntry>,
    stats: NodeStats,
    dropped: u64,
    /// Timestamp of the most recently recorded event (exact, unaffected
    /// by ring eviction).
    last_t_ns: u64,
    /// Cleared if any event was ever recorded with a timestamp earlier
    /// than its predecessor — i.e. the node's virtual clock ran backwards.
    monotone: bool,
    /// Superstep/loop context stamped onto every recorded entry; set by
    /// the executor at superstep boundaries, sentinel-valued outside.
    cur_step: u32,
    cur_loop: u32,
    /// Per-block heat accumulators (exact, unaffected by ring eviction).
    heat: BTreeMap<u32, BlockHeat>,
    /// Payload bytes sent that no call site attributed to a block.
    unattributed_bytes: u64,
    /// Blocks this node faulted on since the last superstep boundary —
    /// drained by the cluster's false-sharing detector.
    step_faults: BTreeSet<u32>,
}

impl Default for NodeTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl NodeTrace {
    /// An empty trace with the default ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// An empty trace with an explicit ring capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        NodeTrace {
            capacity,
            ring: VecDeque::new(),
            stats: NodeStats::default(),
            dropped: 0,
            last_t_ns: 0,
            monotone: true,
            cur_step: NO_STEP,
            cur_loop: NO_LOOP,
            heat: BTreeMap::new(),
            unattributed_bytes: 0,
            step_faults: BTreeSet::new(),
        }
    }

    /// Set the superstep/loop context stamped onto subsequently recorded
    /// entries. The executor calls this at superstep boundaries; pass the
    /// sentinels ([`NO_STEP`], [`NO_LOOP`]) to mark events as outside any
    /// superstep.
    pub fn set_context(&mut self, step: u32, loop_id: u32) {
        self.cur_step = step;
        self.cur_loop = loop_id;
    }

    /// The superstep/loop context currently in force.
    pub fn context(&self) -> (u32, u32) {
        (self.cur_step, self.cur_loop)
    }

    /// Change the ring capacity, evicting the oldest retained entries if
    /// the ring is already larger (they count as dropped, like any other
    /// eviction). Aggregates are unaffected.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.ring.len() > capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
    }

    /// Record `event` at virtual time `t_ns`: fold it into the aggregates
    /// and append it to the (bounded) ring.
    pub fn record(&mut self, t_ns: u64, event: Event) {
        if t_ns < self.last_t_ns {
            self.monotone = false;
        }
        self.last_t_ns = t_ns;
        let s = &mut self.stats;
        match event {
            Event::Fault { block, kind } => {
                let h = self.heat.entry(block as u32).or_default();
                match kind {
                    FaultKind::Read => {
                        s.read_misses += 1;
                        h.read_misses += 1;
                    }
                    FaultKind::Write | FaultKind::MultiWrite => {
                        s.write_misses += 1;
                        h.write_misses += 1;
                    }
                    FaultKind::Upgrade => {
                        s.write_misses += 1;
                        h.write_misses += 1;
                        h.upgrades += 1;
                    }
                }
                self.step_faults.insert(block as u32);
            }
            Event::Ctl { prim } => match prim {
                CtlPrim::MkWritable => s.mk_writable_calls += 1,
                CtlPrim::ImplicitWritable => s.implicit_writable_calls += 1,
                CtlPrim::ImplicitInvalidate => s.implicit_invalidate_calls += 1,
                CtlPrim::SendRange => s.send_range_calls += 1,
                CtlPrim::ReadyToRecv => s.ready_recv_calls += 1,
                CtlPrim::FlushRange => s.flush_range_calls += 1,
            },
            Event::CtlSend {
                blocks,
                first_block,
                ..
            } => {
                s.blocks_pushed += blocks;
                if first_block != NO_BLOCK {
                    for b in first_block as u64..first_block as u64 + blocks {
                        self.heat.entry(b as u32).or_default().pushed += 1;
                    }
                }
            }
            Event::Msg { bytes, block } => {
                s.msgs_sent += 1;
                s.bytes_sent += bytes;
                if block == NO_BLOCK {
                    self.unattributed_bytes += bytes;
                } else {
                    self.heat.entry(block).or_default().bytes_sent += bytes;
                }
            }
            Event::MsgRecv { bytes } => {
                s.msgs_recv += 1;
                s.bytes_recv += bytes;
            }
            Event::Charge { kind, ns } => match kind {
                ChargeKind::Compute => s.compute_ns += ns,
                ChargeKind::Stall => s.stall_ns += ns,
                ChargeKind::CtlCall => s.ctl_call_ns += ns,
            },
            Event::Handler { ns } => s.handler_ns += ns,
            Event::PageMap { pages } => s.pages_mapped += pages,
            Event::BarrierWait { ns } => s.barrier_ns += ns,
            Event::Barrier | Event::Superstep { .. } => {}
            Event::Reduction => s.reductions += 1,
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TraceEntry {
            t_ns,
            step: self.cur_step,
            loop_id: self.cur_loop,
            event,
        });
    }

    /// Folded aggregates (exact, even after ring wrap).
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// The retained (most recent) entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.ring.iter()
    }

    /// How many entries have fallen off the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Per-block heat accumulators (exact, even after ring wrap).
    pub fn heat(&self) -> &BTreeMap<u32, BlockHeat> {
        &self.heat
    }

    /// Payload bytes sent that no call site attributed to a block.
    pub fn unattributed_bytes(&self) -> u64 {
        self.unattributed_bytes
    }

    /// Drain the set of blocks this node faulted on since the previous
    /// drain — the cluster's false-sharing detector calls this at every
    /// superstep boundary.
    pub fn take_step_faults(&mut self) -> BTreeSet<u32> {
        std::mem::take(&mut self.step_faults)
    }

    /// Timestamp of the most recently recorded event.
    pub fn last_t_ns(&self) -> u64 {
        self.last_t_ns
    }

    /// Trace invariant: the node's virtual clock never ran backwards —
    /// every recorded event's timestamp was >= its predecessor's. Exact
    /// over the whole run, even after ring eviction.
    pub fn clock_monotone(&self) -> bool {
        self.monotone
    }

    /// Append this node's trace object (`{"node":…,"dropped":…,"events":[…]}`)
    /// to `out`. Hand-rolled — the trace must stay exportable in the
    /// dependency-free build. [`Cluster::trace_json`](crate::cluster::Cluster::trace_json)
    /// wraps the per-node objects into the full document.
    pub fn write_json(&self, node: usize, out: &mut String) {
        use std::fmt::Write;
        write!(
            out,
            "{{\"node\":{node},\"dropped\":{},\"events\":[",
            self.dropped
        )
        .unwrap();
        for (i, e) in self.ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "{{\"t_ns\":{},", e.t_ns).unwrap();
            if e.step != NO_STEP {
                write!(out, "\"step\":{},\"loop\":{},", e.step, e.loop_id).unwrap();
            }
            match e.event {
                Event::Fault { block, kind } => write!(
                    out,
                    "\"type\":\"fault\",\"block\":{block},\"kind\":\"{kind:?}\""
                ),
                Event::Ctl { prim } => write!(out, "\"type\":\"ctl\",\"prim\":\"{prim:?}\""),
                Event::CtlSend {
                    blocks,
                    first_block,
                    array,
                } => {
                    write!(out, "\"type\":\"ctl_send\",\"blocks\":{blocks}").unwrap();
                    if first_block != NO_BLOCK {
                        write!(out, ",\"first_block\":{first_block}").unwrap();
                    }
                    if array != NO_ARRAY {
                        write!(out, ",\"array\":{array}").unwrap();
                    }
                    Ok(())
                }
                Event::Msg { bytes, block } => {
                    write!(out, "\"type\":\"msg\",\"bytes\":{bytes}").unwrap();
                    if block != NO_BLOCK {
                        write!(out, ",\"block\":{block}").unwrap();
                    }
                    Ok(())
                }
                Event::MsgRecv { bytes } => {
                    write!(out, "\"type\":\"msg_recv\",\"bytes\":{bytes}")
                }
                Event::Charge { kind, ns } => {
                    write!(out, "\"type\":\"charge\",\"kind\":\"{kind:?}\",\"ns\":{ns}")
                }
                Event::Handler { ns } => write!(out, "\"type\":\"handler\",\"ns\":{ns}"),
                Event::PageMap { pages } => {
                    write!(out, "\"type\":\"page_map\",\"pages\":{pages}")
                }
                Event::BarrierWait { ns } => {
                    write!(out, "\"type\":\"barrier_wait\",\"ns\":{ns}")
                }
                Event::Barrier => write!(out, "\"type\":\"barrier\""),
                Event::Reduction => write!(out, "\"type\":\"reduction\""),
                Event::Superstep { step, loop_id } => write!(
                    out,
                    "\"type\":\"superstep\",\"index\":{step},\"loop_id\":{loop_id}"
                ),
            }
            .unwrap();
            out.push('}');
        }
        out.push_str("]}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fold_into_stats() {
        let mut a = NodeTrace::new();
        let mut b = NodeTrace::new();
        a.record(
            10,
            Event::Fault {
                block: 3,
                kind: FaultKind::Read,
            },
        );
        a.record(
            20,
            Event::Fault {
                block: 4,
                kind: FaultKind::Upgrade,
            },
        );
        a.record(
            30,
            Event::Charge {
                kind: ChargeKind::Compute,
                ns: 500,
            },
        );
        a.record(
            40,
            Event::Msg {
                bytes: 128,
                block: 3,
            },
        );
        b.record(
            15,
            Event::Ctl {
                prim: CtlPrim::MkWritable,
            },
        );
        b.record(
            25,
            Event::CtlSend {
                blocks: 7,
                first_block: 10,
                array: 0,
            },
        );
        b.record(35, Event::Handler { ns: 42 });
        b.record(45, Event::Reduction);
        let s0 = a.stats();
        assert_eq!(s0.read_misses, 1);
        assert_eq!(s0.write_misses, 1);
        assert_eq!(s0.compute_ns, 500);
        assert_eq!(s0.msgs_sent, 1);
        assert_eq!(s0.bytes_sent, 128);
        let s1 = b.stats();
        assert_eq!(s1.mk_writable_calls, 1);
        assert_eq!(s1.blocks_pushed, 7);
        assert_eq!(s1.handler_ns, 42);
        assert_eq!(s1.reductions, 1);
        // Heat follows the same events: faults and attributed bytes on a,
        // pushed blocks on b.
        let ha = a.heat();
        assert_eq!(ha[&3].read_misses, 1);
        assert_eq!(ha[&3].bytes_sent, 128);
        assert_eq!(ha[&4].write_misses, 1);
        assert_eq!(ha[&4].upgrades, 1);
        assert_eq!(a.unattributed_bytes(), 0);
        let hb = b.heat();
        assert_eq!((10..17).map(|i| hb[&i].pushed).sum::<u64>(), 7);
    }

    #[test]
    fn unattributed_bytes_fold_separately() {
        let mut t = NodeTrace::new();
        t.record(
            1,
            Event::Msg {
                bytes: 8,
                block: NO_BLOCK,
            },
        );
        t.record(
            2,
            Event::Msg {
                bytes: 64,
                block: 5,
            },
        );
        assert_eq!(t.stats().bytes_sent, 72);
        assert_eq!(t.unattributed_bytes(), 8);
        assert_eq!(t.heat()[&5].bytes_sent, 64);
        let total: u64 = t.heat().values().map(|h| h.bytes_sent).sum();
        assert_eq!(total + t.unattributed_bytes(), t.stats().bytes_sent);
    }

    #[test]
    fn context_stamps_entries_and_step_faults_drain() {
        let mut t = NodeTrace::new();
        t.set_context(2, 1);
        t.record(
            5,
            Event::Fault {
                block: 9,
                kind: FaultKind::Read,
            },
        );
        t.set_context(NO_STEP, NO_LOOP);
        t.record(6, Event::Barrier);
        let entries: Vec<_> = t.entries().copied().collect();
        assert_eq!((entries[0].step, entries[0].loop_id), (2, 1));
        assert_eq!((entries[1].step, entries[1].loop_id), (NO_STEP, NO_LOOP));
        assert_eq!(t.take_step_faults().into_iter().collect::<Vec<_>>(), [9]);
        assert!(t.take_step_faults().is_empty(), "drained");
        let mut j = String::new();
        t.write_json(0, &mut j);
        assert!(j.contains("\"step\":2,\"loop\":1,"), "got: {j}");
    }

    #[test]
    fn ring_bounds_entries_but_not_aggregates() {
        let mut t = NodeTrace::with_capacity(4);
        for i in 0..10 {
            t.record(
                i,
                Event::Fault {
                    block: i as usize,
                    kind: FaultKind::Read,
                },
            );
        }
        assert_eq!(t.stats().read_misses, 10, "aggregates stay exact");
        assert_eq!(t.entries().count(), 4, "ring holds the most recent 4");
        assert_eq!(t.dropped(), 6);
        assert_eq!(t.entries().next().unwrap().t_ns, 6);
    }

    #[test]
    fn shrinking_capacity_evicts_oldest() {
        let mut t = NodeTrace::with_capacity(8);
        for i in 0..6 {
            t.record(i, Event::Barrier);
        }
        t.set_capacity(2);
        assert_eq!(t.entries().count(), 2);
        assert_eq!(t.dropped(), 4);
        assert_eq!(t.entries().next().unwrap().t_ns, 4);
    }

    #[test]
    fn msg_recv_folds_and_balances() {
        let mut snd = NodeTrace::new();
        let mut rcv = NodeTrace::new();
        snd.record(
            10,
            Event::Msg {
                bytes: 64,
                block: NO_BLOCK,
            },
        );
        rcv.record(5, Event::MsgRecv { bytes: 64 });
        assert_eq!(snd.stats().msgs_sent, 1);
        assert_eq!(snd.stats().bytes_sent, 64);
        assert_eq!(snd.stats().msgs_recv, 0);
        assert_eq!(rcv.stats().msgs_recv, 1);
        assert_eq!(rcv.stats().bytes_recv, 64);
        assert_eq!(rcv.stats().msgs_sent, 0);
        let mut j = String::new();
        rcv.write_json(1, &mut j);
        assert!(j.contains("\"type\":\"msg_recv\""), "got: {j}");
    }

    #[test]
    fn monotonicity_tracked_exactly() {
        let mut t = NodeTrace::with_capacity(2);
        for i in [3u64, 3, 7, 9] {
            t.record(i, Event::Barrier);
        }
        assert!(t.clock_monotone(), "equal timestamps are fine");
        assert_eq!(t.last_t_ns(), 9);
        t.record(8, Event::Barrier); // clock ran backwards
        assert!(!t.clock_monotone());
        t.record(100, Event::Barrier);
        assert!(!t.clock_monotone(), "violations are sticky");
    }

    #[test]
    fn json_export_is_well_formed() {
        let mut t = NodeTrace::new();
        t.record(
            1,
            Event::Fault {
                block: 0,
                kind: FaultKind::Read,
            },
        );
        t.record(2, Event::Barrier);
        let mut j = String::new();
        t.write_json(0, &mut j);
        assert!(j.starts_with("{\"node\":0,"));
        assert!(j.contains("\"type\":\"fault\""));
        assert!(j.contains("\"kind\":\"Read\""));
        assert!(j.contains("\"type\":\"barrier\""));
        assert!(j.ends_with("]}"));
    }
}
