//! Structured per-node event trace with virtual timestamps.
//!
//! Every observable protocol action — block faults, tag upgrades,
//! compiler-directed control calls, bulk transfers, messages, barriers,
//! reductions, superstep boundaries — is recorded as a typed [`Event`]
//! stamped with the acting node's virtual clock. The trace is the *single
//! source of truth* for run statistics: events are folded online into
//! per-node [`NodeStats`] as they are recorded, and the [`ClusterReport`]
//! the executors hand back is derived from the trace, so the Table 3
//! decomposition (compute vs. communication time, miss counts) and the
//! event log can never disagree.
//!
//! Recent events are additionally kept in a bounded per-node ring buffer
//! for inspection and JSON export ([`Trace::to_json`]); when the ring
//! wraps, only the raw entries are dropped — the folded aggregates remain
//! exact, and [`Trace::dropped`] reports how many entries fell off.

use crate::cluster::ChargeKind;
use crate::stats::{ClusterReport, NodeStats};
use std::collections::VecDeque;

/// Default per-node ring capacity (entries kept for export).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Which kind of access-control fault a node took.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Load from an `Invalid` block: fetch a clean copy.
    Read,
    /// Store to an `Invalid` block: fetch an exclusive/writable copy.
    Write,
    /// Store to a `ReadOnly` copy: ownership upgrade.
    Upgrade,
    /// Store entering the multiple-writer (twin/diff) path.
    MultiWrite,
}

/// The compiler-directed protocol primitives of §4.2.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CtlPrim {
    MkWritable,
    ImplicitWritable,
    ImplicitInvalidate,
    SendRange,
    ReadyToRecv,
    FlushRange,
}

/// One typed trace event. Variants carry exactly the quantities folded
/// into [`NodeStats`], so replaying a trace reproduces the aggregates.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Event {
    /// An access-control fault on `block`.
    Fault { block: usize, kind: FaultKind },
    /// A compiler-directed control call was issued (the node performing
    /// the work: the owner for sends/flushes, the user otherwise).
    Ctl { prim: CtlPrim },
    /// Blocks pushed to a consumer by a compiler-directed send.
    CtlSend { blocks: u64 },
    /// A message left this node carrying `bytes` of payload.
    Msg { bytes: u64 },
    /// Virtual time charged to this node's clock.
    Charge { kind: ChargeKind, ns: u64 },
    /// Protocol-handler occupancy executed on this node (already scaled
    /// for the cpu configuration).
    Handler { ns: u64 },
    /// Pages newly mapped on first touch.
    PageMap { pages: u64 },
    /// Time spent waiting for the others at a synchronization point.
    BarrierWait { ns: u64 },
    /// This node passed a global barrier.
    Barrier,
    /// This node participated in a reduction.
    Reduction,
    /// The executor finished a superstep (one parallel loop).
    Superstep,
}

/// An event plus the virtual time at which it completed on its node.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TraceEntry {
    pub t_ns: u64,
    pub event: Event,
}

/// Per-node ring buffers of recent events plus exact folded aggregates.
#[derive(Clone, Debug)]
pub struct Trace {
    capacity: usize,
    rings: Vec<VecDeque<TraceEntry>>,
    stats: Vec<NodeStats>,
    dropped: Vec<u64>,
}

impl Trace {
    /// An empty trace for `nprocs` nodes with the default ring capacity.
    pub fn new(nprocs: usize) -> Self {
        Self::with_capacity(nprocs, DEFAULT_RING_CAPACITY)
    }

    /// An empty trace with an explicit per-node ring capacity.
    pub fn with_capacity(nprocs: usize, capacity: usize) -> Self {
        Trace {
            capacity,
            rings: (0..nprocs).map(|_| VecDeque::new()).collect(),
            stats: vec![NodeStats::default(); nprocs],
            dropped: vec![0; nprocs],
        }
    }

    /// Number of nodes traced.
    pub fn nodes(&self) -> usize {
        self.stats.len()
    }

    /// Record `event` for `node` at virtual time `t_ns`: fold it into the
    /// node's aggregates and append it to the (bounded) ring.
    pub fn record(&mut self, node: usize, t_ns: u64, event: Event) {
        let s = &mut self.stats[node];
        match event {
            Event::Fault { kind, .. } => match kind {
                FaultKind::Read => s.read_misses += 1,
                FaultKind::Write | FaultKind::Upgrade | FaultKind::MultiWrite => {
                    s.write_misses += 1
                }
            },
            Event::Ctl { prim } => match prim {
                CtlPrim::MkWritable => s.mk_writable_calls += 1,
                CtlPrim::ImplicitWritable => s.implicit_writable_calls += 1,
                CtlPrim::ImplicitInvalidate => s.implicit_invalidate_calls += 1,
                CtlPrim::SendRange => s.send_range_calls += 1,
                CtlPrim::ReadyToRecv => s.ready_recv_calls += 1,
                CtlPrim::FlushRange => s.flush_range_calls += 1,
            },
            Event::CtlSend { blocks } => s.blocks_pushed += blocks,
            Event::Msg { bytes } => {
                s.msgs_sent += 1;
                s.bytes_sent += bytes;
            }
            Event::Charge { kind, ns } => match kind {
                ChargeKind::Compute => s.compute_ns += ns,
                ChargeKind::Stall => s.stall_ns += ns,
                ChargeKind::CtlCall => s.ctl_call_ns += ns,
            },
            Event::Handler { ns } => s.handler_ns += ns,
            Event::PageMap { pages } => s.pages_mapped += pages,
            Event::BarrierWait { ns } => s.barrier_ns += ns,
            Event::Barrier | Event::Superstep => {}
            Event::Reduction => s.reductions += 1,
        }
        let ring = &mut self.rings[node];
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped[node] += 1;
        }
        ring.push_back(TraceEntry { t_ns, event });
    }

    /// Folded aggregates for one node (exact, even after ring wrap).
    pub fn stats(&self, node: usize) -> &NodeStats {
        &self.stats[node]
    }

    /// The retained (most recent) entries for one node, oldest first.
    pub fn entries(&self, node: usize) -> impl Iterator<Item = &TraceEntry> {
        self.rings[node].iter()
    }

    /// How many entries have fallen off `node`'s ring.
    pub fn dropped(&self, node: usize) -> u64 {
        self.dropped[node]
    }

    /// Derive the aggregate report the executors hand back. The report is
    /// *only* constructible from the trace: every counter in it was folded
    /// from a recorded event.
    pub fn report(&self, handler_in_comm: bool, makespan_ns: u64) -> ClusterReport {
        ClusterReport {
            nodes: self.stats.clone(),
            handler_in_comm,
            makespan_ns,
        }
    }

    /// Render the retained entries as a JSON document (one object per
    /// node: drop count plus the entry list). Hand-rolled — the trace
    /// must stay exportable in the dependency-free build.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        out.push_str("{\"nodes\":[");
        for (n, ring) in self.rings.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"node\":{n},\"dropped\":{},\"events\":[",
                self.dropped[n]
            )
            .unwrap();
            for (i, e) in ring.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write!(out, "{{\"t_ns\":{},", e.t_ns).unwrap();
                match e.event {
                    Event::Fault { block, kind } => write!(
                        out,
                        "\"type\":\"fault\",\"block\":{block},\"kind\":\"{kind:?}\""
                    ),
                    Event::Ctl { prim } => write!(out, "\"type\":\"ctl\",\"prim\":\"{prim:?}\""),
                    Event::CtlSend { blocks } => {
                        write!(out, "\"type\":\"ctl_send\",\"blocks\":{blocks}")
                    }
                    Event::Msg { bytes } => write!(out, "\"type\":\"msg\",\"bytes\":{bytes}"),
                    Event::Charge { kind, ns } => {
                        write!(out, "\"type\":\"charge\",\"kind\":\"{kind:?}\",\"ns\":{ns}")
                    }
                    Event::Handler { ns } => write!(out, "\"type\":\"handler\",\"ns\":{ns}"),
                    Event::PageMap { pages } => {
                        write!(out, "\"type\":\"page_map\",\"pages\":{pages}")
                    }
                    Event::BarrierWait { ns } => {
                        write!(out, "\"type\":\"barrier_wait\",\"ns\":{ns}")
                    }
                    Event::Barrier => write!(out, "\"type\":\"barrier\""),
                    Event::Reduction => write!(out, "\"type\":\"reduction\""),
                    Event::Superstep => write!(out, "\"type\":\"superstep\""),
                }
                .unwrap();
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fold_into_stats() {
        let mut t = Trace::new(2);
        t.record(
            0,
            10,
            Event::Fault {
                block: 3,
                kind: FaultKind::Read,
            },
        );
        t.record(
            0,
            20,
            Event::Fault {
                block: 4,
                kind: FaultKind::Upgrade,
            },
        );
        t.record(
            0,
            30,
            Event::Charge {
                kind: ChargeKind::Compute,
                ns: 500,
            },
        );
        t.record(0, 40, Event::Msg { bytes: 128 });
        t.record(
            1,
            15,
            Event::Ctl {
                prim: CtlPrim::MkWritable,
            },
        );
        t.record(1, 25, Event::CtlSend { blocks: 7 });
        t.record(1, 35, Event::Handler { ns: 42 });
        t.record(1, 45, Event::Reduction);
        let s0 = t.stats(0);
        assert_eq!(s0.read_misses, 1);
        assert_eq!(s0.write_misses, 1);
        assert_eq!(s0.compute_ns, 500);
        assert_eq!(s0.msgs_sent, 1);
        assert_eq!(s0.bytes_sent, 128);
        let s1 = t.stats(1);
        assert_eq!(s1.mk_writable_calls, 1);
        assert_eq!(s1.blocks_pushed, 7);
        assert_eq!(s1.handler_ns, 42);
        assert_eq!(s1.reductions, 1);
    }

    #[test]
    fn ring_bounds_entries_but_not_aggregates() {
        let mut t = Trace::with_capacity(1, 4);
        for i in 0..10 {
            t.record(
                0,
                i,
                Event::Fault {
                    block: i as usize,
                    kind: FaultKind::Read,
                },
            );
        }
        assert_eq!(t.stats(0).read_misses, 10, "aggregates stay exact");
        assert_eq!(t.entries(0).count(), 4, "ring holds the most recent 4");
        assert_eq!(t.dropped(0), 6);
        assert_eq!(t.entries(0).next().unwrap().t_ns, 6);
    }

    #[test]
    fn report_is_derived_from_the_trace() {
        let mut t = Trace::new(2);
        t.record(
            0,
            5,
            Event::Charge {
                kind: ChargeKind::Stall,
                ns: 100,
            },
        );
        t.record(1, 5, Event::BarrierWait { ns: 30 });
        let r = t.report(true, 999);
        assert_eq!(r.nodes[0].stall_ns, 100);
        assert_eq!(r.nodes[1].barrier_ns, 30);
        assert!(r.handler_in_comm);
        assert_eq!(r.makespan_ns, 999);
    }

    #[test]
    fn json_export_is_well_formed() {
        let mut t = Trace::new(1);
        t.record(
            0,
            1,
            Event::Fault {
                block: 0,
                kind: FaultKind::Read,
            },
        );
        t.record(0, 2, Event::Barrier);
        let j = t.to_json();
        assert!(j.starts_with("{\"nodes\":["));
        assert!(j.contains("\"type\":\"fault\""));
        assert!(j.contains("\"kind\":\"Read\""));
        assert!(j.contains("\"type\":\"barrier\""));
        assert!(j.ends_with("]}"));
    }
}
