//! The virtual-time cost model, calibrated against the paper's Table 1.
//!
//! | Quantity | Paper value | Model |
//! |---|---|---|
//! | Min roundtrip, 4-byte message | 40 µs | [`CostModel::roundtrip_ns`] |
//! | Network bandwidth | 20 MB/s | [`CostModel::per_byte_ns`] = 50 ns/B |
//! | Read miss, 128-byte block, dual-cpu | 93 µs | [`CostModel::read_miss_ns`] |
//!
//! The single-cpu configuration interleaves protocol processing with
//! computation on one HyperSPARC: handler work costs more (no dedicated
//! protocol processor, cache interference) and, crucially, every handler
//! executed on behalf of a *remote* node steals compute time from the local
//! one. [`CpuMode`] selects between the two design points of §5.

/// Whether a node dedicates its second CPU to protocol processing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CpuMode {
    /// Protocol handlers interleave with computation on the only CPU.
    Single,
    /// A dedicated protocol processor runs handlers (computation still uses
    /// exactly one CPU, as in the paper: "there are overall 8 computation
    /// threads in all versions").
    Dual,
}

/// All virtual-time constants, in nanoseconds.
///
/// Defaults are calibrated so the derived quantities reproduce Table 1.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Single or dual cpu protocol processing (§5).
    pub cpu: CpuMode,
    /// Coherence block size in bytes (Tempest: 32–128; paper uses 128).
    pub block_bytes: usize,
    /// Page size in bytes.
    pub page_bytes: usize,
    /// CPU overhead to compose and inject a message.
    pub msg_send_ns: u64,
    /// One-way wire latency.
    pub net_latency_ns: u64,
    /// Transfer cost per payload byte (1 / bandwidth).
    pub per_byte_ns: u64,
    /// Cost to receive and dispatch an active message to its handler.
    pub handler_dispatch_ns: u64,
    /// Access-fault detection and transition into the user-level handler.
    pub fault_detect_ns: u64,
    /// Directory lookup + update at the home node.
    pub dir_lookup_ns: u64,
    /// Changing the access tag of one block.
    pub tag_change_ns: u64,
    /// Copying one block between memory and a message buffer.
    pub block_copy_ns: u64,
    /// First-touch cost of mapping a remote page into the local segment.
    pub page_map_ns: u64,
    /// Fixed barrier cost plus per-node component.
    pub barrier_base_ns: u64,
    /// Per-participant barrier cost.
    pub barrier_per_node_ns: u64,
    /// Multiplier (×1000) applied to handler-side work in single-cpu mode.
    /// 1800 ⇒ handlers are 1.8× slower without a dedicated protocol CPU.
    pub single_cpu_handler_permille: u64,
    /// Per-message software overhead of the message-passing backend's
    /// runtime, charged once per contiguous run it transmits (models the
    /// "as yet unidentified performance bottlenecks in PGI's messaging
    /// run-time" the paper observed, §6).
    pub mp_per_message_ns: u64,
    /// Per-element marshalling (pack at the sender, unpack at the
    /// receiver) cost of the MP backend's generic section iterators.
    pub mp_per_element_ns: u64,
    /// Drain wait charged at a release point per outstanding eager-write
    /// transaction not yet acknowledged.
    pub release_drain_ns: u64,
    /// Largest payload a compiler-directed bulk transfer may carry
    /// (contiguous blocks grouped into one message, §4.2 "we group
    /// contiguous blocks and transfer them in larger payloads").
    pub bulk_max_bytes: usize,
}

impl CostModel {
    /// The paper's cluster (Table 1) with dual-cpu protocol processing.
    pub fn paper_dual_cpu() -> Self {
        CostModel {
            cpu: CpuMode::Dual,
            block_bytes: 128,
            page_bytes: 4096,
            msg_send_ns: 4_000,
            net_latency_ns: 12_000,
            per_byte_ns: 50, // 20 MB/s
            handler_dispatch_ns: 3_800,
            fault_detect_ns: 25_000,
            dir_lookup_ns: 8_000,
            tag_change_ns: 1_800,
            block_copy_ns: 5_000,
            page_map_ns: 80_000,
            barrier_base_ns: 150_000,
            barrier_per_node_ns: 20_000,
            single_cpu_handler_permille: 1_800,
            mp_per_message_ns: 400_000,
            mp_per_element_ns: 3_000,
            release_drain_ns: 6_000,
            bulk_max_bytes: 4096,
        }
    }

    /// The paper's cluster with single-cpu (interleaved) protocol
    /// processing.
    pub fn paper_single_cpu() -> Self {
        CostModel {
            cpu: CpuMode::Single,
            ..Self::paper_dual_cpu()
        }
    }

    /// Elements (f64 words) per coherence block.
    pub fn words_per_block(&self) -> usize {
        self.block_bytes / 8
    }

    /// Words per page.
    pub fn words_per_page(&self) -> usize {
        self.page_bytes / 8
    }

    /// Scale a handler-side cost for the configured CPU mode.
    pub fn handler_cost(&self, ns: u64) -> u64 {
        match self.cpu {
            CpuMode::Dual => ns,
            CpuMode::Single => ns * self.single_cpu_handler_permille / 1000,
        }
    }

    /// One-way message cost seen by the *sender's* critical path:
    /// injection + wire latency + payload transfer. Handler dispatch is
    /// charged at the destination separately.
    pub fn one_way_ns(&self, payload_bytes: usize) -> u64 {
        self.msg_send_ns + self.net_latency_ns + self.per_byte_ns * payload_bytes as u64
    }

    /// Minimum roundtrip for a short message: request out, handler
    /// dispatch, reply back, dispatch at origin. Table 1 reports 40 µs for
    /// a 4-byte payload.
    pub fn roundtrip_ns(&self, payload_bytes: usize) -> u64 {
        2 * self.one_way_ns(payload_bytes) + 2 * self.handler_cost(self.handler_dispatch_ns)
    }

    /// End-to-end read-miss time for one block when the home holds a clean
    /// copy: fault detection, request to home, directory lookup, data
    /// response, install. Table 1 reports 93 µs for 128-byte blocks in the
    /// dual-cpu configuration.
    pub fn read_miss_ns(&self) -> u64 {
        self.fault_detect_ns
            + self.one_way_ns(8) // read-request carries the address
            + self.handler_cost(self.handler_dispatch_ns)
            + self.handler_cost(self.dir_lookup_ns)
            + self.handler_cost(self.block_copy_ns)
            + self.one_way_ns(self.block_bytes)
            + self.handler_cost(self.handler_dispatch_ns)
            + self.block_copy_ns // install at requester
            + 2 * self.tag_change_ns // home tag bookkeeping + requester tag
    }

    /// Barrier completion cost for `n` participants (tree dissemination).
    pub fn barrier_cost_ns(&self, n: usize) -> u64 {
        self.barrier_base_ns + self.barrier_per_node_ns * (n.max(1) as u64 - 1)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_dual_cpu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_roundtrip_is_40us() {
        let c = CostModel::paper_dual_cpu();
        let rt = c.roundtrip_ns(4);
        assert!(
            (39_000..=41_000).contains(&rt),
            "roundtrip {rt} ns should be ≈40 µs"
        );
    }

    #[test]
    fn table1_bandwidth_is_20mb_per_s() {
        let c = CostModel::paper_dual_cpu();
        // 20 MB/s == 50 ns per byte.
        assert_eq!(c.per_byte_ns, 50);
    }

    #[test]
    fn table1_read_miss_is_93us() {
        let c = CostModel::paper_dual_cpu();
        let rm = c.read_miss_ns();
        assert!(
            (90_000..=96_000).contains(&rm),
            "read miss {rm} ns should be ≈93 µs"
        );
    }

    #[test]
    fn single_cpu_miss_is_slower() {
        let d = CostModel::paper_dual_cpu();
        let s = CostModel::paper_single_cpu();
        assert!(s.read_miss_ns() > d.read_miss_ns());
        assert_eq!(s.handler_cost(1000), 1800);
        assert_eq!(d.handler_cost(1000), 1000);
    }

    #[test]
    fn block_geometry() {
        let c = CostModel::paper_dual_cpu();
        assert_eq!(c.words_per_block(), 16);
        assert_eq!(c.words_per_page(), 512);
    }

    #[test]
    fn barrier_scales_with_participants() {
        let c = CostModel::paper_dual_cpu();
        assert!(c.barrier_cost_ns(8) > c.barrier_cost_ns(2));
    }
}
