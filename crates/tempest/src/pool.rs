//! A persistent worker pool for the executor's two threaded phases.
//!
//! PR-2/PR-4 dispatched the compute phase and the resolve phase's apply
//! waves onto fresh [`std::thread::scope`] threads — a spawn/join cycle
//! per superstep (and per wave), whose ~10–50 µs cost dwarfed the work on
//! all but the largest grids and made `FGDSM_PAR` a net loss. The
//! [`WorkerPool`] here is the DART-style fix: spawn the workers **once
//! per execution**, park them on a `Condvar`, and hand every subsequent
//! batch of phase jobs to the already-running threads.
//!
//! Std-only by design (`Mutex` + `Condvar` job queue, no crossbeam): the
//! repo bakes in no extra dependencies.
//!
//! ## Scoped batches over a `'static` queue
//!
//! Jobs borrow phase-local state (`&mut NodeShard` chunks, partial-result
//! slots), so they are *not* `'static` — but a shared queue must store
//! `'static` closures. [`WorkerPool::run`] bridges the gap the same way
//! `std::thread::scope` does: it erases the job lifetime (an `unsafe`
//! transmute) and then **blocks until every job of the batch has
//! finished** before returning, so no borrow can outlive the frame that
//! owns it. Panics inside a job are caught on the worker, carried back,
//! and resumed on the submitting thread after the batch completes —
//! matching scoped-spawn semantics, with the pool still usable afterwards.
//!
//! ## Determinism
//!
//! The pool adds no ordering of its own beyond the queue: callers are
//! responsible for only batching jobs that touch disjoint state, and for
//! folding results in a deterministic (plan/shard index) order — exactly
//! the contract [`crate::cluster::Cluster::apply_pairwise`] and the
//! engine's compute phase already obey. Worker count, batch shape and
//! scheduling never influence virtual-time results.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// One unit of batch work: a closure that may borrow from the submitting
/// frame (`'scope`), executed exactly once on some pool worker.
pub type Job<'scope> = Box<dyn FnOnce() + Send + 'scope>;

struct PoolState {
    queue: VecDeque<Job<'static>>,
    /// Jobs queued or currently executing in the in-flight batch.
    active: usize,
    /// First panic payload caught this batch (later ones are dropped,
    /// like `thread::scope` which propagates one).
    panic: Option<Box<dyn Any + Send + 'static>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers park here waiting for jobs.
    job_ready: Condvar,
    /// The submitter parks here waiting for `active == 0`.
    batch_done: Condvar,
}

/// A fixed-size pool of parked worker threads, created once per
/// execution and reused for every superstep's compute and resolve-apply
/// batches. Dropping the pool shuts the workers down and joins them.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .finish()
    }
}

impl WorkerPool {
    /// Spawn `workers` (≥ 1) parked worker threads.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                active: 0,
                panic: None,
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            batch_done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fgdsm-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            handles,
        }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Execute a batch of jobs on the pool and block until all of them
    /// have finished. Jobs may borrow from the caller's frame; the
    /// barrier below is what makes that sound. If any job panicked, the
    /// first panic is resumed here after the whole batch has drained
    /// (so no job is left running with dangling borrows).
    pub fn run(&self, jobs: Vec<Job<'_>>) {
        if jobs.is_empty() {
            return;
        }
        // SAFETY: `run` does not return until `active` drops back to
        // zero, i.e. until every job below has finished executing (or
        // panicked and been unwound on its worker). The borrows inside
        // the jobs therefore never outlive this call, even though the
        // queue stores them with an erased ('static) lifetime. This is
        // the same containment argument `std::thread::scope` makes.
        let jobs: Vec<Job<'static>> = jobs
            .into_iter()
            .map(|j| unsafe { std::mem::transmute::<Job<'_>, Job<'static>>(j) })
            .collect();
        let mut st = self.shared.state.lock().unwrap();
        st.active += jobs.len();
        st.queue.extend(jobs);
        drop(st);
        self.shared.job_ready.notify_all();
        let mut st = self.shared.state.lock().unwrap();
        while st.active > 0 {
            st = self.shared.batch_done.wait(st).unwrap();
        }
        if let Some(p) = st.panic.take() {
            drop(st);
            std::panic::resume_unwind(p);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.job_ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut st = shared.state.lock().unwrap();
    loop {
        if let Some(job) = st.queue.pop_front() {
            drop(st);
            let outcome = catch_unwind(AssertUnwindSafe(job));
            st = shared.state.lock().unwrap();
            if let Err(p) = outcome {
                if st.panic.is_none() {
                    st.panic = Some(p);
                }
            }
            st.active -= 1;
            if st.active == 0 {
                shared.batch_done.notify_all();
            }
        } else if st.shutdown {
            return;
        } else {
            st = shared.job_ready.wait(st).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread::ThreadId;

    /// The whole point of the pool: many batches run on the *same* OS
    /// threads. Collect worker thread ids across batches and assert the
    /// set never grows past the pool size.
    #[test]
    fn batches_reuse_the_same_workers() {
        let pool = WorkerPool::new(3);
        let ids: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        for _ in 0..50 {
            let jobs: Vec<Job> = (0..6)
                .map(|_| {
                    Box::new(|| {
                        ids.lock().unwrap().insert(std::thread::current().id());
                    }) as Job
                })
                .collect();
            pool.run(jobs);
        }
        let ids = ids.into_inner().unwrap();
        assert!(!ids.is_empty());
        assert!(
            ids.len() <= 3,
            "50 batches must reuse the 3 persistent workers, saw {} distinct threads",
            ids.len()
        );
    }

    /// Jobs may borrow the submitting frame mutably (disjoint slots).
    #[test]
    fn jobs_borrow_caller_state() {
        let pool = WorkerPool::new(4);
        let mut slots = vec![0usize; 16];
        let jobs: Vec<Job> = slots
            .iter_mut()
            .enumerate()
            .map(|(i, s)| Box::new(move || *s = i * i) as Job)
            .collect();
        pool.run(jobs);
        for (i, s) in slots.iter().enumerate() {
            assert_eq!(*s, i * i);
        }
    }

    /// A panic inside one job propagates to the submitter — and the
    /// batch still drains completely first, so sibling jobs' borrows
    /// stay contained and the pool remains usable.
    #[test]
    fn panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let ran = AtomicUsize::new(0);
        let jobs: Vec<Job> = (0..8)
            .map(|i| {
                let ran = &ran;
                Box::new(move || {
                    if i == 3 {
                        panic!("kernel exploded on purpose");
                    }
                    ran.fetch_add(1, Ordering::SeqCst);
                }) as Job
            })
            .collect();
        let err = catch_unwind(AssertUnwindSafe(|| pool.run(jobs))).unwrap_err();
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("kernel exploded"), "got: {msg}");
        assert_eq!(ran.load(Ordering::SeqCst), 7, "siblings still ran");
        // The pool is not poisoned: the next batch works.
        let cell = AtomicUsize::new(0);
        pool.run(vec![Box::new(|| {
            cell.fetch_add(41, Ordering::SeqCst);
        }) as Job]);
        assert_eq!(cell.load(Ordering::SeqCst), 41);
    }

    /// A size-1 pool behaves exactly like a serial loop over the jobs
    /// (single worker drains the queue in submission order).
    #[test]
    fn pool_of_one_is_serial() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 1);
        let order = Mutex::new(Vec::new());
        let jobs: Vec<Job> = (0..10)
            .map(|i| {
                let order = &order;
                Box::new(move || order.lock().unwrap().push(i)) as Job
            })
            .collect();
        pool.run(jobs);
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    /// Empty batches are a no-op; drop joins the workers cleanly.
    #[test]
    fn empty_batch_and_clean_shutdown() {
        let pool = WorkerPool::new(2);
        pool.run(Vec::new());
        drop(pool); // must not hang
    }
}
