//! # fgdsm-tempest: a simulated Tempest-style fine-grain DSM cluster
//!
//! The paper's platform is Tempest (Hill, Larus & Wood, COMPCON '95)
//! implemented on an 8-node cluster of dual-processor SparcStation-20s
//! connected by Myrinet, with fine-grain access control accelerated by the
//! Vortex memory-bus device. None of that hardware exists anymore, so this
//! crate substitutes a **deterministic direct-execution simulator** that
//! exposes the three Tempest mechanisms the paper's protocols are built on
//! (§3):
//!
//! 1. **Locally mapping remote pages in the shared segment** — every node
//!    holds its own copy of the global segment; pages are *mapped* lazily,
//!    charging a mapping cost on first touch (this is what makes `lu`'s
//!    first iteration expensive in the paper);
//! 2. **Fine-grain access control** — a per-node, per-block tag
//!    (`Invalid` / `ReadOnly` / `ReadWrite`); protocols read and write the
//!    tags through [`Cluster`];
//! 3. **Fine-grain messaging** — active messages with an optional block of
//!    data, modeled by a calibrated cost function (Table 1: 40 µs minimum
//!    roundtrip for a 4-byte message, 20 MB/s bandwidth).
//!
//! Computation runs natively on real data (each node owns a full-size copy
//! of the segment), while *time* is virtual: per-node clocks advance by a
//! cost model calibrated against the paper's Table 1. Protocol-handler
//! occupancy is charged to a dedicated protocol CPU (dual-cpu
//! configuration) or to the compute CPU itself (single-cpu configuration),
//! reproducing the two system design points §5 evaluates.
//!
//! The simulator is deterministic regardless of how it is scheduled:
//! cluster state is sharded per node ([`NodeShard`]), cross-node traffic
//! is serviced in a resolve phase that is sequentially *planned* (its
//! bulk data movement may then apply concurrently over node-disjoint
//! shard pairs, [`Cluster::apply_pairwise`]), and kernels touch only
//! their own shard — so both phases may run on real threads while
//! identical runs still produce bit-identical data, miss counts and
//! virtual times, which the test suite relies on.

pub mod cache;
pub mod cluster;
pub mod costs;
pub mod mailbox;
pub mod metrics;
pub mod pool;
pub mod profile;
pub mod scratch;
pub mod shard;
pub mod stats;
pub mod trace;

pub use cache::CacheModel;
pub use cluster::{Access, ChargeKind, Cluster, HomePolicy, NodeId, ReduceOp, SegmentLayout};
pub use costs::{CostModel, CpuMode};
pub use mailbox::Mailbox;
pub use metrics::{Histogram, Metric, MetricsRegistry, WireSpan};
pub use pool::{Job, WorkerPool};
pub use profile::{FalseSharingFlag, LoopRow, NodeHeatmap, StepInterval};
pub use scratch::{CacheAligned, VecPool, CACHE_LINE_BYTES};
pub use shard::NodeShard;
pub use stats::{ClusterReport, NodeStats};
pub use trace::{
    BlockHeat, CtlPrim, Event, FaultKind, NodeTrace, TraceEntry, NO_ARRAY, NO_BLOCK, NO_LOOP,
    NO_STEP,
};
