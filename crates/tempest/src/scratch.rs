//! Capacity-retaining scratch buffers and cache-line alignment helpers
//! for the executor's hot path.
//!
//! Every superstep used to reallocate its transfer plans, payload
//! staging vectors and per-phase scratch from a cold heap; across a
//! 100-iteration app that is thousands of allocator round-trips that
//! serve no purpose — the next superstep needs buffers of the same
//! shape. [`VecPool`] is the recycling layer: `take` hands back an
//! emptied buffer with its old capacity intact, `put` returns it. The
//! protocol's plan builders and the engine's per-phase scratch all draw
//! from pools like this, so steady-state supersteps allocate nothing.
//!
//! [`CacheAligned`] is the companion layout tool: a `#[repr(align(64))]`
//! wrapper that pads its contents to a full cache line, used for
//! per-node slots that distinct worker threads write concurrently
//! (compute-phase reduction partials, wave outcome slots). Without it,
//! eight adjacent 8-byte partials share one line and every worker's
//! store invalidates every other worker's cache — the exact
//! false-sharing ping-pong the PR-5 detector flags in simulated apps,
//! happening for real inside the simulator's own host loop.

/// Size in bytes of the cache lines we pad for. Every x86-64 and most
/// aarch64 parts use 64-byte lines; padding to 64 on a 128-byte-line
/// part still halves the collision rate and never hurts correctness.
pub const CACHE_LINE_BYTES: usize = 64;

/// Pads `T` to a full cache line so adjacent slots in a `Vec` or array
/// never share a line — writes from distinct threads stay on distinct
/// lines and cannot ping-pong.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(align(64))]
pub struct CacheAligned<T>(pub T);

/// A free list of `Vec<T>` buffers that keeps capacity across uses.
/// `take` pops a recycled (empty, warm) buffer or creates a fresh one;
/// `put` clears a buffer and shelves it for the next superstep.
#[derive(Debug)]
pub struct VecPool<T> {
    free: Vec<Vec<T>>,
}

impl<T> Default for VecPool<T> {
    fn default() -> Self {
        VecPool { free: Vec::new() }
    }
}

impl<T> VecPool<T> {
    /// An empty buffer — recycled with its previous capacity if one is
    /// shelved, freshly allocated otherwise.
    pub fn take(&mut self) -> Vec<T> {
        self.free.pop().unwrap_or_default()
    }

    /// Shelve `v` for reuse: contents dropped, capacity retained.
    pub fn put(&mut self, mut v: Vec<T>) {
        v.clear();
        self.free.push(v);
    }

    /// Number of buffers currently shelved (diagnostics/tests).
    pub fn shelved(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_pool_retains_capacity() {
        let mut pool: VecPool<u64> = VecPool::default();
        let mut v = pool.take();
        assert_eq!(v.capacity(), 0);
        v.extend(0..1000);
        let cap = v.capacity();
        pool.put(v);
        assert_eq!(pool.shelved(), 1);
        let v2 = pool.take();
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap, "recycled buffer keeps its capacity");
        assert_eq!(pool.shelved(), 0);
    }

    #[test]
    fn cache_aligned_pads_to_a_line() {
        assert_eq!(std::mem::align_of::<CacheAligned<f64>>(), CACHE_LINE_BYTES);
        assert_eq!(std::mem::size_of::<CacheAligned<f64>>(), CACHE_LINE_BYTES);
        // Adjacent Vec slots land on distinct lines.
        let v = vec![CacheAligned(0.0f64); 4];
        let addrs: Vec<usize> = v.iter().map(|c| c as *const _ as usize).collect();
        for w in addrs.windows(2) {
            assert!(w[1] / CACHE_LINE_BYTES > w[0] / CACHE_LINE_BYTES);
        }
    }
}
