//! Profile artifacts: per-superstep interval stats, block heatmaps, the
//! false-sharing detector and the Chrome-trace exporter's data model.
//!
//! The paper's evaluation is an attribution exercise — Table 3
//! decomposes each app's time into compute vs. communication *per
//! program*, but §4.2/§4.3 reason about which parallel *loop* causes
//! which traffic. This module carries that attribution: the executor
//! marks superstep boundaries ([`crate::cluster::Cluster::begin_superstep`] /
//! [`crate::cluster::Cluster::end_superstep`]) and the cluster snapshots
//! every shard's folded [`NodeStats`] at each boundary, so the
//! whole-run [`ClusterReport`] decomposes exactly into per-loop
//! intervals. Block heat accumulates shard-locally inside
//! [`crate::trace::NodeTrace`], and the false-sharing detector flags
//! multi-word blocks faulted by two or more distinct nodes inside one
//! superstep — the co-residency hazard that `shmem_limits` shrinking
//! (§4.2) exists to avoid.
//!
//! Everything here is a pure function of virtual-time state: the
//! determinism suite asserts [`ClusterReport::profile_json`] is
//! byte-identical between serial and threaded runs.

use crate::stats::{ClusterReport, NodeStats};
use crate::trace::{BlockHeat, NO_STEP};
use std::collections::BTreeMap;
use std::fmt::Write;

/// The per-node stats accrued during one superstep: the difference
/// between the boundary snapshots on either side of it. The trailing
/// interval of a run (step == [`NO_STEP`]) holds whatever accrued after
/// the last superstep — final gather, the run-ending barrier.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StepInterval {
    /// Superstep index ([`NO_STEP`] for the post-run tail).
    pub step: u32,
    /// IR loop that ran this superstep ([`NO_LOOP`] for the tail).
    pub loop_id: u32,
    /// Per-node stats delta, indexed by node id.
    pub nodes: Vec<NodeStats>,
}

/// A multi-word block faulted by two or more distinct nodes within one
/// superstep.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FalseSharingFlag {
    /// Superstep in which the co-resident faults happened.
    pub step: u32,
    /// IR loop that ran that superstep.
    pub loop_id: u32,
    /// The contended block.
    pub block: u32,
    /// The distinct nodes that faulted on it, ascending.
    pub nodes: Vec<usize>,
}

/// One node's block heat: every block it faulted on, pushed, or sent
/// attributed payload bytes for.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeHeatmap {
    /// `(block, heat)` pairs, ascending by block.
    pub blocks: Vec<(u32, BlockHeat)>,
    /// Payload bytes sent that no call site attributed to a block.
    pub unattributed_bytes: u64,
}

/// Accumulating profile state owned by the cluster: the intervals and
/// false-sharing flags so far, plus the per-node stats snapshot taken at
/// the most recent superstep boundary.
#[derive(Clone, Debug, Default)]
pub struct ProfileState {
    pub(crate) intervals: Vec<StepInterval>,
    pub(crate) false_sharing: Vec<FalseSharingFlag>,
    pub(crate) prev: Vec<NodeStats>,
}

impl ProfileState {
    pub(crate) fn new(nprocs: usize) -> Self {
        ProfileState {
            intervals: Vec::new(),
            false_sharing: Vec::new(),
            prev: vec![NodeStats::default(); nprocs],
        }
    }
}

/// One row of the per-loop breakdown: every interval of one IR loop,
/// summed over supersteps and nodes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LoopRow {
    /// IR loop id ([`NO_LOOP`] for the catch-all outside-loops row).
    pub loop_id: u32,
    /// How many supersteps executed this loop.
    pub supersteps: u64,
    /// Cluster-summed stats accrued across those supersteps.
    pub total: NodeStats,
}

impl ClusterReport {
    /// Canonical JSON encoding of the profile artifacts — intervals,
    /// false-sharing flags and heatmaps. Like [`ClusterReport::to_json`]
    /// it is a pure function of virtual-time state: the determinism
    /// suite compares it byte-for-byte between serial and threaded runs.
    pub fn profile_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"intervals\":[");
        for (i, iv) in self.intervals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"step\":{},\"loop\":{},\"nodes\":[",
                iv.step, iv.loop_id
            )
            .unwrap();
            for (n, d) in iv.nodes.iter().enumerate() {
                if n > 0 {
                    out.push(',');
                }
                d.write_json(&mut out);
            }
            out.push_str("]}");
        }
        out.push_str("],\"false_sharing\":[");
        for (i, f) in self.false_sharing.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"step\":{},\"loop\":{},\"block\":{},\"nodes\":[",
                f.step, f.loop_id, f.block
            )
            .unwrap();
            for (n, id) in f.nodes.iter().enumerate() {
                if n > 0 {
                    out.push(',');
                }
                write!(out, "{id}").unwrap();
            }
            out.push_str("]}");
        }
        out.push_str("],\"heatmaps\":[");
        for (n, hm) in self.heatmaps.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"node\":{n},\"unattributed_bytes\":{},\"blocks\":[",
                hm.unattributed_bytes
            )
            .unwrap();
            for (i, (b, h)) in hm.blocks.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write!(
                    out,
                    "{{\"block\":{b},\"read_misses\":{},\"write_misses\":{},\"upgrades\":{},\
                     \"pushed\":{},\"bytes_sent\":{}}}",
                    h.read_misses, h.write_misses, h.upgrades, h.pushed, h.bytes_sent
                )
                .unwrap();
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// The profile's structural invariants, asserted by the executors
    /// after every run (and therefore exercised by the fuzz harness on
    /// every generated program):
    ///
    /// 1. the per-superstep interval deltas sum *exactly* to the
    ///    whole-run per-node stats — no event double-counted or lost at
    ///    a snapshot boundary;
    /// 2. each node's heatmap fault totals match its `read_misses` /
    ///    `write_misses` counters, its pushed total matches
    ///    `blocks_pushed`, and attributed + unattributed bytes match
    ///    `bytes_sent`.
    pub fn check_profile_invariants(&self) -> Result<(), String> {
        let mut sums = vec![NodeStats::default(); self.nodes.len()];
        for iv in &self.intervals {
            if iv.nodes.len() != self.nodes.len() {
                return Err(format!(
                    "interval step {} has {} node deltas, cluster has {} nodes",
                    iv.step,
                    iv.nodes.len(),
                    self.nodes.len()
                ));
            }
            for (acc, d) in sums.iter_mut().zip(&iv.nodes) {
                acc.accumulate(d);
            }
        }
        for (n, (acc, whole)) in sums.iter().zip(&self.nodes).enumerate() {
            let mut err = None;
            acc.for_each_field(|name, got| {
                if err.is_none() {
                    let mut want = 0;
                    whole.for_each_field(|wn, wv| {
                        if wn == name {
                            want = wv;
                        }
                    });
                    if got != want {
                        err = Some(format!(
                            "node {n}: interval sum of {name} = {got}, whole-run = {want}"
                        ));
                    }
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
        }
        if self.heatmaps.len() != self.nodes.len() {
            return Err(format!(
                "{} heatmaps for {} nodes",
                self.heatmaps.len(),
                self.nodes.len()
            ));
        }
        for (n, (hm, s)) in self.heatmaps.iter().zip(&self.nodes).enumerate() {
            let read: u64 = hm.blocks.iter().map(|(_, h)| h.read_misses).sum();
            let write: u64 = hm.blocks.iter().map(|(_, h)| h.write_misses).sum();
            let pushed: u64 = hm.blocks.iter().map(|(_, h)| h.pushed).sum();
            let bytes: u64 = hm.blocks.iter().map(|(_, h)| h.bytes_sent).sum();
            if read != s.read_misses {
                return Err(format!(
                    "node {n}: heatmap read misses {read} != counter {}",
                    s.read_misses
                ));
            }
            if write != s.write_misses {
                return Err(format!(
                    "node {n}: heatmap write misses {write} != counter {}",
                    s.write_misses
                ));
            }
            if pushed != s.blocks_pushed {
                return Err(format!(
                    "node {n}: heatmap pushed {pushed} != counter {}",
                    s.blocks_pushed
                ));
            }
            if bytes + hm.unattributed_bytes != s.bytes_sent {
                return Err(format!(
                    "node {n}: heatmap bytes {bytes} + unattributed {} != bytes_sent {}",
                    hm.unattributed_bytes, s.bytes_sent
                ));
            }
        }
        Ok(())
    }

    /// Fold the intervals into one row per IR loop (cluster-summed),
    /// ascending by loop id with the outside-loops catch-all
    /// ([`NO_LOOP`]) last. By invariant 1 of
    /// [`ClusterReport::check_profile_invariants`], summing every row
    /// field reproduces the cluster-summed whole-run counters.
    pub fn loop_table(&self) -> Vec<LoopRow> {
        let mut rows: BTreeMap<u32, LoopRow> = BTreeMap::new();
        for iv in &self.intervals {
            let row = rows.entry(iv.loop_id).or_insert_with(|| LoopRow {
                loop_id: iv.loop_id,
                ..Default::default()
            });
            if iv.step != NO_STEP {
                row.supersteps += 1;
            }
            for d in &iv.nodes {
                row.total.accumulate(d);
            }
        }
        rows.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::NO_LOOP;

    fn interval(step: u32, loop_id: u32, compute: &[u64]) -> StepInterval {
        StepInterval {
            step,
            loop_id,
            nodes: compute
                .iter()
                .map(|&c| NodeStats {
                    compute_ns: c,
                    ..Default::default()
                })
                .collect(),
        }
    }

    fn report() -> ClusterReport {
        ClusterReport {
            nodes: vec![
                NodeStats {
                    compute_ns: 30,
                    ..Default::default()
                },
                NodeStats {
                    compute_ns: 3,
                    ..Default::default()
                },
            ],
            intervals: vec![
                interval(0, 0, &[10, 1]),
                interval(1, 1, &[20, 2]),
                interval(NO_STEP, NO_LOOP, &[0, 0]),
            ],
            heatmaps: vec![NodeHeatmap::default(), NodeHeatmap::default()],
            ..Default::default()
        }
    }

    #[test]
    fn invariants_hold_and_detect_drift() {
        let mut r = report();
        assert!(r.check_profile_invariants().is_ok());
        r.nodes[0].compute_ns += 1; // a counter the intervals never saw
        let err = r.check_profile_invariants().unwrap_err();
        assert!(err.contains("compute_ns"), "got: {err}");
    }

    #[test]
    fn heatmap_invariants_detect_unattributed_drift() {
        let mut r = report();
        r.nodes[1].bytes_sent = 64; // sent bytes neither view saw
        r.intervals[2].nodes[1].bytes_sent = 64; // intervals now agree
        let err = r.check_profile_invariants().unwrap_err();
        assert!(err.contains("bytes"), "got: {err}");
        r.heatmaps[1].unattributed_bytes = 64;
        assert!(r.check_profile_invariants().is_ok());
    }

    #[test]
    fn loop_table_folds_by_loop_with_tail_last() {
        let mut r = report();
        r.intervals.push(interval(2, 0, &[5, 5]));
        r.nodes[0].compute_ns += 5;
        r.nodes[1].compute_ns += 5;
        let rows = r.loop_table();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].loop_id, 0);
        assert_eq!(rows[0].supersteps, 2);
        assert_eq!(rows[0].total.compute_ns, 21);
        assert_eq!(rows[1].loop_id, 1);
        assert_eq!(rows[2].loop_id, NO_LOOP);
        assert_eq!(rows[2].supersteps, 0, "tail interval is not a superstep");
        let total: u64 = rows.iter().map(|r| r.total.compute_ns).sum();
        let whole: u64 = r
            .intervals
            .iter()
            .flat_map(|iv| &iv.nodes)
            .map(|n| n.compute_ns)
            .sum();
        assert_eq!(total, whole, "rows decompose the whole run");
        assert_eq!(total, 43);
    }

    #[test]
    fn profile_json_shape() {
        let mut r = report();
        r.false_sharing.push(FalseSharingFlag {
            step: 1,
            loop_id: 1,
            block: 42,
            nodes: vec![0, 1],
        });
        r.heatmaps[0].blocks.push((
            7,
            BlockHeat {
                read_misses: 2,
                ..Default::default()
            },
        ));
        let j = r.profile_json();
        assert!(j.starts_with("{\"intervals\":["));
        assert!(j.contains("\"step\":0,\"loop\":0"));
        assert!(
            j.contains("\"false_sharing\":[{\"step\":1,\"loop\":1,\"block\":42,\"nodes\":[0,1]}]")
        );
        assert!(j.contains("\"heatmaps\":[{\"node\":0,"));
        assert!(j.contains("\"block\":7,\"read_misses\":2"));
        assert!(j.ends_with("]}"));
    }
}
