//! The simulated cluster: a thin coordinator over per-node shards.
//!
//! A [`Cluster`] is a set of disjoint [`NodeShard`]s — each node's
//! full-size private copy of the global shared segment, per-block access
//! tags, virtual clock, pending-write count and event trace live in its
//! shard — plus the shared immutable [`Geometry`] (segment shape, home
//! map, cost model) and the run makespan. Coherence protocols (crate
//! `fgdsm-protocol`) drive state by copying block data between shard
//! pairs, flipping tags, and charging message and handler costs through
//! the methods here.
//!
//! The split exists so the executor can run supersteps in two phases:
//! a **resolve phase** that services all cross-node traffic through the
//! coordinator — sequentially planned, with node-disjoint bulk transfers
//! optionally applied concurrently in deterministic waves
//! ([`Cluster::apply_pairwise`]) — and a **compute phase** where each
//! kernel gets `&mut` access to its own shard only
//! ([`Cluster::shards_mut`]) and may run on a real thread. All times are
//! nanoseconds of *virtual* time, charged per-shard, so serial and
//! parallel execution produce bit-identical reports.

use crate::costs::CostModel;
use crate::pool::{Job, WorkerPool};
use crate::profile::{FalseSharingFlag, NodeHeatmap, ProfileState, StepInterval};
use crate::scratch::CACHE_LINE_BYTES;
use crate::shard::{Geometry, NodeShard};
use crate::stats::{ClusterReport, NodeStats};
use crate::trace::{Event, NodeTrace, NO_ARRAY, NO_BLOCK, NO_LOOP, NO_STEP};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Index of a node in the cluster.
pub type NodeId = usize;

/// Fine-grain access tag of one block at one node (Tempest mechanism 2).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
#[repr(u8)]
pub enum Access {
    /// No valid copy; any access faults.
    #[default]
    Invalid = 0,
    /// Valid read-only copy; stores fault.
    ReadOnly = 1,
    /// Valid writable copy.
    ReadWrite = 2,
}

/// What a virtual-time charge is accounted as.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChargeKind {
    /// Kernel computation.
    Compute,
    /// Stall waiting for remote data.
    Stall,
    /// Compiler-inserted protocol call overhead.
    CtlCall,
}

/// How pages of the global segment are assigned home nodes.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum HomePolicy {
    /// Pages round-robin across nodes. A block's home is usually *not*
    /// its owner, exercising the 3-hop protocol paths and the
    /// `mk_writable` reasoning of §4.2.
    #[default]
    RoundRobin,
    /// Pages divided into contiguous chunks, one per node.
    Blocked,
    /// Explicit per-page home assignment (the HPF runtime places pages to
    /// match the data distribution, so owners of BLOCK-distributed arrays
    /// are home to their own data; CYCLIC arrays still interleave).
    Explicit(Vec<NodeId>),
}

/// A fixed layout of the global segment: arrays allocated page-aligned.
#[derive(Clone, Debug)]
pub struct SegmentLayout {
    page_words: usize,
    words: usize,
}

impl SegmentLayout {
    /// Start a layout for a given page size (in f64 words).
    pub fn new(page_words: usize) -> Self {
        assert!(page_words.is_power_of_two());
        SegmentLayout {
            page_words,
            words: 0,
        }
    }

    /// Allocate `words` f64 elements, page-aligned; returns the word
    /// offset of the allocation in the global segment.
    pub fn alloc(&mut self, words: usize) -> usize {
        let off = self.words;
        let end = off + words;
        // Round the next allocation up to a page boundary so distinct
        // arrays never share a page (they may still share nothing smaller:
        // blocks never span arrays either).
        self.words = end.div_ceil(self.page_words) * self.page_words;
        off
    }

    /// Total words in the segment so far.
    pub fn total_words(&self) -> usize {
        self.words
    }
}

/// The simulated cluster: shared geometry + disjoint per-node shards.
pub struct Cluster {
    geom: Arc<Geometry>,
    shards: Vec<NodeShard>,
    makespan_ns: u64,
    /// Accumulating profile artifacts: superstep interval snapshots and
    /// false-sharing flags (see [`crate::profile`]).
    profile: ProfileState,
    /// Persistent worker pool for [`Cluster::apply_pairwise`] waves,
    /// installed by the executor once per run ([`Cluster::set_worker_pool`]).
    /// `None` falls back to per-wave [`std::thread::scope`] spawns.
    pool: Option<Arc<WorkerPool>>,
}

impl Cluster {
    /// Build a cluster of `nprocs` nodes over the given segment layout.
    pub fn new(nprocs: usize, cfg: CostModel, layout: &SegmentLayout, policy: HomePolicy) -> Self {
        assert!(nprocs >= 1);
        let words_per_block = cfg.words_per_block();
        let words_per_page = cfg.words_per_page();
        assert_eq!(
            layout.page_words, words_per_page,
            "layout/page size mismatch"
        );
        let seg_words = layout.total_words().max(words_per_page);
        let n_pages = seg_words.div_ceil(words_per_page);
        let n_blocks = seg_words.div_ceil(words_per_block);
        let home: Vec<NodeId> = match policy {
            HomePolicy::RoundRobin => (0..n_pages).map(|p| p % nprocs).collect(),
            HomePolicy::Blocked => {
                let per = n_pages.div_ceil(nprocs);
                (0..n_pages).map(|p| (p / per).min(nprocs - 1)).collect()
            }
            HomePolicy::Explicit(map) => {
                assert_eq!(map.len(), n_pages, "explicit home map length mismatch");
                assert!(map.iter().all(|&h| h < nprocs));
                map
            }
        };
        let geom = Arc::new(Geometry {
            nprocs,
            cfg,
            seg_words,
            words_per_block,
            words_per_page,
            n_blocks,
            n_pages,
            home,
        });
        let mut shards: Vec<NodeShard> = (0..nprocs)
            .map(|n| NodeShard::new(n, Arc::clone(&geom)))
            .collect();
        // FGDSM_TRACE_CAP overrides the per-node trace-ring capacity at
        // construction (aggregates are exact regardless; the cap only
        // bounds how many raw entries exports retain).
        if let Some(cap) = std::env::var("FGDSM_TRACE_CAP")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            for sh in &mut shards {
                sh.trace_mut().set_capacity(cap);
            }
        }
        Cluster {
            geom,
            shards,
            makespan_ns: 0,
            profile: ProfileState::new(nprocs),
            pool: None,
        }
    }

    /// Install (or clear) the persistent worker pool used by
    /// [`Cluster::apply_pairwise`]. The executor creates one pool per
    /// `execute` and installs it here so every superstep's apply waves
    /// run on the same parked workers instead of fresh scoped threads.
    pub fn set_worker_pool(&mut self, pool: Option<Arc<WorkerPool>>) {
        self.pool = pool;
    }

    /// The installed worker pool, if any (shared with the engine's
    /// compute phase).
    pub fn worker_pool(&self) -> Option<&Arc<WorkerPool>> {
        self.pool.as_ref()
    }

    // ------------------------------------------------------------------
    // Geometry
    // ------------------------------------------------------------------

    /// Number of nodes.
    pub fn nprocs(&self) -> usize {
        self.geom.nprocs
    }

    /// The cost model in force.
    pub fn cfg(&self) -> &CostModel {
        &self.geom.cfg
    }

    /// Words per coherence block.
    pub fn words_per_block(&self) -> usize {
        self.geom.words_per_block
    }

    /// Words per page.
    pub fn words_per_page(&self) -> usize {
        self.geom.words_per_page
    }

    /// Total segment words.
    pub fn seg_words(&self) -> usize {
        self.geom.seg_words
    }

    /// Total number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.geom.n_blocks
    }

    /// Block containing word offset `w`.
    pub fn block_of(&self, w: usize) -> usize {
        self.geom.block_of(w)
    }

    /// Word range `[start, end)` of block `b`.
    pub fn block_words(&self, b: usize) -> (usize, usize) {
        self.geom.block_words(b)
    }

    /// Home node of block `b` (the home of its page).
    pub fn home_of_block(&self, b: usize) -> NodeId {
        self.geom.home_of_block(b)
    }

    /// Home node of the page containing word `w`.
    pub fn home_of_word(&self, w: usize) -> NodeId {
        self.geom.home_of_word(w)
    }

    // ------------------------------------------------------------------
    // Shards
    // ------------------------------------------------------------------

    /// Immutable view of one node's shard.
    pub fn shard(&self, node: NodeId) -> &NodeShard {
        &self.shards[node]
    }

    /// Mutable access to one node's shard.
    pub fn shard_mut(&mut self, node: NodeId) -> &mut NodeShard {
        &mut self.shards[node]
    }

    /// All shards, mutably and simultaneously — the compute-phase entry
    /// point. The slice can be split across threads because shards are
    /// disjoint by construction.
    pub fn shards_mut(&mut self) -> &mut [NodeShard] {
        &mut self.shards
    }

    /// Disjoint mutable borrows of two distinct shards, in argument
    /// order. This is how the resolve phase services a cross-node
    /// transfer: one source shard, one destination shard, no view of the
    /// rest of the cluster.
    pub fn shard_pair_mut(&mut self, a: NodeId, b: NodeId) -> (&mut NodeShard, &mut NodeShard) {
        assert_ne!(a, b, "shard_pair_mut needs two distinct nodes");
        if a < b {
            let (lo, hi) = self.shards.split_at_mut(b);
            (&mut lo[a], &mut hi[0])
        } else {
            let (lo, hi) = self.shards.split_at_mut(a);
            (&mut hi[0], &mut lo[b])
        }
    }

    /// Execute one pairwise operation per `(src, dst)` pair — the resolve
    /// phase's **apply** stage. Each call of `f` receives the pair index
    /// and disjoint `&mut` borrows of the two shards, and must touch
    /// nothing else; outcomes are returned in pair index order.
    ///
    /// With `workers > 1` the pairs are list-scheduled into *waves*:
    /// `wave[i]` is one past the last wave of any earlier pair sharing a
    /// node with pair `i`, so any two pairs that touch a common shard
    /// always execute in index order with a join between them, while
    /// node-disjoint pairs within a wave run concurrently on
    /// [`std::thread::scope`] threads. Because `f` is pair-local, every
    /// shard observes exactly the effect sequence of a serial index-order
    /// execution — serial and threaded apply produce byte-identical
    /// clocks, counters and trace streams by construction.
    pub fn apply_pairwise<O, F>(
        &mut self,
        pairs: &[(NodeId, NodeId)],
        workers: usize,
        f: F,
    ) -> Vec<O>
    where
        O: Send,
        F: Fn(usize, &mut NodeShard, &mut NodeShard) -> O + Sync,
    {
        let nprocs = self.geom.nprocs;
        for &(a, b) in pairs {
            assert_ne!(a, b, "apply_pairwise needs two distinct nodes");
            assert!(a < nprocs && b < nprocs);
        }
        if workers <= 1 || pairs.len() < 2 {
            return pairs
                .iter()
                .enumerate()
                .map(|(i, &(a, b))| {
                    let (sa, sb) = self.shard_pair_mut(a, b);
                    f(i, sa, sb)
                })
                .collect();
        }
        // List scheduling: a pair lands one wave after the latest earlier
        // pair it conflicts with, so conflicting pairs keep index order.
        let mut last_wave: Vec<Option<usize>> = vec![None; nprocs];
        let mut waves: Vec<Vec<usize>> = Vec::new();
        for (i, &(a, b)) in pairs.iter().enumerate() {
            let w = [last_wave[a], last_wave[b]]
                .into_iter()
                .flatten()
                .map(|w| w + 1)
                .max()
                .unwrap_or(0);
            if w == waves.len() {
                waves.push(Vec::new());
            }
            waves[w].push(i);
            last_wave[a] = Some(w);
            last_wave[b] = Some(w);
        }
        // Clone the pool handle up front so the wave loop's raw shard
        // borrows don't conflict with a borrow of `self.pool`.
        let pool = self.pool.clone();
        let mut outcomes: Vec<Option<O>> = (0..pairs.len()).map(|_| None).collect();
        for wave in waves {
            if wave.len() == 1 {
                let i = wave[0];
                let (a, b) = pairs[i];
                let (sa, sb) = self.shard_pair_mut(a, b);
                outcomes[i] = Some(f(i, sa, sb));
                continue;
            }
            // Build the disjoint `&mut` borrows for the whole wave up
            // front. SAFETY: within a wave no node appears twice (the
            // schedule above separates any two pairs sharing a node into
            // different waves; asserted defensively here), and a != b for
            // every pair, so all 2·wave.len() references are disjoint.
            let mut seen = BTreeSet::new();
            for &i in &wave {
                let (a, b) = pairs[i];
                assert!(seen.insert(a) && seen.insert(b), "wave shares a node");
            }
            let ptr = self.shards.as_mut_ptr();
            let mut jobs: Vec<(usize, &mut NodeShard, &mut NodeShard)> = wave
                .iter()
                .map(|&i| {
                    let (a, b) = pairs[i];
                    unsafe { (i, &mut *ptr.add(a), &mut *ptr.add(b)) }
                })
                .collect();
            let nchunks = workers.min(jobs.len());
            let mut chunks: Vec<Vec<(usize, &mut NodeShard, &mut NodeShard)>> =
                (0..nchunks).map(|_| Vec::new()).collect();
            for (k, job) in jobs.drain(..).enumerate() {
                chunks[k % nchunks].push(job);
            }
            let f = &f;
            let done: Vec<Vec<(usize, O)>> = if let Some(pool) = &pool {
                // Persistent-pool path: one job per chunk, each writing a
                // private slot; `run` blocks until the wave completes, so
                // the shard borrows stay contained (scoped-batch
                // contract, see `crate::pool`).
                let mut slots: Vec<Vec<(usize, O)>> =
                    (0..chunks.len()).map(|_| Vec::new()).collect();
                let batch: Vec<Job> = chunks
                    .into_iter()
                    .zip(slots.iter_mut())
                    .map(|(chunk, slot)| {
                        Box::new(move || {
                            *slot = chunk
                                .into_iter()
                                .map(|(i, sa, sb)| (i, f(i, sa, sb)))
                                .collect();
                        }) as Job
                    })
                    .collect();
                pool.run(batch);
                slots
            } else {
                std::thread::scope(|s| {
                    let handles: Vec<_> = chunks
                        .into_iter()
                        .map(|chunk| {
                            s.spawn(move || {
                                chunk
                                    .into_iter()
                                    .map(|(i, sa, sb)| (i, f(i, sa, sb)))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                })
            };
            for (i, o) in done.into_iter().flatten() {
                outcomes[i] = Some(o);
            }
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("every pair produced an outcome"))
            .collect()
    }

    /// Union of every shard's dirty-block set: blocks whose tag differs
    /// anywhere from the initial home-owns-everything assignment.
    /// Invariant checks and gathers iterate this instead of the whole
    /// segment.
    pub fn dirty_blocks(&self) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for sh in &self.shards {
            out.extend(sh.dirty_blocks().iter().copied());
        }
        out
    }

    // ------------------------------------------------------------------
    // Access tags (Tempest fine-grain access control)
    // ------------------------------------------------------------------

    /// Current tag of block `b` at `node`.
    pub fn tag(&self, node: NodeId, b: usize) -> Access {
        self.shards[node].tag(b)
    }

    /// Set the tag of block `b` at `node` (no cost charged; protocols
    /// charge `tag_change_ns` themselves where appropriate).
    pub fn set_tag(&mut self, node: NodeId, b: usize, a: Access) {
        self.shards[node].set_tag(b, a);
    }

    // ------------------------------------------------------------------
    // Memory (per-node copies of the global segment)
    // ------------------------------------------------------------------

    /// Immutable view of a node's whole segment copy.
    pub fn node_mem(&self, node: NodeId) -> &[f64] {
        self.shards[node].mem()
    }

    /// Mutable view of a node's whole segment copy.
    pub fn node_mem_mut(&mut self, node: NodeId) -> &mut [f64] {
        self.shards[node].mem_mut()
    }

    /// Copy `len` words starting at `start` from `src` node's copy to
    /// `dst` node's copy. No cost charged (protocols charge transfer
    /// costs); data movement is exact.
    pub fn copy_words(&mut self, src: NodeId, dst: NodeId, start: usize, len: usize) {
        if src == dst || len == 0 {
            return;
        }
        let (s, d) = self.shard_pair_mut(src, dst);
        d.mem_mut()[start..start + len].copy_from_slice(&s.mem()[start..start + len]);
    }

    /// Merge the words of block `b` selected by `mask` (bit i = word i of
    /// the block) from `src`'s copy into `dst`'s copy — the multiple-writer
    /// diff application.
    pub fn merge_block_words(&mut self, src: NodeId, dst: NodeId, b: usize, mask: u64) {
        if src == dst || mask == 0 {
            return;
        }
        let (start, end) = self.geom.block_words(b);
        let (s, d) = self.shard_pair_mut(src, dst);
        let (sm, dm) = (s.mem(), d.mem_mut());
        for (i, w) in (start..end).enumerate() {
            if mask & (1 << i) != 0 {
                dm[w] = sm[w];
            }
        }
    }

    /// Ensure all pages covering `[start, start+len)` words are mapped at
    /// `node`, charging the first-touch mapping cost as stall time.
    /// Returns the number of pages newly mapped.
    pub fn map_range(&mut self, node: NodeId, start: usize, len: usize) -> u64 {
        self.shards[node].map_range(start, len)
    }

    /// True if `node` has mapped the page containing word `w`.
    pub fn is_mapped(&self, node: NodeId, w: usize) -> bool {
        self.shards[node].is_mapped(w)
    }

    // ------------------------------------------------------------------
    // Virtual time and events
    // ------------------------------------------------------------------

    /// Current virtual clock of `node` in ns.
    pub fn clock_ns(&self, node: NodeId) -> u64 {
        self.shards[node].clock_ns()
    }

    /// Record a typed trace event for `node`, stamped with the node's
    /// current virtual clock.
    pub fn record(&mut self, node: NodeId, event: Event) {
        self.shards[node].record(event);
    }

    /// One node's event trace (ring + folded aggregates).
    pub fn node_trace(&self, node: NodeId) -> &NodeTrace {
        self.shards[node].trace()
    }

    /// Change every node's trace-ring capacity (aggregates unaffected;
    /// shrinking evicts oldest entries as dropped).
    pub fn set_ring_capacity(&mut self, capacity: usize) {
        for sh in &mut self.shards {
            sh.trace_mut().set_capacity(capacity);
        }
    }

    /// Enter superstep `step` running IR loop `loop_id`: every event
    /// recorded on any shard until the matching
    /// [`Cluster::end_superstep`] is stamped with this context.
    pub fn begin_superstep(&mut self, step: u32, loop_id: u32) {
        for sh in &mut self.shards {
            sh.trace_mut().set_context(step, loop_id);
        }
    }

    /// Close superstep `step`: record the boundary marker on every
    /// shard, snapshot the per-node stats delta accrued since the
    /// previous boundary into the interval list, run the false-sharing
    /// detector over the blocks faulted this superstep, and reset the
    /// attribution context to the outside-any-superstep sentinels.
    pub fn end_superstep(&mut self, step: u32, loop_id: u32) {
        for sh in &mut self.shards {
            sh.record(Event::Superstep { step, loop_id });
        }
        // False sharing: a multi-word block faulted by ≥2 distinct nodes
        // within this superstep. Single-word blocks cannot be falsely
        // shared — there is no co-resident word to collide with.
        let mut faulters: BTreeMap<u32, Vec<NodeId>> = BTreeMap::new();
        for (n, sh) in self.shards.iter_mut().enumerate() {
            for b in sh.trace_mut().take_step_faults() {
                faulters.entry(b).or_default().push(n);
            }
        }
        for (b, nodes) in faulters {
            let (s, e) = self.geom.block_words(b as usize);
            if nodes.len() >= 2 && e - s > 1 {
                self.profile.false_sharing.push(FalseSharingFlag {
                    step,
                    loop_id,
                    block: b,
                    nodes,
                });
            }
        }
        let nodes: Vec<NodeStats> = self
            .shards
            .iter()
            .zip(&self.profile.prev)
            .map(|(sh, prev)| sh.stats().delta(prev))
            .collect();
        // Refresh the boundary snapshot in place: `NodeStats` is plain
        // counters (no heap), so `clone_from` rewrites the existing slots
        // instead of reallocating a whole snapshot vector per superstep.
        for (prev, sh) in self.profile.prev.iter_mut().zip(&self.shards) {
            prev.clone_from(sh.stats());
        }
        self.profile.intervals.push(StepInterval {
            step,
            loop_id,
            nodes,
        });
        for sh in &mut self.shards {
            sh.trace_mut().set_context(NO_STEP, NO_LOOP);
        }
    }

    /// Charge `ns` to `node`'s clock under the given accounting category.
    pub fn charge(&mut self, node: NodeId, ns: u64, kind: ChargeKind) {
        self.shards[node].charge(ns, kind);
    }

    /// Charge protocol-handler occupancy executed at `node` on behalf of a
    /// remote request. In dual-cpu mode the dedicated protocol processor
    /// absorbs it (tracked but not added to the compute clock); in
    /// single-cpu mode it steals time from the compute CPU.
    pub fn charge_handler(&mut self, node: NodeId, ns: u64) {
        self.shards[node].charge_handler(ns);
    }

    /// Record a message of `payload_bytes` sent from `src` to `dst`
    /// (stats only; time is charged by the caller according to the
    /// transaction shape). The send is recorded on `src`'s trace and a
    /// matching receive on `dst`'s, each stamped with its own node's
    /// clock, so cluster-wide sent/received counters always balance.
    pub fn note_msg(&mut self, src: NodeId, dst: NodeId, payload_bytes: usize) {
        debug_assert_ne!(src, dst, "note_msg: self-send is not a message");
        self.shards[src].note_msg(payload_bytes);
        self.shards[dst].note_msg_recv(payload_bytes);
    }

    /// Like [`Cluster::note_msg`], additionally attributing the payload
    /// to the cache block whose coherence traffic it is — protocol call
    /// sites that know the block use this so the sender's heatmap can
    /// account the bytes.
    pub fn note_msg_at(&mut self, src: NodeId, dst: NodeId, payload_bytes: usize, block: usize) {
        debug_assert_ne!(src, dst, "note_msg_at: self-send is not a message");
        self.shards[src].note_msg_at(payload_bytes, block);
        self.shards[dst].note_msg_recv(payload_bytes);
    }

    /// Trace invariant: no node's virtual clock ever ran backwards.
    pub fn clocks_monotone(&self) -> bool {
        self.shards.iter().all(|s| s.trace().clock_monotone())
    }

    /// Record an outstanding eager-write transaction at `node` (release
    /// consistency: the node does not stall for the ownership grant, but
    /// must drain at the next release point).
    pub fn note_pending_write(&mut self, node: NodeId) {
        self.shards[node].note_pending_write();
    }

    /// Immutable per-node stats (aggregates folded from the trace).
    pub fn stats(&self, node: NodeId) -> &NodeStats {
        self.shards[node].stats()
    }

    // ------------------------------------------------------------------
    // Synchronization
    // ------------------------------------------------------------------

    /// Global barrier: drain pending eager writes, advance every node to
    /// the common completion time and charge barrier wait.
    pub fn barrier(&mut self) {
        // Release point: wait for outstanding write transactions.
        for sh in &mut self.shards {
            sh.drain_pending_writes();
        }
        let max = self.shards.iter().map(|s| s.clock_ns()).max().unwrap_or(0);
        let done = max + self.geom.cfg.barrier_cost_ns(self.geom.nprocs);
        for sh in &mut self.shards {
            sh.align_clock(done, true);
        }
        self.makespan_ns = done;
    }

    /// All-reduce a per-node partial value with a combining tree; every
    /// node pays log₂(P) message rounds and the result is globally
    /// synchronizing (like a barrier).
    pub fn allreduce(&mut self, partials: &[f64], op: ReduceOp) -> f64 {
        assert_eq!(partials.len(), self.geom.nprocs);
        let rounds = (usize::BITS - (self.geom.nprocs - 1).leading_zeros()) as u64;
        let per_round = self.geom.cfg.one_way_ns(8)
            + self
                .geom
                .cfg
                .handler_cost(self.geom.cfg.handler_dispatch_ns);
        for sh in &mut self.shards {
            sh.charge(rounds * per_round, ChargeKind::Stall);
            sh.record(Event::Reduction);
            // In a combining tree every node both sends and receives one
            // 8-byte partial per round, so record both sides symmetrically
            // and the cluster-wide traffic counters stay balanced.
            for _ in 0..rounds {
                // Reduction partials are not block coherence traffic, so
                // the bytes stay unattributed in the heatmap.
                sh.record(Event::Msg {
                    bytes: 8,
                    block: NO_BLOCK,
                });
                sh.record(Event::MsgRecv { bytes: 8 });
            }
        }
        let max = self.shards.iter().map(|s| s.clock_ns()).max().unwrap_or(0);
        for sh in &mut self.shards {
            sh.align_clock(max, false);
        }
        self.makespan_ns = max;
        match op {
            ReduceOp::Sum => partials.iter().sum(),
            ReduceOp::Max => partials.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            ReduceOp::Min => partials.iter().copied().fold(f64::INFINITY, f64::min),
        }
    }

    /// Snapshot a full report of the run so far, derived from the per-
    /// shard event traces (the traces' folded aggregates are the only
    /// statistics). `wall_ns` is stamped by the executor afterwards; it
    /// is host time, not part of the deterministic virtual-time state.
    pub fn report(&self) -> ClusterReport {
        let makespan = self
            .makespan_ns
            .max(self.shards.iter().map(|s| s.clock_ns()).max().unwrap_or(0));
        let mut intervals = self.profile.intervals.clone();
        // Whatever accrued after the last superstep boundary (final
        // gather, the run-ending barrier) goes in a trailing catch-all
        // interval so the intervals always decompose the whole run.
        let tail: Vec<NodeStats> = self
            .shards
            .iter()
            .zip(&self.profile.prev)
            .map(|(sh, prev)| sh.stats().delta(prev))
            .collect();
        if !tail.iter().all(|d| d.is_zero()) || intervals.is_empty() {
            intervals.push(StepInterval {
                step: NO_STEP,
                loop_id: NO_LOOP,
                nodes: tail,
            });
        }
        ClusterReport {
            nodes: self.shards.iter().map(|s| s.stats().clone()).collect(),
            handler_in_comm: self.geom.cfg.cpu == crate::costs::CpuMode::Single,
            makespan_ns: makespan,
            wall_ns: 0,
            wire_route_ns: 0,
            intervals,
            false_sharing: self.profile.false_sharing.clone(),
            heatmaps: self
                .shards
                .iter()
                .map(|sh| NodeHeatmap {
                    blocks: sh.trace().heat().iter().map(|(&b, &h)| (b, h)).collect(),
                    unattributed_bytes: sh.trace().unattributed_bytes(),
                })
                .collect(),
        }
    }

    /// Do the runtime's own hot structures falsely share cache lines?
    /// Every shard's write-hot counters must sit on a line no other
    /// shard's hot state occupies — the compute-phase analogue of the
    /// PR-5 detector's "≥2 nodes faulting one multi-word block" rule,
    /// applied to ourselves.
    pub fn hot_lines_disjoint(&self) -> bool {
        let mut lines = BTreeSet::new();
        self.shards.iter().all(|sh| lines.insert(sh.hot_line()))
    }

    /// Heatmap-style self-report on the *host* layout of the runtime's
    /// own hot structures: the PR-5 false-sharing detector's logic,
    /// pointed at the simulator itself. Reports shard size/alignment and
    /// each shard's hot-state cache-line index, and whether those lines
    /// are pairwise disjoint (no ping-ponging possible between
    /// compute-phase workers updating their own shard's clock).
    pub fn layout_report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"cache_line_bytes\":{CACHE_LINE_BYTES},\"shard_size\":{},\"shard_align\":{},\"hot_lines_disjoint\":{},\"hot_lines\":[",
            std::mem::size_of::<NodeShard>(),
            std::mem::align_of::<NodeShard>(),
            self.hot_lines_disjoint(),
        ));
        for (n, sh) in self.shards.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            out.push_str(&sh.hot_line().to_string());
        }
        out.push_str("]}");
        out
    }

    /// Render all retained trace entries as one JSON document (one object
    /// per node: drop count plus the entry list).
    pub fn trace_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"nodes\":[");
        for (n, sh) in self.shards.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            sh.trace().write_json(n, &mut out);
        }
        out.push_str("]}");
        out
    }

    /// Render the retained trace entries as Chrome trace-event JSON —
    /// one track (`tid`) per node, complete spans (`ph:"X"`) for the
    /// time-consuming events (compute/stall/ctl-call charges, barrier
    /// waits) and instants (`ph:"i"`) for the rest — loadable in
    /// Perfetto or `chrome://tracing`. Timestamps are virtual-time
    /// microseconds rendered with fixed-point integer math, so the
    /// output is a pure function of virtual-time state and byte-
    /// identical between serial and threaded runs.
    pub fn trace_chrome(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("[");
        let mut first = true;
        for (n, sh) in self.shards.iter().enumerate() {
            for e in sh.trace().entries() {
                let name = match e.event {
                    Event::Charge {
                        kind: ChargeKind::Compute,
                        ..
                    } => "compute",
                    Event::Charge {
                        kind: ChargeKind::Stall,
                        ..
                    } => "stall",
                    Event::Charge {
                        kind: ChargeKind::CtlCall,
                        ..
                    } => "ctl_call",
                    Event::BarrierWait { .. } => "barrier",
                    Event::Fault { .. } => "fault",
                    Event::Ctl { .. } => "ctl",
                    Event::CtlSend { .. } => "ctl_send",
                    Event::Msg { .. } => "msg",
                    Event::MsgRecv { .. } => "msg_recv",
                    Event::PageMap { .. } => "page_map",
                    Event::Handler { .. } => "handler",
                    Event::Barrier => "barrier_crossed",
                    Event::Reduction => "reduction",
                    Event::Superstep { .. } => "superstep",
                };
                let span_ns = match e.event {
                    Event::Charge { ns, .. } | Event::BarrierWait { ns } => Some(ns),
                    _ => None,
                };
                if !first {
                    out.push(',');
                }
                first = false;
                // Charges and waits are recorded at their *end* time, so
                // the span starts `ns` earlier.
                let start_ns = e.t_ns - span_ns.unwrap_or(0);
                write!(
                    out,
                    "{{\"name\":\"{name}\",\"ph\":\"{}\",\"pid\":0,\"tid\":{n},\"ts\":{}.{:03}",
                    if span_ns.is_some() { 'X' } else { 'i' },
                    start_ns / 1000,
                    start_ns % 1000
                )
                .unwrap();
                if let Some(ns) = span_ns {
                    write!(out, ",\"dur\":{}.{:03}", ns / 1000, ns % 1000).unwrap();
                } else {
                    out.push_str(",\"s\":\"t\"");
                }
                let mut args: Vec<(&str, String)> = Vec::new();
                if e.step != NO_STEP {
                    args.push(("step", e.step.to_string()));
                    args.push(("loop", e.loop_id.to_string()));
                }
                match e.event {
                    Event::Fault { block, kind } => {
                        args.push(("block", block.to_string()));
                        args.push(("kind", format!("\"{kind:?}\"")));
                    }
                    Event::Ctl { prim } => args.push(("prim", format!("\"{prim:?}\""))),
                    Event::CtlSend {
                        blocks,
                        first_block,
                        array,
                    } => {
                        args.push(("blocks", blocks.to_string()));
                        if first_block != NO_BLOCK {
                            args.push(("first_block", first_block.to_string()));
                        }
                        if array != NO_ARRAY {
                            args.push(("array", array.to_string()));
                        }
                    }
                    Event::Msg { bytes, block } => {
                        args.push(("bytes", bytes.to_string()));
                        if block != NO_BLOCK {
                            args.push(("block", block.to_string()));
                        }
                    }
                    Event::MsgRecv { bytes } => args.push(("bytes", bytes.to_string())),
                    Event::PageMap { pages } => args.push(("pages", pages.to_string())),
                    Event::Handler { ns } => args.push(("ns", ns.to_string())),
                    Event::Superstep { step, loop_id } => {
                        args.push(("index", step.to_string()));
                        args.push(("loop_id", loop_id.to_string()));
                    }
                    _ => {}
                }
                out.push_str(",\"args\":{");
                for (i, (k, v)) in args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write!(out, "\"{k}\":{v}").unwrap();
                }
                out.push_str("}}");
            }
        }
        out.push(']');
        out
    }
}

/// Reduction operators supported by the runtime.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReduceOp {
    Sum,
    Max,
    Min,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster(n: usize) -> Cluster {
        let cfg = CostModel::paper_dual_cpu();
        let mut layout = SegmentLayout::new(cfg.words_per_page());
        layout.alloc(2048);
        Cluster::new(n, cfg, &layout, HomePolicy::RoundRobin)
    }

    #[test]
    fn homes_round_robin_by_page() {
        let c = small_cluster(4);
        assert_eq!(c.home_of_word(0), 0);
        assert_eq!(c.home_of_word(512), 1);
        assert_eq!(c.home_of_word(1024), 2);
        assert_eq!(c.home_of_word(2047), 3);
    }

    #[test]
    fn home_starts_readwrite_others_invalid() {
        let c = small_cluster(4);
        let b = 0; // page 0, home node 0
        assert_eq!(c.tag(0, b), Access::ReadWrite);
        assert_eq!(c.tag(1, b), Access::Invalid);
    }

    #[test]
    fn copy_words_moves_data() {
        let mut c = small_cluster(2);
        c.node_mem_mut(0)[10] = 42.0;
        c.copy_words(0, 1, 8, 8);
        assert_eq!(c.node_mem(1)[10], 42.0);
        assert_eq!(c.node_mem(1)[7], 0.0);
    }

    #[test]
    fn merge_block_words_respects_mask() {
        let mut c = small_cluster(2);
        for w in 0..16 {
            c.node_mem_mut(0)[w] = w as f64 + 1.0;
        }
        c.merge_block_words(0, 1, 0, 0b101); // words 0 and 2 only
        assert_eq!(c.node_mem(1)[0], 1.0);
        assert_eq!(c.node_mem(1)[1], 0.0);
        assert_eq!(c.node_mem(1)[2], 3.0);
    }

    #[test]
    fn shard_pair_mut_is_disjoint_and_ordered() {
        let mut c = small_cluster(3);
        c.node_mem_mut(2)[0] = 7.0;
        {
            let (a, b) = c.shard_pair_mut(2, 0);
            assert_eq!(a.id(), 2);
            assert_eq!(b.id(), 0);
            b.mem_mut()[0] = a.mem()[0];
        }
        assert_eq!(c.node_mem(0)[0], 7.0);
    }

    #[test]
    fn dirty_blocks_track_tag_deviation() {
        let mut c = small_cluster(2);
        assert!(c.dirty_blocks().is_empty(), "initial tags are the default");
        // Node 1 gains a read-only copy of block 0 (home is node 0).
        c.set_tag(1, 0, Access::ReadOnly);
        // Node 0 loses write access to its own block 3.
        c.set_tag(0, 3, Access::ReadOnly);
        assert_eq!(c.dirty_blocks().into_iter().collect::<Vec<_>>(), [0, 3]);
        // Restoring the defaults empties the set.
        c.set_tag(1, 0, Access::Invalid);
        c.set_tag(0, 3, Access::ReadWrite);
        assert!(c.dirty_blocks().is_empty());
    }

    #[test]
    fn map_range_charges_once() {
        let mut c = small_cluster(2);
        // Node 1 touches page 0 (home is node 0): first touch maps.
        let n1 = c.map_range(1, 0, 512);
        assert_eq!(n1, 1);
        let n2 = c.map_range(1, 0, 512);
        assert_eq!(n2, 0);
        assert_eq!(c.stats(1).pages_mapped, 1);
        assert!(c.stats(1).stall_ns > 0);
        // Home already has its page mapped.
        assert_eq!(c.map_range(0, 0, 512), 0);
    }

    #[test]
    fn barrier_aligns_clocks() {
        let mut c = small_cluster(3);
        c.charge(0, 1000, ChargeKind::Compute);
        c.charge(1, 5000, ChargeKind::Compute);
        c.barrier();
        let done = c.clock_ns(0);
        assert_eq!(c.clock_ns(1), done);
        assert_eq!(c.clock_ns(2), done);
        assert!(done >= 5000 + c.cfg().barrier_cost_ns(3));
        // Slow node waited the least.
        assert!(c.stats(1).barrier_ns < c.stats(0).barrier_ns);
    }

    #[test]
    fn pending_writes_drain_at_barrier() {
        let mut c = small_cluster(2);
        c.note_pending_write(0);
        c.note_pending_write(0);
        c.barrier();
        assert_eq!(c.stats(0).stall_ns, 2 * c.cfg().release_drain_ns);
    }

    #[test]
    fn allreduce_sums_and_syncs() {
        let mut c = small_cluster(4);
        c.charge(2, 7777, ChargeKind::Compute);
        let v = c.allreduce(&[1.0, 2.0, 3.0, 4.0], ReduceOp::Sum);
        assert_eq!(v, 10.0);
        let t = c.clock_ns(0);
        assert!((0..4).all(|n| c.clock_ns(n) == t));
        assert_eq!(c.stats(0).reductions, 1);
    }

    #[test]
    fn handler_charging_depends_on_cpu_mode() {
        let mut c = small_cluster(2);
        let t0 = c.clock_ns(1);
        c.charge_handler(1, 1000);
        assert_eq!(
            c.clock_ns(1),
            t0,
            "dual-cpu: handler does not steal compute"
        );
        assert_eq!(c.stats(1).handler_ns, 1000);

        let cfg = CostModel::paper_single_cpu();
        let mut layout = SegmentLayout::new(cfg.words_per_page());
        layout.alloc(512);
        let mut c1 = Cluster::new(2, cfg, &layout, HomePolicy::RoundRobin);
        c1.charge_handler(1, 1000);
        assert_eq!(c1.clock_ns(1), 1800, "single-cpu: scaled and charged");
    }

    #[test]
    fn ring_overflow_keeps_tail_but_counts_everything() {
        let mut c = small_cluster(2);
        c.set_ring_capacity(4);
        // Generate 10 charge events on node 0 (each `charge` records one
        // entry), well past the 4-entry ring.
        for _ in 0..10 {
            c.charge(0, 100, ChargeKind::Compute);
        }
        // The fold still counts every event...
        assert_eq!(c.stats(0).compute_ns, 1000, "aggregates stay exact");
        assert_eq!(c.clock_ns(0), 1000);
        // ...while the ring keeps only the most recent entries.
        let t = c.node_trace(0);
        assert_eq!(t.entries().count(), 4);
        assert_eq!(t.dropped(), 6);
        assert_eq!(t.entries().next().unwrap().t_ns, 700, "tail starts at 7th");
        // The JSON export reports the drop count.
        assert!(c.trace_json().contains("\"dropped\":6"));
    }

    /// The apply-stage scheduler: a pair list with node conflicts (so the
    /// wave schedule is non-trivial) run serially and with 4 workers must
    /// leave every shard byte-identical — clocks, stats, memory, and the
    /// full trace stream.
    #[test]
    fn apply_pairwise_serial_and_threaded_agree() {
        let pairs = [(0, 1), (2, 3), (1, 2), (4, 5), (0, 4), (3, 5), (2, 3)];
        let run = |workers: usize| {
            let mut c = small_cluster(6);
            for w in 0..2048 {
                c.node_mem_mut(w % 6)[w] = w as f64 + 0.25;
            }
            let outcomes = c.apply_pairwise(&pairs, workers, |i, sa, sb| {
                sa.charge(100 * (i as u64 + 1), ChargeKind::CtlCall);
                sa.note_msg(64);
                sb.note_msg_recv(64);
                let lo = i * 8;
                let (dst, src) = (sb.mem_mut(), sa.mem());
                dst[lo..lo + 8].copy_from_slice(&src[lo..lo + 8]);
                sa.clock_ns()
            });
            (outcomes, c)
        };
        let (o1, c1) = run(1);
        let (o4, c4) = run(4);
        assert_eq!(o1, o4, "outcomes must come back in pair index order");
        for n in 0..6 {
            assert_eq!(c1.clock_ns(n), c4.clock_ns(n), "clock of node {n}");
            assert_eq!(c1.stats(n), c4.stats(n), "stats of node {n}");
            assert_eq!(c1.node_mem(n), c4.node_mem(n), "memory of node {n}");
        }
        assert_eq!(c1.trace_json(), c4.trace_json());
    }

    /// The persistent-pool path must be indistinguishable from both the
    /// serial path and the scoped-thread path — same outcomes, clocks,
    /// stats, memory and trace bytes — across repeated calls reusing the
    /// same pool (the per-superstep reuse pattern).
    #[test]
    fn apply_pairwise_pool_matches_scoped_and_serial() {
        let pairs = [(0, 1), (2, 3), (1, 2), (4, 5), (0, 4), (3, 5), (2, 3)];
        let run = |workers: usize, pool: bool| {
            let mut c = small_cluster(6);
            if pool {
                c.set_worker_pool(Some(Arc::new(WorkerPool::new(workers))));
            }
            for w in 0..2048 {
                c.node_mem_mut(w % 6)[w] = w as f64 + 0.25;
            }
            // Several rounds over the same pool, like supersteps do.
            let mut all = Vec::new();
            for _round in 0..3 {
                let outcomes = c.apply_pairwise(&pairs, workers, |i, sa, sb| {
                    sa.charge(100 * (i as u64 + 1), ChargeKind::CtlCall);
                    sa.note_msg(64);
                    sb.note_msg_recv(64);
                    let lo = i * 8;
                    let (dst, src) = (sb.mem_mut(), sa.mem());
                    dst[lo..lo + 8].copy_from_slice(&src[lo..lo + 8]);
                    sa.clock_ns()
                });
                all.push(outcomes);
            }
            c.set_worker_pool(None);
            (all, c)
        };
        let (o_serial, c_serial) = run(1, false);
        let (o_scoped, c_scoped) = run(4, false);
        let (o_pool, c_pool) = run(4, true);
        assert_eq!(o_serial, o_scoped);
        assert_eq!(o_serial, o_pool, "pool outcomes in pair index order");
        for n in 0..6 {
            assert_eq!(c_serial.clock_ns(n), c_pool.clock_ns(n));
            assert_eq!(c_scoped.stats(n), c_pool.stats(n));
            assert_eq!(c_serial.node_mem(n), c_pool.node_mem(n));
        }
        assert_eq!(c_serial.trace_json(), c_pool.trace_json());
    }

    /// The runtime's own layout must pass the false-sharing rule we
    /// apply to simulated apps: every shard's hot counters on a private
    /// cache line.
    #[test]
    fn shard_hot_state_does_not_false_share() {
        let c = small_cluster(8);
        assert!(c.hot_lines_disjoint(), "{}", c.layout_report());
        let report = c.layout_report();
        assert!(report.contains("\"hot_lines_disjoint\":true"));
        assert!(report.contains("\"cache_line_bytes\":64"));
        assert_eq!(std::mem::align_of::<NodeShard>() % 64, 0);
        assert_eq!(std::mem::size_of::<NodeShard>() % 64, 0);
    }

    #[test]
    fn superstep_boundaries_attribute_and_snapshot() {
        use crate::trace::FaultKind;
        let mut c = small_cluster(2);
        c.begin_superstep(0, 3);
        c.charge(0, 100, ChargeKind::Compute);
        // Both nodes fault the same multi-word block within the step.
        c.record(
            0,
            Event::Fault {
                block: 0,
                kind: FaultKind::Upgrade,
            },
        );
        c.record(
            1,
            Event::Fault {
                block: 0,
                kind: FaultKind::Read,
            },
        );
        c.end_superstep(0, 3);
        c.begin_superstep(1, 4);
        c.charge(1, 50, ChargeKind::Stall);
        // Same block faulted again, but by only one node: no flag.
        c.record(
            1,
            Event::Fault {
                block: 0,
                kind: FaultKind::Read,
            },
        );
        c.end_superstep(1, 4);
        c.charge(0, 25, ChargeKind::Compute); // after the last superstep
        let r = c.report();
        assert_eq!(r.intervals.len(), 3, "two supersteps + tail");
        assert_eq!((r.intervals[0].step, r.intervals[0].loop_id), (0, 3));
        assert_eq!(r.intervals[0].nodes[0].compute_ns, 100);
        assert_eq!(r.intervals[1].nodes[1].stall_ns, 50);
        assert_eq!(r.intervals[2].step, crate::trace::NO_STEP);
        assert_eq!(r.intervals[2].nodes[0].compute_ns, 25);
        r.check_profile_invariants().unwrap();
        assert_eq!(r.false_sharing.len(), 1);
        let f = &r.false_sharing[0];
        assert_eq!((f.step, f.loop_id, f.block), (0, 3, 0));
        assert_eq!(f.nodes, vec![0, 1]);
        // The per-loop fold covers the whole run.
        let rows = r.loop_table();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].loop_id, 3);
        assert_eq!(rows[0].total.compute_ns, 100);
    }

    #[test]
    fn chrome_export_is_deterministic_json() {
        use crate::trace::FaultKind;
        let mut c = small_cluster(2);
        c.begin_superstep(0, 0);
        c.charge(0, 1500, ChargeKind::Compute);
        c.record(
            0,
            Event::Fault {
                block: 2,
                kind: FaultKind::Read,
            },
        );
        c.end_superstep(0, 0);
        let j = c.trace_chrome();
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(
            j.contains(
                "\"name\":\"compute\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":0.000,\"dur\":1.500"
            ),
            "got: {j}"
        );
        assert!(j.contains("\"name\":\"fault\",\"ph\":\"i\""));
        assert!(j.contains("\"step\":0,\"loop\":0"));
        assert!(j.contains("\"name\":\"superstep\""));
    }

    #[test]
    fn attributed_messages_heat_the_senders_blocks() {
        let mut c = small_cluster(2);
        c.note_msg_at(0, 1, 128, 3);
        c.note_msg(0, 1, 8);
        let r = c.report();
        assert_eq!(r.nodes[0].bytes_sent, 136);
        assert_eq!(r.heatmaps[0].unattributed_bytes, 8);
        assert_eq!(
            r.heatmaps[0].blocks,
            vec![(
                3,
                crate::trace::BlockHeat {
                    bytes_sent: 128,
                    ..Default::default()
                }
            )]
        );
        assert!(r.traffic_balanced());
        r.check_profile_invariants().unwrap();
    }

    #[test]
    fn segment_layout_page_aligns() {
        let mut l = SegmentLayout::new(512);
        let a = l.alloc(100);
        let b = l.alloc(513);
        assert_eq!(a, 0);
        assert_eq!(b, 512);
        assert_eq!(l.total_words(), 512 + 1024);
    }
}
