//! The simulated cluster: nodes, global segment, access tags, virtual
//! clocks, barriers and reductions.
//!
//! A [`Cluster`] holds, for each node, a full-size private copy of the
//! global shared segment (remote pages are *mapped* lazily, charging the
//! first-touch cost), a per-block access tag, a virtual clock and an event
//! counter set. Coherence protocols (crate `fgdsm-protocol`) drive state by
//! copying block data between node copies, flipping tags, and charging
//! message and handler costs through the methods here.
//!
//! All times are nanoseconds of *virtual* time; execution itself is native
//! and sequential, so runs are deterministic.

use crate::costs::{CostModel, CpuMode};
use crate::stats::{ClusterReport, NodeStats};
use crate::trace::{Event, Trace};

/// Index of a node in the cluster.
pub type NodeId = usize;

/// Fine-grain access tag of one block at one node (Tempest mechanism 2).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
#[repr(u8)]
pub enum Access {
    /// No valid copy; any access faults.
    #[default]
    Invalid = 0,
    /// Valid read-only copy; stores fault.
    ReadOnly = 1,
    /// Valid writable copy.
    ReadWrite = 2,
}

/// What a virtual-time charge is accounted as.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChargeKind {
    /// Kernel computation.
    Compute,
    /// Stall waiting for remote data.
    Stall,
    /// Compiler-inserted protocol call overhead.
    CtlCall,
}

/// How pages of the global segment are assigned home nodes.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum HomePolicy {
    /// Pages round-robin across nodes. A block's home is usually *not*
    /// its owner, exercising the 3-hop protocol paths and the
    /// `mk_writable` reasoning of §4.2.
    #[default]
    RoundRobin,
    /// Pages divided into contiguous chunks, one per node.
    Blocked,
    /// Explicit per-page home assignment (the HPF runtime places pages to
    /// match the data distribution, so owners of BLOCK-distributed arrays
    /// are home to their own data; CYCLIC arrays still interleave).
    Explicit(Vec<NodeId>),
}

/// A fixed layout of the global segment: arrays allocated page-aligned.
#[derive(Clone, Debug)]
pub struct SegmentLayout {
    page_words: usize,
    words: usize,
}

impl SegmentLayout {
    /// Start a layout for a given page size (in f64 words).
    pub fn new(page_words: usize) -> Self {
        assert!(page_words.is_power_of_two());
        SegmentLayout {
            page_words,
            words: 0,
        }
    }

    /// Allocate `words` f64 elements, page-aligned; returns the word
    /// offset of the allocation in the global segment.
    pub fn alloc(&mut self, words: usize) -> usize {
        let off = self.words;
        let end = off + words;
        // Round the next allocation up to a page boundary so distinct
        // arrays never share a page (they may still share nothing smaller:
        // blocks never span arrays either).
        self.words = end.div_ceil(self.page_words) * self.page_words;
        off
    }

    /// Total words in the segment so far.
    pub fn total_words(&self) -> usize {
        self.words
    }
}

/// The simulated cluster.
pub struct Cluster {
    nprocs: usize,
    cfg: CostModel,
    seg_words: usize,
    words_per_block: usize,
    words_per_page: usize,
    n_blocks: usize,
    n_pages: usize,
    home: Vec<NodeId>, // per page
    mem: Vec<Vec<f64>>,
    mapped: Vec<Vec<u64>>, // per node page bitset
    tags: Vec<Vec<Access>>,
    clock: Vec<u64>,
    pending_writes: Vec<u64>, // outstanding eager-write transactions
    trace: Trace,
    makespan_ns: u64,
}

impl Cluster {
    /// Build a cluster of `nprocs` nodes over the given segment layout.
    pub fn new(nprocs: usize, cfg: CostModel, layout: &SegmentLayout, policy: HomePolicy) -> Self {
        assert!(nprocs >= 1);
        let words_per_block = cfg.words_per_block();
        let words_per_page = cfg.words_per_page();
        assert_eq!(
            layout.page_words, words_per_page,
            "layout/page size mismatch"
        );
        let seg_words = layout.total_words().max(words_per_page);
        let n_pages = seg_words.div_ceil(words_per_page);
        let n_blocks = seg_words.div_ceil(words_per_block);
        let home: Vec<NodeId> = match policy {
            HomePolicy::RoundRobin => (0..n_pages).map(|p| p % nprocs).collect(),
            HomePolicy::Blocked => {
                let per = n_pages.div_ceil(nprocs);
                (0..n_pages).map(|p| (p / per).min(nprocs - 1)).collect()
            }
            HomePolicy::Explicit(map) => {
                assert_eq!(map.len(), n_pages, "explicit home map length mismatch");
                assert!(map.iter().all(|&h| h < nprocs));
                map
            }
        };
        let mut c = Cluster {
            nprocs,
            cfg,
            seg_words,
            words_per_block,
            words_per_page,
            n_blocks,
            n_pages,
            home,
            mem: (0..nprocs).map(|_| vec![0.0; seg_words]).collect(),
            mapped: (0..nprocs)
                .map(|_| vec![0u64; n_pages.div_ceil(64)])
                .collect(),
            tags: (0..nprocs)
                .map(|_| vec![Access::Invalid; n_blocks])
                .collect(),
            clock: vec![0; nprocs],
            pending_writes: vec![0; nprocs],
            trace: Trace::new(nprocs),
            makespan_ns: 0,
        };
        // The home node of each page starts with a mapped page and
        // ReadWrite tags for its blocks: homes always hold the initial
        // (zero-initialized) data.
        for page in 0..n_pages {
            let h = c.home[page];
            c.mapped[h][page / 64] |= 1 << (page % 64);
            let first_block = page * words_per_page / words_per_block;
            let end_block =
                (((page + 1) * words_per_page).min(seg_words)).div_ceil(words_per_block);
            for b in first_block..end_block.min(n_blocks) {
                // Only if this node is the home of the block (blocks never
                // span pages because both are powers of two and block ≤ page).
                c.tags[h][b] = Access::ReadWrite;
            }
        }
        c
    }

    // ------------------------------------------------------------------
    // Geometry
    // ------------------------------------------------------------------

    /// Number of nodes.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The cost model in force.
    pub fn cfg(&self) -> &CostModel {
        &self.cfg
    }

    /// Words per coherence block.
    pub fn words_per_block(&self) -> usize {
        self.words_per_block
    }

    /// Total segment words.
    pub fn seg_words(&self) -> usize {
        self.seg_words
    }

    /// Total number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.n_blocks
    }

    /// Block containing word offset `w`.
    pub fn block_of(&self, w: usize) -> usize {
        w / self.words_per_block
    }

    /// Word range `[start, end)` of block `b`.
    pub fn block_words(&self, b: usize) -> (usize, usize) {
        let s = b * self.words_per_block;
        (s, (s + self.words_per_block).min(self.seg_words))
    }

    /// Home node of block `b` (the home of its page).
    pub fn home_of_block(&self, b: usize) -> NodeId {
        self.home[b * self.words_per_block / self.words_per_page]
    }

    /// Home node of the page containing word `w`.
    pub fn home_of_word(&self, w: usize) -> NodeId {
        self.home[w / self.words_per_page]
    }

    // ------------------------------------------------------------------
    // Access tags (Tempest fine-grain access control)
    // ------------------------------------------------------------------

    /// Current tag of block `b` at `node`.
    pub fn tag(&self, node: NodeId, b: usize) -> Access {
        self.tags[node][b]
    }

    /// Set the tag of block `b` at `node` (no cost charged; protocols
    /// charge `tag_change_ns` themselves where appropriate).
    pub fn set_tag(&mut self, node: NodeId, b: usize, a: Access) {
        self.tags[node][b] = a;
    }

    // ------------------------------------------------------------------
    // Memory (per-node copies of the global segment)
    // ------------------------------------------------------------------

    /// Immutable view of a node's whole segment copy.
    pub fn node_mem(&self, node: NodeId) -> &[f64] {
        &self.mem[node]
    }

    /// Mutable view of a node's whole segment copy.
    pub fn node_mem_mut(&mut self, node: NodeId) -> &mut [f64] {
        &mut self.mem[node]
    }

    /// Copy `len` words starting at `start` from `src` node's copy to
    /// `dst` node's copy. No cost charged (protocols charge transfer
    /// costs); data movement is exact.
    pub fn copy_words(&mut self, src: NodeId, dst: NodeId, start: usize, len: usize) {
        if src == dst || len == 0 {
            return;
        }
        let (a, b) = if src < dst {
            let (lo, hi) = self.mem.split_at_mut(dst);
            (&lo[src], &mut hi[0])
        } else {
            let (lo, hi) = self.mem.split_at_mut(src);
            (&hi[0], &mut lo[dst])
        };
        b[start..start + len].copy_from_slice(&a[start..start + len]);
    }

    /// Merge the words of block `b` selected by `mask` (bit i = word i of
    /// the block) from `src`'s copy into `dst`'s copy — the multiple-writer
    /// diff application.
    pub fn merge_block_words(&mut self, src: NodeId, dst: NodeId, b: usize, mask: u64) {
        if src == dst || mask == 0 {
            return;
        }
        let (start, end) = self.block_words(b);
        let (s, d) = if src < dst {
            let (lo, hi) = self.mem.split_at_mut(dst);
            (&lo[src], &mut hi[0])
        } else {
            let (lo, hi) = self.mem.split_at_mut(src);
            (&hi[0], &mut lo[dst])
        };
        for (i, w) in (start..end).enumerate() {
            if mask & (1 << i) != 0 {
                d[w] = s[w];
            }
        }
    }

    /// Ensure all pages covering `[start, start+len)` words are mapped at
    /// `node`, charging the first-touch mapping cost as stall time.
    /// Returns the number of pages newly mapped.
    pub fn map_range(&mut self, node: NodeId, start: usize, len: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        let first = start / self.words_per_page;
        let last = (start + len - 1) / self.words_per_page;
        let mut newly = 0u64;
        for page in first..=last.min(self.n_pages - 1) {
            let (w, bit) = (page / 64, page % 64);
            if self.mapped[node][w] & (1 << bit) == 0 {
                self.mapped[node][w] |= 1 << bit;
                newly += 1;
            }
        }
        if newly > 0 {
            self.record(node, Event::PageMap { pages: newly });
            self.charge(node, newly * self.cfg.page_map_ns, ChargeKind::Stall);
        }
        newly
    }

    /// True if `node` has mapped the page containing word `w`.
    pub fn is_mapped(&self, node: NodeId, w: usize) -> bool {
        let page = w / self.words_per_page;
        self.mapped[node][page / 64] & (1 << (page % 64)) != 0
    }

    // ------------------------------------------------------------------
    // Virtual time and events
    // ------------------------------------------------------------------

    /// Current virtual clock of `node` in ns.
    pub fn clock_ns(&self, node: NodeId) -> u64 {
        self.clock[node]
    }

    /// Record a typed trace event for `node`, stamped with the node's
    /// current virtual clock. All statistics flow through here: the trace
    /// folds events into per-node aggregates online, so the event log and
    /// the report can never disagree.
    pub fn record(&mut self, node: NodeId, event: Event) {
        self.trace.record(node, self.clock[node], event);
    }

    /// The structured event trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mark a superstep boundary (one parallel loop completed) on every
    /// node.
    pub fn record_superstep(&mut self) {
        for n in 0..self.nprocs {
            self.record(n, Event::Superstep);
        }
    }

    /// Charge `ns` to `node`'s clock under the given accounting category.
    pub fn charge(&mut self, node: NodeId, ns: u64, kind: ChargeKind) {
        self.clock[node] += ns;
        self.record(node, Event::Charge { kind, ns });
    }

    /// Charge protocol-handler occupancy executed at `node` on behalf of a
    /// remote request. In dual-cpu mode the dedicated protocol processor
    /// absorbs it (tracked but not added to the compute clock); in
    /// single-cpu mode it steals time from the compute CPU.
    pub fn charge_handler(&mut self, node: NodeId, ns: u64) {
        let scaled = self.cfg.handler_cost(ns);
        if self.cfg.cpu == CpuMode::Single {
            self.clock[node] += scaled;
        }
        self.record(node, Event::Handler { ns: scaled });
    }

    /// Record a message of `payload_bytes` sent from `src` (stats only;
    /// time is charged by the caller according to the transaction shape).
    pub fn note_msg(&mut self, src: NodeId, payload_bytes: usize) {
        self.record(
            src,
            Event::Msg {
                bytes: payload_bytes as u64,
            },
        );
    }

    /// Record an outstanding eager-write transaction at `node` (release
    /// consistency: the node does not stall for the ownership grant, but
    /// must drain at the next release point).
    pub fn note_pending_write(&mut self, node: NodeId) {
        self.pending_writes[node] += 1;
    }

    /// Immutable per-node stats (aggregates folded from the trace).
    pub fn stats(&self, node: NodeId) -> &NodeStats {
        self.trace.stats(node)
    }

    // ------------------------------------------------------------------
    // Synchronization
    // ------------------------------------------------------------------

    /// Global barrier: drain pending eager writes, advance every node to
    /// the common completion time and charge barrier wait.
    pub fn barrier(&mut self) {
        // Release point: wait for outstanding write transactions.
        for n in 0..self.nprocs {
            let drain = self.pending_writes[n] * self.cfg.release_drain_ns;
            if drain > 0 {
                self.charge(n, drain, ChargeKind::Stall);
                self.pending_writes[n] = 0;
            }
        }
        let max = self.clock.iter().copied().max().unwrap_or(0);
        let done = max + self.cfg.barrier_cost_ns(self.nprocs);
        for n in 0..self.nprocs {
            let wait = done - self.clock[n];
            self.clock[n] = done;
            self.record(n, Event::BarrierWait { ns: wait });
            self.record(n, Event::Barrier);
        }
        self.makespan_ns = done;
    }

    /// All-reduce a per-node partial value with a combining tree; every
    /// node pays log₂(P) message rounds and the result is globally
    /// synchronizing (like a barrier).
    pub fn allreduce(&mut self, partials: &[f64], op: ReduceOp) -> f64 {
        assert_eq!(partials.len(), self.nprocs);
        let rounds = (usize::BITS - (self.nprocs - 1).leading_zeros()) as u64;
        let per_round =
            self.cfg.one_way_ns(8) + self.cfg.handler_cost(self.cfg.handler_dispatch_ns);
        for n in 0..self.nprocs {
            self.charge(n, rounds * per_round, ChargeKind::Stall);
            self.record(n, Event::Reduction);
            for _ in 0..rounds {
                self.record(n, Event::Msg { bytes: 8 });
            }
        }
        let max = self.clock.iter().copied().max().unwrap_or(0);
        for n in 0..self.nprocs {
            let wait = max - self.clock[n];
            self.clock[n] = max;
            self.record(n, Event::BarrierWait { ns: wait });
        }
        self.makespan_ns = max;
        match op {
            ReduceOp::Sum => partials.iter().sum(),
            ReduceOp::Max => partials.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            ReduceOp::Min => partials.iter().copied().fold(f64::INFINITY, f64::min),
        }
    }

    /// Snapshot a full report of the run so far, derived from the event
    /// trace (the trace's folded aggregates are the only statistics).
    pub fn report(&self) -> ClusterReport {
        self.trace.report(
            self.cfg.cpu == CpuMode::Single,
            self.makespan_ns
                .max(self.clock.iter().copied().max().unwrap_or(0)),
        )
    }
}

/// Reduction operators supported by the runtime.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReduceOp {
    Sum,
    Max,
    Min,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster(n: usize) -> Cluster {
        let cfg = CostModel::paper_dual_cpu();
        let mut layout = SegmentLayout::new(cfg.words_per_page());
        layout.alloc(2048);
        Cluster::new(n, cfg, &layout, HomePolicy::RoundRobin)
    }

    #[test]
    fn homes_round_robin_by_page() {
        let c = small_cluster(4);
        assert_eq!(c.home_of_word(0), 0);
        assert_eq!(c.home_of_word(512), 1);
        assert_eq!(c.home_of_word(1024), 2);
        assert_eq!(c.home_of_word(2047), 3);
    }

    #[test]
    fn home_starts_readwrite_others_invalid() {
        let c = small_cluster(4);
        let b = 0; // page 0, home node 0
        assert_eq!(c.tag(0, b), Access::ReadWrite);
        assert_eq!(c.tag(1, b), Access::Invalid);
    }

    #[test]
    fn copy_words_moves_data() {
        let mut c = small_cluster(2);
        c.node_mem_mut(0)[10] = 42.0;
        c.copy_words(0, 1, 8, 8);
        assert_eq!(c.node_mem(1)[10], 42.0);
        assert_eq!(c.node_mem(1)[7], 0.0);
    }

    #[test]
    fn merge_block_words_respects_mask() {
        let mut c = small_cluster(2);
        for w in 0..16 {
            c.node_mem_mut(0)[w] = w as f64 + 1.0;
        }
        c.merge_block_words(0, 1, 0, 0b101); // words 0 and 2 only
        assert_eq!(c.node_mem(1)[0], 1.0);
        assert_eq!(c.node_mem(1)[1], 0.0);
        assert_eq!(c.node_mem(1)[2], 3.0);
    }

    #[test]
    fn map_range_charges_once() {
        let mut c = small_cluster(2);
        // Node 1 touches page 0 (home is node 0): first touch maps.
        let n1 = c.map_range(1, 0, 512);
        assert_eq!(n1, 1);
        let n2 = c.map_range(1, 0, 512);
        assert_eq!(n2, 0);
        assert_eq!(c.stats(1).pages_mapped, 1);
        assert!(c.stats(1).stall_ns > 0);
        // Home already has its page mapped.
        assert_eq!(c.map_range(0, 0, 512), 0);
    }

    #[test]
    fn barrier_aligns_clocks() {
        let mut c = small_cluster(3);
        c.charge(0, 1000, ChargeKind::Compute);
        c.charge(1, 5000, ChargeKind::Compute);
        c.barrier();
        let done = c.clock_ns(0);
        assert_eq!(c.clock_ns(1), done);
        assert_eq!(c.clock_ns(2), done);
        assert!(done >= 5000 + c.cfg().barrier_cost_ns(3));
        // Slow node waited the least.
        assert!(c.stats(1).barrier_ns < c.stats(0).barrier_ns);
    }

    #[test]
    fn pending_writes_drain_at_barrier() {
        let mut c = small_cluster(2);
        c.note_pending_write(0);
        c.note_pending_write(0);
        c.barrier();
        assert_eq!(c.stats(0).stall_ns, 2 * c.cfg().release_drain_ns);
    }

    #[test]
    fn allreduce_sums_and_syncs() {
        let mut c = small_cluster(4);
        c.charge(2, 7777, ChargeKind::Compute);
        let v = c.allreduce(&[1.0, 2.0, 3.0, 4.0], ReduceOp::Sum);
        assert_eq!(v, 10.0);
        let t = c.clock_ns(0);
        assert!((0..4).all(|n| c.clock_ns(n) == t));
        assert_eq!(c.stats(0).reductions, 1);
    }

    #[test]
    fn handler_charging_depends_on_cpu_mode() {
        let mut c = small_cluster(2);
        let t0 = c.clock_ns(1);
        c.charge_handler(1, 1000);
        assert_eq!(
            c.clock_ns(1),
            t0,
            "dual-cpu: handler does not steal compute"
        );
        assert_eq!(c.stats(1).handler_ns, 1000);

        let cfg = CostModel::paper_single_cpu();
        let mut layout = SegmentLayout::new(cfg.words_per_page());
        layout.alloc(512);
        let mut c1 = Cluster::new(2, cfg, &layout, HomePolicy::RoundRobin);
        c1.charge_handler(1, 1000);
        assert_eq!(c1.clock_ns(1), 1800, "single-cpu: scaled and charged");
    }

    #[test]
    fn segment_layout_page_aligns() {
        let mut l = SegmentLayout::new(512);
        let a = l.alloc(100);
        let b = l.alloc(513);
        assert_eq!(a, 0);
        assert_eq!(b, 512);
        assert_eq!(l.total_words(), 512 + 1024);
    }
}
