//! Wall-clock telemetry: counters, gauges, and log2-bucketed latency
//! histograms with a deterministic export format.
//!
//! The simulator's canonical artifacts (report, trace, profile) are pure
//! functions of *virtual* time and must stay byte-identical run-over-run;
//! host nanoseconds may only ever appear in clearly wall-clock side
//! channels (`wall_ns`, `wire_route_ns`, host_perf). This module is that
//! side channel grown into a real instrument: per-`WireMsg`-class latency
//! histograms recorded on both sides of a socket, merged under node-tagged
//! keys, and exported as deterministic JSON (deterministic in *shape* —
//! key order, field order — while the recorded nanoseconds are of course
//! wall-clock measurements).
//!
//! Everything here is std-only and allocation-light: a [`Histogram`] is a
//! fixed 65-slot array (one slot per power-of-two bucket), a
//! [`MetricsRegistry`] is a `BTreeMap` so iteration and JSON export are
//! deterministic, and the whole registry round-trips through a compact
//! length-checked binary blob so `fgdsm-node` workers can ship their
//! metrics home inside the `ByeStats` control frame.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of histogram buckets: slot 0 holds exact zeros, slot `k`
/// (1..=64) holds values in `[2^(k-1), 2^k)` — slot 64 therefore
/// saturates at `u64::MAX`.
pub const HIST_BUCKETS: usize = 65;

/// Version tag of the registry's binary wire blob.
pub const METRICS_BLOB_VERSION: u16 = 1;

/// Caps for the paranoid blob decoder: a worker registry holds a few
/// dozen entries; anything bigger than this is a corrupt frame.
const MAX_BLOB_ENTRIES: usize = 4096;
const MAX_BLOB_NAME: usize = 256;

/// The five `WireMsg` payload classes by `kind()` byte, for metric-key
/// construction (`route.push`, `node2.apply.diff`, …).
pub fn class_name(kind: u8) -> &'static str {
    match kind {
        0 => "push",
        1 => "flush",
        2 => "copy",
        3 => "diff",
        4 => "strided",
        _ => "unknown",
    }
}

/// Is wall-clock telemetry requested via the environment?
/// `FGDSM_METRICS=1|true|on` enables it; anything else (or unset) leaves
/// it off.
pub fn env_enabled() -> bool {
    std::env::var("FGDSM_METRICS").is_ok_and(|v| v == "1" || v == "true" || v == "on")
}

/// A log2-bucketed latency histogram over `u64` nanoseconds.
///
/// Percentiles are reported as the *upper bound* of the smallest bucket
/// whose cumulative count reaches the rank `ceil(p × count)`. That
/// definition is deliberately conservative (never under-reports) and has
/// a property the cross-process merge relies on: the percentile of a
/// merged histogram always lies between the smallest and largest
/// per-part percentile (see the proptest in `tests/proptests.rs`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    /// Saturating sum — a pathological series of `u64::MAX` samples must
    /// not wrap the aggregate.
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            counts: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a value: 0 for 0, else 64 − leading_zeros, i.e.
    /// the bit width of the value.
    fn bucket(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive upper bound of a bucket (what percentiles report).
    fn bucket_upper(k: usize) -> u64 {
        if k >= 64 {
            u64::MAX
        } else {
            (1u64 << k) - 1
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 with no samples.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 with no samples.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `p`-th percentile (0.0 < p ≤ 1.0) as the upper bound of the
    /// smallest bucket whose cumulative count reaches `ceil(p × count)`.
    /// Returns 0 for an empty histogram. The bound is *not* clamped to
    /// `max()` — keeping it a pure function of bucket occupancy is what
    /// makes a merged histogram's percentile provably lie between the
    /// smallest and largest per-part percentile (clamping breaks that:
    /// a merge can land in a bucket between two parts' maxima).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (k, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::bucket_upper(k);
            }
        }
        Self::bucket_upper(HIST_BUCKETS - 1)
    }

    /// Append this histogram's JSON object (fixed field order; only
    /// non-empty buckets listed, as `[bucket_index, count]` pairs).
    fn write_json(&self, out: &mut String) {
        write!(
            out,
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
            self.count,
            self.sum,
            self.min(),
            self.max,
            self.percentile(0.50),
            self.percentile(0.90),
            self.percentile(0.99),
        )
        .unwrap();
        let mut first = true;
        for (k, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            write!(out, "[{k},{c}]").unwrap();
        }
        out.push_str("]}");
    }
}

/// One named metric.
#[derive(Clone, Debug, PartialEq)]
pub enum Metric {
    Counter(u64),
    Gauge(i64),
    /// Boxed: a histogram is a 65-slot array, far larger than the other
    /// variants, and registries hold mostly counters.
    Hist(Box<Histogram>),
}

impl Metric {
    /// The counter value, if this is a counter.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            Metric::Counter(c) => Some(*c),
            _ => None,
        }
    }

    /// The histogram, if this is one.
    pub fn as_hist(&self) -> Option<&Histogram> {
        match self {
            Metric::Hist(h) => Some(h),
            _ => None,
        }
    }

    fn new_hist() -> Metric {
        Metric::Hist(Box::default())
    }
}

/// A deterministic named-metric registry. Keys are dotted paths
/// (`route.push`, `frames.diff`, `node1.apply.copy`); iteration, JSON
/// export and the binary blob are all in key order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    map: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Add to a counter (created at 0 on first touch).
    pub fn counter_add(&mut self, name: &str, v: u64) {
        match self
            .map
            .entry(name.to_string())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(c) => *c += v,
            other => panic!("metric `{name}` is not a counter: {other:?}"),
        }
    }

    /// Set a gauge to its latest value.
    pub fn gauge_set(&mut self, name: &str, v: i64) {
        match self.map.entry(name.to_string()).or_insert(Metric::Gauge(0)) {
            Metric::Gauge(g) => *g = v,
            other => panic!("metric `{name}` is not a gauge: {other:?}"),
        }
    }

    /// Record one sample into a histogram (created empty on first touch).
    pub fn record_ns(&mut self, name: &str, ns: u64) {
        match self
            .map
            .entry(name.to_string())
            .or_insert_with(Metric::new_hist)
        {
            Metric::Hist(h) => h.record(ns),
            other => panic!("metric `{name}` is not a histogram: {other:?}"),
        }
    }

    /// A counter's value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        match self.map.get(name) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// A histogram by name.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        match self.map.get(name) {
            Some(Metric::Hist(h)) => Some(h),
            _ => None,
        }
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Sum of every counter whose key ends with `.{suffix}` or equals
    /// `suffix` — e.g. `sum_counters("payload_bytes.diff")` across all
    /// node prefixes.
    pub fn sum_counters_matching(&self, suffix: &str) -> u64 {
        let dotted = format!(".{suffix}");
        self.map
            .iter()
            .filter(|(k, _)| k.as_str() == suffix || k.ends_with(&dotted))
            .map(|(_, m)| match m {
                Metric::Counter(c) => *c,
                _ => 0,
            })
            .sum()
    }

    /// Fold `other` into this registry with every key prefixed by
    /// `{tag}.` — how the coordinator files each process's metric set
    /// under its own namespace (`coord.`, `node0.`, `node1.` …).
    /// Counters add, gauges take the incoming value, histograms merge.
    pub fn merge_tagged(&mut self, tag: &str, other: &MetricsRegistry) {
        for (k, m) in &other.map {
            let key = format!("{tag}.{k}");
            match (self.map.entry(key), m) {
                (e, Metric::Counter(v)) => match e.or_insert(Metric::Counter(0)) {
                    Metric::Counter(c) => *c += v,
                    other => panic!("merge type clash on counter: {other:?}"),
                },
                (e, Metric::Gauge(v)) => match e.or_insert(Metric::Gauge(0)) {
                    Metric::Gauge(g) => *g = *v,
                    other => panic!("merge type clash on gauge: {other:?}"),
                },
                (e, Metric::Hist(h)) => match e.or_insert_with(Metric::new_hist) {
                    Metric::Hist(mine) => mine.merge(h),
                    other => panic!("merge type clash on histogram: {other:?}"),
                },
            }
        }
    }

    /// Deterministic JSON export: one object keyed by metric name (in
    /// key order), each value a `{"type":…}` object with a fixed field
    /// order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (k, m) in &self.map {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            // Keys are ASCII dotted paths; escape conservatively anyway.
            out.push('"');
            for c in k.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c => out.push(c),
                }
            }
            out.push_str("\":");
            match m {
                Metric::Counter(v) => {
                    write!(out, "{{\"type\":\"counter\",\"value\":{v}}}").unwrap()
                }
                Metric::Gauge(v) => write!(out, "{{\"type\":\"gauge\",\"value\":{v}}}").unwrap(),
                Metric::Hist(h) => {
                    out.push_str("{\"type\":\"hist\",\"hist\":");
                    h.write_json(&mut out);
                    out.push('}');
                }
            }
        }
        out.push('}');
        out
    }

    /// Compact binary blob for shipping a registry inside a control
    /// frame. Layout (all little-endian):
    /// `version:u16, entries:u32, then per entry: name_len:u16, name,
    /// tag:u8, payload` — counter/gauge payloads are one u64/i64; a
    /// histogram is `count,sum,min,max : u64` plus `nonzero:u8` sparse
    /// `(bucket:u8, count:u64)` pairs.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&METRICS_BLOB_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.map.len() as u32).to_le_bytes());
        for (k, m) in &self.map {
            out.extend_from_slice(&(k.len() as u16).to_le_bytes());
            out.extend_from_slice(k.as_bytes());
            match m {
                Metric::Counter(v) => {
                    out.push(0);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                Metric::Gauge(v) => {
                    out.push(1);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                Metric::Hist(h) => {
                    out.push(2);
                    out.extend_from_slice(&h.count.to_le_bytes());
                    out.extend_from_slice(&h.sum.to_le_bytes());
                    out.extend_from_slice(&h.min.to_le_bytes());
                    out.extend_from_slice(&h.max.to_le_bytes());
                    let nonzero = h.counts.iter().filter(|&&c| c != 0).count() as u8;
                    out.push(nonzero);
                    for (i, &c) in h.counts.iter().enumerate() {
                        if c != 0 {
                            out.push(i as u8);
                            out.extend_from_slice(&c.to_le_bytes());
                        }
                    }
                }
            }
        }
        out
    }

    /// Paranoid decode of [`to_bytes`](Self::to_bytes): every length is
    /// checked, caps are enforced, trailing bytes are rejected.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, String> {
        let mut at = 0usize;
        let take = |at: &mut usize, n: usize| -> Result<&[u8], String> {
            let s = buf
                .get(*at..*at + n)
                .ok_or_else(|| format!("metrics blob truncated at offset {at}"))?;
            *at += n;
            Ok(s)
        };
        let u16le = |at: &mut usize| -> Result<u16, String> {
            Ok(u16::from_le_bytes(take(at, 2)?.try_into().unwrap()))
        };
        let u64le = |at: &mut usize| -> Result<u64, String> {
            Ok(u64::from_le_bytes(take(at, 8)?.try_into().unwrap()))
        };
        let version = u16le(&mut at)?;
        if version != METRICS_BLOB_VERSION {
            return Err(format!("metrics blob version {version} unsupported"));
        }
        let entries = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap()) as usize;
        if entries > MAX_BLOB_ENTRIES {
            return Err(format!("metrics blob claims {entries} entries"));
        }
        let mut map = BTreeMap::new();
        for _ in 0..entries {
            let name_len = u16le(&mut at)? as usize;
            if name_len > MAX_BLOB_NAME {
                return Err(format!("metric name of {name_len} bytes"));
            }
            let name = std::str::from_utf8(take(&mut at, name_len)?)
                .map_err(|_| "metric name is not utf-8".to_string())?
                .to_string();
            let tag = take(&mut at, 1)?[0];
            let metric = match tag {
                0 => Metric::Counter(u64le(&mut at)?),
                1 => Metric::Gauge(u64le(&mut at)? as i64),
                2 => {
                    let mut h = Histogram::new();
                    h.count = u64le(&mut at)?;
                    h.sum = u64le(&mut at)?;
                    h.min = u64le(&mut at)?;
                    h.max = u64le(&mut at)?;
                    let nonzero = take(&mut at, 1)?[0] as usize;
                    let mut total = 0u64;
                    for _ in 0..nonzero {
                        let k = take(&mut at, 1)?[0] as usize;
                        if k >= HIST_BUCKETS {
                            return Err(format!("histogram bucket {k} out of range"));
                        }
                        let c = u64le(&mut at)?;
                        h.counts[k] += c;
                        total += c;
                    }
                    if total != h.count {
                        return Err(format!(
                            "histogram bucket counts sum to {total}, header says {}",
                            h.count
                        ));
                    }
                    Metric::Hist(Box::new(h))
                }
                t => return Err(format!("unknown metric tag {t}")),
            };
            if map.insert(name.clone(), metric).is_some() {
                return Err(format!("duplicate metric `{name}`"));
            }
        }
        if at != buf.len() {
            return Err(format!("trailing bytes after metrics blob at {at}"));
        }
        Ok(MetricsRegistry { map })
    }
}

/// One wall-clock socket-batch span recorded by the coordinator's
/// transport: the route of one frame batch to worker `dst`, timed from
/// the telemetry epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireSpan {
    pub dst: u32,
    pub start_ns: u64,
    pub dur_ns: u64,
    pub frames: u32,
    pub bytes: u64,
}

/// Splice wall-clock socket-batch spans into a virtual-clock Chrome
/// trace: the base trace's events stay on `pid:0` ("coordinator —
/// virtual time"), each worker process gets its own pid track
/// (`pid = dst + 1`) carrying `ph:"X"` spans for its socket batches,
/// and `ph:"M"` `process_name` metadata labels every track. The result
/// is one JSON array loadable in Perfetto.
pub fn merge_chrome(base: &str, spans: &[WireSpan]) -> String {
    let trimmed = base.trim_end();
    let body = trimmed
        .strip_suffix(']')
        .unwrap_or(trimmed)
        .trim_end()
        .to_string();
    let mut out = body;
    let base_empty = out.trim_end().ends_with('[');
    let push_evt = |out: &mut String, first: &mut bool| {
        if !std::mem::take(first) || !base_empty {
            out.push(',');
        }
    };
    let mut first = base_empty;
    // Track labels: pid 0 is the coordinator's virtual-time tracks; each
    // worker process appears once, in dst order.
    push_evt(&mut out, &mut first);
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"ts\":0.000,\
         \"args\":{\"name\":\"coordinator (virtual time)\"}}",
    );
    let mut dsts: Vec<u32> = spans.iter().map(|s| s.dst).collect();
    dsts.sort_unstable();
    dsts.dedup();
    for d in &dsts {
        push_evt(&mut out, &mut first);
        write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"ts\":0.000,\
             \"args\":{{\"name\":\"worker node {d} (wall clock)\"}}}}",
            d + 1
        )
        .unwrap();
    }
    for s in spans {
        push_evt(&mut out, &mut first);
        write!(
            out,
            "{{\"name\":\"socket_batch\",\"ph\":\"X\",\"pid\":{},\"tid\":0,\
             \"ts\":{}.{:03},\"dur\":{}.{:03},\
             \"args\":{{\"frames\":{},\"bytes\":{}}}}}",
            s.dst + 1,
            s.start_ns / 1000,
            s.start_ns % 1000,
            s.dur_ns / 1000,
            s.dur_ns % 1000,
            s.frames,
            s.bytes
        )
        .unwrap();
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.percentile(0.99), 0);
    }

    #[test]
    fn single_sample_pins_every_percentile() {
        let mut h = Histogram::new();
        h.record(1234);
        assert_eq!(h.count(), 1);
        assert_eq!((h.min(), h.max()), (1234, 1234));
        // 1234 has 11 bits → bucket 11, upper bound 2047; every
        // percentile of a single sample reports that bound.
        assert_eq!(h.percentile(0.5), 2047);
        assert_eq!(h.percentile(0.99), 2047);
    }

    #[test]
    fn zero_valued_samples_land_in_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!((h.min(), h.max()), (0, 0));
        assert_eq!(h.percentile(0.99), 0);
    }

    #[test]
    fn max_sample_saturates_top_bucket_and_sum() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(h.percentile(0.99), u64::MAX);
        // The top bucket holds everything from 2^63 up; its upper bound
        // saturates at u64::MAX.
        let mut g = Histogram::new();
        g.record(1u64 << 63);
        assert_eq!(g.percentile(0.5), u64::MAX);
    }

    #[test]
    fn percentiles_walk_buckets_in_order() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(100); // bucket 7, upper bound 127
        }
        for _ in 0..10 {
            h.record(10_000); // bucket 14, upper bound 16383
        }
        assert_eq!(h.percentile(0.5), 127);
        assert_eq!(h.percentile(0.90), 127);
        // 10_000 has 14 bits → bucket 14, upper bound 16383.
        assert_eq!(h.percentile(0.99), 16_383);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        a.record(7);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!((a.min(), a.max()), (5, 1_000_000));
        assert_eq!(a.sum(), 1_000_012);
    }

    #[test]
    fn registry_merge_tagged_prefixes_and_folds() {
        let mut coord = MetricsRegistry::new();
        coord.counter_add("frames.push", 3);
        coord.record_ns("route.push", 500);
        let mut w = MetricsRegistry::new();
        w.counter_add("frames.push", 3);
        w.record_ns("apply.push", 900);
        w.gauge_set("mirror_words", 128);
        let mut merged = MetricsRegistry::new();
        merged.merge_tagged("coord", &coord);
        merged.merge_tagged("node0", &w);
        merged.merge_tagged("node0", &w); // folding twice adds counters
        assert_eq!(merged.counter("coord.frames.push"), 3);
        assert_eq!(merged.counter("node0.frames.push"), 6);
        assert_eq!(merged.hist("node0.apply.push").unwrap().count(), 2);
        assert_eq!(merged.hist("coord.route.push").unwrap().count(), 1);
        assert_eq!(
            merged.sum_counters_matching("frames.push"),
            9,
            "suffix sum spans all process tags"
        );
    }

    #[test]
    fn json_export_is_deterministic_and_parseable_shape() {
        let mut r = MetricsRegistry::new();
        r.record_ns("route.diff", 42);
        r.counter_add("frames.diff", 1);
        let j1 = r.to_json();
        let j2 = r.clone().to_json();
        assert_eq!(j1, j2);
        // BTreeMap ordering: counters key sorts before route key.
        let fpos = j1.find("frames.diff").unwrap();
        let rpos = j1.find("route.diff").unwrap();
        assert!(fpos < rpos, "keys must export in sorted order: {j1}");
        assert!(j1.contains("\"type\":\"counter\",\"value\":1"));
        // 42 has 6 bits → bucket 6, upper bound 63.
        assert!(j1.contains("\"p50\":63"));
    }

    #[test]
    fn blob_round_trips_and_rejects_corruption() {
        let mut r = MetricsRegistry::new();
        r.counter_add("frames.copy", 7);
        r.gauge_set("inflight", -3);
        for v in [0, 1, 17, 100_000, u64::MAX] {
            r.record_ns("recv.copy", v);
        }
        let blob = r.to_bytes();
        let back = MetricsRegistry::from_bytes(&blob).unwrap();
        assert_eq!(back, r);
        // Truncation at every prefix length must error, never panic.
        for cut in 0..blob.len() {
            assert!(MetricsRegistry::from_bytes(&blob[..cut]).is_err());
        }
        // Trailing garbage is rejected.
        let mut long = blob.clone();
        long.push(0);
        assert!(MetricsRegistry::from_bytes(&long).is_err());
        // A wrong version is rejected.
        let mut bad = blob.clone();
        bad[0] ^= 0xff;
        assert!(MetricsRegistry::from_bytes(&bad).is_err());
        // The empty registry round-trips too.
        let empty = MetricsRegistry::new();
        assert_eq!(
            MetricsRegistry::from_bytes(&empty.to_bytes()).unwrap(),
            empty
        );
    }

    #[test]
    fn class_names_cover_every_wire_kind() {
        assert_eq!(class_name(0), "push");
        assert_eq!(class_name(1), "flush");
        assert_eq!(class_name(2), "copy");
        assert_eq!(class_name(3), "diff");
        assert_eq!(class_name(4), "strided");
        assert_eq!(class_name(99), "unknown");
    }

    #[test]
    fn merge_chrome_splices_pid_tracks() {
        let base = r#"[{"name":"compute","ph":"X","pid":0,"tid":1,"ts":0.000,"dur":5.000}]"#;
        let spans = [
            WireSpan {
                dst: 0,
                start_ns: 1500,
                dur_ns: 2750,
                frames: 3,
                bytes: 96,
            },
            WireSpan {
                dst: 2,
                start_ns: 4000,
                dur_ns: 1000,
                frames: 1,
                bytes: 32,
            },
        ];
        let merged = merge_chrome(base, &spans);
        assert!(merged.starts_with('[') && merged.ends_with(']'));
        assert!(merged.contains("\"ph\":\"M\""));
        assert!(merged.contains("coordinator (virtual time)"));
        assert!(merged.contains("worker node 0 (wall clock)"));
        assert!(merged.contains("worker node 2 (wall clock)"));
        assert!(merged.contains("\"pid\":1,\"tid\":0,\"ts\":1.500,\"dur\":2.750"));
        assert!(merged.contains("\"args\":{\"frames\":3,\"bytes\":96}"));
        // An empty base trace still yields a valid array.
        let merged_empty = merge_chrome("[]", &spans);
        assert!(merged_empty.starts_with("[{"));
        assert!(merged_empty.ends_with(']'));
        assert!(
            !merged_empty.contains("[,"),
            "no leading comma: {merged_empty}"
        );
    }
}
