//! Per-node shards: the disjoint state one node owns, plus the shared
//! immutable cluster geometry.
//!
//! A [`NodeShard`] holds everything that belongs to exactly one node —
//! its full-size copy of the global segment, its page map, its per-block
//! access tags, its virtual clock, its outstanding eager-write count and
//! its event trace ring. Nothing in a shard references another shard, so
//! the executor's compute phase can hand each kernel a `&mut NodeShard`
//! and run the kernels on real threads ([`std::thread::scope`]) with zero
//! cross-node access. All cross-node work (block copies, diffs) goes
//! through the [`Cluster`](crate::cluster::Cluster) coordinator during
//! the resolve phase, which borrows shard *pairs* disjointly — either
//! one at a time, or concurrently for node-disjoint pairs via
//! [`Cluster::apply_pairwise`](crate::cluster::Cluster::apply_pairwise).
//!
//! Shards share one immutable [`Geometry`] (via `Arc`): segment shape,
//! block/page sizes, the home map and the cost model. Sharing it keeps a
//! shard self-contained — it can map pages and charge costs without
//! asking the coordinator — while guaranteeing no shard can observe
//! another's mutable state.

use crate::cluster::{Access, ChargeKind, NodeId};
use crate::costs::{CostModel, CpuMode};
use crate::stats::NodeStats;
use crate::trace::{Event, NodeTrace};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Immutable cluster-wide shape shared by every shard: sizes, the
/// page-home map and the cost model. Never mutated after construction.
#[derive(Debug)]
pub struct Geometry {
    pub(crate) nprocs: usize,
    pub(crate) cfg: CostModel,
    pub(crate) seg_words: usize,
    pub(crate) words_per_block: usize,
    pub(crate) words_per_page: usize,
    pub(crate) n_blocks: usize,
    pub(crate) n_pages: usize,
    pub(crate) home: Vec<NodeId>, // per page
}

impl Geometry {
    /// Block containing word offset `w`.
    pub fn block_of(&self, w: usize) -> usize {
        w / self.words_per_block
    }

    /// Word range `[start, end)` of block `b`.
    pub fn block_words(&self, b: usize) -> (usize, usize) {
        let s = b * self.words_per_block;
        (s, (s + self.words_per_block).min(self.seg_words))
    }

    /// Home node of block `b` (the home of its page).
    pub fn home_of_block(&self, b: usize) -> NodeId {
        self.home[b * self.words_per_block / self.words_per_page]
    }

    /// Home node of the page containing word `w`.
    pub fn home_of_word(&self, w: usize) -> NodeId {
        self.home[w / self.words_per_page]
    }
}

/// The write-hot scalar state of one shard, padded to its own cache
/// line: the virtual clock is bumped by every charge and the pending
/// eager-write count by every non-owner write. With several shards'
/// kernels running on distinct host threads, keeping each shard's hot
/// counters on a private line (instead of straddling the boundary to a
/// neighboring shard in the `Vec<NodeShard>`) is what stops the
/// compute phase from ping-ponging a shared line between cores — the
/// same false-sharing hazard the PR-5 detector flags in simulated apps,
/// fixed here in the simulator's own layout.
#[derive(Debug, Default)]
#[repr(align(64))]
struct HotState {
    clock_ns: u64,
    pending_writes: u64, // outstanding eager-write transactions
}

/// All mutable state owned by one node. See the module docs for the
/// ownership story; the short version is that two shards never alias,
/// so `&mut NodeShard` is safe to move to a worker thread.
///
/// Layout: the struct is cache-line aligned (via the embedded
/// [`HotState`], which carries `#[repr(align(64))]`), so adjacent
/// shards in the cluster's `Vec<NodeShard>` never share a line. The
/// write-hot scalars lead the struct on their own line; the read-mostly
/// geometry handle and the buffer headers follow. See
/// [`crate::cluster::Cluster::layout_report`] for the self-check.
#[derive(Debug)]
pub struct NodeShard {
    /// Write-hot scalars on their own leading cache line.
    hot: HotState,
    id: NodeId,
    /// Read-mostly: shared immutable cluster geometry.
    geom: Arc<Geometry>,
    mem: Vec<f64>,
    mapped: Vec<u64>, // page bitset
    tags: Vec<Access>,
    /// Blocks whose tag currently differs from the initial assignment
    /// (home → ReadWrite, everyone else → Invalid). Resolve-phase scans
    /// iterate this instead of every block in the segment, so their cost
    /// follows traffic, not segment size.
    dirty: BTreeSet<usize>,
    trace: NodeTrace,
}

impl NodeShard {
    pub(crate) fn new(id: NodeId, geom: Arc<Geometry>) -> Self {
        let mut sh = NodeShard {
            hot: HotState::default(),
            id,
            mem: vec![0.0; geom.seg_words],
            mapped: vec![0u64; geom.n_pages.div_ceil(64)],
            tags: vec![Access::Invalid; geom.n_blocks],
            dirty: BTreeSet::new(),
            trace: NodeTrace::new(),
            geom,
        };
        // The home node of each page starts with a mapped page and
        // ReadWrite tags for its blocks: homes always hold the initial
        // (zero-initialized) data. These are the *default* tags, so they
        // do not enter the dirty set.
        let g = Arc::clone(&sh.geom);
        for page in 0..g.n_pages {
            if g.home[page] != id {
                continue;
            }
            sh.mapped[page / 64] |= 1 << (page % 64);
            let first_block = page * g.words_per_page / g.words_per_block;
            let end_block =
                (((page + 1) * g.words_per_page).min(g.seg_words)).div_ceil(g.words_per_block);
            for b in first_block..end_block.min(g.n_blocks) {
                // Blocks never span pages (both are powers of two and
                // block ≤ page), so home-of-page is home-of-block.
                sh.tags[b] = Access::ReadWrite;
            }
        }
        sh
    }

    /// This shard's node index.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The cluster-wide cost model (shared immutable geometry). Plan-apply
    /// closures run against shard pairs with no coordinator in scope, so
    /// shards expose the geometry they already carry.
    pub fn cfg(&self) -> &CostModel {
        &self.geom.cfg
    }

    /// Word range `[start, end)` of block `b`.
    pub fn block_words(&self, b: usize) -> (usize, usize) {
        self.geom.block_words(b)
    }

    /// Block containing word offset `w`.
    pub fn block_of(&self, w: usize) -> usize {
        self.geom.block_of(w)
    }

    /// Home node of block `b`.
    pub fn home_of_block(&self, b: usize) -> NodeId {
        self.geom.home_of_block(b)
    }

    // ------------------------------------------------------------------
    // Access tags
    // ------------------------------------------------------------------

    /// The tag a block holds in a freshly constructed cluster: homes own
    /// their blocks writable, everyone else holds nothing.
    fn default_tag(&self, b: usize) -> Access {
        if self.geom.home_of_block(b) == self.id {
            Access::ReadWrite
        } else {
            Access::Invalid
        }
    }

    /// Current tag of block `b`.
    pub fn tag(&self, b: usize) -> Access {
        self.tags[b]
    }

    /// Set the tag of block `b` (no cost charged; protocols charge
    /// `tag_change_ns` themselves where appropriate). Maintains the
    /// dirty-block set: a block is dirty while its tag differs from the
    /// initial assignment.
    pub fn set_tag(&mut self, b: usize, a: Access) {
        self.tags[b] = a;
        if a == self.default_tag(b) {
            self.dirty.remove(&b);
        } else {
            self.dirty.insert(b);
        }
    }

    /// Blocks whose tag currently differs from the initial assignment.
    pub fn dirty_blocks(&self) -> &BTreeSet<usize> {
        &self.dirty
    }

    // ------------------------------------------------------------------
    // Memory
    // ------------------------------------------------------------------

    /// Immutable view of this node's segment copy.
    pub fn mem(&self) -> &[f64] {
        &self.mem
    }

    /// Mutable view of this node's segment copy.
    pub fn mem_mut(&mut self) -> &mut [f64] {
        &mut self.mem
    }

    /// Ensure all pages covering `[start, start+len)` words are mapped,
    /// charging the first-touch mapping cost as stall time. Returns the
    /// number of pages newly mapped.
    pub fn map_range(&mut self, start: usize, len: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        let wpp = self.geom.words_per_page;
        let first = start / wpp;
        let last = (start + len - 1) / wpp;
        let mut newly = 0u64;
        for page in first..=last.min(self.geom.n_pages - 1) {
            let (w, bit) = (page / 64, page % 64);
            if self.mapped[w] & (1 << bit) == 0 {
                self.mapped[w] |= 1 << bit;
                newly += 1;
            }
        }
        if newly > 0 {
            self.record(Event::PageMap { pages: newly });
            self.charge(newly * self.geom.cfg.page_map_ns, ChargeKind::Stall);
        }
        newly
    }

    /// True if this node has mapped the page containing word `w`.
    pub fn is_mapped(&self, w: usize) -> bool {
        let page = w / self.geom.words_per_page;
        self.mapped[page / 64] & (1 << (page % 64)) != 0
    }

    // ------------------------------------------------------------------
    // Virtual time and events
    // ------------------------------------------------------------------

    /// Current virtual clock in ns.
    pub fn clock_ns(&self) -> u64 {
        self.hot.clock_ns
    }

    /// Cache-line index of this shard's write-hot state — used by
    /// [`crate::cluster::Cluster::layout_report`] to prove adjacent
    /// shards never share a hot line.
    pub fn hot_line(&self) -> usize {
        (&self.hot as *const HotState as usize) / crate::scratch::CACHE_LINE_BYTES
    }

    /// Record a typed trace event, stamped with the current virtual
    /// clock. All statistics flow through here: the trace folds events
    /// into aggregates online, so the event log and the report can never
    /// disagree.
    pub fn record(&mut self, event: Event) {
        self.trace.record(self.hot.clock_ns, event);
    }

    /// Charge `ns` to the clock under the given accounting category.
    pub fn charge(&mut self, ns: u64, kind: ChargeKind) {
        self.hot.clock_ns += ns;
        self.record(Event::Charge { kind, ns });
    }

    /// Charge protocol-handler occupancy executed at this node on behalf
    /// of a remote request. In dual-cpu mode the dedicated protocol
    /// processor absorbs it (tracked but not added to the compute clock);
    /// in single-cpu mode it steals time from the compute CPU.
    pub fn charge_handler(&mut self, ns: u64) {
        let scaled = self.geom.cfg.handler_cost(ns);
        if self.geom.cfg.cpu == CpuMode::Single {
            self.hot.clock_ns += scaled;
        }
        self.record(Event::Handler { ns: scaled });
    }

    /// Record a message of `payload_bytes` sent from this node (stats
    /// only; time is charged by the caller per the transaction shape).
    /// The bytes stay unattributed in the block heatmap; call sites that
    /// know which block the transfer services use
    /// [`NodeShard::note_msg_at`].
    pub fn note_msg(&mut self, payload_bytes: usize) {
        self.record(Event::Msg {
            bytes: payload_bytes as u64,
            block: crate::trace::NO_BLOCK,
        });
    }

    /// Record a message of `payload_bytes` sent from this node servicing
    /// cache block `block`, attributing the bytes to that block in the
    /// sender's heatmap.
    pub fn note_msg_at(&mut self, payload_bytes: usize, block: usize) {
        self.record(Event::Msg {
            bytes: payload_bytes as u64,
            block: block as u32,
        });
    }

    /// Record a message of `payload_bytes` arriving at this node, the
    /// receiver-side twin of [`NodeShard::note_msg`]. Keeping both sides
    /// recorded lets the executors assert that cluster-wide send and
    /// receive counters balance at the end of every run.
    pub fn note_msg_recv(&mut self, payload_bytes: usize) {
        self.record(Event::MsgRecv {
            bytes: payload_bytes as u64,
        });
    }

    /// Record an outstanding eager-write transaction (release
    /// consistency: the node does not stall for the ownership grant, but
    /// must drain at the next release point).
    pub fn note_pending_write(&mut self) {
        self.hot.pending_writes += 1;
    }

    /// Release point: stall for each outstanding eager-write transaction,
    /// then clear them.
    pub(crate) fn drain_pending_writes(&mut self) {
        let drain = self.hot.pending_writes * self.geom.cfg.release_drain_ns;
        if drain > 0 {
            self.charge(drain, ChargeKind::Stall);
            self.hot.pending_writes = 0;
        }
    }

    /// Advance the clock to the common completion time `to`, recording
    /// the wait (and a barrier crossing when `barrier` is set).
    pub(crate) fn align_clock(&mut self, to: u64, barrier: bool) {
        let wait = to - self.hot.clock_ns;
        self.hot.clock_ns = to;
        self.record(Event::BarrierWait { ns: wait });
        if barrier {
            self.record(Event::Barrier);
        }
    }

    /// Folded aggregates (exact, even after the trace ring wraps).
    pub fn stats(&self) -> &NodeStats {
        self.trace.stats()
    }

    /// This node's event trace.
    pub fn trace(&self) -> &NodeTrace {
        &self.trace
    }

    pub(crate) fn trace_mut(&mut self) -> &mut NodeTrace {
        &mut self.trace
    }
}
