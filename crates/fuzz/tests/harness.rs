//! Fault-injection contract tests: tolerated perturbations must keep
//! every backend bit-identical to the reference; must-catch protocol
//! mutations must make the oracle report a divergence; and a diverging
//! case must shrink to a smaller spec that still diverges.

use fgdsm_fuzz::{
    case_seed, check_spec, check_spec_tcp, gen_spec, shrink, ArraySpec, Detector, FStmt, Fault,
    FuzzSpec, LoopSpec, ReadSpec,
};
use fgdsm_hpf::InjectConfig;
use fgdsm_testkit::Rng;

const TOLERATED_SEEDS: u64 = 25;

/// Tolerated perturbations — randomized resolve order, a cleared
/// `implicit_writable` memo, and boundary blocks forced onto the default
/// path — must not change any result on any backend.
#[test]
fn tolerated_perturbations_are_invisible() {
    for case in 0..TOLERATED_SEEDS {
        let seed = case_seed(0xA110_CAFE, case);
        let mut rng = Rng::new(seed);
        let mut spec = gen_spec(&mut rng, seed);
        spec.inject = InjectConfig {
            shuffle_resolve: Some(seed.rotate_left(17)),
            clear_iw_memo: true,
            force_boundary: true,
            skew_send_range: false,
            skip_flush_range: false,
            stale_owner_push: false,
            reorder_plan_apply: false,
            misfold_pool: false,
            corrupt_envelope: false,
            corrupt_frame_len: false,
            undercount_metrics: false,
            tcp_node_fault: None,
        };
        if let Err(d) = check_spec(&spec) {
            panic!("tolerated perturbation diverged at seed {seed:#x}: {d}");
        }
    }
}

/// A 2-D block-distributed write array plus a 1-D array read by every
/// node at `b(i)`: the shared read section spans whole cache blocks, so
/// the optimized backend ships it with `send_range` — which the
/// injection skews by one element at each end.
fn skew_victim() -> FuzzSpec {
    FuzzSpec {
        seed: 0,
        nprocs: 2,
        n1: 96,
        n2: [40, 8],
        arrays: vec![
            ArraySpec {
                rank2: true,
                cyclic: false,
                index_for: None,
            },
            ArraySpec {
                rank2: false,
                cyclic: false,
                index_for: None,
            },
        ],
        body: vec![FStmt::Loop(LoopSpec {
            write: 0,
            dist_by: None,
            self_read: false,
            reads: vec![ReadSpec {
                array: 1,
                off: [0, 0],
                via: None,
            }],
            reduce: None,
            use_t: false,
            use_acc: false,
        })],
        time: None,
        inject: InjectConfig {
            skew_send_range: true,
            ..InjectConfig::default()
        },
    }
}

#[test]
fn must_catch_skewed_send_range() {
    let spec = skew_victim();
    let d = check_spec(&spec).expect_err("off-by-one send_range must be detected");
    assert!(
        d.config.starts_with("sm_opt"),
        "skew only exists on the ctl path, diverged at {d}"
    );
}

/// Three nodes all read the same 1-D range, so each owner pushes to two
/// readers — at least two conflicting `TransferPlan`s per owner. The
/// injection reverses the plan order whenever the resolve phase runs
/// with more than one worker, so payload arrival times (and therefore
/// the readers' `ready_to_recv` stalls) differ between the serial
/// baseline and the threaded runs: a nondeterministic merge the oracle's
/// report/trace comparison must detect. Data stays bitwise correct (the
/// copies are disjoint), so only the determinism check can catch this.
fn reorder_victim() -> FuzzSpec {
    FuzzSpec {
        nprocs: 3,
        // 12 distributed columns over 3 nodes: every node owns columns
        // inside the loop bounds [2, 9], so every node reads the shared
        // 1-D array and each owner pushes to two readers.
        n2: [40, 12],
        inject: InjectConfig {
            reorder_plan_apply: true,
            ..InjectConfig::default()
        },
        ..skew_victim()
    }
}

#[test]
fn must_catch_reordered_plan_apply() {
    let spec = reorder_victim();
    let d = check_spec(&spec).expect_err("reordered plan apply must be detected");
    assert!(
        d.config.starts_with("sm_opt"),
        "plans only exist on the ctl path, diverged at {d}"
    );
    assert!(
        d.config.ends_with("threads2") || d.config.ends_with("threads4"),
        "the serial baseline is unaffected; divergence must be in a threaded run, got {d}"
    );
    assert!(
        d.detail.contains("diverges from serial run"),
        "must be caught by the determinism comparison, not the reference: {d}"
    );
}

/// Same sharing pattern as [`reorder_victim`] — at least two conflicting
/// `TransferPlan`s per owner — but the injection rotates the parallel
/// apply stage's outcome vector out of plan-index order before the fold:
/// the merge mistake a worker-pool integration could make. Serial runs
/// fold a single outcome stream and are unaffected, so only the
/// threaded-vs-serial determinism comparison can catch it.
fn misfold_victim() -> FuzzSpec {
    FuzzSpec {
        inject: InjectConfig {
            misfold_pool: true,
            ..InjectConfig::default()
        },
        ..reorder_victim()
    }
}

#[test]
fn must_catch_misfolded_pool_results() {
    let spec = misfold_victim();
    let d = check_spec(&spec).expect_err("out-of-order pool fold must be detected");
    assert!(
        d.config.starts_with("sm_opt"),
        "plans only exist on the ctl path, diverged at {d}"
    );
    assert!(
        !d.config.ends_with("serial"),
        "the serial baseline is unaffected; divergence must be in a threaded run, got {d}"
    );
    assert!(
        d.detail.contains("diverges from serial run"),
        "must be caught by the determinism comparison, not the reference: {d}"
    );
}

/// The same traffic-heavy program as [`skew_victim`], but with a byte
/// flipped inside the first envelope routed in strict wire mode: decode
/// validation must reject the frame and fail the run loudly. The
/// fast-path configs never see an envelope, so the divergence must land
/// on a `wire-strict` config or the `chan` backend — proving the
/// injection (and thus the validation) lives on the wire seam itself.
#[test]
fn must_catch_corrupt_envelope() {
    let mut spec = skew_victim();
    spec.inject = InjectConfig {
        corrupt_envelope: true,
        ..InjectConfig::default()
    };
    let d = check_spec(&spec).expect_err("corrupt envelope must be detected");
    assert!(
        d.config.contains("wire-strict") || d.config.starts_with("chan"),
        "only envelope paths can observe the corruption, diverged at {d}"
    );
    assert!(
        d.detail.contains("panic"),
        "a corrupt frame must fail the run loudly, not diverge quietly: {d}"
    );
    assert!(
        d.detail.contains("envelope decode failed"),
        "failure must come from wire decode validation: {d}"
    );
}

/// The same traffic-heavy program as [`skew_victim`], but the `tcp`
/// coordinator overwrites the length prefix of the first data frame it
/// sends with an oversized value: the node's framing layer must reject
/// it against the frame cap *before allocating*, reply with a decode
/// error, and fail the run loudly. Skipped (with a notice) when the
/// sandbox forbids sockets.
#[test]
fn must_catch_corrupt_frame_len() {
    if !fgdsm_hpf::tcp_available() {
        eprintln!("notice: sandbox forbids sockets; skipping must_catch_corrupt_frame_len");
        return;
    }
    let mut spec = skew_victim();
    spec.inject = InjectConfig {
        corrupt_frame_len: true,
        ..InjectConfig::default()
    };
    let d = check_spec_tcp(&spec).expect_err("corrupt frame length must be detected");
    assert!(
        d.config.starts_with("tcp"),
        "only the socket path frames messages, diverged at {d}"
    );
    assert!(
        d.detail.contains("panic"),
        "a corrupt frame must fail the run loudly, not diverge quietly: {d}"
    );
    assert!(
        d.detail.contains("exceeds cap"),
        "failure must come from the framing cap: {d}"
    );
}

/// The same traffic-heavy program as [`skew_victim`], but the
/// coordinator's telemetry skips the per-class `payload_bytes.*` counter
/// for the first staged envelope. Data, scalars, and every canonical
/// artifact stay bitwise correct — the books behind `wire_payload_bytes`
/// are untouched — so only the oracle's metrics-conservation invariant
/// can catch it, and only on a config that routes envelopes.
#[test]
fn must_catch_undercounted_metrics() {
    let mut spec = skew_victim();
    spec.inject = InjectConfig {
        undercount_metrics: true,
        ..InjectConfig::default()
    };
    let d = check_spec(&spec).expect_err("undercounted telemetry must be detected");
    assert!(
        d.config.contains("wire-strict") || d.config.starts_with("chan"),
        "only envelope paths record wire telemetry, diverged at {d}"
    );
    assert!(
        d.detail.contains("metrics conservation violated"),
        "must be caught by the conservation invariant, not a data compare: {d}"
    );
}

/// A block-distributed 2-D array written under a *cyclic* partition
/// (`dist_by`): every superstep performs non-owner writes that the
/// optimized backend must flush home with `flush_range` — which the
/// injection skips entirely.
fn flush_victim() -> FuzzSpec {
    FuzzSpec {
        seed: 0,
        nprocs: 2,
        n1: 42,
        n2: [40, 8],
        arrays: vec![
            ArraySpec {
                rank2: true,
                cyclic: false,
                index_for: None,
            },
            ArraySpec {
                rank2: true,
                cyclic: true,
                index_for: None,
            },
        ],
        body: vec![FStmt::Loop(LoopSpec {
            write: 0,
            dist_by: Some(1),
            self_read: false,
            reads: vec![],
            reduce: None,
            use_t: false,
            use_acc: false,
        })],
        time: None,
        inject: InjectConfig {
            skip_flush_range: true,
            ..InjectConfig::default()
        },
    }
}

#[test]
fn must_catch_skipped_flush_range() {
    let spec = flush_victim();
    let d = check_spec(&spec).expect_err("skipped flush_range must be detected");
    assert!(
        d.config.starts_with("sm_opt"),
        "flush_range only exists on the ctl path, diverged at {d}"
    );
}

/// The taxonomy sweep: every engine-detectable fault in the shared
/// [`Fault`] taxonomy, armed through [`Fault::arm`] on its canonical
/// victim program, must make the oracle report a divergence. Faults the
/// taxonomy routes to the model checker (whose symptom needs states the
/// engine's layouts never reach) are must-catch over in `fgdsm-model`'s
/// mutation sweep instead — this test pins that nothing falls through.
#[test]
fn must_catch_every_engine_fault_in_taxonomy() {
    for f in Fault::ALL {
        match f.detected_by() {
            Detector::Engine | Detector::Both => {
                let mut spec = match f {
                    Fault::SkewSendRange
                    | Fault::CorruptEnvelope
                    | Fault::CorruptFrameLen
                    | Fault::UndercountMetrics => skew_victim(),
                    Fault::SkipFlushRange => flush_victim(),
                    Fault::ReorderPlanApply | Fault::MisfoldPool => reorder_victim(),
                    Fault::StaleOwnerPush => unreachable!("model-level fault"),
                };
                spec.inject = Default::default();
                f.arm(&mut spec.inject);
                if f == Fault::CorruptFrameLen {
                    // Transport-level: only the socket path frames
                    // messages, so this fault is must-catch through the
                    // tcp oracle (skipped when the sandbox forbids
                    // sockets — `must_catch_corrupt_frame_len` carries
                    // the full assertions).
                    if fgdsm_hpf::tcp_available() {
                        check_spec_tcp(&spec)
                            .expect_err(&format!("taxonomy fault {} must be caught", f.name()));
                    } else {
                        eprintln!(
                            "notice: sandbox forbids sockets; corrupt_frame_len covered by \
                             must_catch_corrupt_frame_len when they are available"
                        );
                    }
                    continue;
                }
                check_spec(&spec)
                    .expect_err(&format!("taxonomy fault {} must be caught", f.name()));
            }
            Detector::Model => {
                // Covered by fgdsm-model's must-catch mutation sweep.
                assert_eq!(f, Fault::StaleOwnerPush);
            }
        }
    }
}

/// Pad a diverging spec with junk (an unused array, an extra harmless
/// loop, a time wrap) and check the shrinker strips it back down while
/// preserving the divergence, then renders a reproducer.
#[test]
fn shrinker_minimizes_divergent_cases() {
    let mut spec = skew_victim();
    spec.arrays.push(ArraySpec {
        rank2: false,
        cyclic: true,
        index_for: None,
    });
    spec.body.push(FStmt::Loop(LoopSpec {
        write: 2,
        dist_by: None,
        self_read: true,
        reads: vec![ReadSpec {
            array: 1,
            off: [1, 0],
            via: None,
        }],
        reduce: Some(0),
        use_t: true,
        use_acc: true,
    }));
    spec.body.push(FStmt::Scalar(0));
    spec.time = Some((0, 3, 2));
    assert!(
        check_spec(&spec).is_err(),
        "padded victim must still diverge"
    );

    let small = shrink(&spec);
    let d = check_spec(&small).expect_err("shrunk spec must still diverge");
    assert!(
        small.body.len() < spec.body.len(),
        "shrinker failed to drop the junk statements"
    );
    assert!(
        small.arrays.len() < spec.arrays.len(),
        "shrinker failed to drop the unused array"
    );
    assert!(
        small.time.is_none(),
        "shrinker failed to unwrap the time loop"
    );

    let repro = small.to_rust();
    assert!(
        repro.contains("#[test]"),
        "reproducer must be a runnable test"
    );
    assert!(
        repro.contains("check_spec(&spec).unwrap()"),
        "missing oracle call:\n{repro}"
    );
    assert!(
        repro.contains("skew_send_range: true"),
        "missing injection knob:\n{repro}"
    );
    println!("shrunk divergence: {d}\n{repro}");
}
