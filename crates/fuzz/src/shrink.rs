//! Greedy divergence-preserving minimizer for [`FuzzSpec`]s.
//!
//! Starting from a diverging spec, repeatedly tries simplifying edits
//! (drop a statement, drop a read, turn off a loop feature, remove an
//! unreferenced array, shrink extents / time counts / node counts) and
//! keeps any edit after which [`check_spec`] still reports a
//! divergence. Terminates when no candidate edit preserves the failure.

use crate::gen::{FStmt, FuzzSpec};
use crate::oracle::check_spec;

/// Every single-step simplification of `spec`, roughly in decreasing
/// order of payoff.
fn candidates(spec: &FuzzSpec) -> Vec<FuzzSpec> {
    let mut out = Vec::new();

    // Drop one body statement (last first), fixing up the time span.
    for i in (0..spec.body.len()).rev() {
        if spec.body.len() == 1 {
            break;
        }
        let mut s = spec.clone();
        s.body.remove(i);
        if let Some((lo, hi, count)) = s.time {
            s.time = if i < lo {
                Some((lo - 1, hi - 1, count))
            } else if i < hi && hi - 1 > lo {
                Some((lo, hi - 1, count))
            } else if i < hi {
                None
            } else {
                Some((lo, hi, count))
            };
        }
        out.push(s);
    }

    // Unwrap or shorten the time loop.
    if let Some((_, _, count)) = spec.time {
        let mut s = spec.clone();
        s.time = None;
        out.push(s);
        if count > 1 {
            let mut s = spec.clone();
            if let Some(t) = &mut s.time {
                t.2 = count - 1;
            }
            out.push(s);
        }
    }

    // Per-loop feature removal.
    for (i, st) in spec.body.iter().enumerate() {
        let FStmt::Loop(l) = st else { continue };
        for r in (0..l.reads.len()).rev() {
            let mut s = spec.clone();
            if let FStmt::Loop(sl) = &mut s.body[i] {
                sl.reads.remove(r);
            }
            out.push(s);
        }
        for (on, strip) in [
            (l.self_read, 0),
            (l.reduce.is_some(), 1),
            (l.use_acc, 2),
            (l.use_t, 3),
            (l.dist_by.is_some(), 4),
        ] {
            if !on {
                continue;
            }
            let mut s = spec.clone();
            if let FStmt::Loop(sl) = &mut s.body[i] {
                match strip {
                    0 => sl.self_read = false,
                    1 => sl.reduce = None,
                    2 => sl.use_acc = false,
                    3 => sl.use_t = false,
                    _ => sl.dist_by = None,
                }
            }
            out.push(s);
        }
    }

    // Drop scalar statements covered by the generic statement drop above
    // when body.len() == 1; nothing extra needed.

    // Remove unreferenced arrays (highest index first so earlier ids
    // stay stable within one edit), remapping every array index.
    for a in (0..spec.arrays.len()).rev() {
        let referenced = spec.arrays.iter().any(|ar| ar.index_for == Some(a))
            || spec.body.iter().any(|st| match st {
                FStmt::Loop(l) => {
                    l.write == a
                        || l.dist_by == Some(a)
                        || l.reads.iter().any(|r| r.array == a || r.via == Some(a))
                }
                FStmt::Scalar(_) => false,
            });
        if referenced {
            continue;
        }
        let mut s = spec.clone();
        s.arrays.remove(a);
        let remap = |x: usize| if x > a { x - 1 } else { x };
        for ar in &mut s.arrays {
            ar.index_for = ar.index_for.map(remap);
        }
        for st in &mut s.body {
            if let FStmt::Loop(l) = st {
                l.write = remap(l.write);
                l.dist_by = l.dist_by.map(remap);
                for r in &mut l.reads {
                    r.array = remap(r.array);
                    r.via = r.via.map(remap);
                }
            }
        }
        out.push(s);
    }

    // Fewer nodes, smaller extents.
    if spec.nprocs > 2 {
        let mut s = spec.clone();
        s.nprocs -= 1;
        out.push(s);
    }
    let min_n1 = (spec.n2[0] + 2).max(8);
    if spec.n1 / 2 >= min_n1 {
        let mut s = spec.clone();
        s.n1 /= 2;
        out.push(s);
    } else if spec.n1 > min_n1 {
        let mut s = spec.clone();
        s.n1 = min_n1;
        out.push(s);
    }
    for d in 0..2 {
        if spec.n2[d] > 6 && spec.n2[d] - 2 <= spec.n1.saturating_sub(2) {
            let mut s = spec.clone();
            s.n2[d] -= 2;
            out.push(s);
        }
    }

    out
}

/// Greedily minimize `spec`, which must currently diverge; returns the
/// smallest spec found that still diverges.
pub fn shrink(spec: &FuzzSpec) -> FuzzSpec {
    let mut cur = spec.clone();
    'outer: loop {
        for cand in candidates(&cur) {
            if check_spec(&cand).is_err() {
                cur = cand;
                continue 'outer;
            }
        }
        return cur;
    }
}
