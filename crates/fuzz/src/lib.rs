//! # fgdsm-fuzz: the correctness harness
//!
//! Differential testing for the whole executor stack. Three pieces:
//!
//! * [`gen`] — a seeded generator of random mini-HPF programs: BLOCK /
//!   CYCLIC last-dimension distributions, INDEPENDENT loops with random
//!   affine stencils and optional indirect (`x(idx(i))`) gathers,
//!   reductions, scalar statements and multi-statement time loops. The
//!   generator's output is a [`FuzzSpec`] — a small, plain-data model of
//!   the program — so a failing case can be shrunk and replayed exactly.
//! * [`oracle`] — runs the spec's program through the sequential
//!   reference interpreter and every backend (`sm_unopt`, `sm_opt` at
//!   every [`fgdsm_hpf::OptLevel`] toggle combination, `mp`), each in
//!   both serial and threaded compute mode, and asserts byte-identical
//!   final array contents and scalars. Protocol consistency and trace
//!   invariants (balanced message/byte counters, monotone per-node
//!   clocks) are asserted inside the engine on every run.
//! * [`shrink`] — on divergence, a greedy minimizer that drops
//!   statements, reads and arrays and shrinks extents / time counts /
//!   node counts while the divergence persists, then renders a
//!   standalone Rust reproducer ([`FuzzSpec::to_rust`]).
//!
//! Fault injection rides on [`fgdsm_hpf::InjectConfig`]: *tolerated*
//! perturbations (randomized resolve order, cleared `implicit_writable`
//! memo, boundary blocks forced onto the default path) must produce
//! identical results; *must-catch* protocol mutations (off-by-one
//! `send_range`, skipped `flush_range`; behind the `fault-inject`
//! feature this crate always enables) must make the oracle report a
//! divergence.

pub mod gen;
pub mod oracle;
pub mod shrink;
pub mod taxonomy;

pub use gen::{gen_spec, ArraySpec, FStmt, FuzzSpec, LoopSpec, ReadSpec};
pub use oracle::{check_spec, check_spec_tcp, Divergence};
pub use shrink::shrink;
pub use taxonomy::{Detector, Fault};

/// Golden stride between corpus seeds (the SplitMix64 increment, so
/// corpus seeds match `fgdsm_testkit::check_cases` numbering).
pub const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derive the seed of corpus case `case` from a base seed.
pub fn case_seed(base: u64, case: u64) -> u64 {
    base ^ case.wrapping_mul(SEED_STRIDE)
}

/// Check one corpus case end to end: generate from `seed`, run the
/// oracle, and on divergence shrink and panic with the failing seed and
/// a standalone reproducer in the message.
pub fn check_case(seed: u64) {
    let mut rng = fgdsm_testkit::Rng::new(seed);
    let spec = gen_spec(&mut rng, seed);
    if let Err(d) = check_spec(&spec) {
        let small = shrink(&spec);
        let small_d = check_spec(&small).expect_err("shrunk spec must still diverge");
        panic!(
            "fuzz divergence at seed {seed:#x}\n\
             original: {d}\n\
             shrunk:   {small_d}\n\
             reproducer:\n{}",
            small.to_rust()
        );
    }
}

/// Replay one corpus case over the socket-backed `tcp` path: generate
/// from `seed` and run [`check_spec_tcp`] (serial tcp vs the reference
/// bitwise, and vs `sm_opt[full]`'s serial artifacts byte for byte).
/// No shrink pass — the in-process matrix already shrinks this seed if
/// the divergence is not socket-specific, and spawning process fleets
/// per shrink candidate would dominate the suite. Callers gate on
/// [`fgdsm_hpf::tcp_available`].
pub fn check_case_tcp(seed: u64) {
    let mut rng = fgdsm_testkit::Rng::new(seed);
    let spec = gen_spec(&mut rng, seed);
    if let Err(d) = check_spec_tcp(&spec) {
        panic!(
            "tcp fuzz divergence at seed {seed:#x}: {d}\n\
             reproducer spec:\n{}",
            spec.to_rust()
        );
    }
}
