//! The cross-backend differential oracle.
//!
//! One fuzz case is checked by running its program through the
//! sequential reference interpreter and then through every backend ×
//! optimization-toggle × parallelism combination, comparing final array
//! contents and scalars **bitwise** against the reference. Within each
//! backend the fully serial run is additionally the determinism
//! baseline: every threaded run — which now parallelizes both the
//! resolve phase's plan-apply stage and the compute phase — must
//! reproduce its report JSON and canonical trace JSON byte-for-byte.
//! The engine itself asserts the protocol consistency check and the
//! trace invariants (balanced message/byte counters, monotone per-node
//! clocks) after every run, so a violated invariant surfaces here as a
//! panic — which the oracle converts into a [`Divergence`] like any
//! wrong answer.

use crate::gen::FuzzSpec;
use fgdsm_hpf::{execute_profiled, execute_reference, ArrayId, ExecConfig, OptLevel};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One detected disagreement between a backend run and the reference.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Which run diverged, e.g. `sm_opt[ctl+bulk+rtoe]/threads`.
    pub config: String,
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.config, self.detail)
    }
}

fn opt_label(o: &OptLevel) -> String {
    if !o.ctl {
        return "ctl-off".into();
    }
    let mut s = String::from("ctl");
    if o.bulk {
        s.push_str("+bulk");
    }
    if o.rtoe {
        s.push_str("+rtoe");
    }
    if o.pre {
        s.push_str("+pre");
    }
    s
}

/// The `sm_opt` config label at the full optimization level — the
/// config the `chan` backend is pinned byte-identical to.
fn sm_opt_full_label() -> String {
    format!("sm_opt[{}]", opt_label(&OptLevel::full()))
}

/// The backend matrix for a spec: `sm_unopt`, `sm_opt` at every
/// [`OptLevel`] toggle combination, and `mp` — unless the spec performs
/// non-owner writes, which the owner-computes `mp` backend does not
/// model (it never flushes written data back to the distribution owner).
/// After the fast-path configs, the same corners re-run in strict wire
/// mode (every transfer round-trips through encoded [`fgdsm_hpf`] wire
/// envelopes over a loopback transport), and the `chan` backend closes
/// the matrix: channel workers carrying owned bytes, whose serial run
/// must additionally be byte-identical to `sm_opt[full]`'s.
pub fn backend_configs(spec: &FuzzSpec) -> Vec<(String, ExecConfig)> {
    let n = spec.nprocs;
    let mut v = vec![("sm_unopt".to_string(), ExecConfig::sm_unopt(n))];
    for o in OptLevel::all_combos() {
        v.push((
            format!("sm_opt[{}]", opt_label(&o)),
            ExecConfig::sm_unopt(n).with_opt(o),
        ));
    }
    if !spec.has_nonowner_writes() {
        v.push(("mp".to_string(), ExecConfig::mp(n)));
    }
    v.push((
        "sm_unopt/wire-strict".to_string(),
        ExecConfig::sm_unopt(n).strict(),
    ));
    v.push((
        format!("{}/wire-strict", sm_opt_full_label()),
        ExecConfig::sm_unopt(n).with_opt(OptLevel::full()).strict(),
    ));
    if !spec.has_nonowner_writes() {
        v.push(("mp/wire-strict".to_string(), ExecConfig::mp(n).strict()));
    }
    v.push(("chan".to_string(), ExecConfig::chan(n)));
    v
}

fn panic_msg(p: &Box<dyn std::any::Any + Send>) -> String {
    p.downcast_ref::<String>()
        .cloned()
        .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
        .or_else(|| {
            // Transport failures unwind with a typed payload (see
            // `fgdsm_protocol::WireError`); render it so a divergence
            // report names the peer and failure kind.
            p.downcast_ref::<fgdsm_protocol::WireError>()
                .map(|e| e.to_string())
        })
        .unwrap_or_else(|| "non-string panic".into())
}

/// First byte position where two strings differ, with a short excerpt of
/// each side for the divergence report.
fn first_diff(a: &str, b: &str) -> String {
    let at = a
        .bytes()
        .zip(b.bytes())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.len().min(b.len()));
    let snip = |s: &str| {
        let lo = at.saturating_sub(20);
        let hi = (at + 20).min(s.len());
        s.get(lo..hi).unwrap_or("<end>").to_string()
    };
    format!("first diff at byte {at}: `{}` vs `{}`", snip(a), snip(b))
}

/// Run the full differential matrix for one spec. `Ok(())` means every
/// run agreed with the reference bit-for-bit, every threaded run (both
/// phases parallel: resolve apply with 2 and 4 workers, compute likewise)
/// reproduced the serial run's report and trace byte-for-byte, and no
/// run panicked.
pub fn check_spec(spec: &FuzzSpec) -> Result<(), Divergence> {
    let prog = spec.build();
    let reference = execute_reference(&prog, &ExecConfig::sm_unopt(spec.nprocs));
    // `chan` is `sm_opt[full]` behind a channel transport, so beyond
    // agreeing with the reference it must reproduce that config's serial
    // artifacts byte for byte — the cross-backend pin that proves the
    // wire seam changes nothing observable.
    let mut smopt_full_serial: Option<(String, String, String)> = None;
    for (name, cfg) in backend_configs(spec) {
        // (report JSON, trace JSON, profile JSON) of the serial run — the
        // determinism baseline for this backend's threaded runs. The
        // threaded modes force the persistent worker pool on (size 2 and
        // 4); `scoped2` runs the same 2-worker schedule through the
        // per-phase `thread::scope` fallback, so both worker strategies
        // are fuzzed against the serial baseline bit-for-bit.
        let mut baseline: Option<(String, String, String)> = None;
        for (mode, workers) in [
            ("serial", 1usize),
            ("threads2", 2),
            ("threads4", 4),
            ("scoped2", 2),
        ] {
            // Telemetry is forced on: canonical artifacts are pinned
            // byte-identical metrics on/off elsewhere, so metering every
            // oracle run costs nothing observable — and it lets the
            // per-case conservation invariant below (and its
            // `undercount_metrics` must-catch) fire on every wire config.
            let cfg = match (mode, workers) {
                (_, 1) => cfg.clone().serial(),
                ("scoped2", w) => cfg.clone().threads(w).scoped(),
                (_, w) => cfg.clone().threads(w).pooled(),
            }
            .metered()
            .with_inject(spec.inject);
            let label = format!("{name}/{mode}");
            let (r, trace, _chrome) =
                match catch_unwind(AssertUnwindSafe(|| execute_profiled(&prog, &cfg))) {
                    Err(p) => {
                        return Err(Divergence {
                            config: label,
                            detail: format!("panic: {}", panic_msg(&p)),
                        })
                    }
                    Ok(rt) => rt,
                };
            // Post-run profile invariants: per-superstep interval stats
            // sum exactly to the whole-run `NodeStats`, and heatmap
            // totals match the miss / pushed / bytes counters. The engine
            // asserts these too; checking here keeps a violation
            // attributable to the fuzz case even if that assert moves.
            if let Err(e) = r.report.check_profile_invariants() {
                return Err(Divergence {
                    config: label,
                    detail: format!("profile invariant violated: {e}"),
                });
            }
            // Telemetry double-entry: on a metered wire run, the
            // per-class `payload_bytes.*` counters across the coordinator
            // and worker registries must sum exactly to the wire's own
            // payload total. The only detector for a silently
            // undercounting telemetry path.
            if let Err(e) = r.check_metrics_conservation() {
                return Err(Divergence {
                    config: label,
                    detail: format!("metrics conservation violated: {e}"),
                });
            }
            for ai in 0..prog.arrays.len() {
                let want = reference.array(&prog, ArrayId(ai));
                let got = r.array(&prog, ArrayId(ai));
                if let Some(at) = (0..want.len()).find(|&k| want[k].to_bits() != got[k].to_bits()) {
                    return Err(Divergence {
                        config: label,
                        detail: format!(
                            "array `{}` diverges at flat index {at}: reference {} vs {}",
                            prog.arrays[ai].name, want[at], got[at]
                        ),
                    });
                }
            }
            for (k, want) in &reference.scalars {
                let got = r.scalars.get(k).copied();
                if got.map(f64::to_bits) != Some(want.to_bits()) {
                    return Err(Divergence {
                        config: label,
                        detail: format!("scalar `{k}` diverges: reference {want} vs {got:?}"),
                    });
                }
            }
            let report = r.report.to_json();
            let profile = r.report.profile_json();
            match &baseline {
                None => baseline = Some((report, trace, profile)),
                Some((srep, strace, sprof)) => {
                    if *srep != report {
                        return Err(Divergence {
                            config: label,
                            detail: format!(
                                "report diverges from serial run ({})",
                                first_diff(srep, &report)
                            ),
                        });
                    }
                    if *strace != trace {
                        return Err(Divergence {
                            config: label,
                            detail: format!(
                                "trace diverges from serial run ({})",
                                first_diff(strace, &trace)
                            ),
                        });
                    }
                    if *sprof != profile {
                        return Err(Divergence {
                            config: label,
                            detail: format!(
                                "profile artifacts diverge from serial run ({})",
                                first_diff(sprof, &profile)
                            ),
                        });
                    }
                }
            }
        }
        let serial = baseline.expect("serial mode always runs");
        if name == sm_opt_full_label() {
            smopt_full_serial = Some(serial);
        } else if name == "chan" {
            let want = smopt_full_serial
                .as_ref()
                .expect("sm_opt[full] runs before chan in the matrix");
            for (what, w, g) in [
                ("report", &want.0, &serial.0),
                ("trace", &want.1, &serial.1),
                ("profile artifacts", &want.2, &serial.2),
            ] {
                if w != g {
                    return Err(Divergence {
                        config: "chan/serial".into(),
                        detail: format!(
                            "{what} diverges from sm_opt[full]/serial ({})",
                            first_diff(w, g)
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Differential check of the socket-backed `tcp` backend for one spec:
/// a serial tcp run — every inter-node transfer framed over a real
/// socket to spawned `fgdsm-node` worker processes — must agree with
/// the sequential reference bitwise AND reproduce `sm_opt[full]`'s
/// serial report, trace and profile artifacts byte for byte, exactly as
/// `chan` does inside [`check_spec`].
///
/// Kept out of [`backend_configs`]: one tcp run spawns a whole process
/// fleet, so the corpus replays a separately sized slice through this
/// oracle (`FGDSM_FUZZ_TCP_CASES`). Callers must gate on
/// [`fgdsm_hpf::tcp_available`] — sandboxes may forbid sockets.
pub fn check_spec_tcp(spec: &FuzzSpec) -> Result<(), Divergence> {
    let prog = spec.build();
    let reference = execute_reference(&prog, &ExecConfig::sm_unopt(spec.nprocs));
    let smopt_cfg = ExecConfig::sm_unopt(spec.nprocs)
        .with_opt(OptLevel::full())
        .serial()
        .with_inject(spec.inject);
    let (want, want_trace, _) =
        match catch_unwind(AssertUnwindSafe(|| execute_profiled(&prog, &smopt_cfg))) {
            Err(p) => {
                return Err(Divergence {
                    config: format!("{}/serial", sm_opt_full_label()),
                    detail: format!("panic: {}", panic_msg(&p)),
                })
            }
            Ok(rt) => rt,
        };
    let tcp_cfg = ExecConfig::tcp(spec.nprocs)
        .serial()
        .metered()
        .with_inject(spec.inject);
    let (r, trace, _) = match catch_unwind(AssertUnwindSafe(|| execute_profiled(&prog, &tcp_cfg))) {
        Err(p) => {
            return Err(Divergence {
                config: "tcp/serial".into(),
                detail: format!("panic: {}", panic_msg(&p)),
            })
        }
        Ok(rt) => rt,
    };
    for ai in 0..prog.arrays.len() {
        let wanted = reference.array(&prog, ArrayId(ai));
        let got = r.array(&prog, ArrayId(ai));
        if let Some(at) = (0..wanted.len()).find(|&k| wanted[k].to_bits() != got[k].to_bits()) {
            return Err(Divergence {
                config: "tcp/serial".into(),
                detail: format!(
                    "array `{}` diverges at flat index {at}: reference {} vs {}",
                    prog.arrays[ai].name, wanted[at], got[at]
                ),
            });
        }
    }
    for (k, wanted) in &reference.scalars {
        let got = r.scalars.get(k).copied();
        if got.map(f64::to_bits) != Some(wanted.to_bits()) {
            return Err(Divergence {
                config: "tcp/serial".into(),
                detail: format!("scalar `{k}` diverges: reference {wanted} vs {got:?}"),
            });
        }
    }
    // Same telemetry double-entry as `check_spec`, now spanning the
    // socket: worker registries shipped home in `ByeStats` must conserve
    // the payload accounting together with the coordinator's.
    if let Err(e) = r.check_metrics_conservation() {
        return Err(Divergence {
            config: "tcp/serial".into(),
            detail: format!("metrics conservation violated: {e}"),
        });
    }
    for (what, w, g) in [
        ("report", want.report.to_json(), r.report.to_json()),
        ("trace", want_trace, trace),
        (
            "profile artifacts",
            want.report.profile_json(),
            r.report.profile_json(),
        ),
    ] {
        if w != g {
            return Err(Divergence {
                config: "tcp/serial".into(),
                detail: format!(
                    "{what} diverges from {}/serial ({})",
                    sm_opt_full_label(),
                    first_diff(&w, &g)
                ),
            });
        }
    }
    Ok(())
}
