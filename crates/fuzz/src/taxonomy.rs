//! The shared must-catch fault taxonomy: one enum naming every seeded
//! protocol/contract mutation, used by both the differential fuzzer's
//! must-catch suite (engine-level detection through [`crate::check_spec`])
//! and the `fgdsm-model` checker's mutation sweep (model-level detection
//! with a minimal counterexample trace).
//!
//! Keeping the taxonomy in one place guarantees the two harnesses agree
//! on *what* faults exist; [`Fault::detected_by`] records *where* each
//! one is provably caught. A fault whose symptom the engine's layouts
//! never produce (e.g. [`Fault::StaleOwnerPush`], which needs a
//! third-party home) is still must-catch — at the model level.

use fgdsm_hpf::InjectConfig;

/// Where a seeded fault is provably detected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Detector {
    /// The engine-level differential oracle ([`crate::check_spec`])
    /// reports a divergence or a loud failure.
    Engine,
    /// The `fgdsm-model` bounded checker finds an invariant-violating
    /// interleaving and prints a minimal counterexample trace.
    Model,
    /// Both harnesses catch it independently.
    Both,
}

/// Every seeded must-catch mutation of the §4.2 contract / coherence
/// protocol, across both harnesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Off-by-one `send_range` bound: one block fewer than promised.
    SkewSendRange,
    /// `flush_range` skipped entirely: non-owner writes never go home.
    SkipFlushRange,
    /// Plans applied in reverse order under a parallel resolve.
    ReorderPlanApply,
    /// Parallel-apply outcomes folded out of plan-index order.
    MisfoldPool,
    /// A byte flipped in the first strict-mode wire envelope.
    CorruptEnvelope,
    /// The length prefix of the first framed data message on the `tcp`
    /// backend overwritten with an oversized value — the node's framing
    /// cap must reject it before allocating.
    CorruptFrameLen,
    /// `send_range` pushes the home's (possibly stale) copy instead of
    /// the recorded exclusive owner's — the §4.3 stale-memo hazard.
    StaleOwnerPush,
    /// The coordinator's per-class `payload_bytes.*` telemetry counter
    /// skipped for the first staged envelope. Run results and every
    /// canonical artifact stay bitwise correct — only the oracle's
    /// metrics-conservation invariant (Σ payload counters across the
    /// coordinator and worker registries == the wire's payload total)
    /// can catch it.
    UndercountMetrics,
}

impl Fault {
    /// Every fault, in declaration order.
    pub const ALL: [Fault; 8] = [
        Fault::SkewSendRange,
        Fault::SkipFlushRange,
        Fault::ReorderPlanApply,
        Fault::MisfoldPool,
        Fault::CorruptEnvelope,
        Fault::CorruptFrameLen,
        Fault::StaleOwnerPush,
        Fault::UndercountMetrics,
    ];

    /// Stable display name (matches the `InjectConfig` field).
    pub fn name(self) -> &'static str {
        match self {
            Fault::SkewSendRange => "skew_send_range",
            Fault::SkipFlushRange => "skip_flush_range",
            Fault::ReorderPlanApply => "reorder_plan_apply",
            Fault::MisfoldPool => "misfold_pool",
            Fault::CorruptEnvelope => "corrupt_envelope",
            Fault::CorruptFrameLen => "corrupt_frame_len",
            Fault::StaleOwnerPush => "stale_owner_push",
            Fault::UndercountMetrics => "undercount_metrics",
        }
    }

    /// Arm this fault's injection knob on an engine config.
    pub fn arm(self, inject: &mut InjectConfig) {
        match self {
            Fault::SkewSendRange => inject.skew_send_range = true,
            Fault::SkipFlushRange => inject.skip_flush_range = true,
            Fault::ReorderPlanApply => inject.reorder_plan_apply = true,
            Fault::MisfoldPool => inject.misfold_pool = true,
            Fault::CorruptEnvelope => inject.corrupt_envelope = true,
            Fault::CorruptFrameLen => inject.corrupt_frame_len = true,
            Fault::StaleOwnerPush => inject.stale_owner_push = true,
            Fault::UndercountMetrics => inject.undercount_metrics = true,
        }
    }

    /// Where the fault is provably caught. Threading/wire faults only
    /// exist below the model's level of abstraction, so the model sweep
    /// covers the data-movement mutations and the engine suite covers
    /// the rest.
    pub fn detected_by(self) -> Detector {
        match self {
            Fault::SkewSendRange | Fault::SkipFlushRange => Detector::Both,
            // `UndercountMetrics` never changes data movement, so the
            // model has nothing to observe; the engine oracle's
            // metrics-conservation invariant is its only detector.
            Fault::ReorderPlanApply
            | Fault::MisfoldPool
            | Fault::CorruptEnvelope
            | Fault::CorruptFrameLen
            | Fault::UndercountMetrics => Detector::Engine,
            // Engine layouts keep owner == home for pushed ranges, so the
            // symptom needs the model's 3-node third-party-home states.
            Fault::StaleOwnerPush => Detector::Model,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each fault arms exactly its own knob, and every knob is owned by
    /// exactly one fault.
    #[test]
    fn arms_are_disjoint_and_complete() {
        let mut armed = Vec::new();
        for f in Fault::ALL {
            let mut i = InjectConfig::default();
            f.arm(&mut i);
            assert_ne!(i, InjectConfig::default(), "{} armed nothing", f.name());
            armed.push(i);
        }
        for (a, fa) in armed.iter().zip(Fault::ALL) {
            for (b, fb) in armed.iter().zip(Fault::ALL) {
                if fa != fb {
                    assert_ne!(a, b, "{} and {} arm the same knob", fa.name(), fb.name());
                }
            }
        }
    }

    /// Every engine-detectable fault has a must-catch test in
    /// `tests/harness.rs`; every model-detectable fault has one in
    /// `fgdsm-model`'s mutation sweep. This test just pins the split so
    /// a new fault can't silently land undetected anywhere.
    #[test]
    fn every_fault_is_detected_somewhere() {
        for f in Fault::ALL {
            let d = f.detected_by();
            assert!(
                matches!(d, Detector::Engine | Detector::Model | Detector::Both),
                "{} has no detector",
                f.name()
            );
        }
    }
}
