//! The seeded mini-HPF program generator and its plain-data model.
//!
//! A [`FuzzSpec`] is the *entire* description of a fuzz case: the
//! program structure (arrays, loops, reads, reductions, time nesting)
//! plus the fault-injection knobs. Programs are rebuilt from the spec on
//! demand ([`FuzzSpec::build`]), which is what makes shrinking and
//! replay exact: the shrinker mutates the spec, never the program, and
//! [`FuzzSpec::to_rust`] renders the spec as a standalone reproducer.
//!
//! ## The language subset and its safety rules
//!
//! Generated programs stay inside the fragment where the sequential
//! reference interpreter and the BSP backends provably agree:
//!
//! * every loop writes exactly one array, at the identity subscript, so
//!   each element has a unique writer;
//! * a loop reads the array it writes only at the identity subscript
//!   (`self_read`) — cross-element reads of the written array would make
//!   results depend on node execution order;
//! * stencil reads (offsets up to ±2) target arrays *not* written by the
//!   same loop, and iteration bounds leave a 2-element margin;
//! * indirect gathers `x(idx(i))` read 1-D arrays not written in the
//!   loop, through an index array aligned with the loop partition (so
//!   the engine's inspector reads owner-local, current index values);
//! * a loop may be partitioned by a *different* array (`dist_by`) —
//!   when the two distributions disagree this produces genuine
//!   non-owner writes, the paper's `flush_range` path.

use fgdsm_hpf::{
    ARef, ArrayId, CompDist, Dist, InjectConfig, Kernel, KernelCtx, ParLoop, Program, ReduceSpec,
    Stmt, Subscript,
};
use fgdsm_section::{SymRange, Var};
use fgdsm_tempest::ReduceOp;
use fgdsm_testkit::Rng;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The sequential time-loop variable every generated program uses.
pub const TVAR: Var = Var("t");

/// Static name pools (IR names are `&'static str`).
const ANAMES: [&str; 8] = ["a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7"];
const INAMES: [&str; 8] = [
    "init0", "init1", "init2", "init3", "init4", "init5", "init6", "init7",
];
const LNAMES: [&str; 12] = [
    "l0", "l1", "l2", "l3", "l4", "l5", "l6", "l7", "l8", "l9", "l10", "l11",
];

/// One distributed array of the generated program. All 1-D arrays share
/// the extent [`FuzzSpec::n1`]; all 2-D arrays share [`FuzzSpec::n2`]
/// (last dimension distributed, BLOCK or CYCLIC).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArraySpec {
    pub rank2: bool,
    pub cyclic: bool,
    /// `Some(target)`: this is a 1-D index array whose init loop fills it
    /// with valid element indices of `target` (for `x(idx(i))` gathers).
    pub index_for: Option<usize>,
}

/// One read reference of a compute loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadSpec {
    /// Array read (never the loop's write array).
    pub array: usize,
    /// Per-dimension constant offsets (`off[1]` unused for 1-D reads).
    pub off: [i64; 2],
    /// `Some(idx)`: indirect gather `array(idx(i))` through index array
    /// `idx` instead of an affine subscript (1-D loops only).
    pub via: Option<usize>,
}

/// One INDEPENDENT compute loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopSpec {
    /// Array written (identity subscript).
    pub write: usize,
    /// `Some(x)`: partition iterations by `x`'s owners instead of the
    /// written array's (an identity read of `x` is added). When `x`'s
    /// distribution differs from the written array's this produces
    /// non-owner writes.
    pub dist_by: Option<usize>,
    /// Also read the written array at the identity subscript.
    pub self_read: bool,
    pub reads: Vec<ReadSpec>,
    /// Reduce every written value into the scalar `acc`:
    /// 0 = Sum, 1 = Max, 2 = Min.
    pub reduce: Option<u8>,
    /// Mix the time-loop variable into written values (loops inside the
    /// time span only).
    pub use_t: bool,
    /// Mix the current value of the scalar `acc` into written values.
    pub use_acc: bool,
}

/// One statement of the generated body (the per-array init loops are
/// implicit and always precede the body).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FStmt {
    Loop(LoopSpec),
    /// Replicated scalar statement on `acc`: 0 ⇒ `acc*0.5 + 1`,
    /// 1 ⇒ `1 - acc`.
    Scalar(u8),
}

/// A complete fuzz case: program model plus injection knobs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzSpec {
    /// Seed this spec was generated from (reporting only).
    pub seed: u64,
    pub nprocs: usize,
    /// Extent of every 1-D array (≥ `n2[0] + 2` so 1-D reads inside 2-D
    /// loops stay in bounds).
    pub n1: usize,
    /// Extents of every 2-D array.
    pub n2: [usize; 2],
    pub arrays: Vec<ArraySpec>,
    pub body: Vec<FStmt>,
    /// `Some((lo, hi, count))`: wrap `body[lo..hi]` in a sequential time
    /// loop of `count` steps.
    pub time: Option<(usize, usize, i64)>,
    pub inject: InjectConfig,
}

fn sc_damp(s: &BTreeMap<&'static str, f64>) -> f64 {
    s["acc"] * 0.5 + 1.0
}

fn sc_flip(s: &BTreeMap<&'static str, f64>) -> f64 {
    1.0 - s["acc"]
}

impl FuzzSpec {
    fn ext(&self, a: usize) -> Vec<usize> {
        if self.arrays[a].rank2 {
            vec![self.n2[0], self.n2[1]]
        } else {
            vec![self.n1]
        }
    }

    fn dist(&self, a: usize) -> Dist {
        if self.arrays[a].cyclic {
            Dist::Cyclic
        } else {
            Dist::Block
        }
    }

    /// True if any loop's partition array is distributed differently
    /// from its written array — such loops perform non-owner writes,
    /// which the (owner-computes, flush-free) `mp` backend does not
    /// support; the oracle excludes it for these specs.
    pub fn has_nonowner_writes(&self) -> bool {
        self.body.iter().any(|s| match s {
            FStmt::Loop(l) => l
                .dist_by
                .is_some_and(|x| self.arrays[x].cyclic != self.arrays[l.write].cyclic),
            FStmt::Scalar(_) => false,
        })
    }

    /// Build the runnable program: per-array init loops, then the body
    /// (with the optional time-loop wrap).
    pub fn build(&self) -> Program {
        let mut b = Program::builder();
        #[allow(clippy::needless_range_loop)] // ai is an ArrayId, not a slice index
        for ai in 0..self.arrays.len() {
            let id = b.array(ANAMES[ai], &self.ext(ai), self.dist(ai));
            assert_eq!(id.0, ai);
        }
        b.scalar("acc", 1.0);
        // Init loops: owners fill their own partition with a value that
        // depends on the element position and the array ordinal (index
        // arrays get valid indices of their 1-D gather target instead).
        for (ai, a) in self.arrays.iter().cloned().enumerate() {
            let iter: Vec<SymRange> = self
                .ext(ai)
                .iter()
                .map(|&e| SymRange::new(0, e as i64 - 1))
                .collect();
            let rank2 = a.rank2;
            let n1 = self.n1 as i64;
            let subs: Vec<Subscript> = (0..iter.len()).map(Subscript::loop_var).collect();
            let kernel = Kernel::new(move |ctx: &mut KernelCtx| {
                let h = ctx.h(ArrayId(ai));
                if rank2 {
                    for j in ctx.iter[1].iter() {
                        for i in ctx.iter[0].iter() {
                            ctx.mem[h.at2(i, j)] =
                                ((i * 7 + j * 13 + ai as i64 * 29) % 23) as f64 * 0.5 - 5.0;
                        }
                    }
                } else {
                    for i in ctx.iter[0].iter() {
                        ctx.mem[h.at1(i)] = if a.index_for.is_some() {
                            // Valid index of the (1-D, extent n1) target.
                            ((i * (ai as i64 % 4 + 1) + ai as i64) % n1) as f64
                        } else {
                            ((i * 7 + ai as i64 * 29) % 23) as f64 * 0.5 - 5.0
                        };
                    }
                }
            });
            b.stmt(Stmt::Par(ParLoop {
                name: INAMES[ai],
                iter,
                dist: CompDist::Owner(ArrayId(ai)),
                refs: vec![ARef::write(ArrayId(ai), subs)],
                kernel,
                cost_per_iter_ns: 20,
                reduction: None,
            }));
        }
        // Body.
        let mut stmts: Vec<Stmt> = Vec::new();
        for (si, fs) in self.body.iter().enumerate() {
            match fs {
                FStmt::Scalar(0) => stmts.push(Stmt::Scalar {
                    name: "acc",
                    f: sc_damp,
                }),
                FStmt::Scalar(_) => stmts.push(Stmt::Scalar {
                    name: "acc",
                    f: sc_flip,
                }),
                FStmt::Loop(l) => stmts.push(self.build_loop(si, l)),
            }
        }
        if let Some((lo, hi, count)) = self.time {
            let tail = stmts.split_off(hi);
            let body = stmts.split_off(lo);
            stmts.push(Stmt::Time {
                var: TVAR,
                count,
                body,
            });
            stmts.extend(tail);
        }
        for s in stmts {
            b.stmt(s);
        }
        b.build()
    }

    fn build_loop(&self, si: usize, l: &LoopSpec) -> Stmt {
        let rank2 = self.arrays[l.write].rank2;
        let exts = self.ext(l.write);
        let iter: Vec<SymRange> = exts
            .iter()
            .map(|&e| SymRange::new(2, e as i64 - 3))
            .collect();
        let identity: Vec<Subscript> = (0..exts.len()).map(Subscript::loop_var).collect();
        let mut refs = vec![ARef::write(ArrayId(l.write), identity.clone())];
        if l.self_read {
            refs.push(ARef::read(ArrayId(l.write), identity.clone()));
        }
        if let Some(x) = l.dist_by {
            let xsubs: Vec<Subscript> = (0..self.ext(x).len()).map(Subscript::loop_var).collect();
            refs.push(ARef::read(ArrayId(x), xsubs));
        }
        for r in &l.reads {
            if let Some(ia) = r.via {
                refs.push(ARef::read(ArrayId(ia), vec![Subscript::loop_var(0)]));
                refs.push(ARef::read(
                    ArrayId(r.array),
                    vec![Subscript::Indirect(ArrayId(ia), 0)],
                ));
            } else if self.arrays[r.array].rank2 {
                refs.push(ARef::read(
                    ArrayId(r.array),
                    vec![Subscript::Loop(0, r.off[0]), Subscript::Loop(1, r.off[1])],
                ));
            } else {
                refs.push(ARef::read(
                    ArrayId(r.array),
                    vec![Subscript::Loop(0, r.off[0])],
                ));
            }
        }
        let dist = CompDist::Owner(ArrayId(l.dist_by.unwrap_or(l.write)));
        let reduction = l.reduce.map(|op| ReduceSpec {
            op: match op {
                0 => ReduceOp::Sum,
                1 => ReduceOp::Max,
                _ => ReduceOp::Min,
            },
            target: "acc",
        });
        let spec = l.clone();
        let rank2s: Vec<bool> = self.arrays.iter().map(|a| a.rank2).collect();
        let lid = si as f64;
        let reduce = l.reduce;
        let kernel = Kernel::new(move |ctx: &mut KernelCtx| {
            let w = ctx.h(ArrayId(spec.write));
            let xh = spec.dist_by.map(|x| ctx.h(ArrayId(x)));
            let rhs: Vec<_> = spec.reads.iter().map(|r| ctx.h(ArrayId(r.array))).collect();
            let vhs: Vec<_> = spec
                .reads
                .iter()
                .map(|r| r.via.map(|ia| ctx.h(ArrayId(ia))))
                .collect();
            let t = if spec.use_t {
                ctx.sym(TVAR) as f64
            } else {
                0.0
            };
            let acc = if spec.use_acc { ctx.scalar("acc") } else { 0.0 };
            let base = 0.25 * (lid + 1.0) + 0.5 * t + 0.001 * acc;
            let fold = |partial: &mut f64, v: f64| match reduce {
                Some(0) => *partial += v,
                Some(1) => *partial = partial.max(v),
                Some(2) => *partial = partial.min(v),
                _ => {}
            };
            if rank2 {
                for j in ctx.iter[1].iter() {
                    for i in ctx.iter[0].iter() {
                        let mut v = base + 0.0625 * i as f64 + 0.03125 * j as f64;
                        if spec.self_read {
                            v += 0.5 * ctx.mem[w.at2(i, j)];
                        }
                        if let Some(x) = xh {
                            v += 0.25 * ctx.mem[x.at2(i, j)];
                        }
                        for (k, r) in spec.reads.iter().enumerate() {
                            let rv = if rank2s[r.array] {
                                ctx.mem[rhs[k].at2(i + r.off[0], j + r.off[1])]
                            } else {
                                ctx.mem[rhs[k].at1(i + r.off[0])]
                            };
                            v += rv / (k as f64 + 2.0);
                        }
                        ctx.mem[w.at2(i, j)] = v;
                        fold(&mut ctx.partial, v);
                    }
                }
            } else {
                for i in ctx.iter[0].iter() {
                    let mut v = base + 0.0625 * i as f64;
                    if spec.self_read {
                        v += 0.5 * ctx.mem[w.at1(i)];
                    }
                    if let Some(x) = xh {
                        v += 0.25 * ctx.mem[x.at1(i)];
                    }
                    for (k, r) in spec.reads.iter().enumerate() {
                        let rv = if let Some(ih) = vhs[k] {
                            let jx = ctx.mem[ih.at1(i)] as i64;
                            ctx.mem[rhs[k].at1(jx)]
                        } else {
                            ctx.mem[rhs[k].at1(i + r.off[0])]
                        };
                        v += rv / (k as f64 + 2.0);
                    }
                    ctx.mem[w.at1(i)] = v;
                    fold(&mut ctx.partial, v);
                }
            }
        });
        Stmt::Par(ParLoop {
            name: LNAMES[si],
            iter,
            dist,
            refs,
            kernel,
            cost_per_iter_ns: 30,
            reduction,
        })
    }

    /// Render this spec as a standalone Rust reproducer (a test that
    /// rebuilds the exact spec and reruns the oracle).
    pub fn to_rust(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "// Reproducer for fgdsm-fuzz seed {:#x}.", self.seed);
        let _ = writeln!(
            s,
            "// Drop into crates/fuzz/tests/ and run: cargo test -p fgdsm-fuzz repro"
        );
        let _ = writeln!(s, "use fgdsm_fuzz::*;");
        let _ = writeln!(s, "use fgdsm_hpf::InjectConfig;");
        let _ = writeln!(s);
        let _ = writeln!(s, "#[test]");
        let _ = writeln!(s, "fn repro() {{");
        let _ = writeln!(s, "    let spec = FuzzSpec {{");
        let _ = writeln!(s, "        seed: {:#x},", self.seed);
        let _ = writeln!(s, "        nprocs: {},", self.nprocs);
        let _ = writeln!(s, "        n1: {},", self.n1);
        let _ = writeln!(s, "        n2: [{}, {}],", self.n2[0], self.n2[1]);
        let _ = writeln!(s, "        arrays: vec![");
        for a in &self.arrays {
            let _ = writeln!(
                s,
                "            ArraySpec {{ rank2: {}, cyclic: {}, index_for: {:?} }},",
                a.rank2, a.cyclic, a.index_for
            );
        }
        let _ = writeln!(s, "        ],");
        let _ = writeln!(s, "        body: vec![");
        for fs in &self.body {
            match fs {
                FStmt::Scalar(k) => {
                    let _ = writeln!(s, "            FStmt::Scalar({k}),");
                }
                FStmt::Loop(l) => {
                    let _ = writeln!(s, "            FStmt::Loop(LoopSpec {{");
                    let _ = writeln!(s, "                write: {},", l.write);
                    let _ = writeln!(s, "                dist_by: {:?},", l.dist_by);
                    let _ = writeln!(s, "                self_read: {},", l.self_read);
                    let _ = writeln!(s, "                reads: vec![");
                    for r in &l.reads {
                        let _ = writeln!(
                            s,
                            "                    ReadSpec {{ array: {}, off: [{}, {}], via: {:?} }},",
                            r.array, r.off[0], r.off[1], r.via
                        );
                    }
                    let _ = writeln!(s, "                ],");
                    let _ = writeln!(s, "                reduce: {:?},", l.reduce);
                    let _ = writeln!(s, "                use_t: {},", l.use_t);
                    let _ = writeln!(s, "                use_acc: {},", l.use_acc);
                    let _ = writeln!(s, "            }}),");
                }
            }
        }
        let _ = writeln!(s, "        ],");
        let _ = writeln!(s, "        time: {:?},", self.time);
        let i = &self.inject;
        let _ = writeln!(s, "        inject: InjectConfig {{");
        let _ = writeln!(s, "            shuffle_resolve: {:?},", i.shuffle_resolve);
        let _ = writeln!(s, "            clear_iw_memo: {},", i.clear_iw_memo);
        let _ = writeln!(s, "            force_boundary: {},", i.force_boundary);
        let _ = writeln!(s, "            skew_send_range: {},", i.skew_send_range);
        let _ = writeln!(s, "            skip_flush_range: {},", i.skip_flush_range);
        let _ = writeln!(s, "            stale_owner_push: {},", i.stale_owner_push);
        let _ = writeln!(
            s,
            "            reorder_plan_apply: {},",
            i.reorder_plan_apply
        );
        let _ = writeln!(s, "            misfold_pool: {},", i.misfold_pool);
        let _ = writeln!(s, "            corrupt_envelope: {},", i.corrupt_envelope);
        let _ = writeln!(s, "            corrupt_frame_len: {},", i.corrupt_frame_len);
        let _ = writeln!(
            s,
            "            undercount_metrics: {},",
            i.undercount_metrics
        );
        let _ = writeln!(s, "            tcp_node_fault: {:?},", i.tcp_node_fault);
        let _ = writeln!(s, "        }},");
        let _ = writeln!(s, "    }};");
        let _ = writeln!(s, "    check_spec(&spec).unwrap();");
        let _ = writeln!(s, "}}");
        s
    }
}

/// Generate a random spec from `rng` (seeded with `seed`, which is also
/// recorded in the spec for replay reporting).
pub fn gen_spec(rng: &mut Rng, seed: u64) -> FuzzSpec {
    let nprocs = rng.range(2, 5);
    // Half the corpus uses extents large enough that per-node sections
    // span whole cache blocks (128 B = 16 words by default), exercising
    // the compiler-controlled `send_range`/`flush_range` path; the other
    // half stays small, exercising the boundary/default-protocol path.
    let (n2, n1) = if rng.flag() {
        let n2 = [rng.range(24, 49), rng.range(6, 11)];
        (n2, rng.range(n2[0] + 2, 80))
    } else {
        let n2 = [rng.range(6, 13), rng.range(6, 13)];
        (n2, rng.range(n2[0] + 2, 33))
    };

    // Data arrays (2–5), then possibly one index array.
    let n_data = rng.range(2, 6);
    let mut arrays: Vec<ArraySpec> = (0..n_data)
        .map(|_| ArraySpec {
            rank2: rng.flag(),
            cyclic: rng.below(3) == 0,
            index_for: None,
        })
        .collect();
    let one_d: Vec<usize> = (0..n_data).filter(|&i| !arrays[i].rank2).collect();
    if one_d.len() >= 2 && rng.below(10) < 3 {
        let target = rng.choice(&one_d);
        arrays.push(ArraySpec {
            rank2: false,
            cyclic: rng.flag(),
            index_for: Some(target),
        });
    }
    let data: Vec<usize> = (0..n_data).collect();

    // Compute loops.
    let n_loops = rng.range(1, 5);
    let mut body: Vec<FStmt> = Vec::new();
    for _ in 0..n_loops {
        let write = rng.choice(&data);
        let rank2 = arrays[write].rank2;
        // Partition by a different same-rank data array sometimes.
        let same_rank: Vec<usize> = data
            .iter()
            .copied()
            .filter(|&a| a != write && arrays[a].rank2 == rank2)
            .collect();
        let dist_by = if !same_rank.is_empty() && rng.below(10) < 2 {
            Some(rng.choice(&same_rank))
        } else {
            None
        };
        // Reads: any data array except the one being written.
        let mut reads = Vec::new();
        let gatherable: Vec<usize> = arrays
            .iter()
            .enumerate()
            .filter(|(_, a)| {
                a.index_for
                    .is_some_and(|t| t != write && arrays[write].cyclic == a.cyclic)
            })
            .map(|(i, _)| i)
            .collect();
        for _ in 0..rng.range(0, 4) {
            if !rank2 && dist_by.is_none() && !gatherable.is_empty() && rng.below(10) < 3 {
                let ia = rng.choice(&gatherable);
                reads.push(ReadSpec {
                    array: arrays[ia].index_for.unwrap(),
                    off: [0, 0],
                    via: Some(ia),
                });
                continue;
            }
            let cand: Vec<usize> = data
                .iter()
                .copied()
                .filter(|&a| a != write && (rank2 || !arrays[a].rank2))
                .collect();
            if cand.is_empty() {
                break;
            }
            let array = rng.choice(&cand);
            let off = if arrays[array].rank2 {
                [rng.range_i64(-2, 3), rng.range_i64(-2, 3)]
            } else {
                [rng.range_i64(-2, 3), 0]
            };
            reads.push(ReadSpec {
                array,
                off,
                via: None,
            });
        }
        body.push(FStmt::Loop(LoopSpec {
            write,
            dist_by,
            self_read: rng.flag(),
            reads,
            reduce: (rng.below(10) < 4).then(|| rng.below(3) as u8),
            use_t: false, // assigned below for loops inside the time span
            use_acc: rng.below(10) < 2,
        }));
    }
    if rng.below(10) < 3 {
        let at = rng.range(0, body.len() + 1);
        body.insert(at, FStmt::Scalar(rng.below(2) as u8));
    }

    // Time loop over a contiguous span of the body.
    let time = if rng.flag() {
        let lo = rng.range(0, body.len());
        let hi = rng.range(lo + 1, body.len() + 1);
        for fs in &mut body[lo..hi] {
            if let FStmt::Loop(l) = fs {
                l.use_t = rng.flag();
            }
        }
        Some((lo, hi, rng.range_i64(2, 4)))
    } else {
        None
    };

    FuzzSpec {
        seed,
        nprocs,
        n1,
        n2,
        arrays,
        body,
        time,
        inject: InjectConfig::default(),
    }
}
