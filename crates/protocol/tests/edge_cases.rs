//! Directory-protocol edge cases: self-transitions (an owner re-faulting
//! its own block), zero-sharer invalidation sweeps, and max-node-id
//! (node 63) directory entries — the boundary states the model checker
//! enumerates, pinned here against the real `Dsm`.

use fgdsm_protocol::{DirState, Dsm};
use fgdsm_tempest::{Access, Cluster, CostModel, HomePolicy, SegmentLayout};

fn dsm(nprocs: usize) -> Dsm {
    let cfg = CostModel::paper_dual_cpu();
    let mut layout = SegmentLayout::new(cfg.words_per_page());
    layout.alloc(8192);
    Dsm::new(Cluster::new(nprocs, cfg, &layout, HomePolicy::RoundRobin))
}

/// An owner re-faulting (or re-requesting) its own exclusive block is a
/// self-transition: the directory must not change, no other node's tag
/// may move, and the state must stay consistent.
#[test]
fn owner_self_refault_is_a_noop() {
    let mut d = dsm(2);
    let b = 0; // homed at node 0, initially Excl{0} with RW tag
    assert!(d.dir_state(b).is_excl_by(0));
    let t0 = d.cluster.clock_ns(0);

    // A write by the standing owner hits the RW-tag fast path.
    d.write_access_excl(0, b);
    assert!(d.dir_state(b).is_excl_by(0));
    assert_eq!(d.cluster.clock_ns(0), t0, "owner re-fault must be free");

    // The ctl self-transition: mk_writable by the node that already owns
    // the range leaves the directory untouched.
    d.mk_writable(0, b, b + 1);
    assert!(d.dir_state(b).is_excl_by(0));
    assert_eq!(d.cluster.tag(1, b), Access::Invalid);
    d.release_barrier();
    d.check_consistency().unwrap();
}

/// A read by the current exclusive owner must not downgrade anyone
/// else's copy or move the directory through a foreign state.
#[test]
fn owner_self_read_downgrades_only_itself() {
    let mut d = dsm(2);
    let b = 0;
    // Owner's tag is RW, so the read is a tag no-op.
    d.read_access(0, b);
    assert!(d.dir_state(b).is_excl_by(0));
    assert_eq!(d.cluster.tag(0, b), Access::ReadWrite);
    d.release_barrier();
    d.check_consistency().unwrap();
}

/// A `Shared` entry whose reader mask is empty (what a full invalidation
/// sweep leaves behind) must be inert: the next write fault acquires
/// exclusivity over the empty mask without panicking or invalidating
/// anyone.
#[test]
fn zero_sharer_invalidate_sweep() {
    let mut d = dsm(2);
    let b = 0;
    d.set_dir(b, DirState::Shared { readers: 0 });
    d.cluster.set_tag(0, b, Access::ReadOnly); // home holds the only copy

    let t1 = d.cluster.clock_ns(1);
    d.write_access_excl(1, b);
    assert!(d.dir_state(b).is_excl_by(1));
    assert_eq!(d.cluster.tag(1, b), Access::ReadWrite);
    assert!(d.cluster.clock_ns(1) > t1, "a real fault was taken");
    d.release_barrier();
    d.check_consistency().unwrap();
}

/// The ctl path over a zero-sharer `Shared` entry: `mk_writable` finds
/// nobody to invalidate and still takes ownership.
#[test]
fn zero_sharer_mk_writable() {
    let mut d = dsm(2);
    let b = 1;
    d.set_dir(b, DirState::Shared { readers: 0 });
    d.cluster.set_tag(0, b, Access::ReadOnly);
    d.mk_writable(1, b, b + 1);
    assert!(d.dir_state(b).is_excl_by(1));
    d.release_barrier();
    d.check_consistency().unwrap();
}

/// Directory entries must track the max node id (63): a 64-node cluster
/// where node 63 reads, then steals, a block homed at node 0 — the
/// sharer bit and owner field both sit on the top bit of the mask.
#[test]
fn max_node_id_directory_entries() {
    let mut d = dsm(64);
    let b = 0; // page 0 → homed at node 0
    assert_eq!(d.cluster.home_of_block(b), 0);

    d.read_access(63, b);
    match d.dir_state(b) {
        DirState::Shared { readers } => {
            assert_ne!(readers & DirState::bit(63), 0, "top sharer bit lost");
            assert_ne!(readers & DirState::bit(0), 0, "home downgrade lost");
        }
        s => panic!("expected Shared after a read miss, got {s:?}"),
    }
    assert_eq!(d.cluster.tag(63, b), Access::ReadOnly);

    d.write_access_excl(63, b);
    assert!(d.dir_state(b).is_excl_by(63));
    assert_eq!(d.cluster.tag(63, b), Access::ReadWrite);
    assert_eq!(d.cluster.tag(0, b), Access::Invalid);

    // And back: a third node reads the block out of node 63's hands
    // (the 4-hop path with the owner on the top bit).
    d.read_access(62, b);
    match d.dir_state(b) {
        DirState::Shared { readers } => {
            assert_ne!(readers & DirState::bit(62), 0);
            assert_ne!(readers & DirState::bit(63), 0, "old owner keeps RO copy");
        }
        s => panic!("expected Shared after the 4-hop read, got {s:?}"),
    }
    d.release_barrier();
    d.check_consistency().unwrap();
}
