//! `ChanTransport` teardown must never deadlock: the drop-order contract
//! (clear the senders *before* joining the workers) has to hold on the
//! clean path, after a route panic, and during the unwind of a
//! panicking strict-mode run. Each test runs the teardown on a separate
//! thread under a watchdog so a regression fails loudly instead of
//! hanging the suite.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::time::Duration;

use fgdsm_protocol::{ChanTransport, Dsm, WireTransport};
use fgdsm_tempest::{Cluster, CostModel, HomePolicy, SegmentLayout};

const WATCHDOG: Duration = Duration::from_secs(20);

/// Run `f` on its own thread and fail the test if it doesn't finish
/// within the watchdog — the deadlock detector for every drop test.
fn must_finish(label: &str, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = channel();
    let t = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(()) => t.join().unwrap(),
        Err(RecvTimeoutError::Timeout) => {
            panic!("{label}: teardown deadlocked (watchdog expired)")
        }
        Err(RecvTimeoutError::Disconnected) => {
            // The worker thread itself panicked: surface that panic.
            t.join().unwrap();
            unreachable!()
        }
    }
}

fn dsm(nprocs: usize) -> Dsm {
    let cfg = CostModel::paper_dual_cpu();
    let mut layout = SegmentLayout::new(cfg.words_per_page());
    layout.alloc(8192);
    Dsm::new(Cluster::new(nprocs, cfg, &layout, HomePolicy::RoundRobin))
}

/// Dropping an idle transport (workers parked in `recv`) joins cleanly.
#[test]
fn idle_drop_joins_workers() {
    must_finish("idle drop", || {
        let t = ChanTransport::new(4);
        drop(t);
    });
}

/// An explicit `shutdown` followed by `Drop` is idempotent.
#[test]
fn shutdown_is_idempotent() {
    must_finish("double shutdown", || {
        let mut t = ChanTransport::new(3);
        t.shutdown();
        t.shutdown();
        drop(t);
    });
}

/// A garbage frame makes `route` panic ("decode failed in transit") —
/// and dropping the transport afterwards, mid-recovery, must still join
/// every worker thread.
#[test]
fn drop_after_route_panic_joins_workers() {
    must_finish("drop after route panic", || {
        let mut t = ChanTransport::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _ = t.route(1, vec![vec![0xde, 0xad, 0xbe, 0xef]]);
        }));
        let msg = *r
            .expect_err("garbage frames must not decode")
            .downcast::<String>()
            .unwrap();
        assert!(
            msg.contains("envelope decode failed in transit"),
            "wrong panic: {msg}"
        );
        drop(t);
    });
}

/// A peer whose worker hung up yields a typed `PeerGone` (never a hung
/// recv), and tearing the transport down afterwards still joins every
/// remaining worker.
#[test]
fn killed_worker_is_typed_peer_gone_and_drop_still_joins() {
    must_finish("drop after kill_worker", || {
        let mut t = ChanTransport::new(3);
        t.kill_worker(2);
        let r = t.route(2, vec![vec![0u8; 8]]);
        assert_eq!(r, Err(fgdsm_protocol::WireError::PeerGone(2)));
        drop(t);
    });
}

/// The real seam: a strict-mode `Dsm` wired over `ChanTransport` whose
/// run panics mid-superstep. The unwind drops the `Dsm` (and with it the
/// transport) while channel workers may still hold undrained requests —
/// join-on-drop must not deadlock, because the senders die first.
#[test]
fn panicking_strict_run_does_not_deadlock_workers() {
    must_finish("panicking strict-mode run", || {
        let r = catch_unwind(AssertUnwindSafe(|| {
            let mut d = dsm(2);
            d.set_wire(Box::new(ChanTransport::new(2)));
            // Real traffic through the workers first, so they are warm.
            d.mk_writable(1, 0, 2);
            let plans = d.plan_sends(
                &[fgdsm_protocol::SendEntry {
                    owner: 1,
                    readers: vec![0],
                    first: 0,
                    end: 2,
                    array: fgdsm_tempest::NO_ARRAY,
                }],
                true,
            );
            d.apply_plans(&plans, 1);
            d.recycle_plans(plans);
            panic!("superstep failed mid-run");
        }));
        let msg = *r.expect_err("run must panic").downcast::<&str>().unwrap();
        assert_eq!(msg, "superstep failed mid-run");
    });
}
