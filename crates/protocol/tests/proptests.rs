//! Property tests for the default protocol: random BSP intervals with a
//! race-free access discipline (per interval, each block has at most one
//! writer unless explicitly multi-written, plus any number of readers)
//! must keep the directory consistent at every barrier and propagate
//! values exactly like an idealized shared memory.
//!
//! Gated behind the `proptest` feature so the default tier-1 test run stays
//! fast: `cargo test -p fgdsm-protocol --features proptest`.
#![cfg(feature = "proptest")]
#![allow(clippy::needless_range_loop)] // word loops index the model vec in parallel

use fgdsm_protocol::{Dsm, SendEntry, TransferPlan, WireHeader, WireMsg};
use fgdsm_tempest::{Cluster, CostModel, HomePolicy, SegmentLayout};
use fgdsm_testkit::{check_cases, Rng};

const NPROCS: usize = 4;
const BLOCKS: usize = 24;

#[derive(Debug, Clone)]
struct Interval {
    /// Per block: Some(writer mask) — bit per node; None = not written.
    writers: Vec<Option<u8>>,
    /// Per block: reader mask.
    readers: Vec<u8>,
}

fn random_interval(rng: &mut Rng) -> Interval {
    let mut writers = Vec::with_capacity(BLOCKS);
    let mut readers = Vec::with_capacity(BLOCKS);
    for _ in 0..BLOCKS {
        let w = rng.below(16) as u8;
        // Bias toward at most one writer; allow multi occasionally.
        writers.push(match w {
            0..=7 => None,
            8..=11 => Some(1u8 << (w % 4)), // one writer
            _ => Some((1u8 << (w % 4)) | (1u8 << ((w + 1) % 4))), // two writers
        });
        readers.push(rng.below(16) as u8);
    }
    Interval { writers, readers }
}

fn fresh() -> Dsm {
    let cfg = CostModel::paper_dual_cpu();
    let mut layout = SegmentLayout::new(cfg.words_per_page());
    layout.alloc(BLOCKS * cfg.words_per_block());
    Dsm::new(Cluster::new(NPROCS, cfg, &layout, HomePolicy::RoundRobin))
}

#[test]
fn random_intervals_stay_coherent() {
    check_cases(64, |rng| {
        let n_ivs = rng.range(1, 8);
        let ivs: Vec<Interval> = rng.vec(n_ivs, random_interval);
        let mut d = fresh();
        let wpb = d.cluster.words_per_block();
        // Idealized shared memory: the model value of every word.
        let mut model = vec![0.0f64; BLOCKS * wpb];
        let mut stamp = 1.0f64;

        for iv in &ivs {
            // Access sub-phase: writes (multi when >1 writer or when the
            // block is also read remotely), then reads — the same
            // discipline the executor derives from its census.
            for b in 0..BLOCKS {
                if let Some(wmask) = iv.writers[b] {
                    let writers: Vec<usize> =
                        (0..NPROCS).filter(|&n| wmask & (1 << n) != 0).collect();
                    let remote_reader =
                        (0..NPROCS).any(|n| iv.readers[b] & (1 << n) != 0 && !writers.contains(&n));
                    if writers.len() > 1 || remote_reader {
                        for &w in &writers {
                            d.write_access_multi(w, b);
                        }
                    } else {
                        d.write_access_excl(writers[0], b);
                    }
                }
            }
            for b in 0..BLOCKS {
                for n in 0..NPROCS {
                    if iv.readers[b] & (1 << n) != 0 {
                        d.read_access(n, b);
                    }
                }
            }
            // Readers observe the model values (data written in previous
            // intervals must have propagated).
            for b in 0..BLOCKS {
                let (s, e) = d.cluster.block_words(b);
                for n in 0..NPROCS {
                    if iv.readers[b] & (1 << n) != 0 {
                        for w in s..e {
                            assert_eq!(
                                d.cluster.node_mem(n)[w].to_bits(),
                                model[w].to_bits(),
                                "reader {n} of block {b} word {w}"
                            );
                        }
                    }
                }
            }
            // Kernel sub-phase: each writer writes a disjoint word slice
            // of the block (element-level race freedom).
            for b in 0..BLOCKS {
                if let Some(wmask) = iv.writers[b] {
                    let writers: Vec<usize> =
                        (0..NPROCS).filter(|&n| wmask & (1 << n) != 0).collect();
                    let (s, e) = d.cluster.block_words(b);
                    let span = (e - s) / writers.len();
                    for (k, &w) in writers.iter().enumerate() {
                        let lo = s + k * span;
                        let hi = if k + 1 == writers.len() { e } else { lo + span };
                        for word in lo..hi {
                            let v = stamp + word as f64 * 1e-6;
                            d.cluster.node_mem_mut(w)[word] = v;
                            model[word] = v;
                        }
                    }
                    stamp += 1.0;
                }
            }
            d.release_barrier();
            if let Err(e) = d.check_consistency() {
                panic!("inconsistent after barrier: {e}");
            }
        }
        // Final gather through the directory matches the model exactly.
        for b in 0..BLOCKS {
            let src = match d.dir_state(b) {
                fgdsm_protocol::DirState::Excl { owner } => owner,
                _ => d.cluster.home_of_block(b),
            };
            let (s, e) = d.cluster.block_words(b);
            for w in s..e {
                assert_eq!(
                    d.cluster.node_mem(src)[w].to_bits(),
                    model[w].to_bits(),
                    "gather of block {b} word {w}"
                );
            }
        }
    });
}

/// Build a dsm over a larger segment so random transfer volumes can clear
/// the parallel-apply threshold ([`fgdsm_protocol::PAR_APPLY_MIN_WORDS`]).
fn fresh_big(nprocs: usize, blocks: usize) -> Dsm {
    let cfg = CostModel::paper_dual_cpu();
    let mut layout = SegmentLayout::new(cfg.words_per_page());
    layout.alloc(blocks * cfg.words_per_block());
    Dsm::new(Cluster::new(nprocs, cfg, &layout, HomePolicy::RoundRobin))
}

/// Random merged send call sites over random geometries.
fn random_entries(rng: &mut Rng, nprocs: usize, blocks: usize) -> Vec<SendEntry> {
    let n = rng.range(1, 7);
    rng.vec(n, |r| {
        let owner = r.below(nprocs as u64) as usize;
        let mut readers: Vec<usize> = (0..nprocs).filter(|&p| p != owner && r.flag()).collect();
        if readers.is_empty() {
            readers.push((owner + 1) % nprocs);
        }
        let first = r.range(0, blocks - 1);
        let end = (first + r.range(1, 96)).min(blocks);
        SendEntry {
            owner,
            readers,
            first,
            end,
            array: fgdsm_tempest::NO_ARRAY,
        }
    })
}

fn payload_blocks(p: &TransferPlan) -> Vec<usize> {
    p.payloads
        .iter()
        .flat_map(|q| q.start_block..q.start_block + q.n_blocks)
        .collect()
}

/// Plan extraction over random ranges and geometries: the emitted plans
/// partition exactly the blocks the direct per-entry path would have
/// pushed — per (owner, reader) pair, the payload blocks are the
/// concatenation of that pair's entry ranges in entry order, under both
/// payload groupings.
#[test]
fn plans_partition_direct_path_blocks_random() {
    const BIG: usize = 512;
    check_cases(96, |rng| {
        let nprocs = rng.range(2, 6);
        let entries = random_entries(rng, nprocs, BIG);
        let bulk = rng.flag();
        let mut d = fresh_big(nprocs, BIG);
        let plans = d.plan_sends(&entries, bulk);
        let mut expect: std::collections::BTreeMap<(usize, usize), Vec<usize>> = Default::default();
        for en in &entries {
            for &r in &en.readers {
                expect
                    .entry((en.owner, r))
                    .or_default()
                    .extend(en.first..en.end);
            }
        }
        assert_eq!(
            plans.len(),
            expect.len(),
            "one plan per (owner, reader) pair"
        );
        for p in &plans {
            assert_eq!(
                payload_blocks(p),
                expect[&(p.src, p.dst)],
                "plan {} -> {} (bulk={bulk})",
                p.src,
                p.dst
            );
        }
        // Stable order.
        let keys: Vec<(usize, usize)> = plans.iter().map(|p| (p.src, p.dst)).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    });
}

/// Applying a random plan batch serially and with 4 workers leaves the
/// cluster in a byte-identical state: clocks, stats, memory, and the full
/// trace stream. Random volumes land on both sides of the parallel-apply
/// threshold, so both the serial fallback and the threaded waves are hit.
#[test]
fn apply_plans_threaded_matches_serial_random() {
    const BIG: usize = 512;
    check_cases(48, |rng| {
        let nprocs = rng.range(2, 6);
        let entries = random_entries(rng, nprocs, BIG);
        let bulk = rng.flag();
        let seed = rng.below(1 << 62);
        let run = |workers: usize| {
            let mut d = fresh_big(nprocs, BIG);
            let mut r = Rng::new(seed);
            for w in 0..d.cluster.seg_words() {
                let node = r.below(nprocs as u64) as usize;
                d.cluster.node_mem_mut(node)[w] = r.below(1 << 52) as f64 + 0.5;
            }
            let plans = d.plan_sends(&entries, bulk);
            d.apply_plans(&plans, workers);
            for n in 0..nprocs {
                d.ready_to_recv(n);
            }
            d
        };
        let serial = run(1);
        let threaded = run(4);
        for n in 0..nprocs {
            assert_eq!(
                serial.cluster.clock_ns(n),
                threaded.cluster.clock_ns(n),
                "clock of node {n}"
            );
            assert_eq!(
                serial.cluster.stats(n),
                threaded.cluster.stats(n),
                "stats of node {n}"
            );
            assert_eq!(
                serial.cluster.node_mem(n),
                threaded.cluster.node_mem(n),
                "memory of node {n}"
            );
        }
        assert_eq!(serial.cluster.trace_json(), threaded.cluster.trace_json());
    });
}

/// A random header whose block list is consistent with what the
/// Push/Flush variants require (decode cross-checks `n_blocks` against
/// the header block list).
fn random_wire_hdr(rng: &mut Rng) -> (WireHeader, usize, usize) {
    let first = rng.range(0, 1 << 16);
    let n = rng.range(0, 9);
    let hdr = WireHeader::for_blocks(
        rng.range(0, 64),
        rng.range(0, 64),
        (rng.below(1 << 20) as u32, rng.below(1 << 12) as u32),
        if rng.flag() {
            u32::MAX
        } else {
            rng.below(64) as u32
        },
        first,
        n,
    );
    (hdr, first, n)
}

fn random_words(rng: &mut Rng, n: usize) -> Vec<u64> {
    rng.vec(n, |r| match r.below(4) {
        0 => f64::NAN.to_bits(),
        1 => (-0.0f64).to_bits(),
        2 => u64::MAX,
        _ => r.next_u64(),
    })
}

fn random_wire_msg(rng: &mut Rng) -> WireMsg {
    let (hdr, first, n) = random_wire_hdr(rng);
    match rng.below(5) {
        0 => {
            let nw = rng.range(0, 65);
            WireMsg::Push {
                hdr,
                start_block: first as u32,
                n_blocks: n as u32,
                words: random_words(rng, nw),
            }
        }
        1 => {
            let nw = rng.range(0, 65);
            WireMsg::Flush {
                hdr,
                start_block: first as u32,
                n_blocks: n as u32,
                words: random_words(rng, nw),
            }
        }
        2 => {
            let nw = rng.range(0, 65);
            WireMsg::Copy {
                hdr,
                start_word: rng.below(1 << 40),
                words: random_words(rng, nw),
            }
        }
        3 => {
            let mask = rng.next_u64() & rng.next_u64(); // sparse-ish
            let words = random_words(rng, mask.count_ones() as usize);
            WireMsg::Diff {
                hdr,
                block: rng.below(1 << 30),
                mask,
                words,
            }
        }
        _ => {
            let run_len = rng.range(0, 9) as u32;
            let count = rng.range(0, 9) as u32;
            WireMsg::Strided {
                hdr,
                base: rng.below(1 << 40),
                run_len,
                stride: rng.below(1 << 20),
                count,
                words: random_words(rng, (run_len * count) as usize),
            }
        }
    }
}

/// Every envelope variant with random headers, geometries and payloads
/// (NaNs, signed zeros, all-ones words) survives encode → decode
/// bit-exactly, through fresh buffers and recycled ones alike.
#[test]
fn wire_envelopes_round_trip_random() {
    check_cases(256, |rng| {
        let msg = random_wire_msg(rng);
        let bytes = msg.to_bytes();
        assert_eq!(
            WireMsg::from_bytes(&bytes).expect("fresh encode must decode"),
            msg,
            "kind {}",
            msg.kind()
        );
        // `encode` into a dirty pooled buffer is byte-identical.
        let mut pooled = vec![0xA5u8; rng.range(0, 200)];
        msg.encode(&mut pooled);
        assert_eq!(pooled, bytes);
        assert_eq!(msg.payload_bytes() as usize % 8, 0);
    });
}

/// Decode validation has no blind spots: no strict prefix of a valid
/// frame decodes, and flipping any single bit either fails decode or
/// yields a *different* envelope — never a silent misparse back to the
/// original (every encoded byte is semantic; there is no padding).
#[test]
fn wire_decode_rejects_mutations_random() {
    check_cases(128, |rng| {
        let msg = random_wire_msg(rng);
        let bytes = msg.to_bytes();
        let cut = rng.range(0, bytes.len());
        assert!(
            WireMsg::from_bytes(&bytes[..cut]).is_err(),
            "prefix of len {cut}/{} must not decode",
            bytes.len()
        );
        let mut flipped = bytes.clone();
        let at = rng.range(0, flipped.len());
        flipped[at] ^= 1 << rng.below(8);
        match WireMsg::from_bytes(&flipped) {
            Err(_) => {}
            Ok(m2) => assert_ne!(m2, msg, "bit flip at byte {at} decoded as the original"),
        }
    });
}

#[test]
fn ctl_contract_random_ranges() {
    check_cases(64, |rng| {
        let n_ranges = rng.range(1, 6);
        let ranges: Vec<(usize, usize)> =
            rng.vec(n_ranges, |r| (r.range(0, BLOCKS), r.range(1, 8)));
        let bulk = rng.flag();
        let memo = rng.flag();
        // Random compiler-controlled pushes over random (possibly
        // overlapping) block ranges always end consistent and deliver the
        // owner's data.
        let mut d = fresh();
        let wpb = d.cluster.words_per_block();
        for (start, len) in ranges {
            let end = (start + len).min(BLOCKS);
            if end <= start {
                continue;
            }
            d.mk_writable(1, start, end);
            d.release_barrier();
            d.implicit_writable(2, start, end, memo);
            d.release_barrier();
            for w in start * wpb..end * wpb {
                d.cluster.node_mem_mut(1)[w] = w as f64 + 0.5;
            }
            d.send_range(1, &[2], start, end, bulk);
            d.ready_to_recv(2);
            for w in start * wpb..end * wpb {
                assert_eq!(d.cluster.node_mem(2)[w], w as f64 + 0.5);
            }
            if !memo {
                d.implicit_invalidate(2, start, end);
            }
            d.release_barrier();
            if !memo {
                if let Err(e) = d.check_consistency() {
                    panic!("{e}");
                }
            }
        }
    });
}

/// The framing layer must reassemble any sequence of length-prefixed
/// frames from any split of the byte stream — 1-byte reads, short
/// writes, frame boundaries straddling read boundaries — and flag a
/// truncated trailing frame at EOF.
#[test]
fn framing_round_trips_over_arbitrary_stream_splits() {
    use fgdsm_protocol::{write_frame, FrameDecoder};
    check_cases(256, |rng| {
        let nframes = rng.range(1, 10);
        let frames: Vec<Vec<u8>> = rng.vec(nframes, |rng| {
            let len = rng.below(200) as usize;
            rng.vec(len, |rng| rng.below(256) as u8)
        });
        let mut stream = Vec::new();
        for f in &frames {
            write_frame(&mut stream, f);
        }
        // Deliver the stream in random partial reads (often 1 byte), the
        // way a socket hands bytes back.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let mut pos = 0;
        while pos < stream.len() {
            let n = rng.range(1, 8).min(stream.len() - pos);
            dec.push(&stream[pos..pos + n]);
            pos += n;
            while let Some(f) = dec.next_frame().expect("well-formed stream") {
                got.push(f);
            }
        }
        assert_eq!(got, frames, "reassembly must be split-invariant");
        assert!(!dec.has_partial(), "clean stream leaves no partial bytes");

        // Truncate the stream inside the last record: every earlier
        // frame still decodes, the last is lost, and the fragment is
        // flagged as partial at EOF.
        let last_rec = 4 + frames.last().unwrap().len();
        let start_last = stream.len() - last_rec;
        let cut = start_last + 1 + rng.below(last_rec as u64 - 1) as usize;
        let mut dec = FrameDecoder::new();
        dec.push(&stream[..cut]);
        let mut whole = 0usize;
        while let Some(f) = dec.next_frame().expect("prefix stays well-formed") {
            assert_eq!(f, frames[whole]);
            whole += 1;
        }
        assert_eq!(whole, frames.len() - 1, "exactly the last frame is lost");
        assert!(
            dec.has_partial(),
            "truncated trailing frame must be visible at EOF"
        );
    });
}
