//! The write-update alternative protocol (§3 aside): writers keep every
//! sharer's copy current at each release instead of invalidating.

use crate::dir::DirState;
use crate::proto::{Dsm, Protocol};
use crate::trans;
use fgdsm_tempest::{Access, ChargeKind, Event, FaultKind, NodeId};

/// Write-update release consistency.
///
/// Copies stay valid (no re-fetch misses), but every release propagates
/// each writer's dirty words to *every* sharer, whether or not it will
/// read them again — the trade-off the `ext_update_protocol` benchmark
/// quantifies. The §4.2 ctl contract is not sound on top of this protocol
/// (its directory never records exclusive owners), so `supports_ctl` is
/// false and the optimized executor refuses it.
#[derive(Default)]
pub struct WriteUpdate {
    /// (block, writer) pairs dirty this interval.
    update_set: Vec<(usize, NodeId)>,
}

impl WriteUpdate {
    pub fn new() -> Self {
        Self::default()
    }
}

impl WriteUpdate {
    /// Register `p` as a writer of `b` for this interval (twin for the
    /// diff), fetching the block only if the node has no valid copy.
    /// Sharers are *not* invalidated — they receive the dirty words at
    /// the next release.
    fn write_access(&mut self, d: &mut Dsm, p: NodeId, b: usize) {
        let cfg = d.cluster.cfg().clone();
        if d.cluster.tag(p, b) == Access::ReadWrite {
            if !d.has_twin(p, b) {
                // Standing writer, new interval: local bookkeeping only.
                d.make_twin(p, b);
                self.update_set.push((b, p));
                d.cluster.charge(p, cfg.tag_change_ns, ChargeKind::Stall);
                // Normalize the directory (the home node starts out
                // recorded as an exclusive owner).
                let h = d.cluster.home_of_block(b);
                d.set_dir(b, trans::update_share(d.dir_state(b), p, h));
            }
            return;
        }
        let h = d.cluster.home_of_block(b);
        let (s, e) = d.cluster.block_words(b);
        d.cluster.map_range(p, s, e - s);
        let kind = if d.cluster.tag(p, b) == Access::ReadOnly {
            FaultKind::Upgrade
        } else {
            FaultKind::Write
        };
        d.cluster.record(p, Event::Fault { block: b, kind });
        let mut stall = cfg.fault_detect_ns + cfg.tag_change_ns;
        if p != h {
            // Eager registration with the home directory.
            stall += cfg.msg_send_ns;
            d.cluster.note_msg_at(p, h, 8, b);
            d.cluster.note_pending_write(p);
            d.cluster
                .charge_handler(h, cfg.handler_dispatch_ns + cfg.dir_lookup_ns);
        }
        if d.cluster.tag(p, b) == Access::Invalid {
            stall += d.data_home_to(p, h, b);
        }
        d.cluster.set_tag(p, b, Access::ReadWrite);
        d.make_twin(p, b);
        self.update_set.push((b, p));
        d.cluster.charge(p, stall, ChargeKind::Stall);
        d.set_dir(b, trans::update_share(d.dir_state(b), p, h));
    }
}

impl Protocol for WriteUpdate {
    fn name(&self) -> &'static str {
        "write-update"
    }

    fn supports_ctl(&self) -> bool {
        false
    }

    /// Update-protocol read fault: the home's copy is always current at
    /// interval boundaries, so every miss is a clean 2-hop fetch — and
    /// the copy then stays valid forever (writers update it in place).
    fn read_access(&mut self, d: &mut Dsm, p: NodeId, b: usize) {
        let cfg = d.cluster.cfg().clone();
        let h = d.cluster.home_of_block(b);
        let (s, e) = d.cluster.block_words(b);
        d.cluster.map_range(p, s, e - s);
        d.cluster.record(
            p,
            Event::Fault {
                block: b,
                kind: FaultKind::Read,
            },
        );
        let mut stall = cfg.fault_detect_ns + d.hc(cfg.dir_lookup_ns);
        if p != h {
            stall += cfg.one_way_ns(8) + d.hc(cfg.handler_dispatch_ns);
            d.cluster.note_msg_at(p, h, 8, b);
            d.cluster
                .charge_handler(h, cfg.handler_dispatch_ns + cfg.dir_lookup_ns);
        }
        stall += d.data_home_to(p, h, b);
        d.cluster.set_tag(p, b, Access::ReadOnly);
        stall += cfg.tag_change_ns;
        d.cluster.charge(p, stall, ChargeKind::Stall);
        d.set_dir(b, trans::update_share(d.dir_state(b), p, h));
    }

    fn write_access_excl(&mut self, d: &mut Dsm, p: NodeId, b: usize) {
        self.write_access(d, p, b);
    }

    fn write_access_multi(&mut self, d: &mut Dsm, p: NodeId, b: usize) {
        self.write_access(d, p, b);
    }

    /// Update-protocol release: every writer propagates its dirty words
    /// to the home and every other sharer — the cost that grows with the
    /// sharer set and makes update protocols expensive for migratory or
    /// single-consumer data.
    fn release(&mut self, d: &mut Dsm) {
        let cfg = d.cluster.cfg().clone();
        let mut set = std::mem::take(&mut self.update_set);
        set.sort_unstable();
        set.dedup();
        for (b, w) in set {
            let mask = d.diff_mask(w, b);
            d.remove_twin(w, b);
            if mask == 0 {
                continue;
            }
            let DirState::Shared { readers } = d.dir_state(b) else {
                unreachable!("update-protocol blocks are always Shared");
            };
            for t in DirState::nodes(readers) {
                if t == w {
                    continue;
                }
                d.wire_diff(w, t, b, mask);
                d.cluster.charge(w, cfg.msg_send_ns, ChargeKind::Stall);
                d.cluster
                    .charge_handler(t, cfg.handler_dispatch_ns + cfg.block_copy_ns);
            }
        }
    }

    fn check(&self, d: &Dsm) -> Result<(), String> {
        // After a release, every valid copy must equal the home copy.
        // A block no traffic ever touched has exactly one valid copy (the
        // home's), so only traffic-touched blocks can diverge.
        for b in d.touched_blocks() {
            let h = d.cluster.home_of_block(b);
            let (s, e) = d.cluster.block_words(b);
            for n in 0..d.cluster.nprocs() {
                if n != h && d.cluster.tag(n, b) != Access::Invalid {
                    for w in s..e {
                        if d.cluster.node_mem(n)[w].to_bits() != d.cluster.node_mem(h)[w].to_bits()
                        {
                            return Err(format!(
                                "update protocol: node {n} copy of block {b} diverges at word {w}"
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}
