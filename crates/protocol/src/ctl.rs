//! Compiler-directed incoherence: the run-time calls of the §4.2 contract.
//!
//! The compiler, having proven a producer–consumer relationship between an
//! owner and a set of readers on a range of whole cache blocks (after
//! `shmem_limits` subsetting — see [`fgdsm_section::block_subset`]),
//! bypasses the default protocol:
//!
//! 1. [`Dsm::mk_writable`] — owners bring the blocks writable (pipelined
//!    write faults), so the directory records the owner as holding the
//!    only valid copy (Figure 2B);
//! 2. *barrier*;
//! 3. [`Dsm::implicit_writable`] — readers tag the blocks ReadWrite with
//!    **no data**, so the incoming transfer can be stored (Figure 2C);
//! 4. *barrier*;
//! 5. [`Dsm::send_range`] / [`Dsm::ready_to_recv`] — owners push the
//!    blocks (optionally grouped into bulk payloads), readers block on a
//!    counting semaphore until all have arrived (Figure 2D);
//! 6. the parallel loop executes fault-free;
//! 7. [`Dsm::implicit_invalidate`] — readers discard their copies so the
//!    directory's belief (exclusive at owner) is true again (Figure 2F);
//! 8. *barrier*.
//!
//! For non-owner *writes*, [`Dsm::flush_range`] returns the modified
//! blocks to the owner at the end of the loop.
//!
//! Run-time overhead elimination (§4.3) drops steps 1, 2, 7 and 8 under
//! whole-program owner-computes assumptions and memoizes step 3 so only
//! the first execution pays the tag changes; the memo test is
//! [`MEMO_TEST_NS`].
//!
//! ## Plan → apply
//!
//! The data-movement primitives (`send_range`, `flush_range`) are split
//! into two stages so an executor can run the apply stage on threads:
//!
//! * **plan** ([`Dsm::plan_sends`] / [`Dsm::plan_flushes`]) — a cheap
//!   sequential pass that does all call-site bookkeeping (ctl events, base
//!   charges, fault injection, payload grouping) and emits one
//!   [`TransferPlan`] per (source, destination) node pair;
//! * **apply** ([`Dsm::apply_plans`]) — executes the plans' pair-local
//!   work (charges, copies, message counters) over disjoint `&mut` shard
//!   pairs, concurrently where plans share no node, then folds the
//!   cross-pair state (ctl inboxes, directory, third-party home tags) in
//!   plan index order. Plans that share a node are applied in strict plan
//!   order, so every node's event stream — and therefore every report and
//!   trace — is byte-identical to a serial apply.

use crate::dir::DirState;
use crate::proto::Dsm;
use crate::trans;
use crate::wire::{WireHeader, WireMsg};
use fgdsm_tempest::{Access, ChargeKind, CostModel, CtlPrim, Event, NodeId, NodeShard, NO_ARRAY};

/// Fixed overhead of issuing any compiler-directed protocol call.
pub const CTL_CALL_BASE_NS: u64 = 2_000;

/// Cost of the memoized `implicit_writable` fast path ("at subsequent
/// times the call need only do the test and nothing more").
pub const MEMO_TEST_NS: u64 = 300;

/// One grouped transfer payload: `n_blocks` contiguous blocks starting at
/// `start_block`, on behalf of `array` (a compiler-assigned id carried
/// opaquely into the trace; [`NO_ARRAY`] when unknown).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Payload {
    pub start_block: usize,
    pub n_blocks: usize,
    pub array: u32,
}

/// Group the block range `[first, end)` into payloads of at most
/// `max_payload_bytes` (bulk transfer) or one block each (`bulk = false`).
pub fn group_payloads(
    first: usize,
    end: usize,
    block_bytes: usize,
    bulk: bool,
    max_payload_bytes: usize,
) -> Vec<Payload> {
    if end <= first {
        return vec![];
    }
    let per = if bulk {
        (max_payload_bytes / block_bytes).max(1)
    } else {
        1
    };
    let mut out = Vec::with_capacity((end - first).div_ceil(per));
    let mut b = first;
    while b < end {
        let n = per.min(end - b);
        out.push(Payload {
            start_block: b,
            n_blocks: n,
            array: NO_ARRAY,
        });
        b += n;
    }
    out
}

/// Minimum total transfer volume (in words) before [`Dsm::apply_plans`]
/// spawns threads: below this, thread startup dwarfs the payload copies
/// and a serial apply is faster. Determinism is unaffected either way.
pub const PAR_APPLY_MIN_WORDS: usize = 2048;

/// What an apply-stage [`TransferPlan`] does to its shard pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlanOp {
    /// §4.2 compiler-directed push, owner → reader (Figure 2D). The
    /// outcome feeds the destination's ctl inbox for `ready_to_recv`.
    Push,
    /// Non-owner-write flush, writer → owner, plus the in-pair tag flips
    /// (§4.2, non-owner writes). Directory and third-party home tags are
    /// folded after apply.
    Flush,
}

/// One unit of resolve-phase apply work: everything one (src, dst) node
/// pair exchanges this superstep. Plans for distinct pairs sharing no
/// node touch disjoint shards and may be applied concurrently; the
/// planner emits them in a stable (src, dst) order.
#[derive(Clone, Debug)]
pub struct TransferPlan {
    pub src: NodeId,
    pub dst: NodeId,
    pub op: PlanOp,
    /// Block ranges in call-site order. Ranges of distinct call sites may
    /// overlap; the resulting duplicate push is faithful to the direct
    /// path, which also re-sent the overlap.
    pub ranges: Vec<(usize, usize)>,
    /// Payload groupings ([`group_payloads`] per range, concatenated in
    /// range order).
    pub payloads: Vec<Payload>,
}

/// Capacity-retaining free lists for the plan/apply hot path: plan
/// *carcasses* (a [`TransferPlan`] whose `ranges`/`payloads` vectors are
/// emptied but keep their capacity) and outer plan vectors, recycled
/// across supersteps by [`Dsm::recycle_plans`] so steady-state planning
/// allocates nothing. Bounded so a pathological superstep cannot pin
/// unbounded memory.
#[derive(Default, Debug)]
pub(crate) struct PlanScratch {
    carcasses: Vec<TransferPlan>,
    vecs: fgdsm_tempest::VecPool<TransferPlan>,
}

/// Most carcasses a [`PlanScratch`] retains: enough for every (src, dst)
/// pair of an 8-node superstep with room to spare.
const PLAN_CARCASS_CAP: usize = 128;

impl PlanScratch {
    /// An empty plan for `(src, dst, op)` — recycled with warm
    /// `ranges`/`payloads` capacity when a carcass is available.
    fn take(&mut self, src: NodeId, dst: NodeId, op: PlanOp) -> TransferPlan {
        match self.carcasses.pop() {
            Some(mut p) => {
                p.src = src;
                p.dst = dst;
                p.op = op;
                p
            }
            None => TransferPlan {
                src,
                dst,
                op,
                ranges: vec![],
                payloads: vec![],
            },
        }
    }
}

/// One merged `send_range` call site: `owner` pushes blocks
/// `[first, end)` to every node in `readers`.
#[derive(Clone, Debug)]
pub struct SendEntry {
    pub owner: NodeId,
    pub readers: Vec<NodeId>,
    pub first: usize,
    pub end: usize,
    /// Compiler-assigned array id the range belongs to ([`NO_ARRAY`] when
    /// the caller has no array context). Threaded into the payloads and
    /// the [`Event::CtlSend`] trace events for the profiler.
    pub array: u32,
}

/// One pending non-owner-write flush call site: `writer` returns blocks
/// `[first, end)` to `owner`.
#[derive(Clone, Copy, Debug)]
pub struct FlushEntry {
    pub writer: NodeId,
    pub owner: NodeId,
    pub first: usize,
    pub end: usize,
    /// Compiler-assigned array id the range belongs to ([`NO_ARRAY`] when
    /// the caller has no array context).
    pub array: u32,
}

/// Cross-pair state staged by one plan's apply, folded in plan index
/// order after all pair-local work completes.
struct PlanOutcome {
    arrival: u64,
    payloads: u64,
    blocks: u64,
}

/// Pair-local apply of one plan: charges, message counters, and data
/// copies against exactly the two shards the plan names. Everything that
/// reaches beyond the pair is staged in the returned [`PlanOutcome`].
///
/// In strict wire mode `wire` carries the plan's decoded envelopes (one
/// per payload, filled by copying out of the source shard at *plan*
/// time) and the destination stores the envelope payload — the apply no
/// longer reads the source shard's memory. Accounting is identical
/// either way, so reports and traces cannot tell the paths apart.
fn apply_plan(
    plan: &TransferPlan,
    wire: Option<&[WireMsg]>,
    cfg: &CostModel,
    src: &mut NodeShard,
    dst: &mut NodeShard,
) -> PlanOutcome {
    let mut out = PlanOutcome {
        arrival: 0,
        payloads: 0,
        blocks: 0,
    };
    for (i, p) in plan.payloads.iter().enumerate() {
        let (s, _) = src.block_words(p.start_block);
        let (_, e) = src.block_words(p.start_block + p.n_blocks - 1);
        let bytes = (e - s) * 8;
        // Per message: the user-level protocol composes and tags the
        // payload (handler-side work at the sender), injects it, and
        // occupies the wire — grouping contiguous blocks into bulk
        // payloads amortizes everything but the wire.
        let compose = cfg.handler_cost(cfg.handler_dispatch_ns);
        src.charge(
            compose + cfg.msg_send_ns + bytes as u64 * cfg.per_byte_ns,
            ChargeKind::CtlCall,
        );
        src.note_msg_at(bytes, p.start_block);
        dst.note_msg_recv(bytes);
        if let Some(msgs) = wire {
            let words = msgs[i].words();
            debug_assert_eq!(words.len(), e - s, "wire payload vs plan geometry");
            let mem = dst.mem_mut();
            for (k, bits) in words.iter().enumerate() {
                mem[s + k] = f64::from_bits(*bits);
            }
        } else {
            dst.mem_mut()[s..e].copy_from_slice(&src.mem()[s..e]);
        }
        match plan.op {
            PlanOp::Push => {
                out.arrival = out.arrival.max(src.clock_ns() + cfg.net_latency_ns);
                out.payloads += 1;
                out.blocks += p.n_blocks as u64;
                src.record(Event::CtlSend {
                    blocks: p.n_blocks as u64,
                    first_block: p.start_block as u32,
                    array: p.array,
                });
            }
            PlanOp::Flush => {
                dst.charge_handler(cfg.handler_dispatch_ns + p.n_blocks as u64 * cfg.block_copy_ns);
            }
        }
    }
    if plan.op == PlanOp::Flush {
        let mut cost = 0;
        for &(f, e) in &plan.ranges {
            for b in f..e {
                src.set_tag(b, Access::Invalid);
                dst.set_tag(b, Access::ReadWrite);
                cost += cfg.tag_change_ns;
            }
        }
        src.charge(cost, ChargeKind::CtlCall);
    }
    out
}

/// Aggregate counters mirroring the per-primitive fields in
/// [`fgdsm_tempest::NodeStats`], summed over nodes — convenient for
/// assertions in tests and for the Figure 4 ablation harness.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct CtlStats {
    pub mk_writable: u64,
    pub implicit_writable: u64,
    pub implicit_invalidate: u64,
    pub send_range: u64,
    pub ready_recv: u64,
    pub flush_range: u64,
    pub blocks_pushed: u64,
}

impl Dsm {
    /// Sum the per-primitive call counters over all nodes.
    pub fn ctl_stats(&self) -> CtlStats {
        let mut s = CtlStats::default();
        for n in 0..self.cluster.nprocs() {
            let st = self.cluster.stats(n);
            s.mk_writable += st.mk_writable_calls;
            s.implicit_writable += st.implicit_writable_calls;
            s.implicit_invalidate += st.implicit_invalidate_calls;
            s.send_range += st.send_range_calls;
            s.ready_recv += st.ready_recv_calls;
            s.flush_range += st.flush_range_calls;
            s.blocks_pushed += st.blocks_pushed;
        }
        s
    }

    /// Bring blocks `[first, end)` writable at `owner`, as pipelined write
    /// faults (Figure 2B). After this call the directory records the owner
    /// as holding the current, only valid copy of every block — which is
    /// what frees the home of carrying one and makes `implicit_writable`
    /// at readers safe (the ordering is enforced by the barrier *between*
    /// the two calls).
    pub fn mk_writable(&mut self, owner: NodeId, first: usize, end: usize) {
        let cfg = self.cluster.cfg().clone();
        self.cluster.record(
            owner,
            Event::Ctl {
                prim: CtlPrim::MkWritable,
            },
        );
        self.cluster
            .charge(owner, CTL_CALL_BASE_NS, ChargeKind::CtlCall);
        if end <= first {
            return;
        }
        let (s0, _) = self.cluster.block_words(first);
        let (_, e1) = self.cluster.block_words(end - 1);
        self.cluster.map_range(owner, s0, e1 - s0);

        let mut latency_paid = false;
        for b in first..end {
            if self.cluster.tag(owner, b) == Access::ReadWrite
                && self.dir_state(b).is_excl_by(owner)
            {
                continue;
            }
            let h = self.cluster.home_of_block(b);
            let need_data = self.cluster.tag(owner, b) == Access::Invalid;
            // Pipelined: one wire latency for the whole train, per-block
            // injection/processing costs thereafter.
            let mut cost = cfg.msg_send_ns + cfg.tag_change_ns;
            if !latency_paid && h != owner {
                cost += cfg.net_latency_ns;
                latency_paid = true;
            }
            if h != owner {
                self.cluster.note_msg_at(owner, h, 8, b);
            }
            self.cluster
                .charge_handler(h, cfg.handler_dispatch_ns + cfg.dir_lookup_ns);
            // State transition: steal the block for the owner (invalidate
            // readers / flush a previous exclusive holder), without a fault.
            self.ctl_acquire_excl(owner, b, need_data, &mut cost);
            self.cluster.charge(owner, cost, ChargeKind::CtlCall);
        }
    }

    /// State manipulation shared by `mk_writable`: make `node` the
    /// exclusive writer of `b`, fetching data if `need_data`.
    fn ctl_acquire_excl(&mut self, node: NodeId, b: usize, need_data: bool, cost: &mut u64) {
        let cfg = self.cluster.cfg().clone();
        let h = self.cluster.home_of_block(b);
        let (s, e) = self.cluster.block_words(b);
        let cur = self.dir_state(b);
        if matches!(cur, DirState::Multi { .. }) {
            unreachable!("mk_writable on a Multi block: compiler ranges exclude boundaries")
        }
        let eff = trans::acquire_excl(cur, node, h);
        for r in DirState::nodes(eff.invalidate_readers) {
            if r != h {
                self.cluster.note_msg_at(h, r, 8, b);
            }
            self.cluster
                .charge_handler(r, cfg.handler_dispatch_ns + cfg.tag_change_ns);
            self.cluster.set_tag(r, b, Access::Invalid);
        }
        if let Some(owner) = eff.flush_owner {
            self.cluster
                .charge_handler(owner, cfg.handler_dispatch_ns + cfg.block_copy_ns);
            self.cluster.note_msg_at(owner, h, cfg.block_bytes, b);
            self.cluster
                .charge_handler(h, cfg.handler_dispatch_ns + cfg.block_copy_ns);
            self.wire_copy(owner, h, s, e - s);
            *cost += cfg.block_bytes as u64 * cfg.per_byte_ns;
        }
        if let Some(owner) = eff.invalidate_owner {
            self.cluster.set_tag(owner, b, Access::Invalid);
        }
        if need_data && node != h {
            self.cluster.charge_handler(h, cfg.block_copy_ns);
            self.cluster.note_msg_at(h, node, cfg.block_bytes, b);
            self.wire_copy(h, node, s, e - s);
            *cost += cfg.block_bytes as u64 * cfg.per_byte_ns + cfg.block_copy_ns;
        }
        if h != node {
            self.cluster.set_tag(h, b, Access::Invalid);
        }
        self.cluster.set_tag(node, b, Access::ReadWrite);
        self.set_dir(b, eff.next);
    }

    /// Tag blocks `[first, end)` ReadWrite at a reader, *without data*, so
    /// an incoming compiler-directed transfer can be stored (Figure 2C).
    /// With `memoize`, repeat calls on the same range pay only a test
    /// (§4.3). Returns true if the tags were actually changed.
    pub fn implicit_writable(
        &mut self,
        node: NodeId,
        first: usize,
        end: usize,
        memoize: bool,
    ) -> bool {
        let cfg = self.cluster.cfg().clone();
        self.cluster.record(
            node,
            Event::Ctl {
                prim: CtlPrim::ImplicitWritable,
            },
        );
        if memoize && self.iw_memo.contains(&(node, first, end)) {
            self.cluster.charge(node, MEMO_TEST_NS, ChargeKind::CtlCall);
            return false;
        }
        self.cluster
            .charge(node, CTL_CALL_BASE_NS, ChargeKind::CtlCall);
        if end <= first {
            return false;
        }
        let (s0, _) = self.cluster.block_words(first);
        let (_, e1) = self.cluster.block_words(end - 1);
        self.cluster.map_range(node, s0, e1 - s0);
        let mut cost = 0;
        for b in first..end {
            self.cluster.set_tag(node, b, Access::ReadWrite);
            cost += cfg.tag_change_ns;
        }
        self.cluster.charge(node, cost, ChargeKind::CtlCall);
        if memoize {
            self.iw_memo.insert((node, first, end));
        }
        true
    }

    /// Owner pushes blocks `[first, end)` to each reader in a specially
    /// tagged data message (Figure 2D). With `bulk`, contiguous blocks are
    /// grouped into payloads of up to `bulk_max_bytes` — the paper's
    /// "benefit of using larger block sizes". Thin wrapper over the
    /// plan/apply pipeline with one entry and a serial apply.
    pub fn send_range(
        &mut self,
        owner: NodeId,
        readers: &[NodeId],
        first: usize,
        end: usize,
        bulk: bool,
    ) {
        let plans = self.plan_sends(
            &[SendEntry {
                owner,
                readers: readers.to_vec(),
                first,
                end,
                array: NO_ARRAY,
            }],
            bulk,
        );
        self.apply_plans(&plans, 1);
        self.recycle_plans(plans);
    }

    /// Plan stage for a batch of compiler-directed pushes: records the ctl
    /// events and base charges at each owner, applies fault injection,
    /// groups payloads, and merges the entries into one [`TransferPlan`]
    /// per (owner, reader) pair, in stable (owner, reader) order.
    pub fn plan_sends(&mut self, entries: &[SendEntry], bulk: bool) -> Vec<TransferPlan> {
        use std::collections::BTreeMap;
        let cfg = self.cluster.cfg().clone();
        let mut plans: BTreeMap<(NodeId, NodeId), TransferPlan> = BTreeMap::new();
        for en in entries {
            self.cluster.record(
                en.owner,
                Event::Ctl {
                    prim: CtlPrim::SendRange,
                },
            );
            self.cluster
                .charge(en.owner, CTL_CALL_BASE_NS, ChargeKind::CtlCall);
            // Fault injection (must-catch): an off-by-one section bound —
            // the send delivers one block fewer than `implicit_writable`
            // promised, so the readers' last block is writable over stale
            // data.
            let end = if self.inj_skew_send_range() && en.end > en.first {
                en.end - 1
            } else {
                en.end
            };
            if end <= en.first {
                continue;
            }
            let mut payloads =
                group_payloads(en.first, end, cfg.block_bytes, bulk, cfg.bulk_max_bytes);
            for p in &mut payloads {
                p.array = en.array;
            }
            for &r in &en.readers {
                debug_assert_ne!(r, en.owner);
                // Fault injection (must-catch): a stale owner memo pushes
                // the *home's* copy — which the real owner never flushed —
                // whenever the home is a third party (§4.3 RTOE hazard).
                let src = trans::push_source(
                    en.owner,
                    r,
                    self.cluster.home_of_block(en.first),
                    self.inj_stale_owner_push(),
                );
                let plan = plans
                    .entry((src, r))
                    .or_insert_with(|| self.plan_scratch.take(src, r, PlanOp::Push));
                plan.ranges.push((en.first, end));
                plan.payloads.extend(payloads.iter().copied());
            }
        }
        let mut out = self.plan_scratch.vecs.take();
        out.extend(plans.into_values());
        self.wire_post_plan_frames(&out);
        out
    }

    /// Plan stage for the pending non-owner-write flushes: records the ctl
    /// events and base charges at each writer and merges the entries into
    /// one [`TransferPlan`] per (writer, owner) pair.
    pub fn plan_flushes(&mut self, entries: &[FlushEntry], bulk: bool) -> Vec<TransferPlan> {
        use std::collections::BTreeMap;
        // Fault injection (must-catch): drop the flushes on the floor. The
        // writers' modifications never reach the owners, whose copies go
        // stale — later owner-side sends then push wrong values.
        if self.inj_skip_flush_range() {
            return vec![];
        }
        let cfg = self.cluster.cfg().clone();
        let mut plans: BTreeMap<(NodeId, NodeId), TransferPlan> = BTreeMap::new();
        for en in entries {
            self.cluster.record(
                en.writer,
                Event::Ctl {
                    prim: CtlPrim::FlushRange,
                },
            );
            self.cluster
                .charge(en.writer, CTL_CALL_BASE_NS, ChargeKind::CtlCall);
            if en.end <= en.first {
                continue;
            }
            let mut payloads =
                group_payloads(en.first, en.end, cfg.block_bytes, bulk, cfg.bulk_max_bytes);
            for p in &mut payloads {
                p.array = en.array;
            }
            let plan = plans
                .entry((en.writer, en.owner))
                .or_insert_with(|| self.plan_scratch.take(en.writer, en.owner, PlanOp::Flush));
            plan.ranges.push((en.first, en.end));
            plan.payloads.extend(payloads);
        }
        let mut out = self.plan_scratch.vecs.take();
        out.extend(plans.into_values());
        self.wire_post_plan_frames(&out);
        out
    }

    /// Return a spent plan batch to the scratch pool: the outer vector
    /// and each plan's `ranges`/`payloads` capacity are retained for the
    /// next superstep's planning pass. Purely an allocation optimization
    /// — dropping the batch instead is always correct.
    pub fn recycle_plans(&mut self, mut plans: Vec<TransferPlan>) {
        for mut p in plans.drain(..) {
            if self.plan_scratch.carcasses.len() < PLAN_CARCASS_CAP {
                p.ranges.clear();
                p.payloads.clear();
                self.plan_scratch.carcasses.push(p);
            }
        }
        self.plan_scratch.vecs.put(plans);
    }

    /// Strict wire mode's encode half of the plan/apply pipeline: as soon
    /// as a plan batch is finalized, fill one envelope per payload by
    /// copying out of the source shard, encode it, and post the frame to
    /// the destination's mailbox. From this point the plan no longer
    /// needs the source shard alive — apply reads the decoded payload.
    /// No-op on the fast path.
    fn wire_post_plan_frames(&mut self, plans: &[TransferPlan]) {
        if self.wire.is_none() {
            return;
        }
        let mut undercount = self.take_undercount_token();
        for plan in plans {
            let ctx = self.cluster.node_trace(plan.src).context();
            for p in &plan.payloads {
                let (s, _) = self.cluster.block_words(p.start_block);
                let (_, e) = self.cluster.block_words(p.start_block + p.n_blocks - 1);
                let mut words = self.wire.as_mut().unwrap().words_pool.take();
                words.extend(
                    self.cluster.node_mem(plan.src)[s..e]
                        .iter()
                        .map(|x| x.to_bits()),
                );
                let hdr = WireHeader::for_blocks(
                    plan.src,
                    plan.dst,
                    ctx,
                    p.array,
                    p.start_block,
                    p.n_blocks,
                );
                let msg = match plan.op {
                    PlanOp::Push => WireMsg::Push {
                        hdr,
                        start_block: p.start_block as u32,
                        n_blocks: p.n_blocks as u32,
                        words,
                    },
                    PlanOp::Flush => WireMsg::Flush {
                        hdr,
                        start_block: p.start_block as u32,
                        n_blocks: p.n_blocks as u32,
                        words,
                    },
                };
                let w = self.wire.as_mut().unwrap();
                let mut buf = w.mailbox.take_buf();
                let t_enc = w.stopwatch();
                msg.encode(&mut buf);
                let encode_ns = t_enc.map_or(0, |t| t.elapsed().as_nanos() as u64);
                w.note_encoded(
                    msg.kind(),
                    plan.dst,
                    msg.payload_bytes(),
                    encode_ns,
                    std::mem::take(&mut undercount),
                );
                w.words_pool.put(msg.into_words());
                w.mailbox.post(plan.dst, buf);
            }
        }
    }

    /// Strict wire mode's delivery stage: drain each destination's posted
    /// frames from the mailbox, carry them through the transport, and
    /// decode them back into envelopes in plan order (per-destination
    /// FIFO order matches posting order, so frame *i* of a destination's
    /// batch is payload *i* of its plans in batch order). Returns `None`
    /// on the fast path. A frame the decoder rejects fails the run loudly.
    fn wire_deliver(&mut self, plans: &[TransferPlan]) -> Option<Vec<Vec<WireMsg>>> {
        use std::collections::{BTreeMap, VecDeque};
        self.wire.as_ref()?;
        let mut corrupt = self.take_corrupt_token();
        let w = self.wire.as_mut().unwrap();
        let mut routed: BTreeMap<NodeId, VecDeque<Vec<u8>>> = BTreeMap::new();
        for plan in plans {
            if routed.contains_key(&plan.dst) {
                continue;
            }
            let mut frames = w.mailbox.take_inbox(plan.dst);
            if corrupt {
                if let Some(f) = frames.first_mut() {
                    crate::proto::corrupt_frame(f);
                    corrupt = false;
                }
            }
            let frames = w.route(plan.dst, frames);
            routed.insert(plan.dst, frames.into());
        }
        let mut decoded = Vec::with_capacity(plans.len());
        for plan in plans {
            let q = routed.get_mut(&plan.dst).expect("routed batch per dst");
            let mut msgs = Vec::with_capacity(plan.payloads.len());
            for _ in 0..plan.payloads.len() {
                let frame = q.pop_front().expect("wire: frame for planned payload");
                let t_dec = w.stopwatch();
                match WireMsg::from_bytes(&frame) {
                    Ok(m) => {
                        w.lap(
                            &format!("decode.{}", fgdsm_tempest::metrics::class_name(m.kind())),
                            t_dec,
                        );
                        msgs.push(m);
                    }
                    Err(e) => panic!("wire: envelope decode failed at node {}: {e}", plan.dst),
                }
                w.mailbox.recycle_buf(frame);
            }
            decoded.push(msgs);
        }
        debug_assert!(routed.values().all(|q| q.is_empty()));
        debug_assert!(w.mailbox.all_delivered());
        Some(decoded)
    }

    /// Apply stage: execute the plans' pair-local work over disjoint shard
    /// pairs — concurrently with up to `workers` threads where plans share
    /// no node — then fold the staged cross-pair state (ctl inboxes,
    /// directory, third-party home tags) in plan index order. Plans that
    /// share a node are applied in strict plan order (wave scheduling in
    /// [`fgdsm_tempest::Cluster::apply_pairwise`]), so reports and traces
    /// are byte-identical to a serial apply.
    pub fn apply_plans(&mut self, plans: &[TransferPlan], workers: usize) {
        if plans.is_empty() {
            return;
        }
        let decoded = self.wire_deliver(plans);
        let cfg = self.cluster.cfg().clone();
        let mut order: Vec<usize> = (0..plans.len()).collect();
        if workers > 1 && self.inj_reorder_plan_apply() {
            // Fault injection (must-catch): a nondeterministic merge —
            // apply the plans in reversed order under a parallel resolve.
            // Computed before the volume threshold so the reversal is not
            // masked by a small transfer falling back to a serial apply.
            order.reverse();
        }
        // Fault injection (must-catch): fold the parallel outcomes rotated
        // out of plan-index order — the bug a worker-pool merge could
        // introduce. Decided before the volume threshold, like the
        // reorder injection, so small transfers don't mask it.
        let misfold = workers > 1 && self.inj_misfold_pool();
        let total_words: usize = plans
            .iter()
            .flat_map(|p| p.payloads.iter())
            .map(|q| q.n_blocks)
            .sum::<usize>()
            * self.cluster.cfg().words_per_block();
        let workers = if total_words < PAR_APPLY_MIN_WORDS {
            1
        } else {
            workers
        };
        let pairs: Vec<(NodeId, NodeId)> = order
            .iter()
            .map(|&i| (plans[i].src, plans[i].dst))
            .collect();
        let order_ref = &order;
        let decoded_ref = decoded.as_deref();
        let mut outcomes = self.cluster.apply_pairwise(&pairs, workers, |k, sa, sb| {
            let j = order_ref[k];
            apply_plan(
                &plans[j],
                decoded_ref.map(|d| d[j].as_slice()),
                &cfg,
                sa,
                sb,
            )
        });
        if misfold && outcomes.len() > 1 {
            outcomes.rotate_left(1);
        }
        for (k, o) in outcomes.into_iter().enumerate() {
            let plan = &plans[order[k]];
            match plan.op {
                PlanOp::Push => {
                    self.inbox_arrival[plan.dst] = self.inbox_arrival[plan.dst].max(o.arrival);
                    self.inbox_payloads[plan.dst] += o.payloads;
                    self.inbox_blocks[plan.dst] += o.blocks;
                }
                PlanOp::Flush => {
                    for &(f, e) in &plan.ranges {
                        for b in f..e {
                            let h = self.cluster.home_of_block(b);
                            let (invalidate_home, next) = trans::flush_fold(plan.src, plan.dst, h);
                            if invalidate_home {
                                self.cluster.set_tag(h, b, Access::Invalid);
                            }
                            self.set_dir(b, next);
                        }
                    }
                }
            }
        }
        if let Some(d) = decoded {
            let w = self.wire.as_mut().expect("wire state present when strict");
            for msgs in d {
                for m in msgs {
                    w.words_pool.put(m.into_words());
                }
            }
        }
    }

    /// Block on the counting semaphore until every pushed payload has
    /// arrived and been stored (Figure 2D).
    pub fn ready_to_recv(&mut self, node: NodeId) {
        let cfg = self.cluster.cfg().clone();
        self.cluster.record(
            node,
            Event::Ctl {
                prim: CtlPrim::ReadyToRecv,
            },
        );
        self.cluster
            .charge(node, CTL_CALL_BASE_NS, ChargeKind::CtlCall);
        let arrival = self.inbox_arrival[node];
        let now = self.cluster.clock_ns(node);
        if arrival > now {
            self.cluster.charge(node, arrival - now, ChargeKind::Stall);
        }
        // Storing the payloads occupies the receiving side; the semaphore
        // holds the compute thread until it completes.
        let work = self.inbox_payloads[node] * cfg.handler_cost(cfg.handler_dispatch_ns)
            + self.inbox_blocks[node] * cfg.handler_cost(cfg.block_copy_ns);
        self.cluster.record(node, Event::Handler { ns: work });
        self.cluster.charge(node, work, ChargeKind::Stall);
        self.inbox_arrival[node] = 0;
        self.inbox_payloads[node] = 0;
        self.inbox_blocks[node] = 0;
    }

    /// Readers discard their (compiler-controlled) copies so the
    /// directory's record — exclusive at the owner — is true again
    /// (Figure 2F).
    pub fn implicit_invalidate(&mut self, node: NodeId, first: usize, end: usize) {
        let cfg = self.cluster.cfg().clone();
        self.cluster.record(
            node,
            Event::Ctl {
                prim: CtlPrim::ImplicitInvalidate,
            },
        );
        self.cluster
            .charge(node, CTL_CALL_BASE_NS, ChargeKind::CtlCall);
        let mut cost = 0;
        for b in first..end {
            self.cluster.set_tag(node, b, Access::Invalid);
            cost += cfg.tag_change_ns;
        }
        self.cluster.charge(node, cost, ChargeKind::CtlCall);
        // Invalidate conflicts with memoized implicit_writable on the same
        // range (the memo would skip re-tagging): drop any overlapping memo.
        self.iw_memo
            .retain(|&(n, f, e)| n != node || e <= first || f >= end);
    }

    /// A non-owner writer flushes its modifications of `[first, end)` back
    /// to the owner and invalidates itself (§4.2, non-owner writes). The
    /// owner ends with the only, current, writable copy and the directory
    /// reflects it. Thin wrapper over the plan/apply pipeline with one
    /// entry and a serial apply.
    pub fn flush_range(
        &mut self,
        writer: NodeId,
        owner: NodeId,
        first: usize,
        end: usize,
        bulk: bool,
    ) {
        let plans = self.plan_flushes(
            &[FlushEntry {
                writer,
                owner,
                first,
                end,
                array: NO_ARRAY,
            }],
            bulk,
        );
        self.apply_plans(&plans, 1);
        self.recycle_plans(plans);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdsm_tempest::{Cluster, CostModel, HomePolicy, SegmentLayout};

    fn dsm(nprocs: usize) -> Dsm {
        let cfg = CostModel::paper_dual_cpu();
        let mut layout = SegmentLayout::new(cfg.words_per_page());
        layout.alloc(8192);
        Dsm::new(Cluster::new(nprocs, cfg, &layout, HomePolicy::RoundRobin))
    }

    #[test]
    fn payload_grouping_bulk_vs_single() {
        let single = group_payloads(0, 10, 128, false, 4096);
        assert_eq!(single.len(), 10);
        assert!(single.iter().all(|p| p.n_blocks == 1));
        let bulk = group_payloads(0, 10, 128, true, 4096); // 32 blocks per payload
        assert_eq!(bulk.len(), 1);
        assert_eq!(bulk[0].n_blocks, 10);
        let bulk2 = group_payloads(0, 70, 128, true, 4096);
        assert_eq!(bulk2.len(), 3);
        assert_eq!(bulk2.iter().map(|p| p.n_blocks).sum::<usize>(), 70);
        assert!(group_payloads(5, 5, 128, true, 4096).is_empty());
    }

    #[test]
    fn full_contract_moves_data_without_misses() {
        let mut d = dsm(2);
        // Owner = node 1 for blocks 0..4 (home = node 0 for page 0).
        d.mk_writable(1, 0, 4);
        d.release_barrier();
        d.implicit_writable(0, 0, 4, false);
        d.release_barrier();
        // Owner computes and pushes.
        for w in 0..64 {
            d.cluster.node_mem_mut(1)[w] = w as f64;
        }
        d.send_range(1, &[0], 0, 4, true);
        d.ready_to_recv(0);
        // Reader sees the data fault-free.
        assert_eq!(d.cluster.node_mem(0)[63], 63.0);
        assert_eq!(d.cluster.stats(0).read_misses, 0);
        assert_eq!(d.cluster.stats(0).write_misses, 0);
        // Cleanup: invalidate readers, barrier → consistent.
        d.implicit_invalidate(0, 0, 4);
        d.release_barrier();
        d.check_consistency().unwrap();
        assert!(d.dir_state(0).is_excl_by(1));
    }

    #[test]
    fn mk_writable_takes_exclusive_ownership() {
        let mut d = dsm(4);
        // Home of block 0 is node 0; a third node has read it.
        d.read_access(2, 0);
        d.mk_writable(1, 0, 2);
        assert!(d.dir_state(0).is_excl_by(1));
        assert!(d.dir_state(1).is_excl_by(1));
        assert_eq!(d.cluster.tag(2, 0), Access::Invalid);
        assert_eq!(d.cluster.tag(0, 0), Access::Invalid);
        assert_eq!(d.cluster.tag(1, 0), Access::ReadWrite);
        // Not counted as misses.
        assert_eq!(d.cluster.stats(1).write_misses, 0);
        assert_eq!(d.cluster.stats(1).mk_writable_calls, 1);
    }

    #[test]
    fn mk_writable_idempotent_and_cheap_second_time() {
        let mut d = dsm(2);
        d.mk_writable(1, 0, 8);
        let t = d.cluster.clock_ns(1);
        d.mk_writable(1, 0, 8);
        let dt = d.cluster.clock_ns(1) - t;
        assert!(
            dt <= CTL_CALL_BASE_NS,
            "second call should skip all blocks, cost {dt}"
        );
    }

    #[test]
    fn implicit_writable_memo_fast_path() {
        let mut d = dsm(2);
        assert!(d.implicit_writable(0, 0, 8, true));
        let t = d.cluster.clock_ns(0);
        assert!(!d.implicit_writable(0, 0, 8, true));
        assert_eq!(d.cluster.clock_ns(0) - t, MEMO_TEST_NS);
        // Different range: full path again.
        assert!(d.implicit_writable(0, 8, 16, true));
    }

    #[test]
    fn implicit_invalidate_clears_memo() {
        let mut d = dsm(2);
        d.implicit_writable(0, 0, 8, true);
        d.implicit_invalidate(0, 0, 8);
        assert_eq!(d.cluster.tag(0, 0), Access::Invalid);
        // Memo dropped → next call re-tags.
        assert!(d.implicit_writable(0, 0, 8, true));
        assert_eq!(d.cluster.tag(0, 0), Access::ReadWrite);
    }

    #[test]
    fn bulk_transfer_sends_fewer_messages() {
        let mut d1 = dsm(2);
        let mut d2 = dsm(2);
        for d in [&mut d1, &mut d2] {
            d.mk_writable(1, 0, 32);
            d.implicit_writable(0, 0, 32, false);
        }
        d1.send_range(1, &[0], 0, 32, false);
        d2.send_range(1, &[0], 0, 32, true);
        let m1 = d1.cluster.stats(1).msgs_sent;
        let m2 = d2.cluster.stats(1).msgs_sent;
        assert!(m2 < m1, "bulk {m2} should be fewer than per-block {m1}");
        // Same bytes of payload either way.
        d1.ready_to_recv(0);
        d2.ready_to_recv(0);
        assert!(
            d2.cluster.clock_ns(0) < d1.cluster.clock_ns(0),
            "bulk transfer should complete sooner"
        );
    }

    #[test]
    fn flush_range_returns_data_to_owner() {
        let mut d = dsm(2);
        // Owner node 0 (also home); writer node 1 modifies blocks 0..2.
        d.mk_writable(0, 0, 2);
        d.implicit_writable(1, 0, 2, false);
        d.cluster.node_mem_mut(1)[5] = 5.5;
        d.flush_range(1, 0, 0, 2, true);
        assert_eq!(d.cluster.node_mem(0)[5], 5.5);
        assert_eq!(d.cluster.tag(1, 0), Access::Invalid);
        assert_eq!(d.cluster.tag(0, 0), Access::ReadWrite);
        assert!(d.dir_state(0).is_excl_by(0));
        d.release_barrier();
        d.check_consistency().unwrap();
    }

    #[test]
    fn ready_to_recv_waits_for_arrival() {
        let mut d = dsm(2);
        d.mk_writable(1, 0, 16);
        d.implicit_writable(0, 0, 16, false);
        // Node 0's clock is far behind node 1's by now? Equalize first.
        d.release_barrier();
        d.send_range(1, &[0], 0, 16, true);
        let before = d.cluster.clock_ns(0);
        d.ready_to_recv(0);
        assert!(d.cluster.clock_ns(0) > before);
        assert!(d.cluster.stats(0).stall_ns > 0);
    }

    /// Expand a plan's payloads into the flat block list they deliver.
    fn payload_blocks(p: &TransferPlan) -> Vec<usize> {
        p.payloads
            .iter()
            .flat_map(|q| q.start_block..q.start_block + q.n_blocks)
            .collect()
    }

    /// An empty range is pure bookkeeping: the call-site event and base
    /// charge land at the owner, but no plan (and no data movement) is
    /// emitted — exactly what the direct path did.
    #[test]
    fn plan_sends_empty_range_is_bookkeeping_only() {
        let mut d = dsm(2);
        let t0 = d.cluster.clock_ns(1);
        let plans = d.plan_sends(
            &[SendEntry {
                owner: 1,
                readers: vec![0],
                first: 4,
                end: 4,
                array: NO_ARRAY,
            }],
            true,
        );
        assert!(plans.is_empty(), "empty range must plan nothing");
        assert_eq!(d.cluster.stats(1).send_range_calls, 1);
        assert_eq!(d.cluster.clock_ns(1) - t0, CTL_CALL_BASE_NS);
        d.apply_plans(&plans, 4); // no-op, must not panic or charge
        assert_eq!(d.cluster.clock_ns(1) - t0, CTL_CALL_BASE_NS);
    }

    /// A one-block range becomes one plan per reader carrying exactly that
    /// block.
    #[test]
    fn plan_sends_one_block() {
        let mut d = dsm(3);
        let plans = d.plan_sends(
            &[SendEntry {
                owner: 0,
                readers: vec![2, 1],
                first: 7,
                end: 8,
                array: NO_ARRAY,
            }],
            false,
        );
        assert_eq!(plans.len(), 2);
        // Stable (src, dst) order regardless of the readers' order.
        assert_eq!((plans[0].src, plans[0].dst), (0, 1));
        assert_eq!((plans[1].src, plans[1].dst), (0, 2));
        for p in &plans {
            assert_eq!(p.op, PlanOp::Push);
            assert_eq!(p.ranges, vec![(7, 8)]);
            assert_eq!(payload_blocks(p), vec![7]);
        }
    }

    /// A range crossing a page boundary still tiles exactly `[first, end)`
    /// — payload grouping is in block space and never splits or pads at
    /// page edges.
    #[test]
    fn plan_sends_cross_page_range() {
        let mut d = dsm(2);
        let blocks_per_page = d.cluster.words_per_page() / d.cluster.words_per_block();
        let (f, e) = (blocks_per_page - 2, blocks_per_page + 3);
        assert_ne!(
            d.cluster.home_of_block(f),
            d.cluster.home_of_block(e - 1),
            "range must actually span two differently-homed pages"
        );
        for bulk in [false, true] {
            let plans = d.plan_sends(
                &[SendEntry {
                    owner: 1,
                    readers: vec![0],
                    first: f,
                    end: e,
                    array: NO_ARRAY,
                }],
                bulk,
            );
            assert_eq!(plans.len(), 1);
            assert_eq!(payload_blocks(&plans[0]), (f..e).collect::<Vec<_>>());
        }
    }

    /// Multi-entry, multi-reader: the plans partition exactly the blocks
    /// the direct path (one `send_range` per entry) would have pushed —
    /// per (owner, reader) pair, the payload blocks are the concatenation
    /// of that pair's entry ranges, in entry order, nothing more or less.
    #[test]
    fn plans_partition_direct_path_blocks() {
        use std::collections::BTreeMap;
        let mut d = dsm(4);
        let entries = [
            SendEntry {
                owner: 1,
                readers: vec![0, 2],
                first: 0,
                end: 5,
                array: NO_ARRAY,
            },
            SendEntry {
                owner: 3,
                readers: vec![0],
                first: 10,
                end: 11,
                array: NO_ARRAY,
            },
            SendEntry {
                owner: 1,
                readers: vec![2],
                first: 3, // overlaps the first entry: re-pushed, like the direct path
                end: 9,
                array: NO_ARRAY,
            },
        ];
        let plans = d.plan_sends(&entries, true);
        let mut expect: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        for en in &entries {
            for &r in &en.readers {
                expect
                    .entry((en.owner, r))
                    .or_default()
                    .extend(en.first..en.end);
            }
        }
        assert_eq!(plans.len(), expect.len());
        for p in &plans {
            assert_eq!(
                payload_blocks(p),
                expect[&(p.src, p.dst)],
                "plan {} -> {} must carry exactly the direct path's blocks",
                p.src,
                p.dst
            );
        }
    }

    /// Batched plan/apply is observably identical to the direct per-entry
    /// `send_range` path: same clocks, same stats, same memory, and the
    /// same `ready_to_recv` stall at every reader.
    #[test]
    fn batched_plan_apply_matches_direct_send_range() {
        let entries = [
            SendEntry {
                owner: 1,
                readers: vec![0, 2],
                first: 0,
                end: 12,
                array: NO_ARRAY,
            },
            SendEntry {
                owner: 3,
                readers: vec![2],
                first: 16,
                end: 40,
                array: NO_ARRAY,
            },
        ];
        let mut direct = dsm(4);
        let mut batched = dsm(4);
        for d in [&mut direct, &mut batched] {
            for w in 0..1024 {
                d.cluster.node_mem_mut(w % 4)[w] = w as f64 + 0.5;
            }
        }
        for en in &entries {
            direct.send_range(en.owner, &en.readers, en.first, en.end, true);
        }
        let plans = batched.plan_sends(&entries, true);
        batched.apply_plans(&plans, 1);
        for n in [0, 2] {
            direct.ready_to_recv(n);
            batched.ready_to_recv(n);
        }
        for n in 0..4 {
            assert_eq!(
                direct.cluster.clock_ns(n),
                batched.cluster.clock_ns(n),
                "clock of node {n}"
            );
            assert_eq!(
                direct.cluster.stats(n),
                batched.cluster.stats(n),
                "stats of node {n}"
            );
            assert_eq!(
                direct.cluster.node_mem(n),
                batched.cluster.node_mem(n),
                "memory of node {n}"
            );
        }
    }

    /// Above the volume threshold, a threaded apply must stay byte-
    /// identical to the serial apply — clocks, stats, memory, and trace.
    #[test]
    fn apply_plans_threaded_matches_serial() {
        let entries = [
            SendEntry {
                owner: 0,
                readers: vec![1],
                first: 0,
                end: 160,
                array: NO_ARRAY,
            },
            SendEntry {
                owner: 2,
                readers: vec![3],
                first: 200,
                end: 360,
                array: NO_ARRAY,
            },
            SendEntry {
                owner: 0,
                readers: vec![1], // merges into the (0, 1) plan: two ranges
                first: 400,
                end: 410,
                array: NO_ARRAY,
            },
        ];
        let run = |workers: usize| {
            let mut d = dsm(4);
            let wpb = d.cluster.words_per_block();
            assert!(
                330 * wpb >= PAR_APPLY_MIN_WORDS,
                "volume must clear the serial-apply threshold"
            );
            for w in 0..8192 {
                d.cluster.node_mem_mut(w % 4)[w] = w as f64 * 1.5;
            }
            let plans = d.plan_sends(&entries, true);
            assert_eq!(plans.len(), 2, "the (0, 1) entries must merge");
            assert_eq!(plans[0].ranges.len(), 2);
            d.apply_plans(&plans, workers);
            d.ready_to_recv(1);
            d.ready_to_recv(3);
            d
        };
        let serial = run(1);
        let threaded = run(4);
        for n in 0..4 {
            assert_eq!(
                serial.cluster.clock_ns(n),
                threaded.cluster.clock_ns(n),
                "clock of node {n}"
            );
            assert_eq!(
                serial.cluster.stats(n),
                threaded.cluster.stats(n),
                "stats of node {n}"
            );
            assert_eq!(
                serial.cluster.node_mem(n),
                threaded.cluster.node_mem(n),
                "memory of node {n}"
            );
        }
        assert_eq!(serial.cluster.trace_json(), threaded.cluster.trace_json());
    }

    /// Flush plans partition the flushed blocks the same way, and an empty
    /// flush entry plans nothing.
    #[test]
    fn plan_flushes_partition_and_edge_cases() {
        let mut d = dsm(3);
        let entries = [
            FlushEntry {
                writer: 1,
                owner: 0,
                first: 0,
                end: 4,
                array: NO_ARRAY,
            },
            FlushEntry {
                writer: 1,
                owner: 0,
                first: 6,
                end: 6, // empty: bookkeeping only
                array: NO_ARRAY,
            },
            FlushEntry {
                writer: 2,
                owner: 0,
                first: 8,
                end: 9,
                array: NO_ARRAY,
            },
        ];
        let plans = d.plan_flushes(&entries, true);
        assert_eq!(plans.len(), 2);
        assert_eq!((plans[0].src, plans[0].dst), (1, 0));
        assert_eq!(plans[0].op, PlanOp::Flush);
        assert_eq!(payload_blocks(&plans[0]), vec![0, 1, 2, 3]);
        assert_eq!((plans[1].src, plans[1].dst), (2, 0));
        assert_eq!(payload_blocks(&plans[1]), vec![8]);
        // The empty entry still paid its call-site bookkeeping.
        assert_eq!(d.cluster.stats(1).flush_range_calls, 2);
    }

    #[test]
    fn ctl_stats_aggregate() {
        let mut d = dsm(2);
        d.mk_writable(1, 0, 4);
        d.implicit_writable(0, 0, 4, false);
        d.send_range(1, &[0], 0, 4, true);
        d.ready_to_recv(0);
        d.implicit_invalidate(0, 0, 4);
        let s = d.ctl_stats();
        assert_eq!(s.mk_writable, 1);
        assert_eq!(s.implicit_writable, 1);
        assert_eq!(s.send_range, 1);
        assert_eq!(s.ready_recv, 1);
        assert_eq!(s.implicit_invalidate, 1);
        assert_eq!(s.blocks_pushed, 4);
    }
}
