//! The message-passing backend: PGI's message-passing run-time ported to
//! Tempest messages (§5–§6).
//!
//! The paper compares its shared-memory versions against `pghpf`'s
//! message-passing backend running over Tempest's messaging layer, and
//! observes that message passing wins only on `lu` — elsewhere it runs
//! *slower* than the dual-cpu shared-memory versions, "particularly so in
//! cg", which the authors attribute to per-message bottlenecks in the
//! PGI messaging run-time. This module models exactly that: transfers move
//! real data between node copies with no coherence state at all, paying a
//! fixed per-message software overhead (`mp_per_message_ns`) plus a
//! per-element marshalling cost (`mp_per_element_ns`) on each side.

use crate::proto::Dsm;
use crate::wire::{WireHeader, WireMsg};
use fgdsm_tempest::{ChargeKind, Cluster, Event, NodeId, ReduceOp, NO_ARRAY, NO_BLOCK};

/// A planned batch of strided sends from one source to one destination —
/// the message-passing analogue of [`crate::ctl::TransferPlan`], applied
/// by [`MpRuntime::apply_send_plans`].
#[derive(Clone, Debug)]
pub struct MpSendPlan {
    pub src: NodeId,
    pub dst: NodeId,
    /// `(base, run_len, stride, count)` sections in call-site order.
    pub sections: Vec<(usize, usize, usize, usize)>,
}

/// Runtime state of the message-passing backend: per-node inbox arrival
/// times and pending unpack work.
pub struct MpRuntime {
    inbox_arrival: Vec<u64>,
    inbox_msgs: Vec<u64>,
    inbox_elems: Vec<u64>,
    /// Bytes delivered pre-packed (broadcast images): receivers only pay
    /// a contiguous copy, not per-element unmarshalling.
    inbox_bulk_bytes: Vec<u64>,
    /// Free lists for [`MpSendPlan`] batches, recycled across supersteps
    /// by [`MpRuntime::recycle_send_plans`] (capacity-retaining, like the
    /// ctl backend's plan scratch).
    plan_carcasses: Vec<MpSendPlan>,
    plan_vecs: fgdsm_tempest::VecPool<MpSendPlan>,
}

/// Most plan carcasses the runtime retains (see `PLAN_CARCASS_CAP` in
/// `ctl`): bounds scratch memory under pathological plan counts.
const MP_PLAN_CARCASS_CAP: usize = 128;

impl MpRuntime {
    /// Create the runtime for an `nprocs`-node cluster.
    pub fn new(nprocs: usize) -> Self {
        MpRuntime {
            inbox_arrival: vec![0; nprocs],
            inbox_msgs: vec![0; nprocs],
            inbox_elems: vec![0; nprocs],
            inbox_bulk_bytes: vec![0; nprocs],
            plan_carcasses: Vec::new(),
            plan_vecs: fgdsm_tempest::VecPool::default(),
        }
    }

    /// An empty [`MpSendPlan`] for `(src, dst)` — recycled with warm
    /// `sections` capacity when a carcass is available.
    pub fn take_send_plan(&mut self, src: NodeId, dst: NodeId) -> MpSendPlan {
        match self.plan_carcasses.pop() {
            Some(mut p) => {
                p.src = src;
                p.dst = dst;
                p
            }
            None => MpSendPlan {
                src,
                dst,
                sections: vec![],
            },
        }
    }

    /// An empty plan vector recycled from the scratch pool.
    pub fn take_send_plan_vec(&mut self) -> Vec<MpSendPlan> {
        self.plan_vecs.take()
    }

    /// Return a spent plan batch to the scratch pool (outer vector and
    /// each plan's `sections` capacity retained). Purely an allocation
    /// optimization — dropping the batch is always correct.
    pub fn recycle_send_plans(&mut self, mut plans: Vec<MpSendPlan>) {
        for mut p in plans.drain(..) {
            if self.plan_carcasses.len() < MP_PLAN_CARCASS_CAP {
                p.sections.clear();
                self.plan_carcasses.push(p);
            }
        }
        self.plan_vecs.put(plans);
    }

    /// Send `len` words starting at word offset `start` from `src`'s copy
    /// to `dst`'s copy, as one marshalled message.
    pub fn send(&mut self, cl: &mut Cluster, src: NodeId, dst: NodeId, start: usize, len: usize) {
        assert_ne!(src, dst);
        let cfg = cl.cfg().clone();
        let bytes = len * 8;
        // Sender: runtime overhead + pack + inject + wire occupancy.
        let cost = cfg.mp_per_message_ns
            + len as u64 * cfg.mp_per_element_ns
            + cfg.msg_send_ns
            + bytes as u64 * cfg.per_byte_ns;
        cl.charge(src, cost, ChargeKind::Stall);
        cl.note_msg_at(src, dst, bytes, start / cfg.words_per_block());
        cl.copy_words(src, dst, start, len);
        cl.map_range(dst, start, len);
        let arrival = cl.clock_ns(src) + cfg.net_latency_ns;
        self.inbox_arrival[dst] = self.inbox_arrival[dst].max(arrival);
        self.inbox_msgs[dst] += 1;
        self.inbox_elems[dst] += len as u64;
    }

    /// Send a strided region as `count` runs of `run_len` words separated
    /// by `stride` — marshalled into a single message (the MP runtime
    /// packs non-contiguous sections).
    #[allow(clippy::too_many_arguments)]
    pub fn send_strided(
        &mut self,
        cl: &mut Cluster,
        src: NodeId,
        dst: NodeId,
        base: usize,
        run_len: usize,
        stride: usize,
        count: usize,
    ) {
        assert_ne!(src, dst);
        let cfg = cl.cfg().clone();
        let elems = run_len * count;
        let bytes = elems * 8;
        // The ported runtime issues one message per contiguous run of the
        // section, paying its software overhead each time — cheap for
        // whole-column ghosts, expensive for the pencil-shaped 3-D
        // sections of pde.
        let cost = count as u64 * (cfg.mp_per_message_ns + cfg.msg_send_ns)
            + elems as u64 * cfg.mp_per_element_ns
            + bytes as u64 * cfg.per_byte_ns;
        cl.charge(src, cost, ChargeKind::Stall);
        for i in 0..count {
            let s = base + i * stride;
            cl.note_msg_at(src, dst, run_len * 8, s / cfg.words_per_block());
            cl.copy_words(src, dst, s, run_len);
            cl.map_range(dst, s, run_len);
        }
        let arrival = cl.clock_ns(src) + cfg.net_latency_ns;
        self.inbox_arrival[dst] = self.inbox_arrival[dst].max(arrival);
        self.inbox_msgs[dst] += count as u64;
        self.inbox_elems[dst] += elems as u64;
    }

    /// Apply a batch of planned strided sends — the message-passing
    /// analogue of [`crate::ctl::TransferPlan`]. Node-disjoint plans run
    /// concurrently over disjoint shard pairs (see
    /// [`Cluster::apply_pairwise`]); inbox state folds in plan index
    /// order, so the result is byte-identical to calling
    /// [`MpRuntime::send_strided`] per section in plan order.
    ///
    /// In strict wire mode each section is packed into a
    /// [`WireMsg::Strided`] envelope at plan time, carried by the
    /// transport, and unpacked from the decoded payload — same charges,
    /// same counters, bit-identical data.
    pub fn apply_send_plans(&mut self, d: &mut Dsm, plans: &[MpSendPlan], workers: usize) {
        if plans.is_empty() {
            return;
        }
        let decoded = mp_wire_deliver(d, plans);
        let cl = &mut d.cluster;
        let cfg = cl.cfg().clone();
        let total_elems: usize = plans
            .iter()
            .flat_map(|p| p.sections.iter())
            .map(|&(_, run_len, _, count)| run_len * count)
            .sum();
        let workers = if total_elems < crate::ctl::PAR_APPLY_MIN_WORDS {
            1
        } else {
            workers
        };
        let pairs: Vec<(NodeId, NodeId)> = plans.iter().map(|p| (p.src, p.dst)).collect();
        let decoded_ref = decoded.as_deref();
        let outcomes = cl.apply_pairwise(&pairs, workers, |k, src, dst| {
            let plan = &plans[k];
            let wire_msgs = decoded_ref.map(|dd| dd[k].as_slice());
            let (mut arrival, mut msgs, mut elems_total) = (0u64, 0u64, 0u64);
            for (j, &(base, run_len, stride, count)) in plan.sections.iter().enumerate() {
                let elems = run_len * count;
                let bytes = elems * 8;
                // Same accounting as `send_strided`: one message per
                // contiguous run, per-element marshalling, wire occupancy.
                let cost = count as u64 * (cfg.mp_per_message_ns + cfg.msg_send_ns)
                    + elems as u64 * cfg.mp_per_element_ns
                    + bytes as u64 * cfg.per_byte_ns;
                src.charge(cost, ChargeKind::Stall);
                for i in 0..count {
                    let s = base + i * stride;
                    src.note_msg_at(run_len * 8, src.block_of(s));
                    dst.note_msg_recv(run_len * 8);
                    if let Some(msgs) = wire_msgs {
                        let WireMsg::Strided { words, .. } = &msgs[j] else {
                            unreachable!("mp plan section delivered a non-Strided envelope")
                        };
                        let mem = dst.mem_mut();
                        for (t, bits) in words[i * run_len..(i + 1) * run_len].iter().enumerate() {
                            mem[s + t] = f64::from_bits(*bits);
                        }
                    } else {
                        dst.mem_mut()[s..s + run_len].copy_from_slice(&src.mem()[s..s + run_len]);
                    }
                    dst.map_range(s, run_len);
                }
                arrival = arrival.max(src.clock_ns() + cfg.net_latency_ns);
                msgs += count as u64;
                elems_total += elems as u64;
            }
            (arrival, msgs, elems_total)
        });
        for (k, (arrival, msgs, elems)) in outcomes.into_iter().enumerate() {
            let dst = plans[k].dst;
            self.inbox_arrival[dst] = self.inbox_arrival[dst].max(arrival);
            self.inbox_msgs[dst] += msgs;
            self.inbox_elems[dst] += elems;
        }
        if let Some(dd) = decoded {
            let w = d.wire.as_mut().expect("wire state present when strict");
            for msgs in dd {
                for m in msgs {
                    w.words_pool.put(m.into_words());
                }
            }
        }
    }

    /// Broadcast a strided region from `src` to several receivers through
    /// the runtime's combining tree (the path `pghpf` uses for `lu`'s
    /// pivot-column broadcast): the section is packed once and forwarded
    /// along a log₂-depth tree, so the sender's occupancy does not grow
    /// with the receiver count.
    #[allow(clippy::too_many_arguments)]
    pub fn broadcast(
        &mut self,
        d: &mut Dsm,
        src: NodeId,
        dsts: &[NodeId],
        base: usize,
        run_len: usize,
        stride: usize,
        count: usize,
    ) {
        let cfg = d.cluster.cfg().clone();
        let elems = run_len * count;
        let bytes = elems * 8;
        // Sender: one runtime call, one *contiguous* pack (the collective
        // primitives are hand-optimized low-level code, unlike the generic
        // per-element section marshalling), one injection.
        let cost = cfg.mp_per_message_ns
            + 2 * bytes as u64 * cfg.per_byte_ns // memcpy + wire occupancy
            + cfg.msg_send_ns;
        d.cluster.charge(src, cost, ChargeKind::Stall);
        let depth = (usize::BITS - dsts.len().leading_zeros()) as u64; // ⌈log₂(n+1)⌉
        let arrival = d.cluster.clock_ns(src)
            + depth
                * (cfg.net_latency_ns + cfg.handler_dispatch_ns + bytes as u64 * cfg.per_byte_ns);
        for &dst in dsts {
            debug_assert_ne!(dst, src);
            // Star accounting: the payload reaches every receiver, so one
            // logical message per destination keeps the cluster-wide
            // sent/received counters balanced (time is still tree-shaped).
            d.cluster.note_msg(src, dst, bytes);
            if d.wire_strict() {
                // One forwarded image per receiver: the packed section
                // rides a Strided envelope and lands from the decoded
                // payload.
                let ctx = d.cluster.node_trace(src).context();
                let b0 = d.cluster.block_of(base);
                let hdr = WireHeader::for_blocks(src, dst, ctx, NO_ARRAY, b0, 1);
                let mut words = d.wire.as_mut().unwrap().words_pool.take();
                {
                    let mem = d.cluster.node_mem(src);
                    for i in 0..count {
                        let s = base + i * stride;
                        words.extend(mem[s..s + run_len].iter().map(|x| x.to_bits()));
                    }
                }
                let msg = WireMsg::Strided {
                    hdr,
                    base: base as u64,
                    run_len: run_len as u32,
                    stride: stride as u64,
                    count: count as u32,
                    words,
                };
                match d.wire_route_one(msg) {
                    WireMsg::Strided { words, .. } => {
                        let t_apply = d.wire.as_ref().unwrap().stopwatch();
                        let mem = d.cluster.node_mem_mut(dst);
                        for i in 0..count {
                            let s = base + i * stride;
                            for (t, bits) in
                                words[i * run_len..(i + 1) * run_len].iter().enumerate()
                            {
                                mem[s + t] = f64::from_bits(*bits);
                            }
                        }
                        let w = d.wire.as_mut().unwrap();
                        w.lap("apply.strided", t_apply);
                        w.words_pool.put(words);
                    }
                    other => {
                        panic!("wire: expected Strided envelope, got kind {}", other.kind())
                    }
                }
                for i in 0..count {
                    d.cluster.map_range(dst, base + i * stride, run_len);
                }
            } else {
                for i in 0..count {
                    let s = base + i * stride;
                    d.cluster.copy_words(src, dst, s, run_len);
                    d.cluster.map_range(dst, s, run_len);
                }
            }
            self.inbox_arrival[dst] = self.inbox_arrival[dst].max(arrival);
            self.inbox_msgs[dst] += 1;
            self.inbox_bulk_bytes[dst] += bytes as u64;
        }
    }

    /// Block until all messages addressed to `node` have arrived, then pay
    /// the unpack cost.
    pub fn recv_all(&mut self, cl: &mut Cluster, node: NodeId) {
        let cfg = cl.cfg().clone();
        let now = cl.clock_ns(node);
        if self.inbox_arrival[node] > now {
            cl.charge(node, self.inbox_arrival[node] - now, ChargeKind::Stall);
        }
        let unpack = self.inbox_msgs[node] * cfg.handler_dispatch_ns
            + self.inbox_elems[node] * cfg.mp_per_element_ns
            + self.inbox_bulk_bytes[node] * cfg.per_byte_ns;
        cl.charge(node, unpack, ChargeKind::Stall);
        self.inbox_arrival[node] = 0;
        self.inbox_msgs[node] = 0;
        self.inbox_elems[node] = 0;
        self.inbox_bulk_bytes[node] = 0;
    }

    /// All-reduce through the MP runtime: a *linear* gather-and-broadcast
    /// (P−1 rounds) where every message pays the runtime's per-message
    /// overhead — the cost that makes `cg` "particularly" slower under
    /// message passing in the paper (§6).
    pub fn allreduce(&mut self, cl: &mut Cluster, partials: &[f64], op: ReduceOp) -> f64 {
        let cfg = cl.cfg().clone();
        let nprocs = cl.nprocs();
        assert_eq!(partials.len(), nprocs);
        let rounds = nprocs as u64 - 1;
        let per_round = cfg.mp_per_message_ns
            + cfg.msg_send_ns
            + cfg.net_latency_ns
            + 8 * cfg.per_byte_ns
            + cfg.handler_dispatch_ns;
        for n in 0..nprocs {
            cl.charge(n, rounds * per_round, ChargeKind::Stall);
            cl.record(n, Event::Reduction);
            // Every node both sends and receives one 8-byte partial per
            // round; recording both sides keeps the traffic counters
            // balanced.
            for _ in 0..rounds {
                cl.record(
                    n,
                    Event::Msg {
                        bytes: 8,
                        block: NO_BLOCK,
                    },
                );
                cl.record(n, Event::MsgRecv { bytes: 8 });
            }
        }
        // Globally synchronizing, like the shared-memory reduction.
        let max = (0..nprocs).map(|n| cl.clock_ns(n)).max().unwrap_or(0);
        for n in 0..nprocs {
            let wait = max - cl.clock_ns(n);
            if wait > 0 {
                cl.charge(n, wait, ChargeKind::Stall);
            }
        }
        match op {
            ReduceOp::Sum => partials.iter().sum(),
            ReduceOp::Max => partials.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            ReduceOp::Min => partials.iter().copied().fold(f64::INFINITY, f64::min),
        }
    }
}

/// Strict wire mode's plan delivery for the message-passing backend: pack
/// each plan section into a [`WireMsg::Strided`] envelope (payload copied
/// out of the source shard at plan time), post the frames per
/// destination, carry them through the transport, and decode them back in
/// plan order. Returns `None` on the fast path. Mirrors the ctl
/// pipeline's encode/deliver stages.
fn mp_wire_deliver(d: &mut Dsm, plans: &[MpSendPlan]) -> Option<Vec<Vec<WireMsg>>> {
    use std::collections::{BTreeMap, VecDeque};
    d.wire.as_ref()?;
    let mut undercount = d.take_undercount_token();
    for plan in plans {
        let ctx = d.cluster.node_trace(plan.src).context();
        for &(base, run_len, stride, count) in &plan.sections {
            let mut words = d.wire.as_mut().unwrap().words_pool.take();
            {
                let mem = d.cluster.node_mem(plan.src);
                for i in 0..count {
                    let s = base + i * stride;
                    words.extend(mem[s..s + run_len].iter().map(|x| x.to_bits()));
                }
            }
            let b0 = d.cluster.block_of(base);
            let hdr = WireHeader::for_blocks(plan.src, plan.dst, ctx, NO_ARRAY, b0, 1);
            let msg = WireMsg::Strided {
                hdr,
                base: base as u64,
                run_len: run_len as u32,
                stride: stride as u64,
                count: count as u32,
                words,
            };
            let w = d.wire.as_mut().unwrap();
            let mut buf = w.mailbox.take_buf();
            let t_enc = w.stopwatch();
            msg.encode(&mut buf);
            let encode_ns = t_enc.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
            w.note_encoded(
                msg.kind(),
                plan.dst,
                msg.payload_bytes(),
                encode_ns,
                std::mem::take(&mut undercount),
            );
            w.words_pool.put(msg.into_words());
            w.mailbox.post(plan.dst, buf);
        }
    }
    let mut corrupt = d.take_corrupt_token();
    let w = d.wire.as_mut().unwrap();
    let mut routed: BTreeMap<NodeId, VecDeque<Vec<u8>>> = BTreeMap::new();
    for plan in plans {
        if routed.contains_key(&plan.dst) {
            continue;
        }
        let mut frames = w.mailbox.take_inbox(plan.dst);
        if corrupt {
            if let Some(f) = frames.first_mut() {
                crate::proto::corrupt_frame(f);
                corrupt = false;
            }
        }
        let frames = w.route(plan.dst, frames);
        routed.insert(plan.dst, frames.into());
    }
    let mut decoded = Vec::with_capacity(plans.len());
    for plan in plans {
        let q = routed.get_mut(&plan.dst).expect("routed batch per dst");
        let mut msgs = Vec::with_capacity(plan.sections.len());
        for _ in 0..plan.sections.len() {
            let frame = q.pop_front().expect("wire: frame for planned section");
            let t_dec = w.stopwatch();
            match WireMsg::from_bytes(&frame) {
                Ok(m) => {
                    let class = fgdsm_tempest::metrics::class_name(m.kind());
                    w.lap(&format!("decode.{class}"), t_dec);
                    msgs.push(m);
                }
                Err(e) => panic!("wire: envelope decode failed at node {}: {e}", plan.dst),
            }
            w.mailbox.recycle_buf(frame);
        }
        decoded.push(msgs);
    }
    debug_assert!(routed.values().all(|q| q.is_empty()));
    debug_assert!(w.mailbox.all_delivered());
    Some(decoded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdsm_tempest::{CostModel, HomePolicy, SegmentLayout};

    fn cluster(n: usize) -> Cluster {
        let cfg = CostModel::paper_dual_cpu();
        let mut layout = SegmentLayout::new(cfg.words_per_page());
        layout.alloc(4096);
        Cluster::new(n, cfg, &layout, HomePolicy::RoundRobin)
    }

    #[test]
    fn send_recv_moves_data_and_charges_overhead() {
        let mut cl = cluster(2);
        let mut mp = MpRuntime::new(2);
        cl.node_mem_mut(0)[100] = 3.25;
        mp.send(&mut cl, 0, 1, 96, 16);
        mp.recv_all(&mut cl, 1);
        assert_eq!(cl.node_mem(1)[100], 3.25);
        // Sender paid at least the per-message software overhead.
        assert!(cl.stats(0).stall_ns >= cl.cfg().mp_per_message_ns);
        assert!(cl.stats(1).stall_ns > 0);
        assert_eq!(cl.stats(0).msgs_sent, 1);
    }

    #[test]
    fn strided_send_one_message_per_run() {
        let mut cl = cluster(2);
        let mut mp = MpRuntime::new(2);
        cl.node_mem_mut(0)[10] = 1.0;
        cl.node_mem_mut(0)[42] = 2.0;
        mp.send_strided(&mut cl, 0, 1, 10, 1, 32, 2);
        mp.recv_all(&mut cl, 1);
        assert_eq!(cl.node_mem(1)[10], 1.0);
        assert_eq!(cl.node_mem(1)[42], 2.0);
        // The runtime transmits each contiguous run separately, paying its
        // per-message overhead twice.
        assert_eq!(cl.stats(0).msgs_sent, 2);
        assert!(cl.stats(0).stall_ns >= 2 * cl.cfg().mp_per_message_ns);
    }

    #[test]
    fn broadcast_reaches_all_with_single_pack() {
        let mut d = Dsm::new(cluster(4));
        let mut mp = MpRuntime::new(4);
        d.cluster.node_mem_mut(0)[5] = 9.0;
        mp.broadcast(&mut d, 0, &[1, 2, 3], 0, 16, 1, 1);
        for n in 1..4 {
            mp.recv_all(&mut d.cluster, n);
            assert_eq!(d.cluster.node_mem(n)[5], 9.0);
        }
        // Sender pays the runtime overhead once, not once per receiver.
        assert!(d.cluster.stats(0).stall_ns < 2 * d.cluster.cfg().mp_per_message_ns);
    }

    #[test]
    fn mp_reduction_slower_than_sm_reduction() {
        // The PGI runtime's per-message overhead makes MP reductions more
        // expensive than the shared-memory low-level-message reduction.
        let mut cl_sm = cluster(4);
        let mut cl_mp = cluster(4);
        let mut mp = MpRuntime::new(4);
        let v1 = cl_sm.allreduce(&[1.0, 2.0, 3.0, 4.0], ReduceOp::Sum);
        let v2 = mp.allreduce(&mut cl_mp, &[1.0, 2.0, 3.0, 4.0], ReduceOp::Sum);
        assert_eq!(v1, v2);
        assert!(cl_mp.clock_ns(0) > cl_sm.clock_ns(0));
    }

    #[test]
    fn recv_resets_inbox() {
        let mut cl = cluster(2);
        let mut mp = MpRuntime::new(2);
        mp.send(&mut cl, 0, 1, 0, 8);
        mp.recv_all(&mut cl, 1);
        let t = cl.clock_ns(1);
        mp.recv_all(&mut cl, 1);
        // Second recv with empty inbox: no stall.
        assert_eq!(cl.clock_ns(1), t);
    }
}
