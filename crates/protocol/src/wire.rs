//! Serializable message envelopes: the wire format under every
//! inter-node transfer.
//!
//! PR 4's plan/apply seam moved data with in-process structs that
//! borrow shard memory (`TransferPlan` ranges, `MpSendPlan` sections,
//! per-block fault copies). This module gives all of them one
//! self-contained representation: a [`WireMsg`] envelope carrying an
//! attributed header plus an explicit payload buffer, with a versioned,
//! deterministic binary encoding (`to_bytes`/`from_bytes`, no external
//! serialization dependency). Planning fills payloads by copying out of
//! the source shard, so a routed envelope no longer needs the source
//! alive — the property a cross-process transport needs.
//!
//! ## v1 binary layout (all fields little-endian)
//!
//! | offset | field | type |
//! |---|---|---|
//! | 0 | magic (`0xFD57`) | u16 |
//! | 2 | version (`1`) | u16 |
//! | 4 | kind (0=Push 1=Flush 2=Copy 3=Diff 4=Strided) | u8 |
//! | 5 | src | u32 |
//! | 9 | dst | u32 |
//! | 13 | superstep | u32 |
//! | 17 | loop_id | u32 |
//! | 21 | array | u32 |
//! | 25 | block-list length `n` | u32 |
//! | 29 | attributed blocks | n × u32 |
//! | … | variant fields (see [`WireMsg`]) | — |
//! | … | payload length `w` | u64 |
//! | … | payload words (`f64::to_bits`) | w × u64 |
//!
//! Versioning rule: any change to the header layout or a variant's
//! field set bumps `WIRE_VERSION`; decoders reject every version they
//! were not built for (no silent best-effort parsing). The golden-bytes
//! test below pins the v1 layout against accidental breaks.

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::Duration;

/// First two bytes of every frame.
pub const WIRE_MAGIC: u16 = 0xFD57;
/// Current format version; decoders accept exactly this.
pub const WIRE_VERSION: u16 = 1;
/// First two bytes of every control (non-data) frame: handshake,
/// batch markers and teardown between a coordinator and a node process.
pub const CTRL_MAGIC: u16 = 0xFD58;
/// Upper bound on a single length-prefixed frame. A prefix above this is
/// a protocol violation ([`WireError::FrameTooBig`]), rejected *before*
/// any allocation — the framing layer's analogue of `decode_words`'
/// lying-length guard.
pub const MAX_FRAME_BYTES: u64 = 1 << 26;

/// Per-recv deadline for the blocking transports (`chan` worker replies,
/// socket reads): `FGDSM_NET_TIMEOUT_MS`, default 5000 ms. A peer that
/// stays silent past this long is reported as [`WireError::Timeout`]
/// instead of hanging the run.
pub fn net_timeout() -> Duration {
    let ms = std::env::var("FGDSM_NET_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(5000)
        .max(1);
    Duration::from_millis(ms)
}

/// On-wire size in bytes of a word-diff message body for `mask`: the
/// 8-byte dirty mask plus one 8-byte word per set bit. This is the one
/// place the diff-size arithmetic lives — the eager/update release
/// paths and the envelope encoder all charge through it, so profiler
/// attribution and wire accounting can never drift apart.
pub fn diff_bytes(mask: u64) -> usize {
    8 + 8 * mask.count_ones() as usize
}

/// Everything a receiver needs to account a transfer without looking at
/// the sender's state: endpoints, the superstep/loop the transfer is
/// attributed to (filled at encode time, exactly once), the array it
/// belongs to (`NO_ARRAY` for protocol-level fault traffic), and the
/// blocks it touches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireHeader {
    pub src: u32,
    pub dst: u32,
    pub superstep: u32,
    pub loop_id: u32,
    pub array: u32,
    pub blocks: Vec<u32>,
}

impl WireHeader {
    /// Header for a transfer covering the block range `[first, first+n)`.
    pub fn for_blocks(
        src: usize,
        dst: usize,
        ctx: (u32, u32),
        array: u32,
        first: usize,
        n: usize,
    ) -> Self {
        WireHeader {
            src: src as u32,
            dst: dst as u32,
            superstep: ctx.0,
            loop_id: ctx.1,
            array,
            blocks: (first..first + n).map(|b| b as u32).collect(),
        }
    }
}

/// A self-contained transfer: header plus explicit payload words
/// (`f64::to_bits` of the shard data, so bit-exactness survives NaNs).
///
/// The variants unify the three transfer shapes the backends produce:
/// `Push`/`Flush` are the §4.2 ctl plan payloads (`TransferPlan`,
/// recorded as `CtlSend` events), `Copy` and `Diff` are the default
/// protocol's fault-path block fetches and multiple-writer diff merges,
/// and `Strided` is a message-passing section (`MpSendPlan`).
#[derive(Clone, Debug, PartialEq)]
pub enum WireMsg {
    /// Compiler-directed send: contiguous blocks, owner → reader.
    Push {
        hdr: WireHeader,
        start_block: u32,
        n_blocks: u32,
        words: Vec<u64>,
    },
    /// Non-owner-write flush: contiguous blocks, writer → owner.
    Flush {
        hdr: WireHeader,
        start_block: u32,
        n_blocks: u32,
        words: Vec<u64>,
    },
    /// Fault-path word-range fetch (block data to a faulting node).
    Copy {
        hdr: WireHeader,
        start_word: u64,
        words: Vec<u64>,
    },
    /// Word diff of one block: `words[i]` is the value for the `i`-th
    /// set bit of `mask` (LSB first).
    Diff {
        hdr: WireHeader,
        block: u64,
        mask: u64,
        words: Vec<u64>,
    },
    /// Message-passing section: `count` runs of `run_len` words,
    /// starting at `base`, `stride` words apart; payload concatenates
    /// the runs in order.
    Strided {
        hdr: WireHeader,
        base: u64,
        run_len: u32,
        stride: u64,
        count: u32,
        words: Vec<u64>,
    },
}

const KIND_PUSH: u8 = 0;
const KIND_FLUSH: u8 = 1;
const KIND_COPY: u8 = 2;
const KIND_DIFF: u8 = 3;
const KIND_STRIDED: u8 = 4;

/// Why a frame failed to decode. Every variant is a hard error: a
/// malformed frame is dropped traffic, never a best-effort apply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Frame ended before a declared field.
    Truncated,
    /// First two bytes are not [`WIRE_MAGIC`].
    BadMagic(u16),
    /// Version this decoder was not built for.
    BadVersion(u16),
    /// Unknown kind byte.
    BadKind(u8),
    /// A declared count disagrees with the payload that follows.
    CountMismatch(&'static str),
    /// Bytes left over after the payload — the frame lies about itself.
    TrailingBytes(usize),
    /// The peer node is gone: its channel hung up, its process exited, or
    /// the connection was closed (EOF) mid-conversation.
    PeerGone(u32),
    /// The peer stayed silent past the configured recv deadline
    /// ([`net_timeout`]).
    Timeout(u32),
    /// A length prefix above [`MAX_FRAME_BYTES`] — rejected before any
    /// allocation or read.
    FrameTooBig(u64),
    /// Double-entry reconciliation failure at teardown: a node's
    /// [`CtrlMsg::ByeStats`] accounting disagrees with the coordinator's
    /// book for that node. Reports *which* counter diverged and both
    /// sides' values, so a lost or double-applied frame is attributable
    /// from the error alone.
    StatsMismatch {
        node: u32,
        counter: &'static str,
        local: u64,
        remote: u64,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:#06x} (want {WIRE_MAGIC:#06x})"),
            WireError::BadVersion(v) => write!(f, "unsupported version {v} (want {WIRE_VERSION})"),
            WireError::BadKind(k) => write!(f, "unknown kind byte {k}"),
            WireError::CountMismatch(what) => write!(f, "count mismatch: {what}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            WireError::PeerGone(p) => write!(f, "peer node {p} gone (disconnected or exited)"),
            WireError::Timeout(p) => write!(f, "recv from node {p} timed out"),
            WireError::FrameTooBig(n) => {
                write!(f, "frame length {n} exceeds cap {MAX_FRAME_BYTES}")
            }
            WireError::StatsMismatch {
                node,
                counter,
                local,
                remote,
            } => write!(
                f,
                "node {node} {counter} counter diverged: coordinator {local} vs node {remote}"
            ),
        }
    }
}

impl std::error::Error for WireError {}

struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let s = self
            .b
            .get(self.pos..self.pos + n)
            .ok_or(WireError::Truncated)?;
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

impl WireMsg {
    pub fn kind(&self) -> u8 {
        match self {
            WireMsg::Push { .. } => KIND_PUSH,
            WireMsg::Flush { .. } => KIND_FLUSH,
            WireMsg::Copy { .. } => KIND_COPY,
            WireMsg::Diff { .. } => KIND_DIFF,
            WireMsg::Strided { .. } => KIND_STRIDED,
        }
    }

    pub fn hdr(&self) -> &WireHeader {
        match self {
            WireMsg::Push { hdr, .. }
            | WireMsg::Flush { hdr, .. }
            | WireMsg::Copy { hdr, .. }
            | WireMsg::Diff { hdr, .. }
            | WireMsg::Strided { hdr, .. } => hdr,
        }
    }

    /// The payload words.
    pub fn words(&self) -> &[u64] {
        match self {
            WireMsg::Push { words, .. }
            | WireMsg::Flush { words, .. }
            | WireMsg::Copy { words, .. }
            | WireMsg::Diff { words, .. }
            | WireMsg::Strided { words, .. } => words,
        }
    }

    /// Consume the envelope, handing back its payload buffer for pool
    /// recycling.
    pub fn into_words(self) -> Vec<u64> {
        match self {
            WireMsg::Push { words, .. }
            | WireMsg::Flush { words, .. }
            | WireMsg::Copy { words, .. }
            | WireMsg::Diff { words, .. }
            | WireMsg::Strided { words, .. } => words,
        }
    }

    /// On-wire data bytes of this transfer: what the simulated network
    /// carries beyond fixed headers. Matches the byte counts the
    /// protocols feed `note_msg_at`, so wire accounting reconciles with
    /// `NodeStats` (a Diff counts its 8-byte mask, exactly like the
    /// `diff_bytes` charge).
    pub fn payload_bytes(&self) -> u64 {
        let extra = match self {
            WireMsg::Diff { .. } => 8,
            _ => 0,
        };
        extra + 8 * self.words().len() as u64
    }

    /// Append the v1 encoding of `self` to `out` (which is cleared
    /// first, so pooled buffers can be passed straight in).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.clear();
        out.extend_from_slice(&WIRE_MAGIC.to_le_bytes());
        out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        out.push(self.kind());
        let hdr = self.hdr();
        for f in [hdr.src, hdr.dst, hdr.superstep, hdr.loop_id, hdr.array] {
            out.extend_from_slice(&f.to_le_bytes());
        }
        out.extend_from_slice(&(hdr.blocks.len() as u32).to_le_bytes());
        for b in &hdr.blocks {
            out.extend_from_slice(&b.to_le_bytes());
        }
        match self {
            WireMsg::Push {
                start_block,
                n_blocks,
                ..
            }
            | WireMsg::Flush {
                start_block,
                n_blocks,
                ..
            } => {
                out.extend_from_slice(&start_block.to_le_bytes());
                out.extend_from_slice(&n_blocks.to_le_bytes());
            }
            WireMsg::Copy { start_word, .. } => {
                out.extend_from_slice(&start_word.to_le_bytes());
            }
            WireMsg::Diff { block, mask, .. } => {
                out.extend_from_slice(&block.to_le_bytes());
                out.extend_from_slice(&mask.to_le_bytes());
            }
            WireMsg::Strided {
                base,
                run_len,
                stride,
                count,
                ..
            } => {
                out.extend_from_slice(&base.to_le_bytes());
                out.extend_from_slice(&run_len.to_le_bytes());
                out.extend_from_slice(&stride.to_le_bytes());
                out.extend_from_slice(&count.to_le_bytes());
            }
        }
        let words = self.words();
        out.extend_from_slice(&(words.len() as u64).to_le_bytes());
        for w in words {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// The v1 encoding as a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + 8 * self.words().len());
        self.encode(&mut out);
        out
    }

    /// Decode and validate a v1 frame. Rejects wrong magic/version,
    /// unknown kinds, truncation, count/payload disagreements and
    /// trailing bytes — a frame either reconstructs the exact envelope
    /// that was encoded or it is an error, never a partial apply.
    pub fn from_bytes(bytes: &[u8]) -> Result<WireMsg, WireError> {
        let mut c = Cursor { b: bytes, pos: 0 };
        let magic = c.u16()?;
        if magic != WIRE_MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = c.u16()?;
        if version != WIRE_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let kind = c.u8()?;
        let (src, dst, superstep, loop_id, array) =
            (c.u32()?, c.u32()?, c.u32()?, c.u32()?, c.u32()?);
        let nblocks = c.u32()? as usize;
        let mut blocks = Vec::with_capacity(nblocks.min(bytes.len() / 4));
        for _ in 0..nblocks {
            blocks.push(c.u32()?);
        }
        let hdr = WireHeader {
            src,
            dst,
            superstep,
            loop_id,
            array,
            blocks,
        };
        let msg = match kind {
            KIND_PUSH | KIND_FLUSH => {
                let start_block = c.u32()?;
                let n_blocks = c.u32()?;
                if n_blocks as usize != hdr.blocks.len() {
                    return Err(WireError::CountMismatch("n_blocks vs header block list"));
                }
                let words = decode_words(&mut c)?;
                if kind == KIND_PUSH {
                    WireMsg::Push {
                        hdr,
                        start_block,
                        n_blocks,
                        words,
                    }
                } else {
                    WireMsg::Flush {
                        hdr,
                        start_block,
                        n_blocks,
                        words,
                    }
                }
            }
            KIND_COPY => {
                let start_word = c.u64()?;
                let words = decode_words(&mut c)?;
                WireMsg::Copy {
                    hdr,
                    start_word,
                    words,
                }
            }
            KIND_DIFF => {
                let block = c.u64()?;
                let mask = c.u64()?;
                let words = decode_words(&mut c)?;
                if words.len() != mask.count_ones() as usize {
                    return Err(WireError::CountMismatch("diff mask popcount vs payload"));
                }
                WireMsg::Diff {
                    hdr,
                    block,
                    mask,
                    words,
                }
            }
            KIND_STRIDED => {
                let base = c.u64()?;
                let run_len = c.u32()?;
                let stride = c.u64()?;
                let count = c.u32()?;
                let words = decode_words(&mut c)?;
                if words.len() != run_len as usize * count as usize {
                    return Err(WireError::CountMismatch("run_len*count vs payload"));
                }
                WireMsg::Strided {
                    hdr,
                    base,
                    run_len,
                    stride,
                    count,
                    words,
                }
            }
            k => return Err(WireError::BadKind(k)),
        };
        if c.pos != bytes.len() {
            return Err(WireError::TrailingBytes(bytes.len() - c.pos));
        }
        Ok(msg)
    }
}

fn decode_words(c: &mut Cursor<'_>) -> Result<Vec<u64>, WireError> {
    let n = c.u64()? as usize;
    // Guard the allocation against lying length prefixes before
    // touching the heap: the remaining frame must actually hold n words.
    match n.checked_mul(8) {
        Some(need) if c.b.len() - c.pos >= need => {}
        _ => return Err(WireError::Truncated),
    }
    let mut words = Vec::with_capacity(n);
    for _ in 0..n {
        words.push(c.u64()?);
    }
    Ok(words)
}

// ----------------------------------------------------------------------
// Length-prefixed framing: how byte-stream transports carry frames
// ----------------------------------------------------------------------

/// Append `frame` to `out` as a length-prefixed record: a `u32` LE byte
/// count followed by the frame bytes. The inverse of [`FrameDecoder`].
///
/// Panics if the frame exceeds [`MAX_FRAME_BYTES`] — a frame that large
/// is a caller bug, not traffic.
pub fn write_frame(out: &mut Vec<u8>, frame: &[u8]) {
    assert!(
        frame.len() as u64 <= MAX_FRAME_BYTES,
        "frame of {} bytes exceeds MAX_FRAME_BYTES",
        frame.len()
    );
    out.extend_from_slice(&(frame.len() as u32).to_le_bytes());
    out.extend_from_slice(frame);
}

/// Incremental decoder for length-prefixed frames arriving in arbitrary
/// chunks (partial reads, 1-byte reads, boundaries straddling reads).
/// Feed bytes with [`FrameDecoder::push`], drain complete frames with
/// [`FrameDecoder::next_frame`]. Pure — no I/O — so the framing logic is
/// testable without sockets.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameDecoder {
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Feed a chunk of received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact consumed space before growing, so a long-lived decoder
        // does not retain every byte it ever saw.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos >= 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame, `Ok(None)` if more bytes are needed.
    /// A length prefix above [`MAX_FRAME_BYTES`] is rejected immediately
    /// — before waiting for (or allocating) the declared bytes.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap());
        if len as u64 > MAX_FRAME_BYTES {
            return Err(WireError::FrameTooBig(len as u64));
        }
        let len = len as usize;
        if avail < 4 + len {
            return Ok(None);
        }
        let frame = self.buf[self.pos + 4..self.pos + 4 + len].to_vec();
        self.pos += 4 + len;
        Ok(Some(frame))
    }

    /// True when buffered bytes remain that do not (yet) form a complete
    /// frame — at EOF this means a truncated trailing frame.
    pub fn has_partial(&self) -> bool {
        self.pos < self.buf.len()
    }
}

// ----------------------------------------------------------------------
// Control messages: coordinator ⇄ node-process handshake and teardown
// ----------------------------------------------------------------------

const CTRL_HELLO: u8 = 0;
const CTRL_HELLO_ACK: u8 = 1;
const CTRL_BATCH: u8 = 2;
const CTRL_BYE: u8 = 3;
const CTRL_BYE_STATS: u8 = 4;
const CTRL_ERR: u8 = 5;
/// Cap on an error detail string — a lying length here must not allocate.
const CTRL_MAX_DETAIL: usize = 64 * 1024;
/// Cap on a `ByeStats` metrics blob: a worker's telemetry registry is a
/// few dozen histograms (kilobytes), so anything near this is corrupt.
const CTRL_MAX_METRICS: usize = 1 << 20;

/// Control frames framing the socket conversation between the
/// coordinator and a node process. Same encoding discipline as
/// [`WireMsg`] — [`CTRL_MAGIC`] + version + kind + fields, total decode,
/// trailing bytes rejected — under a distinct magic so a data frame can
/// never be mistaken for control traffic.
///
/// Conversation shape (per connection):
///
/// ```text
/// node → coord   Hello { node, version }
/// coord → node   HelloAck { nprocs, wpb, seg_words }   (shard geometry)
/// coord → node   Batch { n } + n data frames           (per route call)
/// node → coord   Batch { n } + n re-encoded frames     (or Err { detail })
/// coord → node   Bye
/// node → coord   ByeStats { frames, payload_bytes, metrics }
/// ```
///
/// Control frames reuse [`WIRE_VERSION`] and are only ever exchanged
/// between a coordinator and the `fgdsm-node` binary it spawned from the
/// same build — there is no cross-version control peer, so extending
/// `ByeStats` (the metrics blob) rides the existing version.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtrlMsg {
    /// Node introduces itself after connecting.
    Hello { node: u32, version: u16 },
    /// Coordinator accepts and ships the shard geometry the node's
    /// mirror store needs (words per block, segment words).
    HelloAck {
        nprocs: u32,
        wpb: u32,
        seg_words: u64,
    },
    /// `n` data frames follow this control frame.
    Batch { n: u32 },
    /// Orderly teardown request.
    Bye,
    /// Node's final accounting, confirming teardown. `metrics` is the
    /// node's serialized telemetry registry
    /// (`fgdsm_tempest::metrics::MetricsRegistry::to_bytes`) — empty
    /// when wall-clock telemetry is disabled.
    ByeStats {
        frames: u64,
        payload_bytes: u64,
        metrics: Vec<u8>,
    },
    /// The node rejected traffic (decode failure, oversized frame…);
    /// the connection is dead after this.
    Err { detail: String },
}

impl CtrlMsg {
    fn kind(&self) -> u8 {
        match self {
            CtrlMsg::Hello { .. } => CTRL_HELLO,
            CtrlMsg::HelloAck { .. } => CTRL_HELLO_ACK,
            CtrlMsg::Batch { .. } => CTRL_BATCH,
            CtrlMsg::Bye => CTRL_BYE,
            CtrlMsg::ByeStats { .. } => CTRL_BYE_STATS,
            CtrlMsg::Err { .. } => CTRL_ERR,
        }
    }

    /// The encoding as a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.extend_from_slice(&CTRL_MAGIC.to_le_bytes());
        out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        out.push(self.kind());
        match self {
            CtrlMsg::Hello { node, version } => {
                out.extend_from_slice(&node.to_le_bytes());
                out.extend_from_slice(&version.to_le_bytes());
            }
            CtrlMsg::HelloAck {
                nprocs,
                wpb,
                seg_words,
            } => {
                out.extend_from_slice(&nprocs.to_le_bytes());
                out.extend_from_slice(&wpb.to_le_bytes());
                out.extend_from_slice(&seg_words.to_le_bytes());
            }
            CtrlMsg::Batch { n } => out.extend_from_slice(&n.to_le_bytes()),
            CtrlMsg::Bye => {}
            CtrlMsg::ByeStats {
                frames,
                payload_bytes,
                metrics,
            } => {
                assert!(
                    metrics.len() <= CTRL_MAX_METRICS,
                    "metrics blob of {} bytes exceeds cap",
                    metrics.len()
                );
                out.extend_from_slice(&frames.to_le_bytes());
                out.extend_from_slice(&payload_bytes.to_le_bytes());
                out.extend_from_slice(&(metrics.len() as u32).to_le_bytes());
                out.extend_from_slice(metrics);
            }
            CtrlMsg::Err { detail } => {
                let bytes = detail.as_bytes();
                let n = bytes.len().min(CTRL_MAX_DETAIL);
                out.extend_from_slice(&(n as u32).to_le_bytes());
                out.extend_from_slice(&bytes[..n]);
            }
        }
        out
    }

    /// Decode and validate a control frame — same paranoia as
    /// [`WireMsg::from_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<CtrlMsg, WireError> {
        let mut c = Cursor { b: bytes, pos: 0 };
        let magic = c.u16()?;
        if magic != CTRL_MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = c.u16()?;
        if version != WIRE_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let kind = c.u8()?;
        let msg = match kind {
            CTRL_HELLO => CtrlMsg::Hello {
                node: c.u32()?,
                version: c.u16()?,
            },
            CTRL_HELLO_ACK => CtrlMsg::HelloAck {
                nprocs: c.u32()?,
                wpb: c.u32()?,
                seg_words: c.u64()?,
            },
            CTRL_BATCH => CtrlMsg::Batch { n: c.u32()? },
            CTRL_BYE => CtrlMsg::Bye,
            CTRL_BYE_STATS => {
                let frames = c.u64()?;
                let payload_bytes = c.u64()?;
                let n = c.u32()? as usize;
                if n > CTRL_MAX_METRICS {
                    return Err(WireError::CountMismatch("bye-stats metrics length"));
                }
                let metrics = c.take(n)?.to_vec();
                CtrlMsg::ByeStats {
                    frames,
                    payload_bytes,
                    metrics,
                }
            }
            CTRL_ERR => {
                let n = c.u32()? as usize;
                if n > CTRL_MAX_DETAIL {
                    return Err(WireError::CountMismatch("err detail length"));
                }
                let raw = c.take(n)?;
                let detail = String::from_utf8(raw.to_vec())
                    .map_err(|_| WireError::CountMismatch("err detail utf8"))?;
                CtrlMsg::Err { detail }
            }
            k => return Err(WireError::BadKind(k)),
        };
        if c.pos != bytes.len() {
            return Err(WireError::TrailingBytes(bytes.len() - c.pos));
        }
        Ok(msg)
    }
}

/// One remote process's end-of-run accounting, as delivered in its
/// [`CtrlMsg::ByeStats`]: the counters to reconcile against the
/// coordinator's book plus the node's serialized telemetry registry
/// (empty when telemetry is off).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RemoteReport {
    pub node: u32,
    pub frames: u64,
    pub payload_bytes: u64,
    pub metrics: Vec<u8>,
}

/// Double-entry reconciliation of one node's counters against the
/// coordinator's per-node book. Reports the *first* diverging counter as
/// a typed [`WireError::StatsMismatch`] naming the node, the counter and
/// both values — never a bare "mismatch" panic.
pub fn reconcile_stats(
    node: u32,
    local_frames: u64,
    local_payload: u64,
    remote: &RemoteReport,
) -> Result<(), WireError> {
    if local_frames != remote.frames {
        return Err(WireError::StatsMismatch {
            node,
            counter: "frames",
            local: local_frames,
            remote: remote.frames,
        });
    }
    if local_payload != remote.payload_bytes {
        return Err(WireError::StatsMismatch {
            node,
            counter: "payload_bytes",
            local: local_payload,
            remote: remote.payload_bytes,
        });
    }
    Ok(())
}

/// Carries encoded frames to their destination node. Implementations
/// must deliver each batch in order and return exactly the frames that
/// arrived; they never interpret payloads (the apply stage decodes).
pub trait WireTransport {
    fn name(&self) -> &'static str;
    /// Route a batch of encoded frames to `dst`, returning the frames
    /// as delivered (same order). `Err` is a transport-level failure —
    /// the peer died ([`WireError::PeerGone`]) or went silent past the
    /// deadline ([`WireError::Timeout`]); a frame the peer *rejected*
    /// (decode failure) still fails loudly via panic, because dropped
    /// traffic is a protocol bug, not a transport condition.
    fn route(&mut self, dst: usize, frames: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, WireError>;
    /// Orderly end-of-run: tear down remote peers and collect their
    /// final per-process accounting ([`RemoteReport`]). In-process
    /// transports have no remote book, so the default returns nothing.
    fn finish(&mut self) -> Vec<RemoteReport> {
        Vec::new()
    }
}

/// In-process delivery: frames arrive exactly as posted. This is the
/// strict-mode transport for the sm_* backends — the bytes still pass
/// through `to_bytes`/`from_bytes`, only the carry is a no-op.
pub struct Loopback;

impl WireTransport for Loopback {
    fn name(&self) -> &'static str {
        "loopback"
    }
    fn route(&mut self, _dst: usize, frames: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, WireError> {
        Ok(frames)
    }
}

/// The `chan` backend's transport: one worker thread per node, linked
/// by `std::sync::mpsc` channels. Workers share *no* shard memory —
/// each receives owned byte buffers, reconstructs every envelope from
/// bytes alone (`from_bytes`), re-encodes it into a fresh buffer and
/// sends the bytes back. Every transfer therefore round-trips through
/// the wire format across a real thread boundary twice; a frame the
/// decoder rejects is reported back and fails the run loudly.
pub struct ChanTransport {
    to_node: Vec<Option<Sender<Cmd>>>,
    from_node: Vec<Receiver<Result<Vec<Vec<u8>>, String>>>,
    workers: Vec<JoinHandle<()>>,
    timeout: Duration,
}

/// What a chan worker can be asked to do. `Wedge` is a test hook: the
/// worker sleeps through its next turn, so the coordinator's deadline
/// logic can be exercised without a real stuck peer.
enum Cmd {
    Batch(Vec<Vec<u8>>),
    Wedge(Duration),
}

impl ChanTransport {
    pub fn new(nprocs: usize) -> Self {
        Self::with_timeout(nprocs, net_timeout())
    }

    /// Like [`ChanTransport::new`] with an explicit per-recv deadline.
    pub fn with_timeout(nprocs: usize, timeout: Duration) -> Self {
        let mut to_node = Vec::with_capacity(nprocs);
        let mut from_node = Vec::with_capacity(nprocs);
        let mut workers = Vec::with_capacity(nprocs);
        for node in 0..nprocs {
            let (tx_in, rx_in) = channel::<Cmd>();
            let (tx_out, rx_out) = channel::<Result<Vec<Vec<u8>>, String>>();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("fgdsm-chan-{node}"))
                    .spawn(move || {
                        while let Ok(cmd) = rx_in.recv() {
                            let frames = match cmd {
                                Cmd::Wedge(d) => {
                                    std::thread::sleep(d);
                                    continue;
                                }
                                Cmd::Batch(frames) => frames,
                            };
                            let mut out = Vec::with_capacity(frames.len());
                            let mut err = None;
                            for f in &frames {
                                match WireMsg::from_bytes(f) {
                                    Ok(msg) => out.push(msg.to_bytes()),
                                    Err(e) => {
                                        err = Some(format!("node {node}: {e}"));
                                        break;
                                    }
                                }
                            }
                            let reply = match err {
                                None => Ok(out),
                                Some(e) => Err(e),
                            };
                            if tx_out.send(reply).is_err() {
                                return;
                            }
                        }
                    })
                    .expect("spawn chan worker"),
            );
            to_node.push(Some(tx_in));
            from_node.push(rx_out);
        }
        ChanTransport {
            to_node,
            from_node,
            workers,
            timeout,
        }
    }

    /// Test hook: hang up on `node`'s worker, as if the peer process
    /// died. The next route to it reports [`WireError::PeerGone`].
    pub fn kill_worker(&mut self, node: usize) {
        self.to_node[node] = None;
    }

    /// Test hook: make `node`'s worker sleep through its next turn, so
    /// a route against a short deadline reports [`WireError::Timeout`].
    pub fn wedge_worker(&mut self, node: usize, dur: Duration) {
        if let Some(tx) = self.to_node[node].as_ref() {
            let _ = tx.send(Cmd::Wedge(dur));
        }
    }

    /// Tear down the worker threads. The drop-order contract that keeps
    /// this deadlock-free: the senders are cleared *before* any join, so
    /// every worker's `rx_in.recv()` returns `Err` (all senders gone)
    /// and the thread exits its loop — even when this runs during a
    /// panic unwind with requests still undrained. Joining first would
    /// deadlock: a worker parked in `recv()` never wakes while a sender
    /// is still alive in `self.to_node`.
    ///
    /// Idempotent (both vectors are drained), so an explicit call
    /// followed by `Drop` is fine.
    pub fn shutdown(&mut self) {
        self.to_node.clear();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl WireTransport for ChanTransport {
    fn name(&self) -> &'static str {
        "chan"
    }
    fn route(&mut self, dst: usize, frames: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, WireError> {
        if frames.is_empty() {
            return Ok(frames);
        }
        let Some(tx) = self.to_node.get(dst).and_then(Option::as_ref) else {
            return Err(WireError::PeerGone(dst as u32));
        };
        if tx.send(Cmd::Batch(frames)).is_err() {
            return Err(WireError::PeerGone(dst as u32));
        }
        match self.from_node[dst].recv_timeout(self.timeout) {
            Ok(Ok(frames)) => Ok(frames),
            Ok(Err(e)) => panic!("wire: envelope decode failed in transit: {e}"),
            Err(RecvTimeoutError::Timeout) => Err(WireError::Timeout(dst as u32)),
            Err(RecvTimeoutError::Disconnected) => Err(WireError::PeerGone(dst as u32)),
        }
    }
}

impl Drop for ChanTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push_msg() -> WireMsg {
        WireMsg::Push {
            hdr: WireHeader {
                src: 1,
                dst: 2,
                superstep: 3,
                loop_id: 4,
                array: 5,
                blocks: vec![7, 8],
            },
            start_block: 7,
            n_blocks: 2,
            words: vec![1.5f64.to_bits(), f64::NAN.to_bits()],
        }
    }

    /// Pins the v1 layout byte for byte: any accidental reordering,
    /// widening or endianness change of the header breaks this test,
    /// which is the cue to bump `WIRE_VERSION` instead.
    #[test]
    fn golden_v1_push_frame() {
        let bytes = push_msg().to_bytes();
        let mut want = Vec::new();
        want.extend_from_slice(&0xFD57u16.to_le_bytes()); // magic
        want.extend_from_slice(&1u16.to_le_bytes()); // version
        want.push(0); // kind = Push
        for f in [1u32, 2, 3, 4, 5] {
            want.extend_from_slice(&f.to_le_bytes()); // src dst step loop array
        }
        want.extend_from_slice(&2u32.to_le_bytes()); // block-list len
        want.extend_from_slice(&7u32.to_le_bytes());
        want.extend_from_slice(&8u32.to_le_bytes());
        want.extend_from_slice(&7u32.to_le_bytes()); // start_block
        want.extend_from_slice(&2u32.to_le_bytes()); // n_blocks
        want.extend_from_slice(&2u64.to_le_bytes()); // payload words
        want.extend_from_slice(&1.5f64.to_bits().to_le_bytes());
        want.extend_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert_eq!(bytes, want);
    }

    #[test]
    fn round_trip_every_variant() {
        let hdr = WireHeader::for_blocks(0, 3, (9, 2), u32::MAX, 12, 1);
        let msgs = vec![
            push_msg(),
            WireMsg::Flush {
                hdr: hdr.clone(),
                start_block: 12,
                n_blocks: 1,
                words: vec![0, u64::MAX],
            },
            WireMsg::Copy {
                hdr: hdr.clone(),
                start_word: 96,
                words: vec![42],
            },
            WireMsg::Diff {
                hdr: hdr.clone(),
                block: 12,
                mask: 0b101,
                words: vec![1, 2],
            },
            WireMsg::Strided {
                hdr,
                base: 640,
                run_len: 2,
                stride: 10,
                count: 3,
                words: vec![1, 2, 3, 4, 5, 6],
            },
        ];
        for m in msgs {
            let bytes = m.to_bytes();
            assert_eq!(WireMsg::from_bytes(&bytes).unwrap(), m, "kind {}", m.kind());
        }
    }

    #[test]
    fn decode_rejects_malformed_frames() {
        let good = push_msg().to_bytes();
        assert_eq!(WireMsg::from_bytes(&[]), Err(WireError::Truncated));

        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            WireMsg::from_bytes(&bad),
            Err(WireError::BadMagic(_))
        ));

        let mut bad = good.clone();
        bad[2] = 0x7F; // future version
        assert_eq!(WireMsg::from_bytes(&bad), Err(WireError::BadVersion(0x7F)));

        let mut bad = good.clone();
        bad[4] = 200;
        assert_eq!(WireMsg::from_bytes(&bad), Err(WireError::BadKind(200)));

        let mut bad = good.clone();
        bad.truncate(bad.len() - 1);
        assert_eq!(WireMsg::from_bytes(&bad), Err(WireError::Truncated));

        let mut bad = good.clone();
        bad.push(0);
        assert_eq!(WireMsg::from_bytes(&bad), Err(WireError::TrailingBytes(1)));

        // Diff whose mask popcount disagrees with its payload.
        let diff = WireMsg::Diff {
            hdr: WireHeader::for_blocks(0, 1, (0, 0), 0, 0, 1),
            block: 0,
            mask: 0b11,
            words: vec![1, 2],
        };
        let mut bytes = diff.to_bytes();
        // mask sits 8 bytes before the payload-length word.
        let mask_off = bytes.len() - 2 * 8 - 8 - 8;
        bytes[mask_off] = 0b111;
        assert_eq!(
            WireMsg::from_bytes(&bytes),
            Err(WireError::CountMismatch("diff mask popcount vs payload"))
        );
    }

    #[test]
    fn payload_bytes_match_note_msg_accounting() {
        assert_eq!(push_msg().payload_bytes(), 16);
        let diff = WireMsg::Diff {
            hdr: WireHeader::for_blocks(0, 1, (0, 0), 0, 0, 1),
            block: 0,
            mask: 0b1101,
            words: vec![1, 2, 3],
        };
        assert_eq!(diff.payload_bytes() as usize, diff_bytes(0b1101));
    }

    #[test]
    fn chan_transport_round_trips_and_rejects() {
        let mut t = ChanTransport::new(2);
        let frames = vec![push_msg().to_bytes()];
        let back = t.route(1, frames.clone()).unwrap();
        assert_eq!(back, frames, "decode + re-encode is the identity");
        assert!(t.route(0, Vec::new()).unwrap().is_empty());
        let corrupt = vec![vec![0u8; 4]];
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| t.route(0, corrupt)));
        assert!(r.is_err(), "corrupt frame must fail the route loudly");
    }

    /// The satellite fix: a disconnected peer is a typed `PeerGone`
    /// (with the peer id), a silent one a typed `Timeout` — never a
    /// forever-blocking recv.
    #[test]
    fn dead_or_silent_peers_yield_typed_errors_within_the_deadline() {
        let mut t = ChanTransport::with_timeout(3, Duration::from_millis(200));
        let frames = vec![push_msg().to_bytes()];

        t.kill_worker(1);
        let start = std::time::Instant::now();
        assert_eq!(
            t.route(1, frames.clone()),
            Err(WireError::PeerGone(1)),
            "route to a dead peer must fail typed, not hang"
        );
        assert!(start.elapsed() < Duration::from_secs(5));

        t.wedge_worker(2, Duration::from_secs(2));
        let start = std::time::Instant::now();
        assert_eq!(
            t.route(2, frames),
            Err(WireError::Timeout(2)),
            "route to a wedged peer must time out typed"
        );
        let waited = start.elapsed();
        assert!(
            waited >= Duration::from_millis(200) && waited < Duration::from_secs(5),
            "timeout must honor the configured deadline, waited {waited:?}"
        );
        t.shutdown();
    }

    #[test]
    fn frame_decoder_reassembles_across_arbitrary_splits() {
        let frames: Vec<Vec<u8>> = vec![vec![], vec![0xAB], (0u8..=255).collect()];
        let mut stream = Vec::new();
        for f in &frames {
            write_frame(&mut stream, f);
        }
        // Worst case: the stream arrives one byte at a time.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &stream {
            dec.push(std::slice::from_ref(b));
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert!(!dec.has_partial());
    }

    #[test]
    fn frame_decoder_rejects_oversized_and_flags_truncated() {
        // A length prefix above the cap fails before any payload arrives.
        let mut dec = FrameDecoder::new();
        dec.push(&(MAX_FRAME_BYTES as u32 + 1).to_le_bytes());
        assert_eq!(
            dec.next_frame(),
            Err(WireError::FrameTooBig(MAX_FRAME_BYTES + 1))
        );

        // A truncated trailing frame is visible as a partial at EOF.
        let mut stream = Vec::new();
        write_frame(&mut stream, &[1, 2, 3, 4]);
        let mut dec = FrameDecoder::new();
        dec.push(&stream[..stream.len() - 1]);
        assert_eq!(dec.next_frame(), Ok(None));
        assert!(
            dec.has_partial(),
            "truncated trailing frame must be flagged"
        );
    }

    #[test]
    fn ctrl_round_trip_and_rejects() {
        let msgs = vec![
            CtrlMsg::Hello {
                node: 3,
                version: WIRE_VERSION,
            },
            CtrlMsg::HelloAck {
                nprocs: 8,
                wpb: 4,
                seg_words: 4096,
            },
            CtrlMsg::Batch { n: 17 },
            CtrlMsg::Bye,
            CtrlMsg::ByeStats {
                frames: 9,
                payload_bytes: 1234,
                metrics: Vec::new(),
            },
            CtrlMsg::ByeStats {
                frames: 2,
                payload_bytes: 64,
                metrics: vec![0xAA; 37],
            },
            CtrlMsg::Err {
                detail: "frame length 67108865 exceeds cap".into(),
            },
        ];
        for m in msgs {
            let bytes = m.to_bytes();
            assert_eq!(CtrlMsg::from_bytes(&bytes).unwrap(), m);
            // Data and control magics are disjoint: each decoder rejects
            // the other's frames.
            assert!(matches!(
                WireMsg::from_bytes(&bytes),
                Err(WireError::BadMagic(CTRL_MAGIC))
            ));
            let mut trailing = m.to_bytes();
            trailing.push(0);
            assert_eq!(
                CtrlMsg::from_bytes(&trailing),
                Err(WireError::TrailingBytes(1))
            );
        }
        assert!(matches!(
            CtrlMsg::from_bytes(&push_msg().to_bytes()),
            Err(WireError::BadMagic(WIRE_MAGIC))
        ));
        assert_eq!(CtrlMsg::from_bytes(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn bye_stats_rejects_lying_metrics_length() {
        let bytes = CtrlMsg::ByeStats {
            frames: 1,
            payload_bytes: 8,
            metrics: vec![1, 2, 3],
        }
        .to_bytes();
        // Inflate the metrics length prefix past the frame end.
        let len_off = bytes.len() - 3 - 4;
        let mut bad = bytes.clone();
        bad[len_off..len_off + 4].copy_from_slice(&100u32.to_le_bytes());
        assert_eq!(CtrlMsg::from_bytes(&bad), Err(WireError::Truncated));
        // A length above the cap is rejected before any allocation.
        let mut bad = bytes;
        bad[len_off..len_off + 4].copy_from_slice(&(CTRL_MAX_METRICS as u32 + 1).to_le_bytes());
        assert_eq!(
            CtrlMsg::from_bytes(&bad),
            Err(WireError::CountMismatch("bye-stats metrics length"))
        );
    }

    /// The satellite fix: reconciliation failures name the node, the
    /// diverging counter, and both sides' values.
    #[test]
    fn reconcile_stats_reports_which_counter_diverged() {
        let remote = RemoteReport {
            node: 2,
            frames: 10,
            payload_bytes: 800,
            metrics: Vec::new(),
        };
        assert_eq!(reconcile_stats(2, 10, 800, &remote), Ok(()));
        let frames_err = reconcile_stats(2, 9, 800, &remote).unwrap_err();
        assert_eq!(
            frames_err,
            WireError::StatsMismatch {
                node: 2,
                counter: "frames",
                local: 9,
                remote: 10,
            }
        );
        assert_eq!(
            frames_err.to_string(),
            "node 2 frames counter diverged: coordinator 9 vs node 10"
        );
        // Frames agreeing but payload diverging blames payload_bytes.
        assert_eq!(
            reconcile_stats(2, 10, 792, &remote),
            Err(WireError::StatsMismatch {
                node: 2,
                counter: "payload_bytes",
                local: 792,
                remote: 800,
            })
        );
    }

    #[test]
    fn transport_finish_defaults_to_no_remote_reports() {
        assert!(Loopback.finish().is_empty());
        let mut t = ChanTransport::new(2);
        assert!(t.finish().is_empty());
        t.shutdown();
    }
}
