//! Pure transition functions of the directory protocol.
//!
//! Every directory decision the protocols make — who gets invalidated,
//! whose copy must be flushed home, and what the next [`DirState`] is —
//! is computed here as a *pure function* of the current state, with no
//! access to shards, clocks or charges. The stateful implementations
//! ([`crate::eager`], [`crate::update`], the ctl primitives in
//! [`crate::ctl`]) call these functions and perform the effects (data
//! movement, tag flips, cost accounting) at their call sites; the
//! bounded model checker (`crates/model`) calls the *same* functions to
//! drive its abstract state machine. That shared core is what ties the
//! checker to the implementation: a change to a transition rule is
//! either picked up by both, or diverges and is caught by the model's
//! conformance driver.

use crate::dir::DirState;
use fgdsm_tempest::NodeId;

/// Next directory state after node `p` completes a read of a block homed
/// at `h`. Mirrors the four arms of the eager protocol's read fault:
/// every path ends with the home holding a current copy and `p` in the
/// sharer (or transient-reader) set.
pub fn read_next(cur: DirState, p: NodeId, h: NodeId) -> DirState {
    match cur {
        DirState::Shared { readers } => DirState::Shared {
            readers: readers | DirState::bit(p),
        },
        DirState::Excl { owner } if owner == h => DirState::Shared {
            readers: DirState::bit(p) | DirState::bit(h),
        },
        DirState::Excl { owner } => DirState::Shared {
            readers: DirState::bit(p) | DirState::bit(owner) | DirState::bit(h),
        },
        DirState::Multi { writers, readers } => DirState::Multi {
            writers,
            readers: readers | DirState::bit(p),
        },
    }
}

/// Which node must flush its copy home before the home can serve a read:
/// a remote exclusive owner. `None` when the home copy is already
/// current (Shared, home-owned Excl) or when the per-writer diffs handle
/// it (Multi).
pub fn read_flush_owner(cur: DirState, h: NodeId) -> Option<NodeId> {
    match cur {
        DirState::Excl { owner } if owner != h => Some(owner),
        _ => None,
    }
}

/// The decisions behind making `p` the exclusive writer of a block —
/// shared by the eager protocol's write fault and the ctl path's
/// `mk_writable` (which performs the same transition without a fault).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AcquireExcl {
    /// Readers to invalidate eagerly (never includes `p`).
    pub invalidate_readers: u64,
    /// Previous exclusive owner whose copy must be copied home before
    /// anyone can fetch it (`Some` only when that owner is neither `p`
    /// nor the home — a home-resident copy is already "flushed").
    pub flush_owner: Option<NodeId>,
    /// Previous exclusive owner to invalidate (`Some` whenever the block
    /// was exclusive at some node other than `p`).
    pub invalidate_owner: Option<NodeId>,
    /// Resulting directory state: `Excl { owner: p }`.
    pub next: DirState,
}

/// Make `p` the single exclusive writer of a block homed at `h`.
///
/// Panics on a `Multi` block: both call sites exclude false-shared
/// blocks (the eager steal dispatches to the multi-writer path, and
/// compiler ranges exclude boundary blocks).
pub fn acquire_excl(cur: DirState, p: NodeId, h: NodeId) -> AcquireExcl {
    let (invalidate_readers, flush_owner, invalidate_owner) = match cur {
        DirState::Shared { readers } => (readers & !DirState::bit(p), None, None),
        DirState::Excl { owner } if owner == p => (0, None, None),
        DirState::Excl { owner } => {
            let flush = (owner != h).then_some(owner);
            (0, flush, Some(owner))
        }
        DirState::Multi { .. } => panic!("acquire_excl on a Multi block"),
    };
    AcquireExcl {
        invalidate_readers,
        flush_owner,
        invalidate_owner,
        next: DirState::Excl { owner: p },
    }
}

/// The decisions behind node `p` joining the multiple-writer set of a
/// false-shared block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EnterMulti {
    /// On first entry from `Excl`: the previous owner whose copy must be
    /// copied home so the home becomes the merge base (`None` when that
    /// owner *is* the home).
    pub flush_owner: Option<NodeId>,
    /// On first entry from `Excl`: the previous owner joins the writer
    /// set and needs a twin of the merge base.
    pub twin_owner: Option<NodeId>,
    /// On first entry from `Shared`: readers to invalidate (never `p`).
    pub invalidate_readers: u64,
    /// True when this transition created the `Multi` state (the release
    /// work-list entry is made exactly once).
    pub first_entry: bool,
    /// Whether the home's own tag must drop to Invalid (the home copy
    /// becomes the merge base, not a readable copy) — false when the
    /// home itself is one of the writers.
    pub invalidate_home: bool,
    /// Resulting state: `Multi` with `p` added to the writers and
    /// removed from the transient readers.
    pub next: DirState,
}

/// Add `p` to the writer set of a block homed at `h`.
pub fn enter_multi(cur: DirState, p: NodeId, h: NodeId) -> EnterMulti {
    let (flush_owner, twin_owner, invalidate_readers, first_entry, writers, readers) = match cur {
        DirState::Multi { writers, readers } => (None, None, 0, false, writers, readers),
        DirState::Excl { owner } => {
            let flush = (owner != h).then_some(owner);
            (flush, Some(owner), 0, true, DirState::bit(owner), 0)
        }
        DirState::Shared { readers } => (None, None, readers & !DirState::bit(p), true, 0, 0),
    };
    let writers = writers | DirState::bit(p);
    let readers = readers & !DirState::bit(p);
    EnterMulti {
        flush_owner,
        twin_owner,
        invalidate_readers,
        first_entry,
        invalidate_home: h != p && writers & DirState::bit(h) == 0,
        next: DirState::Multi { writers, readers },
    }
}

/// Directory state after the release-point merge of a `Multi` block:
/// the home holds the merged copy exclusively.
pub fn release_next(h: NodeId) -> DirState {
    DirState::Excl { owner: h }
}

/// Update-protocol normalization: any access by `p` leaves the block
/// `Shared` with `p` and the home `h` in the sharer set (the update
/// protocol's directory never records exclusive owners — which is why
/// the ctl contract is unsound on top of it).
pub fn update_share(cur: DirState, p: NodeId, h: NodeId) -> DirState {
    let readers = match cur {
        DirState::Shared { readers } => readers,
        _ => 0,
    };
    DirState::Shared {
        readers: readers | DirState::bit(p) | DirState::bit(h),
    }
}

/// Fold one flushed block of a `flush_range` plan (`writer → owner`):
/// returns whether a *third-party* home tag must drop to Invalid (the
/// owner now holds the only current copy) and the resulting directory
/// state.
pub fn flush_fold(writer: NodeId, owner: NodeId, h: NodeId) -> (bool, DirState) {
    (h != writer && h != owner, DirState::Excl { owner })
}

/// Which node a `send_range` push reads its payload from. The contract
/// answer is always the recorded `owner`; with `stale_owner` armed (the
/// fault-injection mutation) the push is redirected to the block's home
/// whenever the home is a third party — the §4.3 RTOE hazard of trusting
/// a memoized owner whose data was never flushed home.
pub fn push_source(owner: NodeId, reader: NodeId, home: NodeId, stale_owner: bool) -> NodeId {
    if stale_owner && home != owner && home != reader {
        home
    } else {
        owner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: fn(NodeId) -> u64 = DirState::bit;

    #[test]
    fn read_transitions() {
        assert_eq!(
            read_next(DirState::Shared { readers: B(0) }, 2, 0),
            DirState::Shared {
                readers: B(0) | B(2)
            }
        );
        // Home-owned exclusive: home downgrades, both share.
        assert_eq!(
            read_next(DirState::Excl { owner: 0 }, 1, 0),
            DirState::Shared {
                readers: B(0) | B(1)
            }
        );
        // Remote owner: 4-hop, all three end in the sharer set.
        assert_eq!(
            read_next(DirState::Excl { owner: 2 }, 1, 0),
            DirState::Shared {
                readers: B(0) | B(1) | B(2)
            }
        );
        assert_eq!(read_flush_owner(DirState::Excl { owner: 2 }, 0), Some(2));
        assert_eq!(read_flush_owner(DirState::Excl { owner: 0 }, 0), None);
        assert_eq!(
            read_flush_owner(DirState::Shared { readers: B(1) }, 0),
            None
        );
        // Multi: the reader joins the transient-reader set only.
        assert_eq!(
            read_next(
                DirState::Multi {
                    writers: B(1),
                    readers: 0
                },
                2,
                0
            ),
            DirState::Multi {
                writers: B(1),
                readers: B(2)
            }
        );
    }

    #[test]
    fn acquire_excl_from_shared_invalidates_others() {
        let eff = acquire_excl(
            DirState::Shared {
                readers: B(0) | B(1) | B(2),
            },
            1,
            0,
        );
        assert_eq!(eff.invalidate_readers, B(0) | B(2));
        assert_eq!(eff.flush_owner, None);
        assert_eq!(eff.invalidate_owner, None);
        assert_eq!(eff.next, DirState::Excl { owner: 1 });
    }

    #[test]
    fn acquire_excl_zero_sharers_is_clean() {
        // A Shared block with an empty sharer mask (all readers already
        // invalidated): nothing to invalidate, the steal is pure
        // directory bookkeeping.
        let eff = acquire_excl(DirState::Shared { readers: 0 }, 2, 0);
        assert_eq!(eff.invalidate_readers, 0);
        assert_eq!(eff.next, DirState::Excl { owner: 2 });
    }

    #[test]
    fn acquire_excl_from_remote_owner_flushes() {
        let eff = acquire_excl(DirState::Excl { owner: 2 }, 1, 0);
        assert_eq!(eff.flush_owner, Some(2));
        assert_eq!(eff.invalidate_owner, Some(2));
        // Home-resident owner: the copy is already home, only invalidate.
        let eff = acquire_excl(DirState::Excl { owner: 0 }, 1, 0);
        assert_eq!(eff.flush_owner, None);
        assert_eq!(eff.invalidate_owner, Some(0));
    }

    #[test]
    fn acquire_excl_self_transition_is_noop() {
        // Owner re-acquiring its own block: no invalidations, no flush.
        let eff = acquire_excl(DirState::Excl { owner: 3 }, 3, 0);
        assert_eq!(eff.invalidate_readers, 0);
        assert_eq!(eff.flush_owner, None);
        assert_eq!(eff.invalidate_owner, None);
        assert_eq!(eff.next, DirState::Excl { owner: 3 });
    }

    #[test]
    #[should_panic(expected = "Multi")]
    fn acquire_excl_rejects_multi() {
        acquire_excl(
            DirState::Multi {
                writers: B(1),
                readers: 0,
            },
            0,
            0,
        );
    }

    #[test]
    fn enter_multi_from_excl_twins_the_owner() {
        let eff = enter_multi(DirState::Excl { owner: 2 }, 1, 0);
        assert_eq!(eff.flush_owner, Some(2));
        assert_eq!(eff.twin_owner, Some(2));
        assert!(eff.first_entry);
        assert!(eff.invalidate_home);
        assert_eq!(
            eff.next,
            DirState::Multi {
                writers: B(1) | B(2),
                readers: 0
            }
        );
        // Home-resident owner: no flush needed, home is a writer.
        let eff = enter_multi(DirState::Excl { owner: 0 }, 1, 0);
        assert_eq!(eff.flush_owner, None);
        assert_eq!(eff.twin_owner, Some(0));
        assert!(!eff.invalidate_home, "home is in the writer set");
    }

    #[test]
    fn enter_multi_from_shared_and_steady_state() {
        let eff = enter_multi(
            DirState::Shared {
                readers: B(0) | B(2),
            },
            1,
            0,
        );
        assert_eq!(eff.invalidate_readers, B(0) | B(2));
        assert!(eff.first_entry);
        assert_eq!(
            eff.next,
            DirState::Multi {
                writers: B(1),
                readers: 0
            }
        );
        // Already Multi: joining is pure mask arithmetic.
        let eff = enter_multi(
            DirState::Multi {
                writers: B(1),
                readers: B(2),
            },
            2,
            0,
        );
        assert!(!eff.first_entry);
        assert_eq!(
            eff.next,
            DirState::Multi {
                writers: B(1) | B(2),
                readers: 0
            }
        );
    }

    #[test]
    fn release_and_update_and_flush() {
        assert_eq!(release_next(3), DirState::Excl { owner: 3 });
        assert_eq!(
            update_share(DirState::Excl { owner: 0 }, 1, 0),
            DirState::Shared {
                readers: B(0) | B(1)
            }
        );
        assert_eq!(
            update_share(DirState::Shared { readers: B(2) }, 1, 0),
            DirState::Shared {
                readers: B(0) | B(1) | B(2)
            }
        );
        assert_eq!(flush_fold(1, 0, 0), (false, DirState::Excl { owner: 0 }));
        assert_eq!(flush_fold(1, 0, 1), (false, DirState::Excl { owner: 0 }));
        assert_eq!(flush_fold(1, 0, 2), (true, DirState::Excl { owner: 0 }));
    }

    #[test]
    fn push_source_redirects_only_third_party_homes() {
        assert_eq!(push_source(1, 0, 2, false), 1);
        assert_eq!(push_source(1, 0, 2, true), 2, "third-party home");
        assert_eq!(push_source(1, 0, 1, true), 1, "home is the owner");
        assert_eq!(push_source(1, 0, 0, true), 1, "home is the reader");
    }

    #[test]
    fn max_node_id_masks() {
        // Node 63 exercises the top directory-mask bit end to end.
        let eff = acquire_excl(DirState::Shared { readers: B(63) }, 0, 0);
        assert_eq!(eff.invalidate_readers, B(63));
        assert_eq!(
            read_next(DirState::Excl { owner: 63 }, 0, 1),
            DirState::Shared {
                readers: B(0) | B(1) | B(63)
            }
        );
    }
}
