//! # fgdsm-protocol: coherence protocols over the Tempest substrate
//!
//! Four pieces, mirroring §3–§4.2 of the paper:
//!
//! * [`Dsm`] — the DSM **facade**: the Tempest cluster plus the block
//!   directory and the protocol-neutral twin/diff machinery, with the
//!   coherence *policy* behind the pluggable [`Protocol`] trait.
//! * The **built-in protocols**: [`EagerInvalidate`] — the paper's
//!   directory-based, eager-invalidate, multiple-writer
//!   release-consistency protocol at cache-block granularity (read misses
//!   are 2-hop when the home holds the data and 4-hop when another node
//!   holds it exclusively, Figure 1(a); write upgrades invalidate eagerly
//!   but do not stall the writer; false-shared blocks use per-writer
//!   twins and word-granularity diffs merged at the home) — and
//!   [`WriteUpdate`], the §3 aside's update-based alternative. Third
//!   protocols plug in through [`Dsm::with_protocol_impl`].
//! * The **compiler-directed extension** (`ctl` module, implemented on
//!   [`Dsm`]) — the run-time calls of §4.2's contract: `mk_writable`,
//!   `implicit_writable`, `send_range` / `ready_to_recv`,
//!   `implicit_invalidate`, `flush_range`, plus bulk-transfer payload
//!   grouping and the first-time memoization used by run-time overhead
//!   elimination (§4.3).
//! * [`MpRuntime`] — the message-passing backend: raw Tempest messages
//!   with the per-message software overhead of the PGI runtime the paper
//!   measured against.

pub mod ctl;
pub mod dir;
pub mod eager;
pub mod mp;
pub mod proto;
pub mod trans;
pub mod update;
pub mod wire;

pub use ctl::{
    CtlStats, FlushEntry, Payload, PlanOp, SendEntry, TransferPlan, PAR_APPLY_MIN_WORDS,
};
pub use dir::DirState;
pub use eager::EagerInvalidate;
pub use mp::{MpRuntime, MpSendPlan};
#[cfg(feature = "fault-inject")]
pub use proto::Injection;
pub use proto::{Dsm, Protocol, ProtocolKind};
pub use trans::{AcquireExcl, EnterMulti};
pub use update::WriteUpdate;
pub use wire::{
    diff_bytes, net_timeout, reconcile_stats, write_frame, ChanTransport, CtrlMsg, FrameDecoder,
    Loopback, RemoteReport, WireError, WireHeader, WireMsg, WireTransport, CTRL_MAGIC,
    MAX_FRAME_BYTES, WIRE_MAGIC, WIRE_VERSION,
};
