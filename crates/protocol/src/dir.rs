//! Directory state, kept at each block's home node.
//!
//! The directory must always know enough to find the current data (§3:
//! "the directory must be aware of the state of the block, because any
//! other processor is free to join the fray") — *except* while the
//! compiler has taken a block under explicit control, during which the
//! directory deliberately continues to believe the owner holds the block
//! exclusively (Figure 2C–2E).

use fgdsm_tempest::NodeId;

/// Coherence state of one block as recorded at its home.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DirState {
    /// Read-only copies at the nodes in the bitmask; the home's data copy
    /// is current.
    Shared { readers: u64 },
    /// A single writable copy at `owner` (initially the home itself).
    Excl { owner: NodeId },
    /// Multiple concurrent writers (false sharing): each writer in the
    /// bitmask holds a writable copy and a twin; the home's copy is the
    /// merge base. `readers` are nodes holding transient read copies of
    /// the merge base. Resolved by word-granularity diffs at the next
    /// release, which invalidates every copy except the home's.
    Multi { writers: u64, readers: u64 },
}

impl DirState {
    /// Bit for a node in a sharer/writer mask.
    #[inline]
    pub fn bit(node: NodeId) -> u64 {
        debug_assert!(node < 64, "directory masks support up to 64 nodes");
        1u64 << node
    }

    /// Iterate the nodes present in a bitmask.
    pub fn nodes(mask: u64) -> impl Iterator<Item = NodeId> {
        (0..64usize).filter(move |n| mask & (1 << n) != 0)
    }

    /// True if this state is `Excl` with the given owner.
    pub fn is_excl_by(&self, node: NodeId) -> bool {
        matches!(self, DirState::Excl { owner } if *owner == node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_roundtrip() {
        let m = DirState::bit(0) | DirState::bit(5) | DirState::bit(63);
        let nodes: Vec<_> = DirState::nodes(m).collect();
        assert_eq!(nodes, vec![0, 5, 63]);
    }

    #[test]
    fn excl_by() {
        assert!(DirState::Excl { owner: 3 }.is_excl_by(3));
        assert!(!DirState::Excl { owner: 3 }.is_excl_by(2));
        assert!(!DirState::Shared { readers: 8 }.is_excl_by(3));
    }

    /// The empty mask iterates nothing — the zero-sharer `Shared` state a
    /// full invalidation sweep leaves behind is inert, not an error.
    #[test]
    fn empty_mask_iterates_nothing() {
        assert_eq!(DirState::nodes(0).count(), 0);
        assert!(!DirState::Shared { readers: 0 }.is_excl_by(0));
    }

    /// `Multi` is never exclusive, even with a single writer bit set.
    #[test]
    fn multi_is_never_excl() {
        let m = DirState::Multi {
            writers: DirState::bit(2),
            readers: 0,
        };
        for n in 0..64 {
            assert!(!m.is_excl_by(n));
        }
    }

    /// The max node id (63) round-trips through bit/nodes without
    /// shifting out of the mask, and a full mask yields all 64 nodes.
    #[test]
    fn max_node_id_masks() {
        assert_eq!(DirState::bit(63), 1u64 << 63);
        let all: Vec<_> = DirState::nodes(u64::MAX).collect();
        assert_eq!(all.len(), 64);
        assert_eq!(all[63], 63);
        assert!(DirState::Excl { owner: 63 }.is_excl_by(63));
    }
}
