//! The paper's default protocol: directory-based eager-invalidate
//! multiple-writer release consistency at cache-block granularity (§3, §5).

use crate::dir::DirState;
use crate::proto::{Dsm, Protocol};
use crate::trans;
use fgdsm_tempest::{Access, ChargeKind, Event, FaultKind, NodeId};

/// Eager-invalidate multiple-writer release consistency.
///
/// Writers steal blocks without waiting for invalidation acknowledgements
/// (they drain by the next release); false-shared blocks enter a `Multi`
/// state with per-writer twins whose word diffs merge at the home on
/// release. Exclusive ownership survives barriers — the property §4.3's
/// run-time overhead elimination relies on — and the §4.2 ctl contract is
/// sound on top of it.
#[derive(Default)]
pub struct EagerInvalidate {
    /// Blocks currently in `Multi` state, flushed at the next release.
    multi_blocks: Vec<usize>,
}

impl EagerInvalidate {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Protocol for EagerInvalidate {
    fn name(&self) -> &'static str {
        "eager-invalidate"
    }

    fn supports_ctl(&self) -> bool {
        true
    }

    fn read_access(&mut self, d: &mut Dsm, p: NodeId, b: usize) {
        let cfg = d.cluster.cfg().clone();
        let h = d.cluster.home_of_block(b);
        let (s, e) = d.cluster.block_words(b);
        d.cluster.map_range(p, s, e - s);
        d.cluster.record(
            p,
            Event::Fault {
                block: b,
                kind: FaultKind::Read,
            },
        );
        // Fault detection + request to home.
        let mut stall = cfg.fault_detect_ns;
        if p != h {
            stall += cfg.one_way_ns(8) + d.hc(cfg.handler_dispatch_ns);
            d.cluster.note_msg_at(p, h, 8, b);
            d.cluster
                .charge_handler(h, cfg.handler_dispatch_ns + cfg.dir_lookup_ns);
        }
        stall += d.hc(cfg.dir_lookup_ns);

        let cur = d.dir_state(b);
        match cur {
            DirState::Shared { .. } => {
                // Clean: home copy is current.
                stall += d.data_home_to(p, h, b);
            }
            DirState::Excl { owner } if owner == h => {
                stall += d.data_home_to(p, h, b);
                // Home downgrades to read-only so its own later writes fault.
                d.cluster.set_tag(h, b, Access::ReadOnly);
            }
            DirState::Excl { owner } => {
                assert_ne!(owner, p, "read fault by recorded exclusive owner");
                debug_assert_eq!(trans::read_flush_owner(cur, h), Some(owner));
                // 4-hop (Figure 1(a)): put-data-request to owner, data back
                // to home, then response to requester.
                stall += cfg.one_way_ns(8)
                    + d.hc(cfg.handler_dispatch_ns + cfg.block_copy_ns)
                    + cfg.one_way_ns(cfg.block_bytes)
                    + d.hc(cfg.handler_dispatch_ns + cfg.block_copy_ns + cfg.dir_lookup_ns);
                d.cluster.note_msg_at(h, owner, 8, b);
                d.cluster.charge_handler(
                    owner,
                    cfg.handler_dispatch_ns + cfg.block_copy_ns + cfg.tag_change_ns,
                );
                d.cluster.note_msg_at(owner, h, cfg.block_bytes, b);
                d.cluster.charge_handler(
                    h,
                    cfg.handler_dispatch_ns + cfg.block_copy_ns + cfg.dir_lookup_ns,
                );
                // Data: owner → home, owner downgrades, home readable.
                d.wire_copy(owner, h, s, e - s);
                d.cluster.set_tag(owner, b, Access::ReadOnly);
                d.cluster.set_tag(h, b, Access::ReadOnly);
                stall += d.data_home_to(p, h, b);
            }
            DirState::Multi { writers, .. } => {
                // A non-writer reads a false-shared block mid-interval
                // (wide stencil): every writer flushes its diff home so the
                // merge base is current, then the home serves the reader.
                // Element-level race freedom guarantees the reader never
                // looks at words a writer changes after this point.
                for w in DirState::nodes(writers) {
                    let mask = d.diff_mask(w, b);
                    if mask != 0 && w != h {
                        let bytes = d.wire_diff(w, h, b, mask);
                        d.cluster
                            .charge_handler(w, cfg.handler_dispatch_ns + cfg.block_copy_ns);
                        d.cluster
                            .charge_handler(h, cfg.handler_dispatch_ns + cfg.block_copy_ns);
                        stall += cfg.one_way_ns(bytes) + d.hc(2 * cfg.handler_dispatch_ns);
                    } else if mask != 0 {
                        d.cluster.merge_block_words(w, h, b, mask);
                    }
                    // Refresh the twin: subsequent diffs are relative to
                    // the new merge base.
                    d.make_twin(w, b);
                }
                stall += d.data_home_to(p, h, b);
            }
        }
        d.set_dir(b, trans::read_next(cur, p, h));
        d.cluster.set_tag(p, b, Access::ReadOnly);
        stall += cfg.tag_change_ns;
        d.cluster.charge(p, stall, ChargeKind::Stall);
    }

    /// Service a write fault with *steal* semantics: `p` becomes the single
    /// exclusive writer. Eager invalidation: `p` does not wait for
    /// invalidation acknowledgements (they drain at the next release), so
    /// the stall is only fault handling plus a data fetch when `p` has no
    /// valid copy.
    fn write_access_excl(&mut self, d: &mut Dsm, p: NodeId, b: usize) {
        if d.cluster.tag(p, b) == Access::ReadWrite && d.dir_state(b).is_excl_by(p) {
            return;
        }
        let cfg = d.cluster.cfg().clone();
        let h = d.cluster.home_of_block(b);
        let (s, e) = d.cluster.block_words(b);
        d.cluster.map_range(p, s, e - s);
        let kind = if d.cluster.tag(p, b) == Access::ReadOnly {
            FaultKind::Upgrade
        } else {
            FaultKind::Write
        };
        d.cluster.record(p, Event::Fault { block: b, kind });

        let mut stall = cfg.fault_detect_ns + cfg.tag_change_ns;
        if p != h {
            // Eager ownership request: injection only.
            stall += cfg.msg_send_ns;
            d.cluster.note_msg_at(p, h, 8, b);
            d.cluster.note_pending_write(p);
        }
        d.cluster
            .charge_handler(h, cfg.handler_dispatch_ns + cfg.dir_lookup_ns);

        let need_data = d.cluster.tag(p, b) == Access::Invalid;
        let cur = d.dir_state(b);
        if let DirState::Excl { owner } = cur {
            assert_ne!(
                owner, p,
                "write fault by a node that is already exclusive owner"
            );
        }
        if matches!(cur, DirState::Multi { .. }) {
            unreachable!("steal write on a Multi block: use write_access_multi")
        }
        let eff = trans::acquire_excl(cur, p, h);
        // Invalidate every other reader, eagerly.
        for r in DirState::nodes(eff.invalidate_readers) {
            if r != h {
                d.cluster.note_msg_at(h, r, 8, b);
            }
            d.cluster
                .charge_handler(r, cfg.handler_dispatch_ns + cfg.tag_change_ns);
            d.cluster.set_tag(r, b, Access::Invalid);
        }
        if let Some(owner) = eff.flush_owner {
            // Current data is at `owner`: flush home, invalidate.
            d.cluster.charge_handler(
                owner,
                cfg.handler_dispatch_ns + cfg.block_copy_ns + cfg.tag_change_ns,
            );
            d.cluster.note_msg_at(h, owner, 8, b);
            d.cluster.note_msg_at(owner, h, cfg.block_bytes, b);
            d.cluster
                .charge_handler(h, cfg.handler_dispatch_ns + cfg.block_copy_ns);
            d.wire_copy(owner, h, s, e - s);
            stall += cfg.one_way_ns(8)
                + d.hc(cfg.handler_dispatch_ns + cfg.block_copy_ns)
                + cfg.one_way_ns(cfg.block_bytes)
                + d.hc(cfg.handler_dispatch_ns + cfg.block_copy_ns);
        }
        if let Some(owner) = eff.invalidate_owner {
            d.cluster.set_tag(owner, b, Access::Invalid);
        }
        if need_data {
            stall += d.data_home_to(p, h, b);
        }
        if h != p {
            d.cluster.set_tag(h, b, Access::Invalid);
        }
        d.cluster.set_tag(p, b, Access::ReadWrite);
        d.set_dir(b, eff.next);
        d.cluster.charge(p, stall, ChargeKind::Stall);
    }

    /// Service a write fault on a block that *multiple* nodes write in the
    /// same interval (false sharing at array-column boundaries, §4.1
    /// footnote): `p` joins the writer set, keeping a twin for the
    /// word-granularity diff merged at the next release.
    fn write_access_multi(&mut self, d: &mut Dsm, p: NodeId, b: usize) {
        let cfg = d.cluster.cfg().clone();
        let h = d.cluster.home_of_block(b);
        let (s, e) = d.cluster.block_words(b);
        // Already a writer in Multi state?
        if let DirState::Multi { writers, .. } = d.dir_state(b) {
            if writers & DirState::bit(p) != 0 {
                return;
            }
        }
        d.cluster.map_range(p, s, e - s);
        d.cluster.record(
            p,
            Event::Fault {
                block: b,
                kind: FaultKind::MultiWrite,
            },
        );

        let mut stall = cfg.fault_detect_ns + cfg.tag_change_ns;
        if p != h {
            stall += cfg.msg_send_ns;
            d.cluster.note_msg_at(p, h, 8, b);
            d.cluster.note_pending_write(p);
        }
        d.cluster
            .charge_handler(h, cfg.handler_dispatch_ns + cfg.dir_lookup_ns);

        // First entry into Multi: normalize the previous state so the home
        // copy is the merge base.
        let eff = trans::enter_multi(d.dir_state(b), p, h);
        if let Some(owner) = eff.flush_owner {
            // Owner flushes its current copy home and keeps writing.
            d.cluster
                .charge_handler(owner, cfg.handler_dispatch_ns + cfg.block_copy_ns);
            d.cluster.note_msg_at(owner, h, cfg.block_bytes, b);
            d.cluster
                .charge_handler(h, cfg.handler_dispatch_ns + cfg.block_copy_ns);
            d.wire_copy(owner, h, s, e - s);
            stall += cfg.one_way_ns(8)
                + d.hc(2 * cfg.handler_dispatch_ns + 2 * cfg.block_copy_ns)
                + cfg.one_way_ns(cfg.block_bytes);
        }
        if let Some(owner) = eff.twin_owner {
            d.make_twin(owner, b);
        }
        for r in DirState::nodes(eff.invalidate_readers) {
            if r != h {
                d.cluster.note_msg_at(h, r, 8, b);
            }
            d.cluster
                .charge_handler(r, cfg.handler_dispatch_ns + cfg.tag_change_ns);
            d.cluster.set_tag(r, b, Access::Invalid);
        }
        if eff.first_entry {
            self.multi_blocks.push(b);
        }
        // `p` joins: fetch the merge base if it has no valid copy.
        if d.cluster.tag(p, b) == Access::Invalid {
            stall += d.data_home_to(p, h, b);
        }
        d.make_twin(p, b);
        d.cluster.set_tag(p, b, Access::ReadWrite);
        if eff.invalidate_home {
            d.cluster.set_tag(h, b, Access::Invalid);
        }
        d.set_dir(b, eff.next);
        d.cluster.charge(p, stall, ChargeKind::Stall);
    }

    /// Release point: merge all `Multi` blocks home via word diffs.
    /// Exclusive blocks stay with their owner — the property run-time
    /// overhead elimination relies on (§4.3).
    fn release(&mut self, d: &mut Dsm) {
        let cfg = d.cluster.cfg().clone();
        let blocks = std::mem::take(&mut self.multi_blocks);
        for b in blocks {
            let DirState::Multi { writers, readers } = d.dir_state(b) else {
                continue;
            };
            let h = d.cluster.home_of_block(b);
            for r in DirState::nodes(readers) {
                // Transient readers of the old merge base are invalidated.
                d.cluster.set_tag(r, b, Access::Invalid);
            }
            for w in DirState::nodes(writers) {
                let mask = d.diff_mask(w, b);
                if w != h {
                    d.wire_diff(w, h, b, mask);
                    d.cluster.charge(w, cfg.msg_send_ns, ChargeKind::Stall);
                    d.cluster
                        .charge_handler(h, cfg.handler_dispatch_ns + cfg.block_copy_ns);
                }
                d.cluster.set_tag(w, b, Access::Invalid);
                d.remove_twin(w, b);
            }
            d.cluster.set_tag(h, b, Access::ReadWrite);
            d.set_dir(b, trans::release_next(h));
        }
    }

    fn check(&self, d: &Dsm) -> Result<(), String> {
        // Untouched blocks are still in the initial state (home holds the
        // exclusive writable copy, everyone else Invalid), which satisfies
        // every arm below — so only traffic-touched blocks need scanning.
        for b in d.touched_blocks() {
            match d.dir_state(b) {
                DirState::Excl { owner } => {
                    // The directory's record of the sole current copy must
                    // actually be a valid copy at that node — a skipped
                    // non-owner-write flush leaves the writer dir-exclusive
                    // with an Invalid tag.
                    if d.cluster.tag(owner, b) == Access::Invalid {
                        return Err(format!(
                            "block {b}: directory says Excl({owner}) but the owner's copy is Invalid"
                        ));
                    }
                    for n in 0..d.cluster.nprocs() {
                        let t = d.cluster.tag(n, b);
                        if n != owner && t == Access::ReadWrite && !d.is_ctl_block(n, b) {
                            return Err(format!(
                                "block {b}: node {n} is ReadWrite but directory says Excl({owner})"
                            ));
                        }
                    }
                }
                DirState::Shared { readers } => {
                    for n in 0..d.cluster.nprocs() {
                        let t = d.cluster.tag(n, b);
                        // Same excuse as the Excl arm: under RTOE a
                        // compiler-controlled reader keeps its ReadWrite
                        // tag between supersteps (§4.3) even after a
                        // third party's default read shares the block.
                        if t == Access::ReadWrite && !d.is_ctl_block(n, b) {
                            return Err(format!(
                                "block {b}: node {n} is ReadWrite but directory says Shared"
                            ));
                        }
                        if t == Access::ReadOnly && readers & DirState::bit(n) == 0 {
                            return Err(format!(
                                "block {b}: node {n} is ReadOnly but not in sharer mask"
                            ));
                        }
                    }
                }
                DirState::Multi { .. } => {
                    return Err(format!("block {b}: Multi state survived a release"));
                }
            }
        }
        Ok(())
    }
}
