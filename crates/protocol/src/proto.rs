//! The DSM facade and the [`Protocol`] plug-in interface.
//!
//! [`Dsm`] owns the Tempest cluster, the block directory, and the
//! protocol-neutral machinery every coherence protocol builds on (twins,
//! word diffs, home transfers). The *policy* — what happens on a fault and
//! at a release — lives behind the [`Protocol`] trait: the paper's
//! directory-based eager-invalidate multiple-writer release consistency
//! ([`crate::eager::EagerInvalidate`], §3/§5) and the §3 aside's
//! write-update alternative ([`crate::update::WriteUpdate`]) are the two
//! built-in implementations, and third-party protocols can plug in through
//! [`Dsm::with_protocol_impl`] using the same public building blocks.

use crate::dir::DirState;
use crate::eager::EagerInvalidate;
use crate::update::WriteUpdate;
use crate::wire::{reconcile_stats, WireHeader, WireMsg, WireTransport};
use fgdsm_tempest::metrics::{class_name, MetricsRegistry, WireSpan};
use fgdsm_tempest::{Access, Cluster, Mailbox, NodeId, VecPool, NO_ARRAY};
use std::collections::{BTreeMap, BTreeSet};

/// Which built-in default coherence protocol the DSM runs.
///
/// The paper's system uses eager-invalidate multiple-writer release
/// consistency; §3 notes that "general update-based protocols have
/// analogous problems" — [`ProtocolKind::WriteUpdate`] lets the benchmarks
/// quantify that: copies stay valid (no re-fetch misses), but every
/// release propagates each writer's dirty words to *every* sharer,
/// whether or not it will read them again.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ProtocolKind {
    /// Directory-based eager-invalidate MW release consistency (paper §5).
    #[default]
    EagerInvalidate,
    /// Write-update: writers keep sharers' copies current at each release.
    WriteUpdate,
}

/// A pluggable default coherence protocol.
///
/// Implementations receive the [`Dsm`] (cluster + directory + twin
/// machinery) and decide how faults are serviced and what a release point
/// does. The executor never sees this trait — it calls the [`Dsm`] facade
/// methods, which dispatch here.
pub trait Protocol {
    /// Short protocol name for reports and diagnostics.
    fn name(&self) -> &'static str;

    /// Whether the §4.2 compiler-directed control contract (`mk_writable`
    /// / `implicit_writable` / `send_range` / …) is sound on top of this
    /// protocol. The optimized executor refuses `OptLevel::ctl` otherwise.
    fn supports_ctl(&self) -> bool;

    /// Service a read fault: bring block `b` to at least `ReadOnly` at
    /// `p`. Only called when `p` has no valid copy.
    fn read_access(&mut self, d: &mut Dsm, p: NodeId, b: usize);

    /// Service a write fault where `p` is the interval's only writer of
    /// the block.
    fn write_access_excl(&mut self, d: &mut Dsm, p: NodeId, b: usize);

    /// Service a write fault on a block written by *multiple* nodes in
    /// the same interval (false sharing at column boundaries, §4.1).
    fn write_access_multi(&mut self, d: &mut Dsm, p: NodeId, b: usize);

    /// Release point: propagate/merge interval writes. The facade runs
    /// the global barrier afterwards.
    fn release(&mut self, d: &mut Dsm);

    /// Verify protocol invariants (directory vs. tags vs. data); called
    /// by tests after barriers.
    fn check(&self, d: &Dsm) -> Result<(), String>;
}

/// A fine-grain DSM: the Tempest cluster plus the block directory, the
/// protocol-neutral twin/diff machinery, and the compiler-control runtime
/// state — with the coherence *policy* behind a [`Protocol`] object.
pub struct Dsm {
    /// The underlying simulated cluster (public: executors run kernels
    /// directly against node memory).
    pub cluster: Cluster,
    dir: Vec<DirState>,
    /// Blocks whose directory state differs from the initial
    /// home-owns-everything assignment (`Excl{owner: home}`). Together
    /// with the per-shard dirty tag sets this bounds every consistency
    /// scan by the traffic footprint instead of the segment size.
    dirty_dirs: BTreeSet<usize>,
    /// Twins for multiple-writer blocks: (block, writer) → snapshot.
    twins: BTreeMap<(usize, NodeId), Box<[f64]>>,
    /// Per-receiver compiler-directed transfer inbox: latest arrival time
    /// and pending payload/block counts (reset by `ready_to_recv`).
    pub(crate) inbox_arrival: Vec<u64>,
    pub(crate) inbox_payloads: Vec<u64>,
    pub(crate) inbox_blocks: Vec<u64>,
    /// Memo for run-time overhead elimination: ranges already made
    /// implicitly writable at a node (§4.3's "first time around" test).
    pub(crate) iw_memo: std::collections::BTreeSet<(NodeId, usize, usize)>,
    /// Capacity-retaining free lists for transfer plans, recycled across
    /// supersteps by [`Dsm::recycle_plans`] so steady-state planning
    /// allocates nothing.
    pub(crate) plan_scratch: crate::ctl::PlanScratch,
    /// Strict wire mode: when present, every inter-node data movement is
    /// encoded into a [`WireMsg`] envelope, carried by the transport, and
    /// applied from the decoded payload (`None` = zero-copy fast path).
    pub(crate) wire: Option<WireState>,
    /// Active contract mutations (fuzzer teeth; all off by default).
    #[cfg(feature = "fault-inject")]
    injection: Injection,
    /// The active protocol; taken out during dispatch to avoid a double
    /// borrow, always put back (`None` only mid-call).
    proto: Option<Box<dyn Protocol>>,
}

/// Everything strict wire mode needs: the per-node [`Mailbox`] staging
/// encoded frames, the transport that carries them, payload-buffer
/// recycling, and frame/byte counters for reconciliation against
/// `NodeStats`.
pub(crate) struct WireState {
    pub mailbox: Mailbox,
    pub transport: Box<dyn WireTransport>,
    /// Recycled payload buffers (PR-6 scratch discipline): encode takes
    /// one, apply hands the decoded payload back.
    pub words_pool: VecPool<u64>,
    /// Envelopes routed so far.
    pub frames: u64,
    /// Total on-wire payload bytes ([`WireMsg::payload_bytes`]).
    pub payload_bytes: u64,
    /// Host wall-clock spent inside `transport.route`, in ns. Real time
    /// (like `ClusterReport::wall_ns`), so it is kept out of every
    /// canonical artifact — it exists so the bench layer can put
    /// *measured* transport latency next to the *predicted* virtual
    /// comm clock.
    pub route_ns: u64,
    /// One-shot marker: the `corrupt_envelope` injection has fired.
    /// Only consulted when the `fault-inject` feature is compiled in.
    #[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
    pub corrupted: bool,
    /// Coordinator-side double-entry book, per destination node: frames
    /// and payload bytes staged toward each peer. Always maintained (two
    /// adds per frame), reconciled against each remote's `ByeStats` at
    /// [`Dsm::wire_finish`].
    pub dst_frames: Vec<u64>,
    pub dst_payload: Vec<u64>,
    /// Wall-clock telemetry, present only when enabled — `None` costs
    /// nothing on the hot path and keeps canonical artifacts untouched.
    pub metrics: Option<WireMetrics>,
}

/// The coordinator's wall-clock telemetry state: per-class histograms
/// and counters, the epoch every span timestamp is relative to, and the
/// socket-batch spans for the merged Chrome trace.
pub(crate) struct WireMetrics {
    pub reg: MetricsRegistry,
    pub epoch: std::time::Instant,
    pub spans: Vec<WireSpan>,
    /// One-shot marker: the `undercount_metrics` injection has fired.
    #[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
    pub undercounted: bool,
}

impl WireMetrics {
    fn new() -> Self {
        WireMetrics {
            reg: MetricsRegistry::new(),
            epoch: std::time::Instant::now(),
            spans: Vec::new(),
            undercounted: false,
        }
    }
}

impl WireState {
    fn new(nprocs: usize, transport: Box<dyn WireTransport>) -> Self {
        WireState {
            mailbox: Mailbox::new(nprocs),
            transport,
            words_pool: VecPool::default(),
            frames: 0,
            payload_bytes: 0,
            route_ns: 0,
            corrupted: false,
            dst_frames: vec![0; nprocs],
            dst_payload: vec![0; nprocs],
            metrics: None,
        }
    }

    /// Book one staged envelope: the global and per-destination counters
    /// (always), plus the per-class counters and encode histogram when
    /// telemetry is on. `undercount` is the armed `undercount_metrics`
    /// injection token — it skips the per-class payload counter exactly
    /// once, which the fuzz oracle's conservation invariant must catch.
    pub(crate) fn note_encoded(
        &mut self,
        kind: u8,
        dst: usize,
        payload: u64,
        encode_ns: u64,
        undercount: bool,
    ) {
        self.frames += 1;
        self.payload_bytes += payload;
        self.dst_frames[dst] += 1;
        self.dst_payload[dst] += payload;
        if let Some(m) = self.metrics.as_mut() {
            let class = class_name(kind);
            m.reg.counter_add(&format!("frames.{class}"), 1);
            if !undercount {
                m.reg
                    .counter_add(&format!("payload_bytes.{class}"), payload);
            }
            m.reg.record_ns(&format!("encode.{class}"), encode_ns);
        }
    }

    /// Start an encode/decode stopwatch — `None` (no clock read at all)
    /// when telemetry is off.
    pub(crate) fn stopwatch(&self) -> Option<std::time::Instant> {
        self.metrics.as_ref().map(|_| std::time::Instant::now())
    }

    /// Record a histogram sample against a started stopwatch.
    pub(crate) fn lap(&mut self, name: &str, t0: Option<std::time::Instant>) {
        if let (Some(m), Some(t0)) = (self.metrics.as_mut(), t0) {
            m.reg.record_ns(name, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Carry one batch through the transport, accumulating measured wall
    /// time. A transport-level failure (peer gone, timeout) unwinds with
    /// the typed [`crate::wire::WireError`] itself as the panic payload,
    /// so executors can `catch_unwind` + downcast it back into a typed
    /// result instead of scraping a message string.
    ///
    /// With telemetry on, each non-empty batch additionally records a
    /// [`WireSpan`] (for the merged Chrome trace) and the batch's
    /// round-trip duration into `route.<class>` for every frame it
    /// carried — the class read by peeking each frame's kind byte
    /// (offset 4, after magic + version) without decoding.
    pub(crate) fn route(&mut self, dst: usize, frames: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        let pre = self.metrics.as_ref().map(|m| {
            let kinds: Vec<u8> = frames
                .iter()
                .map(|f| f.get(4).copied().unwrap_or(u8::MAX))
                .collect();
            let bytes: u64 = frames.iter().map(|f| f.len() as u64).sum();
            (kinds, bytes, m.epoch.elapsed().as_nanos() as u64)
        });
        let t0 = std::time::Instant::now();
        let routed = self.transport.route(dst, frames);
        let dur_ns = t0.elapsed().as_nanos() as u64;
        self.route_ns += dur_ns;
        if let (Some(m), Some((kinds, bytes, start_ns))) = (self.metrics.as_mut(), pre) {
            if !kinds.is_empty() {
                m.spans.push(WireSpan {
                    dst: dst as u32,
                    start_ns,
                    dur_ns,
                    frames: kinds.len() as u32,
                    bytes,
                });
                for k in kinds {
                    m.reg.record_ns(&format!("route.{}", class_name(k)), dur_ns);
                }
            }
        }
        match routed {
            Ok(frames) => frames,
            Err(e) => std::panic::panic_any(e),
        }
    }
}

/// Deliberately damage an encoded frame for the `corrupt_envelope`
/// must-catch injection: flipping a version bit leaves the payload
/// intact, so only a decoder that actually validates will notice.
pub(crate) fn corrupt_frame(buf: &mut [u8]) {
    if buf.len() > 2 {
        buf[2] ^= 0x40;
    }
}

/// Deliberate contract violations for the differential fuzzer's
/// *must-catch* suite: each knob silently corrupts one §4.2 primitive so
/// the harness can assert the cross-backend oracle actually detects the
/// resulting incoherence. Only compiled under the `fault-inject` feature;
/// production builds carry no injection state.
#[cfg(feature = "fault-inject")]
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct Injection {
    /// Off-by-one section bound: `send_range` delivers one block fewer
    /// than the contract promised, leaving the readers' last block tagged
    /// ReadWrite over stale data — the §3 a(513,1)/a(1,2) failure mode.
    pub skew_send_range: bool,
    /// Skip `flush_range` entirely: a non-owner writer's modifications
    /// never reach the owner, so later owner-side sends push stale data.
    pub skip_flush_range: bool,
    /// Redirect every `send_range` push to read from the range's *home*
    /// node instead of the recorded exclusive owner whenever the home is
    /// a third party: the §4.3 RTOE hazard — a stale owner memo pushing
    /// a copy that was never flushed home.
    pub stale_owner_push: bool,
    /// Reverse the plan order inside `apply_plans` when the resolve phase
    /// runs parallel (`workers > 1`): a deliberately nondeterministic
    /// merge, making threaded-resolve reports and traces diverge from the
    /// serial plan order the contract guarantees.
    pub reorder_plan_apply: bool,
    /// Rotate the parallel-apply outcome vector before folding it, so
    /// pool/thread results are merged out of plan-index order — the
    /// exact mistake a worker-pool integration could make, which the
    /// determinism oracle must catch (arrival times and inbox counters
    /// land on the wrong receivers).
    pub misfold_pool: bool,
    /// Flip a byte inside the first envelope routed in strict wire mode:
    /// `WireMsg::from_bytes` must reject the frame and fail the run
    /// loudly, proving decode validation has teeth (a vacuous decoder
    /// would apply the payload anyway and diverge from nothing).
    pub corrupt_envelope: bool,
    /// Skip the telemetry registry's per-class `payload_bytes` counter
    /// for the first staged envelope (the double-entry counters and the
    /// run itself stay correct): the fuzz oracle's metrics-conservation
    /// invariant — Σ per-class payload counters == `wire_payload_bytes`
    /// — must catch the shortfall, proving the invariant has teeth.
    pub undercount_metrics: bool,
}

impl Dsm {
    /// Wrap a cluster; every block starts exclusively owned by its home.
    /// Runs the paper's eager-invalidate protocol.
    pub fn new(cluster: Cluster) -> Self {
        Self::with_protocol(cluster, ProtocolKind::EagerInvalidate)
    }

    /// Wrap a cluster with one of the built-in protocols.
    pub fn with_protocol(cluster: Cluster, kind: ProtocolKind) -> Self {
        let proto: Box<dyn Protocol> = match kind {
            ProtocolKind::EagerInvalidate => Box::new(EagerInvalidate::new()),
            ProtocolKind::WriteUpdate => Box::new(WriteUpdate::new()),
        };
        Self::with_protocol_impl(cluster, proto)
    }

    /// Wrap a cluster with an arbitrary [`Protocol`] implementation.
    pub fn with_protocol_impl(cluster: Cluster, proto: Box<dyn Protocol>) -> Self {
        assert!(cluster.nprocs() <= 64, "directory masks support ≤64 nodes");
        let n_blocks = cluster.n_blocks();
        let nprocs = cluster.nprocs();
        let dir = (0..n_blocks)
            .map(|b| DirState::Excl {
                owner: cluster.home_of_block(b),
            })
            .collect();
        Dsm {
            cluster,
            dir,
            dirty_dirs: BTreeSet::new(),
            twins: BTreeMap::new(),
            inbox_arrival: vec![0; nprocs],
            inbox_payloads: vec![0; nprocs],
            inbox_blocks: vec![0; nprocs],
            iw_memo: std::collections::BTreeSet::new(),
            plan_scratch: crate::ctl::PlanScratch::default(),
            wire: None,
            #[cfg(feature = "fault-inject")]
            injection: Injection::default(),
            proto: Some(proto),
        }
    }

    /// Switch on strict wire mode: from here on, every inter-node data
    /// movement round-trips through an encoded [`WireMsg`] carried by
    /// `transport`. Observable behavior (clocks, stats, traces, data)
    /// is byte-identical to the fast path — only the data path changes.
    pub fn set_wire(&mut self, transport: Box<dyn WireTransport>) {
        let nprocs = self.cluster.nprocs();
        self.wire = Some(WireState::new(nprocs, transport));
    }

    /// Whether strict wire mode is active.
    pub fn wire_strict(&self) -> bool {
        self.wire.is_some()
    }

    /// Switch on wall-clock telemetry for the active wire transport:
    /// per-class encode/route/decode/apply histograms and socket-batch
    /// spans. No-op on the fast path (no wire, nothing to time); costs
    /// nothing when never called.
    pub fn enable_wire_metrics(&mut self) {
        if let Some(w) = self.wire.as_mut() {
            w.metrics = Some(WireMetrics::new());
        }
    }

    /// Whether wall-clock telemetry is recording.
    pub fn wire_metrics_on(&self) -> bool {
        self.wire.as_ref().is_some_and(|w| w.metrics.is_some())
    }

    /// End-of-run telemetry harvest: tear down the transport's remote
    /// peers, reconcile each node's `ByeStats` book against the
    /// coordinator's per-destination counters (panicking with a typed
    /// [`crate::wire::WireError::StatsMismatch`] naming the diverging
    /// counter), then merge every process's registry under node-tagged
    /// keys (`coord.*`, `node<i>.*`). Returns the merged registry (None
    /// when telemetry was off) and the recorded socket-batch spans.
    pub fn wire_finish(&mut self) -> (Option<MetricsRegistry>, Vec<WireSpan>) {
        let Some(w) = self.wire.as_mut() else {
            return (None, Vec::new());
        };
        let reports = w.transport.finish();
        for r in &reports {
            let node = r.node as usize;
            let local_frames = w.dst_frames.get(node).copied().unwrap_or(0);
            let local_payload = w.dst_payload.get(node).copied().unwrap_or(0);
            if let Err(e) = reconcile_stats(r.node, local_frames, local_payload, r) {
                std::panic::panic_any(e);
            }
        }
        let Some(m) = w.metrics.take() else {
            return (None, Vec::new());
        };
        let mut merged = MetricsRegistry::new();
        merged.merge_tagged("coord", &m.reg);
        for r in &reports {
            if r.metrics.is_empty() {
                continue;
            }
            match MetricsRegistry::from_bytes(&r.metrics) {
                Ok(reg) => merged.merge_tagged(&format!("node{}", r.node), &reg),
                Err(e) => panic!("wire: node {} shipped a bad metrics blob: {e}", r.node),
            }
        }
        (Some(merged), m.spans)
    }

    /// `(frames routed, payload bytes)` so far; `(0, 0)` on the fast
    /// path. Exposed outside the report so wire accounting can be
    /// reconciled against `NodeStats` without perturbing byte-identity.
    pub fn wire_stats(&self) -> (u64, u64) {
        self.wire
            .as_ref()
            .map_or((0, 0), |w| (w.frames, w.payload_bytes))
    }

    /// Measured host wall-clock spent inside the transport's `route`, in
    /// ns (`0` on the fast path). Real time, never part of canonical
    /// artifacts — the bench layer reads it to compare measured transport
    /// latency against the virtual cost model.
    pub fn wire_route_ns(&self) -> u64 {
        self.wire.as_ref().map_or(0, |w| w.route_ns)
    }

    /// Arm (or disarm) the must-catch contract mutations. Compiled only
    /// under the `fault-inject` feature.
    #[cfg(feature = "fault-inject")]
    pub fn set_injection(&mut self, injection: Injection) {
        self.injection = injection;
    }

    /// Whether `send_range` should drop its last block (always false
    /// without the `fault-inject` feature).
    pub(crate) fn inj_skew_send_range(&self) -> bool {
        #[cfg(feature = "fault-inject")]
        {
            self.injection.skew_send_range
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            false
        }
    }

    /// Whether `flush_range` should be skipped entirely (always false
    /// without the `fault-inject` feature).
    pub(crate) fn inj_skip_flush_range(&self) -> bool {
        #[cfg(feature = "fault-inject")]
        {
            self.injection.skip_flush_range
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            false
        }
    }

    /// Whether `send_range` should push the home's (possibly stale) copy
    /// instead of the owner's (always false without the `fault-inject`
    /// feature).
    pub(crate) fn inj_stale_owner_push(&self) -> bool {
        #[cfg(feature = "fault-inject")]
        {
            self.injection.stale_owner_push
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            false
        }
    }

    /// Whether `apply_plans` should reverse its plan order under a
    /// parallel resolve (always false without the `fault-inject` feature).
    pub(crate) fn inj_reorder_plan_apply(&self) -> bool {
        #[cfg(feature = "fault-inject")]
        {
            self.injection.reorder_plan_apply
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            false
        }
    }

    /// Whether parallel `apply_plans` should fold its outcomes rotated
    /// out of plan-index order (always false without the `fault-inject`
    /// feature).
    pub(crate) fn inj_misfold_pool(&self) -> bool {
        #[cfg(feature = "fault-inject")]
        {
            self.injection.misfold_pool
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            false
        }
    }

    /// Consume the one-shot `corrupt_envelope` token: true exactly once
    /// per run, for the first routed frame, when the injection is armed
    /// and strict wire mode is active.
    pub(crate) fn take_corrupt_token(&mut self) -> bool {
        #[cfg(feature = "fault-inject")]
        {
            if self.injection.corrupt_envelope {
                if let Some(w) = self.wire.as_mut() {
                    if !w.corrupted {
                        w.corrupted = true;
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Consume the one-shot `undercount_metrics` token: true exactly
    /// once per run, for the first staged envelope, when the injection
    /// is armed and telemetry is recording.
    pub(crate) fn take_undercount_token(&mut self) -> bool {
        #[cfg(feature = "fault-inject")]
        {
            if self.injection.undercount_metrics {
                if let Some(m) = self.wire.as_mut().and_then(|w| w.metrics.as_mut()) {
                    if !m.undercounted {
                        m.undercounted = true;
                        return true;
                    }
                }
            }
        }
        false
    }

    // ------------------------------------------------------------------
    // Strict wire mode: envelope encode / route / decode / apply
    // ------------------------------------------------------------------

    /// Encode `msg`, carry it through the transport as bytes, decode the
    /// delivered frame. The source payload buffer is recycled; a frame
    /// the decoder rejects fails the run loudly (dropped traffic is
    /// never papered over).
    pub(crate) fn wire_route_one(&mut self, msg: WireMsg) -> WireMsg {
        let corrupt = self.take_corrupt_token();
        let undercount = self.take_undercount_token();
        let w = self.wire.as_mut().expect("wire_route_one: strict mode off");
        let (kind, dst, payload) = (msg.kind(), msg.hdr().dst as usize, msg.payload_bytes());
        let mut buf = w.mailbox.take_buf();
        let t_enc = w.stopwatch();
        msg.encode(&mut buf);
        let encode_ns = t_enc.map_or(0, |t| t.elapsed().as_nanos() as u64);
        w.note_encoded(kind, dst, payload, encode_ns, undercount);
        w.words_pool.put(msg.into_words());
        if corrupt {
            corrupt_frame(&mut buf);
        }
        let mut frames = w.route(dst, vec![buf]);
        let frame = frames.pop().expect("wire: transport dropped a frame");
        let t_dec = w.stopwatch();
        let out = match WireMsg::from_bytes(&frame) {
            Ok(m) => m,
            Err(e) => panic!("wire: envelope decode failed at node {dst}: {e}"),
        };
        w.lap(&format!("decode.{}", class_name(out.kind())), t_dec);
        w.mailbox.recycle_buf(frame);
        out
    }

    /// Move `len` words `src → dst` starting at word `start`. Fast path:
    /// a direct shard-to-shard copy. Strict wire mode: the words travel
    /// as an encoded [`WireMsg::Copy`] through the transport and land
    /// from the decoded payload — behaviorally identical, bit for bit.
    /// Charges and message accounting stay at the call sites.
    pub fn wire_copy(&mut self, src: NodeId, dst: NodeId, start: usize, len: usize) {
        if src == dst || len == 0 {
            return;
        }
        if self.wire.is_none() {
            self.cluster.copy_words(src, dst, start, len);
            return;
        }
        let ctx = self.cluster.node_trace(src).context();
        let b0 = self.cluster.block_of(start);
        let b1 = self.cluster.block_of(start + len - 1);
        let hdr = WireHeader::for_blocks(src, dst, ctx, NO_ARRAY, b0, b1 - b0 + 1);
        let mut words = self.wire.as_mut().unwrap().words_pool.take();
        words.extend(
            self.cluster.node_mem(src)[start..start + len]
                .iter()
                .map(|x| x.to_bits()),
        );
        let msg = WireMsg::Copy {
            hdr,
            start_word: start as u64,
            words,
        };
        match self.wire_route_one(msg) {
            WireMsg::Copy {
                start_word, words, ..
            } => {
                let t_apply = self.wire.as_ref().unwrap().stopwatch();
                let s = start_word as usize;
                let mem = self.cluster.node_mem_mut(dst);
                for (i, bits) in words.iter().enumerate() {
                    mem[s + i] = f64::from_bits(*bits);
                }
                let w = self.wire.as_mut().unwrap();
                w.lap("apply.copy", t_apply);
                w.words_pool.put(words);
            }
            other => panic!("wire: expected Copy envelope, got kind {}", other.kind()),
        }
    }

    /// The single home of (array, block) diff attribution: account the
    /// word-diff message `src → dst` for block `b` (the mask word plus
    /// one word per dirty bit, [`crate::wire::diff_bytes`]) and move the
    /// masked words — enveloped as [`WireMsg::Diff`] in strict wire
    /// mode. Returns the on-wire bytes for the caller's latency charge.
    pub fn wire_diff(&mut self, src: NodeId, dst: NodeId, b: usize, mask: u64) -> usize {
        let bytes = crate::wire::diff_bytes(mask);
        self.cluster.note_msg_at(src, dst, bytes, b);
        if self.wire.is_none() {
            self.cluster.merge_block_words(src, dst, b, mask);
            return bytes;
        }
        let ctx = self.cluster.node_trace(src).context();
        let hdr = WireHeader::for_blocks(src, dst, ctx, NO_ARRAY, b, 1);
        let (s, _) = self.cluster.block_words(b);
        let mut words = self.wire.as_mut().unwrap().words_pool.take();
        let mem = self.cluster.node_mem(src);
        for bit in 0..64u32 {
            if mask & (1u64 << bit) != 0 {
                words.push(mem[s + bit as usize].to_bits());
            }
        }
        let msg = WireMsg::Diff {
            hdr,
            block: b as u64,
            mask,
            words,
        };
        match self.wire_route_one(msg) {
            WireMsg::Diff {
                block, mask, words, ..
            } => {
                let t_apply = self.wire.as_ref().unwrap().stopwatch();
                let (s, _) = self.cluster.block_words(block as usize);
                let mem = self.cluster.node_mem_mut(dst);
                let mut i = 0;
                for bit in 0..64u32 {
                    if mask & (1u64 << bit) != 0 {
                        mem[s + bit as usize] = f64::from_bits(words[i]);
                        i += 1;
                    }
                }
                let w = self.wire.as_mut().unwrap();
                w.lap("apply.diff", t_apply);
                w.words_pool.put(words);
            }
            other => panic!("wire: expected Diff envelope, got kind {}", other.kind()),
        }
        bytes
    }

    fn proto(&self) -> &dyn Protocol {
        self.proto.as_deref().expect("protocol re-entered")
    }

    /// Name of the protocol in force.
    pub fn protocol_name(&self) -> &'static str {
        self.proto().name()
    }

    /// Whether the active protocol supports the §4.2 ctl contract.
    pub fn supports_ctl(&self) -> bool {
        self.proto().supports_ctl()
    }

    /// Directory state of a block (inspection/testing).
    pub fn dir_state(&self, b: usize) -> DirState {
        self.dir[b]
    }

    /// Overwrite a block's directory state (protocol transitions and
    /// compiler-control state changes). Maintains the dirty-directory
    /// set: a block is dirty while its state differs from the initial
    /// `Excl{owner: home}`.
    pub fn set_dir(&mut self, b: usize, s: DirState) {
        self.dir[b] = s;
        if s.is_excl_by(self.cluster.home_of_block(b)) {
            self.dirty_dirs.remove(&b);
        } else {
            self.dirty_dirs.insert(b);
        }
    }

    /// Blocks whose directory state deviates from the initial
    /// home-exclusive assignment (ascending order).
    pub fn dirty_dir_blocks(&self) -> impl Iterator<Item = usize> + '_ {
        self.dirty_dirs.iter().copied()
    }

    /// Every block that any protocol state — the directory or any node's
    /// access tag — has moved off the initial assignment. Untouched
    /// blocks provably satisfy the protocol invariants (home holds the
    /// only, writable, zero-initialized copy), so consistency checks and
    /// gathers iterate this set instead of the whole segment.
    pub fn touched_blocks(&self) -> BTreeSet<usize> {
        let mut out = self.dirty_dirs.clone();
        for n in 0..self.cluster.nprocs() {
            out.extend(self.cluster.shard(n).dirty_blocks().iter().copied());
        }
        out
    }

    /// Handler-occupancy cost scaled for the cpu configuration.
    #[inline]
    pub fn hc(&self, ns: u64) -> u64 {
        self.cluster.cfg().handler_cost(ns)
    }

    // ------------------------------------------------------------------
    // Protocol-neutral building blocks (public: protocols — including
    // external ones — compose these)
    // ------------------------------------------------------------------

    /// Snapshot a block's current contents at `node` into a twin buffer.
    pub fn make_twin(&mut self, node: NodeId, b: usize) {
        let (s, e) = self.cluster.block_words(b);
        let data: Box<[f64]> = self.cluster.node_mem(node)[s..e].into();
        self.twins.insert((b, node), data);
    }

    /// Whether `node` currently holds a twin of block `b`.
    pub fn has_twin(&self, node: NodeId, b: usize) -> bool {
        self.twins.contains_key(&(b, node))
    }

    /// Drop `node`'s twin of block `b` (end of a write interval).
    pub fn remove_twin(&mut self, node: NodeId, b: usize) {
        self.twins.remove(&(b, node));
    }

    /// Word-diff a writer's block against its twin; returns the dirty mask.
    pub fn diff_mask(&self, node: NodeId, b: usize) -> u64 {
        let twin = &self.twins[&(b, node)];
        let (s, e) = self.cluster.block_words(b);
        let cur = &self.cluster.node_mem(node)[s..e];
        let mut mask = 0u64;
        for (i, (c, t)) in cur.iter().zip(twin.iter()).enumerate() {
            if c.to_bits() != t.to_bits() {
                mask |= 1 << i;
            }
        }
        mask
    }

    /// Cost and data movement for the home shipping its (current) copy of
    /// block `b` to `p`. Returns the stall to charge at `p`.
    pub fn data_home_to(&mut self, p: NodeId, h: NodeId, b: usize) -> u64 {
        let cfg = self.cluster.cfg().clone();
        let (s, e) = self.cluster.block_words(b);
        if p == h {
            // Local: the data is already in the home's copy.
            return cfg.tag_change_ns;
        }
        self.cluster.charge_handler(h, cfg.block_copy_ns);
        self.cluster.note_msg_at(h, p, cfg.block_bytes, b);
        self.wire_copy(h, p, s, e - s);
        self.hc(cfg.block_copy_ns)
            + cfg.one_way_ns(cfg.block_bytes)
            + self.hc(cfg.handler_dispatch_ns)
            + cfg.block_copy_ns
            + cfg.tag_change_ns
    }

    /// During compiler control a reader may legitimately hold ReadWrite on
    /// a block the directory believes exclusive elsewhere (Figure 2C/2D).
    /// Under run-time-overhead elimination those windows extend across
    /// supersteps: `implicit_writable(.., memoize=true)` leaves the range
    /// in `iw_memo` and the matching `implicit_invalidate` is skipped, so
    /// the memo is exactly the record of blocks whose tags are under
    /// compiler control. `check_consistency` excuses those pairs.
    pub(crate) fn is_ctl_block(&self, node: NodeId, b: usize) -> bool {
        self.iw_memo
            .iter()
            .any(|&(n, first, end)| n == node && (first..end).contains(&b))
    }

    /// Drop every memoized `implicit_writable` range, forcing the next
    /// calls back onto the slow (re-tagging) path. The memo records which
    /// tags are under compiler control, so dropping an entry also drops
    /// the tags it covers (a free `implicit_invalidate`) — afterwards the
    /// state is exactly "as if run-time-overhead elimination had not
    /// kicked in yet". The contract must survive this at any superstep
    /// boundary, which is what the fault-injection harness checks.
    pub fn clear_iw_memo(&mut self) {
        let memo = std::mem::take(&mut self.iw_memo);
        for (n, first, end) in memo {
            for b in first..end {
                self.cluster.set_tag(n, b, Access::Invalid);
            }
        }
    }

    // ------------------------------------------------------------------
    // Facade: default-protocol transactions (dispatch to the Protocol)
    // ------------------------------------------------------------------

    /// Run `f` against the active protocol, which is temporarily taken
    /// out of `self` so it can borrow the whole [`Dsm`] mutably.
    fn with_proto<R>(&mut self, f: impl FnOnce(&mut dyn Protocol, &mut Dsm) -> R) -> R {
        let mut proto = self.proto.take().expect("protocol re-entered");
        let r = f(proto.as_mut(), self);
        self.proto = Some(proto);
        r
    }

    /// Service a read fault: bring block `b` to at least `ReadOnly` at
    /// `p`. No-op (and no cost) if `p` already has a valid copy — "inner
    /// cache blocks are brought once and for ever into the local memory
    /// and pay no further overhead" (§2).
    pub fn read_access(&mut self, p: NodeId, b: usize) {
        if self.cluster.tag(p, b) != Access::Invalid {
            return;
        }
        self.with_proto(|proto, d| proto.read_access(d, p, b));
    }

    /// Service a write fault where `p` is the interval's single writer.
    pub fn write_access_excl(&mut self, p: NodeId, b: usize) {
        self.with_proto(|proto, d| proto.write_access_excl(d, p, b));
    }

    /// Service a write fault on a block that *multiple* nodes write in
    /// the same interval.
    pub fn write_access_multi(&mut self, p: NodeId, b: usize) {
        self.with_proto(|proto, d| proto.write_access_multi(d, p, b));
    }

    /// Release point: let the protocol propagate interval writes, then
    /// execute the global barrier.
    pub fn release_barrier(&mut self) {
        self.with_proto(|proto, d| proto.release(d));
        self.cluster.barrier();
    }

    /// Check internal consistency between directory state, tags and data;
    /// used by tests after barriers ("a final barrier assures that things
    /// are consistent again with the information at the directory").
    pub fn check_consistency(&self) -> Result<(), String> {
        self.proto().check(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdsm_tempest::{ChargeKind, CostModel, HomePolicy, SegmentLayout};

    fn dsm(nprocs: usize, cfg: CostModel) -> Dsm {
        let mut layout = SegmentLayout::new(cfg.words_per_page());
        layout.alloc(4096);
        Dsm::new(Cluster::new(nprocs, cfg, &layout, HomePolicy::RoundRobin))
    }

    #[test]
    fn protocol_identity_is_queryable() {
        let d = dsm(2, CostModel::paper_dual_cpu());
        assert_eq!(d.protocol_name(), "eager-invalidate");
        assert!(d.supports_ctl());
        let cfg = CostModel::paper_dual_cpu();
        let mut layout = SegmentLayout::new(cfg.words_per_page());
        layout.alloc(512);
        let u = Dsm::with_protocol(
            Cluster::new(2, cfg, &layout, HomePolicy::RoundRobin),
            ProtocolKind::WriteUpdate,
        );
        assert_eq!(u.protocol_name(), "write-update");
        assert!(!u.supports_ctl());
    }

    #[test]
    fn third_party_protocols_plug_in() {
        /// A deliberately naive protocol: every fault is a full home
        /// fetch, releases do nothing but the barrier. Exists to prove
        /// the trait boundary is sufficient for external policies.
        struct AlwaysFetch;
        impl Protocol for AlwaysFetch {
            fn name(&self) -> &'static str {
                "always-fetch"
            }
            fn supports_ctl(&self) -> bool {
                false
            }
            fn read_access(&mut self, d: &mut Dsm, p: NodeId, b: usize) {
                let h = d.cluster.home_of_block(b);
                let (s, e) = d.cluster.block_words(b);
                d.cluster.map_range(p, s, e - s);
                let stall = d.data_home_to(p, h, b);
                d.cluster.set_tag(p, b, Access::ReadOnly);
                d.cluster.charge(p, stall, ChargeKind::Stall);
            }
            fn write_access_excl(&mut self, d: &mut Dsm, p: NodeId, b: usize) {
                self.read_access(d, p, b);
                d.cluster.set_tag(p, b, Access::ReadWrite);
                d.set_dir(b, DirState::Excl { owner: p });
            }
            fn write_access_multi(&mut self, d: &mut Dsm, p: NodeId, b: usize) {
                self.write_access_excl(d, p, b);
            }
            fn release(&mut self, _d: &mut Dsm) {}
            fn check(&self, _d: &Dsm) -> Result<(), String> {
                Ok(())
            }
        }
        let cfg = CostModel::paper_dual_cpu();
        let mut layout = SegmentLayout::new(cfg.words_per_page());
        layout.alloc(1024);
        let mut d = Dsm::with_protocol_impl(
            Cluster::new(2, cfg, &layout, HomePolicy::RoundRobin),
            Box::new(AlwaysFetch),
        );
        assert_eq!(d.protocol_name(), "always-fetch");
        d.write_access_excl(1, 0);
        d.cluster.node_mem_mut(1)[0] = 3.5;
        d.release_barrier();
        assert!(d.dir_state(0).is_excl_by(1));
        assert_eq!(d.cluster.node_mem(1)[0], 3.5);
    }

    #[test]
    fn clean_read_miss_costs_table1() {
        let mut d = dsm(4, CostModel::paper_dual_cpu());
        // Block 0 homes on node 0; node 1 reads it. Pre-map the page so the
        // measured cost is the miss itself, not the one-time mapping.
        d.cluster.map_range(1, 0, 16);
        let before = d.cluster.clock_ns(1);
        d.read_access(1, 0);
        let delta = d.cluster.clock_ns(1) - before;
        let expect = d.cluster.cfg().read_miss_ns();
        assert_eq!(delta, expect, "clean read miss must match Table 1 model");
        assert_eq!(d.cluster.stats(1).read_misses, 1);
        assert_eq!(d.cluster.tag(1, 0), Access::ReadOnly);
        // The home (initial exclusive owner) downgrades and joins the set.
        assert_eq!(
            d.dir_state(0),
            DirState::Shared {
                readers: DirState::bit(1) | DirState::bit(0)
            }
        );
    }

    #[test]
    fn second_read_is_free() {
        let mut d = dsm(4, CostModel::paper_dual_cpu());
        d.read_access(1, 0);
        let t = d.cluster.clock_ns(1);
        d.read_access(1, 0);
        assert_eq!(d.cluster.clock_ns(1), t);
        assert_eq!(d.cluster.stats(1).read_misses, 1);
    }

    #[test]
    fn four_hop_read_through_owner() {
        let mut d = dsm(4, CostModel::paper_dual_cpu());
        // Node 1 takes block 0 (home 0) exclusively, writes, then node 2 reads.
        d.write_access_excl(1, 0);
        d.cluster.node_mem_mut(1)[0] = 7.5;
        let before = d.cluster.clock_ns(2);
        d.read_access(2, 0);
        assert!(d.cluster.clock_ns(2) - before > d.cluster.cfg().read_miss_ns());
        // Data travelled owner → home → reader.
        assert_eq!(d.cluster.node_mem(2)[0], 7.5);
        assert_eq!(d.cluster.node_mem(0)[0], 7.5);
        assert_eq!(d.cluster.tag(1, 0), Access::ReadOnly);
        match d.dir_state(0) {
            DirState::Shared { readers } => {
                assert_ne!(readers & DirState::bit(1), 0);
                assert_ne!(readers & DirState::bit(2), 0);
            }
            s => panic!("expected Shared, got {s:?}"),
        }
    }

    #[test]
    fn write_upgrade_invalidates_readers_eagerly() {
        let mut d = dsm(4, CostModel::paper_dual_cpu());
        d.read_access(1, 0);
        d.read_access(2, 0);
        // Node 3 writes: both readers and home lose their copies.
        d.cluster.map_range(3, 0, 16); // exclude one-time mapping from stall
        let stall_before = d.cluster.stats(3).stall_ns;
        d.write_access_excl(3, 0);
        assert_eq!(d.cluster.tag(1, 0), Access::Invalid);
        assert_eq!(d.cluster.tag(2, 0), Access::Invalid);
        assert_eq!(d.cluster.tag(0, 0), Access::Invalid);
        assert_eq!(d.cluster.tag(3, 0), Access::ReadWrite);
        assert!(d.dir_state(0).is_excl_by(3));
        // Eager: the writer's stall is far below a full read miss.
        let stall = d.cluster.stats(3).stall_ns - stall_before;
        assert!(stall < d.cluster.cfg().read_miss_ns());
    }

    #[test]
    fn producer_consumer_roundtrip_moves_data() {
        let mut d = dsm(2, CostModel::paper_dual_cpu());
        d.write_access_excl(1, 0);
        d.cluster.node_mem_mut(1)[3] = 42.0;
        d.release_barrier();
        d.read_access(0, 0);
        assert_eq!(d.cluster.node_mem(0)[3], 42.0);
        d.check_consistency().unwrap();
    }

    #[test]
    fn multi_writer_merges_diffs_at_release() {
        let mut d = dsm(2, CostModel::paper_dual_cpu());
        // Both nodes write disjoint words of block 0 (home node 0).
        d.write_access_multi(0, 0);
        d.write_access_multi(1, 0);
        d.cluster.node_mem_mut(0)[0] = 1.0;
        d.cluster.node_mem_mut(1)[1] = 2.0;
        d.release_barrier();
        // Home (node 0) holds the merge.
        assert_eq!(d.cluster.node_mem(0)[0], 1.0);
        assert_eq!(d.cluster.node_mem(0)[1], 2.0);
        assert!(d.dir_state(0).is_excl_by(0));
        assert_eq!(d.cluster.tag(0, 0), Access::ReadWrite);
        assert_eq!(d.cluster.tag(1, 0), Access::Invalid);
        d.check_consistency().unwrap();
    }

    #[test]
    fn multi_writer_remote_home_merge() {
        let mut d = dsm(4, CostModel::paper_dual_cpu());
        // Block 0 homes at node 0; writers are 2 and 3.
        d.write_access_multi(2, 0);
        d.write_access_multi(3, 0);
        d.cluster.node_mem_mut(2)[4] = 4.0;
        d.cluster.node_mem_mut(3)[5] = 5.0;
        d.release_barrier();
        assert_eq!(d.cluster.node_mem(0)[4], 4.0);
        assert_eq!(d.cluster.node_mem(0)[5], 5.0);
        d.check_consistency().unwrap();
        // A later reader sees both writes.
        d.read_access(1, 0);
        assert_eq!(d.cluster.node_mem(1)[4], 4.0);
        assert_eq!(d.cluster.node_mem(1)[5], 5.0);
    }

    #[test]
    fn exclusive_survives_release() {
        // RTOE's precondition: owners keep blocks writable across barriers.
        let mut d = dsm(2, CostModel::paper_dual_cpu());
        d.write_access_excl(1, 0);
        d.release_barrier();
        assert!(d.dir_state(0).is_excl_by(1));
        assert_eq!(d.cluster.tag(1, 0), Access::ReadWrite);
        let misses = d.cluster.stats(1).write_misses;
        d.write_access_excl(1, 0); // no-op
        assert_eq!(d.cluster.stats(1).write_misses, misses);
    }

    #[test]
    fn single_cpu_misses_cost_more() {
        let mut dd = dsm(2, CostModel::paper_dual_cpu());
        let mut ds = dsm(2, CostModel::paper_single_cpu());
        dd.read_access(1, 0);
        ds.read_access(1, 0);
        assert!(ds.cluster.stats(1).stall_ns > dd.cluster.stats(1).stall_ns);
        // Single-cpu: home's handler occupancy also advanced home's clock.
        assert!(ds.cluster.clock_ns(0) > 0);
        assert_eq!(dd.cluster.clock_ns(0), 0);
    }

    #[test]
    fn faults_appear_in_the_trace() {
        use fgdsm_tempest::{Event, FaultKind};
        let mut d = dsm(2, CostModel::paper_dual_cpu());
        d.read_access(1, 0);
        d.write_access_excl(1, 1);
        let read_faults = d
            .cluster
            .node_trace(1)
            .entries()
            .filter(|e| {
                matches!(
                    e.event,
                    Event::Fault {
                        block: 0,
                        kind: FaultKind::Read
                    }
                )
            })
            .count();
        assert_eq!(read_faults, 1, "read fault must be a typed trace event");
        assert!(
            d.cluster.node_trace(1).entries().any(|e| matches!(
                e.event,
                Event::Fault {
                    block: 1,
                    kind: FaultKind::Write
                }
            )),
            "write fault must be a typed trace event"
        );
    }

    fn dsm_update(nprocs: usize) -> Dsm {
        let cfg = CostModel::paper_dual_cpu();
        let mut layout = SegmentLayout::new(cfg.words_per_page());
        layout.alloc(4096);
        Dsm::with_protocol(
            Cluster::new(nprocs, cfg, &layout, HomePolicy::RoundRobin),
            ProtocolKind::WriteUpdate,
        )
    }

    #[test]
    fn update_protocol_keeps_reader_copies_fresh() {
        let mut d = dsm_update(4);
        // Reader 2 fetches block 0 once …
        d.read_access(2, 0);
        assert_eq!(d.cluster.stats(2).read_misses, 1);
        // … then writer 1 updates it across three intervals; the reader
        // never faults again but always sees current data.
        for step in 0..3 {
            d.write_access_excl(1, 0);
            d.cluster.node_mem_mut(1)[5] = step as f64 + 1.0;
            d.release_barrier();
            d.check_consistency().unwrap();
            d.read_access(2, 0); // no-op: copy still valid
            assert_eq!(d.cluster.node_mem(2)[5], step as f64 + 1.0);
        }
        assert_eq!(
            d.cluster.stats(2).read_misses,
            1,
            "no re-fetch under update"
        );
    }

    #[test]
    fn update_protocol_pays_per_sharer_traffic() {
        // The §3 trade-off: with three sharers, every release carries the
        // writer's dirty words to each of them, read or not.
        let mut d = dsm_update(4);
        for r in [0usize, 2, 3] {
            d.read_access(r, 0);
        }
        let msgs_before = d.cluster.stats(1).msgs_sent;
        d.write_access_excl(1, 0);
        d.cluster.node_mem_mut(1)[0] = 9.0;
        d.release_barrier();
        let update_msgs = d.cluster.stats(1).msgs_sent - msgs_before;
        assert!(
            update_msgs >= 3,
            "writer must update home and every sharer, sent {update_msgs}"
        );
        d.check_consistency().unwrap();
    }

    #[test]
    fn update_protocol_multi_writer_merges() {
        let mut d = dsm_update(2);
        d.write_access_excl(0, 0);
        d.write_access_excl(1, 0);
        d.cluster.node_mem_mut(0)[0] = 1.0;
        d.cluster.node_mem_mut(1)[1] = 2.0;
        d.release_barrier();
        d.check_consistency().unwrap();
        for n in 0..2 {
            assert_eq!(d.cluster.node_mem(n)[0], 1.0, "node {n} word 0");
            assert_eq!(d.cluster.node_mem(n)[1], 2.0, "node {n} word 1");
        }
    }

    #[test]
    fn write_fault_after_invalidation_refetches_data() {
        let mut d = dsm(2, CostModel::paper_dual_cpu());
        d.write_access_excl(1, 0);
        d.cluster.node_mem_mut(1)[2] = 9.0;
        d.release_barrier();
        // Node 0 (home) steals the block back for writing.
        d.write_access_excl(0, 0);
        assert_eq!(d.cluster.node_mem(0)[2], 9.0);
        assert!(d.dir_state(0).is_excl_by(0));
        assert_eq!(d.cluster.tag(1, 0), Access::Invalid);
    }
}
