//! The default protocol: directory-based eager-invalidate multiple-writer
//! release consistency at cache-block granularity (§3, §5).

use crate::dir::DirState;
use fgdsm_tempest::{Access, ChargeKind, Cluster, NodeId};
use std::collections::BTreeMap;

/// Which default coherence protocol the DSM runs.
///
/// The paper's system uses eager-invalidate multiple-writer release
/// consistency; §3 notes that "general update-based protocols have
/// analogous problems" — [`ProtocolKind::WriteUpdate`] lets the benchmarks
/// quantify that: copies stay valid (no re-fetch misses), but every
/// release propagates each writer's dirty words to *every* sharer,
/// whether or not it will read them again.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ProtocolKind {
    /// Directory-based eager-invalidate MW release consistency (paper §5).
    #[default]
    EagerInvalidate,
    /// Write-update: writers keep sharers' copies current at each release.
    WriteUpdate,
}

/// A fine-grain DSM: the Tempest cluster plus the default protocol's
/// directory, twins, and the compiler-control runtime state.
pub struct Dsm {
    /// The underlying simulated cluster (public: executors run kernels
    /// directly against node memory).
    pub cluster: Cluster,
    dir: Vec<DirState>,
    /// Twins for blocks in `Multi` state: (block, writer) → snapshot.
    twins: BTreeMap<(usize, NodeId), Box<[f64]>>,
    /// Blocks currently in `Multi` state, flushed at the next release.
    multi_blocks: Vec<usize>,
    /// Per-receiver compiler-directed transfer inbox: latest arrival time
    /// and pending payload/block counts (reset by `ready_to_recv`).
    pub(crate) inbox_arrival: Vec<u64>,
    pub(crate) inbox_payloads: Vec<u64>,
    pub(crate) inbox_blocks: Vec<u64>,
    /// Memo for run-time overhead elimination: ranges already made
    /// implicitly writable at a node (§4.3's "first time around" test).
    pub(crate) iw_memo: std::collections::BTreeSet<(NodeId, usize, usize)>,
    kind: ProtocolKind,
    /// Write-update protocol: (block, writer) pairs dirty this interval.
    update_set: Vec<(usize, NodeId)>,
}

impl Dsm {
    /// Wrap a cluster; every block starts exclusively owned by its home.
    pub fn new(cluster: Cluster) -> Self {
        Self::with_protocol(cluster, ProtocolKind::EagerInvalidate)
    }

    /// Wrap a cluster with an explicit default-protocol choice.
    pub fn with_protocol(cluster: Cluster, kind: ProtocolKind) -> Self {
        assert!(cluster.nprocs() <= 64, "directory masks support ≤64 nodes");
        let n_blocks = cluster.n_blocks();
        let nprocs = cluster.nprocs();
        let dir = (0..n_blocks)
            .map(|b| DirState::Excl {
                owner: cluster.home_of_block(b),
            })
            .collect();
        Dsm {
            cluster,
            dir,
            twins: BTreeMap::new(),
            multi_blocks: Vec::new(),
            inbox_arrival: vec![0; nprocs],
            inbox_payloads: vec![0; nprocs],
            inbox_blocks: vec![0; nprocs],
            iw_memo: std::collections::BTreeSet::new(),
            kind,
            update_set: Vec::new(),
        }
    }

    /// The default protocol in force.
    pub fn protocol(&self) -> ProtocolKind {
        self.kind
    }

    /// Directory state of a block (inspection/testing).
    pub fn dir_state(&self, b: usize) -> DirState {
        self.dir[b]
    }

    /// Overwrite a block's directory state (compiler-control transitions).
    pub(crate) fn set_dir(&mut self, b: usize, s: DirState) {
        self.dir[b] = s;
    }

    #[inline]
    fn hc(&self, ns: u64) -> u64 {
        self.cluster.cfg().handler_cost(ns)
    }

    /// Snapshot a block's current contents at `node` into a twin buffer.
    fn make_twin(&mut self, node: NodeId, b: usize) {
        let (s, e) = self.cluster.block_words(b);
        let data: Box<[f64]> = self.cluster.node_mem(node)[s..e].into();
        self.twins.insert((b, node), data);
    }

    /// Word-diff a writer's block against its twin; returns the dirty mask.
    fn diff_mask(&self, node: NodeId, b: usize) -> u64 {
        let twin = &self.twins[&(b, node)];
        let (s, e) = self.cluster.block_words(b);
        let cur = &self.cluster.node_mem(node)[s..e];
        let mut mask = 0u64;
        for (i, (c, t)) in cur.iter().zip(twin.iter()).enumerate() {
            if c.to_bits() != t.to_bits() {
                mask |= 1 << i;
            }
        }
        mask
    }

    // ------------------------------------------------------------------
    // Default-protocol transactions
    // ------------------------------------------------------------------

    /// Service a read fault: bring block `b` to at least `ReadOnly` at
    /// `p`. No-op (and no cost) if `p` already has a valid copy — "inner
    /// cache blocks are brought once and for ever into the local memory
    /// and pay no further overhead" (§2).
    pub fn read_access(&mut self, p: NodeId, b: usize) {
        if self.cluster.tag(p, b) != Access::Invalid {
            return;
        }
        if self.kind == ProtocolKind::WriteUpdate {
            return self.read_access_update(p, b);
        }
        let cfg = self.cluster.cfg().clone();
        let h = self.cluster.home_of_block(b);
        let (s, e) = self.cluster.block_words(b);
        self.cluster.map_range(p, s, e - s);
        self.cluster.stats_mut(p).read_misses += 1;
        // Fault detection + request to home.
        let mut stall = cfg.fault_detect_ns;
        if p != h {
            stall += cfg.one_way_ns(8) + self.hc(cfg.handler_dispatch_ns);
            self.cluster.note_msg(p, 8);
            self.cluster
                .charge_handler(h, cfg.handler_dispatch_ns + cfg.dir_lookup_ns);
        }
        stall += self.hc(cfg.dir_lookup_ns);

        match self.dir[b] {
            DirState::Shared { readers } => {
                // Clean: home copy is current.
                stall += self.data_home_to(p, h, b, &mut 0);
                self.dir[b] = DirState::Shared {
                    readers: readers | DirState::bit(p),
                };
            }
            DirState::Excl { owner } if owner == h => {
                stall += self.data_home_to(p, h, b, &mut 0);
                // Home downgrades to read-only so its own later writes fault.
                self.cluster.set_tag(h, b, Access::ReadOnly);
                self.dir[b] = DirState::Shared {
                    readers: DirState::bit(p) | DirState::bit(h),
                };
            }
            DirState::Excl { owner } => {
                assert_ne!(owner, p, "read fault by recorded exclusive owner");
                // 4-hop (Figure 1(a)): put-data-request to owner, data back
                // to home, then response to requester.
                stall += cfg.one_way_ns(8)
                    + self.hc(cfg.handler_dispatch_ns + cfg.block_copy_ns)
                    + cfg.one_way_ns(cfg.block_bytes)
                    + self.hc(cfg.handler_dispatch_ns + cfg.block_copy_ns + cfg.dir_lookup_ns);
                self.cluster.note_msg(h, 8);
                self.cluster.charge_handler(
                    owner,
                    cfg.handler_dispatch_ns + cfg.block_copy_ns + cfg.tag_change_ns,
                );
                self.cluster.note_msg(owner, cfg.block_bytes);
                self.cluster.charge_handler(
                    h,
                    cfg.handler_dispatch_ns + cfg.block_copy_ns + cfg.dir_lookup_ns,
                );
                // Data: owner → home, owner downgrades, home readable.
                self.cluster.copy_words(owner, h, s, e - s);
                self.cluster.set_tag(owner, b, Access::ReadOnly);
                self.cluster.set_tag(h, b, Access::ReadOnly);
                stall += self.data_home_to(p, h, b, &mut 0);
                self.dir[b] = DirState::Shared {
                    readers: DirState::bit(p) | DirState::bit(owner) | DirState::bit(h),
                };
            }
            DirState::Multi { writers, readers } => {
                // A non-writer reads a false-shared block mid-interval
                // (wide stencil): every writer flushes its diff home so the
                // merge base is current, then the home serves the reader.
                // Element-level race freedom guarantees the reader never
                // looks at words a writer changes after this point.
                for w in DirState::nodes(writers) {
                    let mask = self.diff_mask(w, b);
                    if mask != 0 && w != h {
                        let bytes = 8 + 8 * mask.count_ones() as usize;
                        self.cluster.note_msg(w, bytes);
                        self.cluster
                            .charge_handler(w, cfg.handler_dispatch_ns + cfg.block_copy_ns);
                        self.cluster
                            .charge_handler(h, cfg.handler_dispatch_ns + cfg.block_copy_ns);
                        self.cluster.merge_block_words(w, h, b, mask);
                        stall += cfg.one_way_ns(bytes) + self.hc(2 * cfg.handler_dispatch_ns);
                    } else if mask != 0 {
                        self.cluster.merge_block_words(w, h, b, mask);
                    }
                    // Refresh the twin: subsequent diffs are relative to
                    // the new merge base.
                    self.make_twin(w, b);
                }
                stall += self.data_home_to(p, h, b, &mut 0);
                self.dir[b] = DirState::Multi {
                    writers,
                    readers: readers | DirState::bit(p),
                };
            }
        }
        self.cluster.set_tag(p, b, Access::ReadOnly);
        stall += cfg.tag_change_ns;
        self.cluster.charge(p, stall, ChargeKind::Stall);
    }

    /// Cost and data movement for the home shipping its (current) copy of
    /// block `b` to `p`. Returns the stall to charge at `p`.
    fn data_home_to(&mut self, p: NodeId, h: NodeId, b: usize, _x: &mut u64) -> u64 {
        let cfg = self.cluster.cfg().clone();
        let (s, e) = self.cluster.block_words(b);
        if p == h {
            // Local: the data is already in the home's copy.
            return cfg.tag_change_ns;
        }
        self.cluster.charge_handler(h, cfg.block_copy_ns);
        self.cluster.note_msg(h, cfg.block_bytes);
        self.cluster.copy_words(h, p, s, e - s);
        self.hc(cfg.block_copy_ns)
            + cfg.one_way_ns(cfg.block_bytes)
            + self.hc(cfg.handler_dispatch_ns)
            + cfg.block_copy_ns
            + cfg.tag_change_ns
    }

    /// Service a write fault with *steal* semantics: `p` becomes the single
    /// exclusive writer. Eager invalidation: `p` does not wait for
    /// invalidation acknowledgements (they drain at the next release), so
    /// the stall is only fault handling plus a data fetch when `p` has no
    /// valid copy.
    pub fn write_access_excl(&mut self, p: NodeId, b: usize) {
        if self.kind == ProtocolKind::WriteUpdate {
            return self.write_access_update(p, b);
        }
        if self.cluster.tag(p, b) == Access::ReadWrite && self.dir[b].is_excl_by(p) {
            return;
        }
        let cfg = self.cluster.cfg().clone();
        let h = self.cluster.home_of_block(b);
        let (s, e) = self.cluster.block_words(b);
        self.cluster.map_range(p, s, e - s);
        self.cluster.stats_mut(p).write_misses += 1;

        let mut stall = cfg.fault_detect_ns + cfg.tag_change_ns;
        if p != h {
            // Eager ownership request: injection only.
            stall += cfg.msg_send_ns;
            self.cluster.note_msg(p, 8);
            self.cluster.note_pending_write(p);
        }
        self.cluster
            .charge_handler(h, cfg.handler_dispatch_ns + cfg.dir_lookup_ns);

        let need_data = self.cluster.tag(p, b) == Access::Invalid;
        match self.dir[b] {
            DirState::Shared { readers } => {
                // Invalidate every other reader, eagerly.
                for r in DirState::nodes(readers) {
                    if r != p {
                        self.cluster.note_msg(h, 8);
                        self.cluster
                            .charge_handler(r, cfg.handler_dispatch_ns + cfg.tag_change_ns);
                        self.cluster.set_tag(r, b, Access::Invalid);
                    }
                }
                if need_data {
                    stall += self.data_home_to(p, h, b, &mut 0);
                }
            }
            DirState::Excl { owner } => {
                assert_ne!(owner, p, "write fault by a node that is already exclusive owner");
                if owner != h {
                    // Current data is at `owner`: flush home, invalidate.
                    self.cluster.charge_handler(
                        owner,
                        cfg.handler_dispatch_ns + cfg.block_copy_ns + cfg.tag_change_ns,
                    );
                    self.cluster.note_msg(h, 8);
                    self.cluster.note_msg(owner, cfg.block_bytes);
                    self.cluster
                        .charge_handler(h, cfg.handler_dispatch_ns + cfg.block_copy_ns);
                    self.cluster.copy_words(owner, h, s, e - s);
                    stall += cfg.one_way_ns(8)
                        + self.hc(cfg.handler_dispatch_ns + cfg.block_copy_ns)
                        + cfg.one_way_ns(cfg.block_bytes)
                        + self.hc(cfg.handler_dispatch_ns + cfg.block_copy_ns);
                }
                self.cluster.set_tag(owner, b, Access::Invalid);
                if need_data {
                    stall += self.data_home_to(p, h, b, &mut 0);
                }
            }
            DirState::Multi { .. } => {
                unreachable!("steal write on a Multi block: use write_access_multi")
            }
        }
        if h != p {
            self.cluster.set_tag(h, b, Access::Invalid);
        }
        self.cluster.set_tag(p, b, Access::ReadWrite);
        self.dir[b] = DirState::Excl { owner: p };
        self.cluster.charge(p, stall, ChargeKind::Stall);
    }

    /// Service a write fault on a block that *multiple* nodes write in the
    /// same interval (false sharing at array-column boundaries, §4.1
    /// footnote): `p` joins the writer set, keeping a twin for the
    /// word-granularity diff merged at the next release.
    pub fn write_access_multi(&mut self, p: NodeId, b: usize) {
        if self.kind == ProtocolKind::WriteUpdate {
            return self.write_access_update(p, b);
        }
        let cfg = self.cluster.cfg().clone();
        let h = self.cluster.home_of_block(b);
        let (s, e) = self.cluster.block_words(b);
        // Already a writer in Multi state?
        if let DirState::Multi { writers, .. } = self.dir[b] {
            if writers & DirState::bit(p) != 0 {
                return;
            }
        }
        self.cluster.map_range(p, s, e - s);
        self.cluster.stats_mut(p).write_misses += 1;

        let mut stall = cfg.fault_detect_ns + cfg.tag_change_ns;
        if p != h {
            stall += cfg.msg_send_ns;
            self.cluster.note_msg(p, 8);
            self.cluster.note_pending_write(p);
        }
        self.cluster
            .charge_handler(h, cfg.handler_dispatch_ns + cfg.dir_lookup_ns);

        // First entry into Multi: normalize the previous state so the home
        // copy is the merge base.
        let mut cur_readers = 0u64;
        let mut writers = match self.dir[b] {
            DirState::Multi { writers, readers } => {
                cur_readers = readers;
                writers
            }
            DirState::Excl { owner } => {
                if owner != h {
                    // Owner flushes its current copy home and keeps writing.
                    self.cluster.charge_handler(
                        owner,
                        cfg.handler_dispatch_ns + cfg.block_copy_ns,
                    );
                    self.cluster.note_msg(owner, cfg.block_bytes);
                    self.cluster
                        .charge_handler(h, cfg.handler_dispatch_ns + cfg.block_copy_ns);
                    self.cluster.copy_words(owner, h, s, e - s);
                    stall += cfg.one_way_ns(8)
                        + self.hc(2 * cfg.handler_dispatch_ns + 2 * cfg.block_copy_ns)
                        + cfg.one_way_ns(cfg.block_bytes);
                }
                self.make_twin(owner, b);
                self.multi_blocks.push(b);
                DirState::bit(owner)
            }
            DirState::Shared { readers } => {
                for r in DirState::nodes(readers) {
                    if r != p {
                        self.cluster.note_msg(h, 8);
                        self.cluster
                            .charge_handler(r, cfg.handler_dispatch_ns + cfg.tag_change_ns);
                        self.cluster.set_tag(r, b, Access::Invalid);
                    }
                }
                self.multi_blocks.push(b);
                0
            }
        };
        // `p` joins: fetch the merge base if it has no valid copy.
        if self.cluster.tag(p, b) == Access::Invalid {
            stall += self.data_home_to(p, h, b, &mut 0);
        }
        self.make_twin(p, b);
        self.cluster.set_tag(p, b, Access::ReadWrite);
        writers |= DirState::bit(p);
        cur_readers &= !DirState::bit(p);
        if h != p && writers & DirState::bit(h) == 0 {
            self.cluster.set_tag(h, b, Access::Invalid);
        }
        self.dir[b] = DirState::Multi {
            writers,
            readers: cur_readers,
        };
        self.cluster.charge(p, stall, ChargeKind::Stall);
    }

    // ------------------------------------------------------------------
    // Write-update protocol paths
    // ------------------------------------------------------------------

    /// Update-protocol read fault: the home's copy is always current at
    /// interval boundaries, so every miss is a clean 2-hop fetch — and
    /// the copy then stays valid forever (writers update it in place).
    fn read_access_update(&mut self, p: NodeId, b: usize) {
        let cfg = self.cluster.cfg().clone();
        let h = self.cluster.home_of_block(b);
        let (s, e) = self.cluster.block_words(b);
        self.cluster.map_range(p, s, e - s);
        self.cluster.stats_mut(p).read_misses += 1;
        let mut stall = cfg.fault_detect_ns + self.hc(cfg.dir_lookup_ns);
        if p != h {
            stall += cfg.one_way_ns(8) + self.hc(cfg.handler_dispatch_ns);
            self.cluster.note_msg(p, 8);
            self.cluster
                .charge_handler(h, cfg.handler_dispatch_ns + cfg.dir_lookup_ns);
        }
        stall += self.data_home_to(p, h, b, &mut 0);
        self.cluster.set_tag(p, b, Access::ReadOnly);
        stall += cfg.tag_change_ns;
        self.cluster.charge(p, stall, ChargeKind::Stall);
        let readers = match self.dir[b] {
            DirState::Shared { readers } => readers,
            _ => DirState::bit(h),
        };
        self.dir[b] = DirState::Shared {
            readers: readers | DirState::bit(p) | DirState::bit(h),
        };
    }

    /// Update-protocol write fault: register as a writer for this
    /// interval (twin for the diff), fetching the block only if the node
    /// has no valid copy. Sharers are *not* invalidated — they receive
    /// the dirty words at the next release.
    fn write_access_update(&mut self, p: NodeId, b: usize) {
        let cfg = self.cluster.cfg().clone();
        if self.cluster.tag(p, b) == Access::ReadWrite {
            if !self.twins.contains_key(&(b, p)) {
                // Standing writer, new interval: local bookkeeping only.
                self.make_twin(p, b);
                self.update_set.push((b, p));
                self.cluster.charge(p, cfg.tag_change_ns, ChargeKind::Stall);
                // Normalize the directory (the home node starts out
                // recorded as an exclusive owner).
                let readers = match self.dir[b] {
                    DirState::Shared { readers } => readers,
                    _ => 0,
                };
                let h = self.cluster.home_of_block(b);
                self.dir[b] = DirState::Shared {
                    readers: readers | DirState::bit(p) | DirState::bit(h),
                };
            }
            return;
        }
        let h = self.cluster.home_of_block(b);
        let (s, e) = self.cluster.block_words(b);
        self.cluster.map_range(p, s, e - s);
        self.cluster.stats_mut(p).write_misses += 1;
        let mut stall = cfg.fault_detect_ns + cfg.tag_change_ns;
        if p != h {
            // Eager registration with the home directory.
            stall += cfg.msg_send_ns;
            self.cluster.note_msg(p, 8);
            self.cluster.note_pending_write(p);
            self.cluster
                .charge_handler(h, cfg.handler_dispatch_ns + cfg.dir_lookup_ns);
        }
        if self.cluster.tag(p, b) == Access::Invalid {
            stall += self.data_home_to(p, h, b, &mut 0);
        }
        self.cluster.set_tag(p, b, Access::ReadWrite);
        self.make_twin(p, b);
        self.update_set.push((b, p));
        self.cluster.charge(p, stall, ChargeKind::Stall);
        let readers = match self.dir[b] {
            DirState::Shared { readers } => readers,
            _ => DirState::bit(h),
        };
        self.dir[b] = DirState::Shared {
            readers: readers | DirState::bit(p) | DirState::bit(h),
        };
    }

    /// Update-protocol release: every writer propagates its dirty words
    /// to the home and every other sharer — the cost that grows with the
    /// sharer set and makes update protocols expensive for migratory or
    /// single-consumer data.
    fn release_update(&mut self) {
        let cfg = self.cluster.cfg().clone();
        let mut set = std::mem::take(&mut self.update_set);
        set.sort_unstable();
        set.dedup();
        for (b, w) in set {
            let mask = self.diff_mask(w, b);
            self.twins.remove(&(b, w));
            if mask == 0 {
                continue;
            }
            let bytes = 8 + 8 * mask.count_ones() as usize;
            let DirState::Shared { readers } = self.dir[b] else {
                unreachable!("update-protocol blocks are always Shared");
            };
            for t in DirState::nodes(readers) {
                if t == w {
                    continue;
                }
                self.cluster.note_msg(w, bytes);
                self.cluster.charge(w, cfg.msg_send_ns, ChargeKind::Stall);
                self.cluster
                    .charge_handler(t, cfg.handler_dispatch_ns + cfg.block_copy_ns);
                self.cluster.merge_block_words(w, t, b, mask);
            }
        }
        self.cluster.barrier();
    }

    /// Release point: merge all `Multi` blocks home via word diffs, then
    /// execute the global barrier. Exclusive blocks stay with their owner
    /// — the property run-time overhead elimination relies on (§4.3).
    pub fn release_barrier(&mut self) {
        if self.kind == ProtocolKind::WriteUpdate {
            return self.release_update();
        }
        let cfg = self.cluster.cfg().clone();
        let blocks = std::mem::take(&mut self.multi_blocks);
        for b in blocks {
            let DirState::Multi { writers, readers } = self.dir[b] else {
                continue;
            };
            let h = self.cluster.home_of_block(b);
            for r in DirState::nodes(readers) {
                // Transient readers of the old merge base are invalidated.
                self.cluster.set_tag(r, b, Access::Invalid);
            }
            for w in DirState::nodes(writers) {
                let mask = self.diff_mask(w, b);
                let dirty = mask.count_ones() as usize;
                let bytes = 8 + 8 * dirty;
                if w != h {
                    self.cluster.note_msg(w, bytes);
                    self.cluster.charge(w, cfg.msg_send_ns, ChargeKind::Stall);
                    self.cluster
                        .charge_handler(h, cfg.handler_dispatch_ns + cfg.block_copy_ns);
                    self.cluster.merge_block_words(w, h, b, mask);
                }
                self.cluster.set_tag(w, b, Access::Invalid);
                self.twins.remove(&(b, w));
            }
            self.cluster.set_tag(h, b, Access::ReadWrite);
            self.dir[b] = DirState::Excl { owner: h };
        }
        self.cluster.barrier();
    }

    /// Check internal consistency between directory state and tags; used
    /// by tests after barriers ("a final barrier assures that things are
    /// consistent again with the information at the directory").
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.kind == ProtocolKind::WriteUpdate {
            // After a release, every valid copy must equal the home copy.
            for b in 0..self.cluster.n_blocks() {
                let h = self.cluster.home_of_block(b);
                let (s, e) = self.cluster.block_words(b);
                for n in 0..self.cluster.nprocs() {
                    if n != h && self.cluster.tag(n, b) != Access::Invalid {
                        for w in s..e {
                            if self.cluster.node_mem(n)[w].to_bits()
                                != self.cluster.node_mem(h)[w].to_bits()
                            {
                                return Err(format!(
                                    "update protocol: node {n} copy of block {b} diverges at word {w}"
                                ));
                            }
                        }
                    }
                }
            }
            return Ok(());
        }
        for b in 0..self.cluster.n_blocks() {
            match self.dir[b] {
                DirState::Excl { owner } => {
                    for n in 0..self.cluster.nprocs() {
                        let t = self.cluster.tag(n, b);
                        if n != owner && t == Access::ReadWrite && !self.is_ctl_block(n, b) {
                            return Err(format!(
                                "block {b}: node {n} is ReadWrite but directory says Excl({owner})"
                            ));
                        }
                    }
                }
                DirState::Shared { readers } => {
                    for n in 0..self.cluster.nprocs() {
                        let t = self.cluster.tag(n, b);
                        if t == Access::ReadWrite {
                            return Err(format!(
                                "block {b}: node {n} is ReadWrite but directory says Shared"
                            ));
                        }
                        if t == Access::ReadOnly && readers & DirState::bit(n) == 0 {
                            return Err(format!(
                                "block {b}: node {n} is ReadOnly but not in sharer mask"
                            ));
                        }
                    }
                }
                DirState::Multi { .. } => {
                    return Err(format!("block {b}: Multi state survived a release"));
                }
            }
        }
        Ok(())
    }

    /// During compiler control a reader may legitimately hold ReadWrite on
    /// a block the directory believes exclusive elsewhere (Figure 2C/2D).
    /// `check_consistency` is only called outside such windows, but the
    /// hook is kept overridable for tests.
    fn is_ctl_block(&self, _node: NodeId, _b: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgdsm_tempest::{CostModel, HomePolicy, SegmentLayout};

    fn dsm(nprocs: usize, cfg: CostModel) -> Dsm {
        let mut layout = SegmentLayout::new(cfg.words_per_page());
        layout.alloc(4096);
        Dsm::new(Cluster::new(nprocs, cfg, &layout, HomePolicy::RoundRobin))
    }

    #[test]
    fn clean_read_miss_costs_table1() {
        let mut d = dsm(4, CostModel::paper_dual_cpu());
        // Block 0 homes on node 0; node 1 reads it. Pre-map the page so the
        // measured cost is the miss itself, not the one-time mapping.
        d.cluster.map_range(1, 0, 16);
        let before = d.cluster.clock_ns(1);
        d.read_access(1, 0);
        let delta = d.cluster.clock_ns(1) - before;
        let expect = d.cluster.cfg().read_miss_ns();
        assert_eq!(delta, expect, "clean read miss must match Table 1 model");
        assert_eq!(d.cluster.stats(1).read_misses, 1);
        assert_eq!(d.cluster.tag(1, 0), Access::ReadOnly);
        // The home (initial exclusive owner) downgrades and joins the set.
        assert_eq!(
            d.dir_state(0),
            DirState::Shared {
                readers: DirState::bit(1) | DirState::bit(0)
            }
        );
    }

    #[test]
    fn second_read_is_free() {
        let mut d = dsm(4, CostModel::paper_dual_cpu());
        d.read_access(1, 0);
        let t = d.cluster.clock_ns(1);
        d.read_access(1, 0);
        assert_eq!(d.cluster.clock_ns(1), t);
        assert_eq!(d.cluster.stats(1).read_misses, 1);
    }

    #[test]
    fn four_hop_read_through_owner() {
        let mut d = dsm(4, CostModel::paper_dual_cpu());
        // Node 1 takes block 0 (home 0) exclusively, writes, then node 2 reads.
        d.write_access_excl(1, 0);
        d.cluster.node_mem_mut(1)[0] = 7.5;
        let before = d.cluster.clock_ns(2);
        d.read_access(2, 0);
        assert!(d.cluster.clock_ns(2) - before > d.cluster.cfg().read_miss_ns());
        // Data travelled owner → home → reader.
        assert_eq!(d.cluster.node_mem(2)[0], 7.5);
        assert_eq!(d.cluster.node_mem(0)[0], 7.5);
        assert_eq!(d.cluster.tag(1, 0), Access::ReadOnly);
        match d.dir_state(0) {
            DirState::Shared { readers } => {
                assert_ne!(readers & DirState::bit(1), 0);
                assert_ne!(readers & DirState::bit(2), 0);
            }
            s => panic!("expected Shared, got {s:?}"),
        }
    }

    #[test]
    fn write_upgrade_invalidates_readers_eagerly() {
        let mut d = dsm(4, CostModel::paper_dual_cpu());
        d.read_access(1, 0);
        d.read_access(2, 0);
        // Node 3 writes: both readers and home lose their copies.
        d.cluster.map_range(3, 0, 16); // exclude one-time mapping from stall
        let stall_before = d.cluster.stats(3).stall_ns;
        d.write_access_excl(3, 0);
        assert_eq!(d.cluster.tag(1, 0), Access::Invalid);
        assert_eq!(d.cluster.tag(2, 0), Access::Invalid);
        assert_eq!(d.cluster.tag(0, 0), Access::Invalid);
        assert_eq!(d.cluster.tag(3, 0), Access::ReadWrite);
        assert!(d.dir_state(0).is_excl_by(3));
        // Eager: the writer's stall is far below a full read miss.
        let stall = d.cluster.stats(3).stall_ns - stall_before;
        assert!(stall < d.cluster.cfg().read_miss_ns());
    }

    #[test]
    fn producer_consumer_roundtrip_moves_data() {
        let mut d = dsm(2, CostModel::paper_dual_cpu());
        d.write_access_excl(1, 0);
        d.cluster.node_mem_mut(1)[3] = 42.0;
        d.release_barrier();
        d.read_access(0, 0);
        assert_eq!(d.cluster.node_mem(0)[3], 42.0);
        d.check_consistency().unwrap();
    }

    #[test]
    fn multi_writer_merges_diffs_at_release() {
        let mut d = dsm(2, CostModel::paper_dual_cpu());
        // Both nodes write disjoint words of block 0 (home node 0).
        d.write_access_multi(0, 0);
        d.write_access_multi(1, 0);
        d.cluster.node_mem_mut(0)[0] = 1.0;
        d.cluster.node_mem_mut(1)[1] = 2.0;
        d.release_barrier();
        // Home (node 0) holds the merge.
        assert_eq!(d.cluster.node_mem(0)[0], 1.0);
        assert_eq!(d.cluster.node_mem(0)[1], 2.0);
        assert!(d.dir_state(0).is_excl_by(0));
        assert_eq!(d.cluster.tag(0, 0), Access::ReadWrite);
        assert_eq!(d.cluster.tag(1, 0), Access::Invalid);
        d.check_consistency().unwrap();
    }

    #[test]
    fn multi_writer_remote_home_merge() {
        let mut d = dsm(4, CostModel::paper_dual_cpu());
        // Block 0 homes at node 0; writers are 2 and 3.
        d.write_access_multi(2, 0);
        d.write_access_multi(3, 0);
        d.cluster.node_mem_mut(2)[4] = 4.0;
        d.cluster.node_mem_mut(3)[5] = 5.0;
        d.release_barrier();
        assert_eq!(d.cluster.node_mem(0)[4], 4.0);
        assert_eq!(d.cluster.node_mem(0)[5], 5.0);
        d.check_consistency().unwrap();
        // A later reader sees both writes.
        d.read_access(1, 0);
        assert_eq!(d.cluster.node_mem(1)[4], 4.0);
        assert_eq!(d.cluster.node_mem(1)[5], 5.0);
    }

    #[test]
    fn exclusive_survives_release() {
        // RTOE's precondition: owners keep blocks writable across barriers.
        let mut d = dsm(2, CostModel::paper_dual_cpu());
        d.write_access_excl(1, 0);
        d.release_barrier();
        assert!(d.dir_state(0).is_excl_by(1));
        assert_eq!(d.cluster.tag(1, 0), Access::ReadWrite);
        let misses = d.cluster.stats(1).write_misses;
        d.write_access_excl(1, 0); // no-op
        assert_eq!(d.cluster.stats(1).write_misses, misses);
    }

    #[test]
    fn single_cpu_misses_cost_more() {
        let mut dd = dsm(2, CostModel::paper_dual_cpu());
        let mut ds = dsm(2, CostModel::paper_single_cpu());
        dd.read_access(1, 0);
        ds.read_access(1, 0);
        assert!(ds.cluster.stats(1).stall_ns > dd.cluster.stats(1).stall_ns);
        // Single-cpu: home's handler occupancy also advanced home's clock.
        assert!(ds.cluster.clock_ns(0) > 0);
        assert_eq!(dd.cluster.clock_ns(0), 0);
    }

    fn dsm_update(nprocs: usize) -> Dsm {
        let cfg = CostModel::paper_dual_cpu();
        let mut layout = SegmentLayout::new(cfg.words_per_page());
        layout.alloc(4096);
        Dsm::with_protocol(
            Cluster::new(nprocs, cfg, &layout, HomePolicy::RoundRobin),
            ProtocolKind::WriteUpdate,
        )
    }

    #[test]
    fn update_protocol_keeps_reader_copies_fresh() {
        let mut d = dsm_update(4);
        // Reader 2 fetches block 0 once …
        d.read_access(2, 0);
        assert_eq!(d.cluster.stats(2).read_misses, 1);
        // … then writer 1 updates it across three intervals; the reader
        // never faults again but always sees current data.
        for step in 0..3 {
            d.write_access_excl(1, 0);
            d.cluster.node_mem_mut(1)[5] = step as f64 + 1.0;
            d.release_barrier();
            d.check_consistency().unwrap();
            d.read_access(2, 0); // no-op: copy still valid
            assert_eq!(d.cluster.node_mem(2)[5], step as f64 + 1.0);
        }
        assert_eq!(d.cluster.stats(2).read_misses, 1, "no re-fetch under update");
    }

    #[test]
    fn update_protocol_pays_per_sharer_traffic() {
        // The §3 trade-off: with three sharers, every release carries the
        // writer's dirty words to each of them, read or not.
        let mut d = dsm_update(4);
        for r in [0usize, 2, 3] {
            d.read_access(r, 0);
        }
        let msgs_before = d.cluster.stats(1).msgs_sent;
        d.write_access_excl(1, 0);
        d.cluster.node_mem_mut(1)[0] = 9.0;
        d.release_barrier();
        let update_msgs = d.cluster.stats(1).msgs_sent - msgs_before;
        assert!(
            update_msgs >= 3,
            "writer must update home and every sharer, sent {update_msgs}"
        );
        d.check_consistency().unwrap();
    }

    #[test]
    fn update_protocol_multi_writer_merges() {
        let mut d = dsm_update(2);
        d.write_access_excl(0, 0);
        d.write_access_excl(1, 0);
        d.cluster.node_mem_mut(0)[0] = 1.0;
        d.cluster.node_mem_mut(1)[1] = 2.0;
        d.release_barrier();
        d.check_consistency().unwrap();
        for n in 0..2 {
            assert_eq!(d.cluster.node_mem(n)[0], 1.0, "node {n} word 0");
            assert_eq!(d.cluster.node_mem(n)[1], 2.0, "node {n} word 1");
        }
    }

    #[test]
    fn write_fault_after_invalidation_refetches_data() {
        let mut d = dsm(2, CostModel::paper_dual_cpu());
        d.write_access_excl(1, 0);
        d.cluster.node_mem_mut(1)[2] = 9.0;
        d.release_barrier();
        // Node 0 (home) steals the block back for writing.
        d.write_access_excl(0, 0);
        assert_eq!(d.cluster.node_mem(0)[2], 9.0);
        assert!(d.dir_state(0).is_excl_by(0));
        assert_eq!(d.cluster.tag(1, 0), Access::Invalid);
    }
}
