//! `grav` — gravitational potential code, grid 128 (129×129 and
//! 129×129×129 arrays), 5 iterations ("HPF by Syracuse").
//!
//! The paper's problem child: "the array extents in grav are rather small
//! (129×129 reals and 129×129×129 reals), and thus the edge effects are
//! pronounced at 128-bytes blocksize" — only 38% of misses are removed —
//! and it "executes a large number of SUM reductions, which … ultimately
//! limit speedups in both shared memory and message passing".
//!
//! Structure reproduced here: per outer iteration, several smoothing
//! sweeps over the small 129×129 potential grid (interior ghost columns of
//! 127 words — heavily misaligned with 128-byte blocks), each followed by
//! a SUM reduction; a batch of multipole-moment SUM reductions over the
//! potential; and a local 129³ density update followed by a global mass
//! reduction. The reductions dominate communication, which is why the
//! optimizations cut grav's communication time least (5.5% in Table 3).

use crate::{AppSpec, Scale};
use fgdsm_hpf::{
    ARef, ArrayId, CompDist, Dist, Kernel, KernelCtx, ParLoop, Program, ReduceSpec, Stmt, Subscript,
};
use fgdsm_section::{SymRange, Var};
use fgdsm_tempest::ReduceOp;

/// Array ids by declaration order.
pub const RHO: ArrayId = ArrayId(0);
pub const PHI: ArrayId = ArrayId(1);
pub const PHN: ArrayId = ArrayId(2);

/// Problem-size parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Grid size parameter: arrays are (g+1)² and (g+1)³.
    pub g: usize,
    pub iters: i64,
    /// Smoothing sweeps (each with a SUM reduction) per iteration.
    pub nsmooth: i64,
    /// Plain multipole-moment reductions per iteration (owned data only).
    pub nmom: i64,
    /// Gradient-weighted moment reductions per iteration: these re-read
    /// the same ghost columns of an unchanged φ, the §4.3 redundant
    /// communication that PRE eliminates.
    pub ngrad: i64,
}

impl Params {
    /// Table 2: grid size 128 (129-extent arrays), 5 iterations.
    pub fn paper() -> Self {
        Params {
            g: 128,
            iters: 5,
            nsmooth: 8,
            nmom: 20,
            ngrad: 4,
        }
    }

    /// Parameters at a given scale.
    pub fn at(scale: Scale) -> Self {
        match scale {
            Scale::Paper => Self::paper(),
            Scale::Bench => Params {
                g: 48,
                iters: 3,
                nsmooth: 8,
                nmom: 28,
                ngrad: 4,
            },
            Scale::Test => Params {
                g: 24,
                iters: 2,
                nsmooth: 3,
                nmom: 3,
                ngrad: 2,
            },
        }
    }

    /// Grow total work ~linearly with `factor`: the dominant arrays are
    /// cubic in the grid size, so the edge stretches by the cube root.
    pub fn scaled(mut self, factor: usize) -> Self {
        self.g *= crate::dim_scale(factor, 3);
        self
    }

    fn e(&self) -> usize {
        self.g + 1
    }
}

fn init_kernel(ctx: &mut KernelCtx) {
    let rho = ctx.h(RHO);
    for k in ctx.iter[2].iter() {
        for j in ctx.iter[1].iter() {
            for i in ctx.iter[0].iter() {
                ctx.mem[rho.at3(i, j, k)] = ((i + j * 2 + k * 3) % 19) as f64 * 0.03;
            }
        }
    }
}

fn init_phi_kernel(ctx: &mut KernelCtx) {
    let phi = ctx.h(PHI);
    let phn = ctx.h(PHN);
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            ctx.mem[phi.at2(i, j)] = ((i * 5 + j) % 11) as f64 * 0.07;
            ctx.mem[phn.at2(i, j)] = 0.0;
        }
    }
}

fn smooth_kernel(ctx: &mut KernelCtx) {
    let phi = ctx.h(PHI);
    let phn = ctx.h(PHN);
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            ctx.mem[phn.at2(i, j)] = 0.25
                * (ctx.mem[phi.at2(i - 1, j)]
                    + ctx.mem[phi.at2(i + 1, j)]
                    + ctx.mem[phi.at2(i, j - 1)]
                    + ctx.mem[phi.at2(i, j + 1)]);
        }
    }
}

fn smooth_copy_kernel(ctx: &mut KernelCtx) {
    let phi = ctx.h(PHI);
    let phn = ctx.h(PHN);
    let mut err = 0.0;
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            let old = ctx.mem[phi.at2(i, j)];
            let new = ctx.mem[phn.at2(i, j)];
            err += (new - old).abs();
            ctx.mem[phi.at2(i, j)] = new;
        }
    }
    ctx.partial = err;
}

fn apply_kernel(ctx: &mut KernelCtx) {
    let rho = ctx.h(RHO);
    for k in ctx.iter[2].iter() {
        for j in ctx.iter[1].iter() {
            for i in ctx.iter[0].iter() {
                let r = ctx.mem[rho.at3(i, j, k)];
                let src = ((i ^ j) + k) as f64 * 1e-4;
                ctx.mem[rho.at3(i, j, k)] = r * 0.999 + 0.001 * src;
            }
        }
    }
}

/// One multipole moment of the potential grid: Σ φ(i,j)·w_m(i,j), with the
/// moment index `m` bound by the surrounding time loop. Small local
/// compute followed by a global SUM — grav's signature pattern.
fn moment_kernel(ctx: &mut KernelCtx) {
    let phi = ctx.h(PHI);
    let m = ctx.sym(fgdsm_section::Var("m"));
    let mut acc = 0.0;
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            let w = (((i + 1) * (m + 1) + j) % 7) as f64 * 0.2;
            acc += ctx.mem[phi.at2(i, j)] * w;
        }
    }
    ctx.partial = acc;
}

/// Gradient-weighted moment: every loop of the batch re-reads the same
/// ghost columns of an unchanged φ — the inter-loop redundant
/// communication that §4.3's PRE eliminates (the default protocol also
/// exploits it: the blocks simply stay cached).
fn gmoment_kernel(ctx: &mut KernelCtx) {
    let phi = ctx.h(PHI);
    let m = ctx.sym(fgdsm_section::Var("m"));
    let mut acc = 0.0;
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            let w = (((i + 1) * (m + 1) + j) % 7) as f64 * 0.2;
            let gx = ctx.mem[phi.at2(i + 1, j)] - ctx.mem[phi.at2(i - 1, j)];
            let gy = ctx.mem[phi.at2(i, j + 1)] - ctx.mem[phi.at2(i, j - 1)];
            acc += (ctx.mem[phi.at2(i, j)] + 0.5 * (gx + gy)) * w;
        }
    }
    ctx.partial = acc;
}

fn mass_kernel(ctx: &mut KernelCtx) {
    let rho = ctx.h(RHO);
    let mut acc = 0.0;
    for k in ctx.iter[2].iter() {
        for j in ctx.iter[1].iter() {
            for i in ctx.iter[0].iter() {
                acc += ctx.mem[rho.at3(i, j, k)];
            }
        }
    }
    ctx.partial = acc;
}

/// Build the grav program.
pub fn build(p: &Params) -> Program {
    let t = Var("t");
    let s = Var("s");
    let e = p.e() as i64;
    let mut b = Program::builder();
    let rho = b.array("rho", &[p.e(), p.e(), p.e()], Dist::Block);
    let phi = b.array("phi", &[p.e(), p.e()], Dist::Block);
    let phn = b.array("phn", &[p.e(), p.e()], Dist::Block);
    assert_eq!((rho, phi, phn), (RHO, PHI, PHN));
    b.scalar("gerr", 0.0)
        .scalar("mass", 0.0)
        .scalar("moment", 0.0);
    let all = SymRange::new(0, e - 1);
    let int = SymRange::new(1, e - 2);
    let iv = |d: usize, c: i64| Subscript::Loop(d, c);
    let here2 = vec![iv(0, 0), iv(1, 0)];
    let here3 = vec![iv(0, 0), iv(1, 0), iv(2, 0)];

    b.stmt(Stmt::Par(ParLoop {
        name: "init_rho",
        iter: vec![all.clone(), all.clone(), all.clone()],
        dist: CompDist::Owner(rho),
        refs: vec![ARef::write(rho, here3.clone())],
        kernel: Kernel::new(init_kernel),
        cost_per_iter_ns: 110,
        reduction: None,
    }));
    b.stmt(Stmt::Par(ParLoop {
        name: "init_phi",
        iter: vec![all.clone(), all.clone()],
        dist: CompDist::Owner(phi),
        refs: vec![
            ARef::write(phi, here2.clone()),
            ARef::write(phn, here2.clone()),
        ],
        kernel: Kernel::new(init_phi_kernel),
        cost_per_iter_ns: 110,
        reduction: None,
    }));
    let smooth = Stmt::Par(ParLoop {
        name: "smooth",
        iter: vec![int.clone(), int.clone()],
        dist: CompDist::Owner(phn),
        refs: vec![
            ARef::read(phi, vec![iv(0, -1), iv(1, 0)]),
            ARef::read(phi, vec![iv(0, 1), iv(1, 0)]),
            ARef::read(phi, vec![iv(0, 0), iv(1, -1)]),
            ARef::read(phi, vec![iv(0, 0), iv(1, 1)]),
            ARef::write(phn, here2.clone()),
        ],
        kernel: Kernel::new(smooth_kernel),
        cost_per_iter_ns: 420,
        reduction: None,
    });
    let smooth_copy = Stmt::Par(ParLoop {
        name: "smooth_copy",
        iter: vec![int.clone(), int.clone()],
        dist: CompDist::Owner(phi),
        refs: vec![
            ARef::read(phn, here2.clone()),
            ARef::read(phi, here2.clone()),
            ARef::write(phi, here2.clone()),
        ],
        kernel: Kernel::new(smooth_copy_kernel),
        cost_per_iter_ns: 220,
        reduction: Some(ReduceSpec {
            op: ReduceOp::Sum,
            target: "gerr",
        }),
    });
    let apply = Stmt::Par(ParLoop {
        name: "apply",
        iter: vec![all.clone(), all.clone(), all.clone()],
        dist: CompDist::Owner(rho),
        refs: vec![
            ARef::read(rho, here3.clone()),
            ARef::write(rho, here3.clone()),
        ],
        kernel: Kernel::new(apply_kernel),
        cost_per_iter_ns: 140,
        reduction: None,
    });
    let mass = Stmt::Par(ParLoop {
        name: "mass",
        iter: vec![all.clone(), all.clone(), all.clone()],
        dist: CompDist::Owner(rho),
        refs: vec![ARef::read(rho, here3)],
        kernel: Kernel::new(mass_kernel),
        cost_per_iter_ns: 70,
        reduction: Some(ReduceSpec {
            op: ReduceOp::Sum,
            target: "mass",
        }),
    });
    let moment = Stmt::Par(ParLoop {
        name: "moment",
        iter: vec![all.clone(), all.clone()],
        dist: CompDist::Owner(phi),
        refs: vec![ARef::read(phi, here2.clone())],
        kernel: Kernel::new(moment_kernel),
        cost_per_iter_ns: 90,
        reduction: Some(ReduceSpec {
            op: ReduceOp::Sum,
            target: "moment",
        }),
    });
    let gmoment = Stmt::Par(ParLoop {
        name: "gmoment",
        iter: vec![int.clone(), int.clone()],
        dist: CompDist::Owner(phi),
        refs: vec![
            ARef::read(phi, here2.clone()),
            ARef::read(phi, vec![iv(0, -1), iv(1, 0)]),
            ARef::read(phi, vec![iv(0, 1), iv(1, 0)]),
            ARef::read(phi, vec![iv(0, 0), iv(1, -1)]),
            ARef::read(phi, vec![iv(0, 0), iv(1, 1)]),
        ],
        kernel: Kernel::new(gmoment_kernel),
        cost_per_iter_ns: 150,
        reduction: Some(ReduceSpec {
            op: ReduceOp::Sum,
            target: "moment",
        }),
    });
    b.stmt(Stmt::Time {
        var: t,
        count: p.iters,
        body: vec![
            Stmt::Time {
                var: s,
                count: p.nsmooth,
                body: vec![smooth, smooth_copy],
            },
            Stmt::Time {
                var: Var("m"),
                count: p.nmom,
                body: vec![moment],
            },
            Stmt::Time {
                var: Var("m"),
                count: p.ngrad,
                body: vec![gmoment],
            },
            apply,
            mass,
        ],
    });
    b.build()
}

/// Table 2 metadata.
pub fn spec(p: &Params) -> AppSpec {
    AppSpec {
        name: "grav",
        source: "HPF by Syracuse",
        problem: format!("grid size {}, {} iters", p.g, p.iters),
        program: build(p),
        iters: p.iters,
    }
}

/// Sequential reference replicating the parallel reduction order (chunked
/// partials in node order). Returns final `rho` and the mass.
pub fn reference(p: &Params, nprocs: usize) -> (Vec<f64>, f64) {
    let e = p.e();
    let at2 = |i: usize, j: usize| i + j * e;
    let at3 = |i: usize, j: usize, k: usize| i + j * e + k * e * e;
    let chunk = e.div_ceil(nprocs);
    let mut rho = vec![0.0f64; e * e * e];
    let mut phi = vec![0.0f64; e * e];
    let mut phn = vec![0.0f64; e * e];
    for k in 0..e {
        for j in 0..e {
            for i in 0..e {
                rho[at3(i, j, k)] = ((i + j * 2 + k * 3) % 19) as f64 * 0.03;
            }
        }
    }
    for j in 0..e {
        for i in 0..e {
            phi[at2(i, j)] = ((i * 5 + j) % 11) as f64 * 0.07;
        }
    }
    let mut mass = 0.0;
    for _ in 0..p.iters {
        for _ in 0..p.nsmooth {
            for j in 1..e - 1 {
                for i in 1..e - 1 {
                    phn[at2(i, j)] = 0.25
                        * (phi[at2(i - 1, j)]
                            + phi[at2(i + 1, j)]
                            + phi[at2(i, j - 1)]
                            + phi[at2(i, j + 1)]);
                }
            }
            for j in 1..e - 1 {
                for i in 1..e - 1 {
                    phi[at2(i, j)] = phn[at2(i, j)];
                }
            }
        }
        for k in 0..e {
            for j in 0..e {
                for i in 0..e {
                    let src = ((i ^ j) + k) as f64 * 1e-4;
                    rho[at3(i, j, k)] = rho[at3(i, j, k)] * 0.999 + 0.001 * src;
                }
            }
        }
        // Mass reduction in chunked node order (planes k are distributed).
        mass = 0.0;
        for pid in 0..nprocs {
            let mut part = 0.0;
            for k in (pid * chunk).min(e)..((pid + 1) * chunk).min(e) {
                for j in 0..e {
                    for i in 0..e {
                        part += rho[at3(i, j, k)];
                    }
                }
            }
            mass += part;
        }
    }
    (rho, mass)
}
