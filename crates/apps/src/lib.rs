//! # fgdsm-apps: the paper's application suite (Table 2)
//!
//! | Application | Source of HPF version | Problem size | Memory |
//! |---|---|---|---|
//! | pde | Genesis, HPF by PGI | grid 128, 40 iters (RELAX only) | 56 MB |
//! | shallow | NCAR, HPF by PGI | 1025×513 grid, 100 iters | 28 MB |
//! | grav | HPF by Syracuse | grid 128, 5 iters | 17 MB |
//! | lu | Stanford, HPF by authors | 1024×1024 matrix (5 runs) | 4 MB |
//! | cg | HPF by MIT | 180×360 matrix, 630 iters | 4.6 MB |
//! | jacobi | HPF by authors | 2048×2048 matrix, 100 iters | 32 MB |
//!
//! Each module re-implements the application's communication structure —
//! the producer-consumer sections, reductions and loop nesting the paper's
//! compiler analyzes — as a mini-HPF [`fgdsm_hpf::Program`], with a
//! sequential Rust reference for validation. Sizes are parameterized:
//! `Params::paper()` is the Table 2 configuration; `Params::test()` is a
//! scaled-down configuration for the test suite. (The original codes were
//! single-precision; ours are `f64`, so in-memory footprints are roughly
//! 2× Table 2's — recorded per-app in EXPERIMENTS.md.)

pub mod cg;
pub mod grav;
pub mod irreg;
pub mod jacobi;
pub mod lu;
pub mod pde;
pub mod shallow;

use fgdsm_hpf::Program;

/// Metadata + program for one suite member, as reported in Table 2.
pub struct AppSpec {
    pub name: &'static str,
    pub source: &'static str,
    pub problem: String,
    pub program: Program,
    /// Time-step/iteration count (used for per-iteration normalization).
    pub iters: i64,
}

impl AppSpec {
    /// Memory footprint in MB (Table 2's "Memory" column, f64 elements).
    pub fn memory_mb(&self) -> f64 {
        self.program.memory_bytes() as f64 / (1024.0 * 1024.0)
    }
}

/// Problem-size selector for the whole suite.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Table 2's sizes.
    Paper,
    /// Reduced sizes for quick benchmark runs (~1 min total).
    Bench,
    /// Tiny sizes for the test suite.
    Test,
}

/// Work-growth factor for the scaled suite, read from `FGDSM_SCALE`
/// (default 1 = the unscaled sizes of [`suite`]). Values below 1 clamp
/// to 1.
pub fn scale_factor() -> usize {
    parse_scale(std::env::var("FGDSM_SCALE").ok().as_deref())
}

fn parse_scale(raw: Option<&str>) -> usize {
    raw.and_then(|s| s.trim().parse::<usize>().ok())
        .unwrap_or(1)
        .max(1)
}

/// Per-dimension multiplier that grows total work ~linearly with
/// `factor` for a kernel whose cost is `dims`-ic in the stretched
/// extent: the nearest integer to the `dims`-th root of `factor`.
pub fn dim_scale(factor: usize, dims: u32) -> usize {
    (factor as f64).powf(1.0 / f64::from(dims)).round().max(1.0) as usize
}

/// Build the entire application suite at a given scale, in Table 2 order.
pub fn suite(scale: Scale) -> Vec<AppSpec> {
    suite_scaled(scale, 1)
}

/// [`suite`] with each app's problem stretched so per-superstep (or
/// total) work grows roughly linearly with `factor` — the `FGDSM_SCALE`
/// axis of the host-perf harness. `factor == 1` is exactly [`suite`].
pub fn suite_scaled(scale: Scale, factor: usize) -> Vec<AppSpec> {
    vec![
        pde::spec(&pde::Params::at(scale).scaled(factor)),
        shallow::spec(&shallow::Params::at(scale).scaled(factor)),
        grav::spec(&grav::Params::at(scale).scaled(factor)),
        lu::spec(&lu::Params::at(scale).scaled(factor)),
        cg::spec(&cg::Params::at(scale).scaled(factor)),
        jacobi::spec(&jacobi::Params::at(scale).scaled(factor)),
    ]
}

/// The Table 2 suite plus the extension workloads (currently `irreg`,
/// the paper's §7 future-work affine/indirect mix).
pub fn extended_suite(scale: Scale) -> Vec<AppSpec> {
    extended_suite_scaled(scale, 1)
}

/// [`extended_suite`] under the [`suite_scaled`] work-growth factor.
pub fn extended_suite_scaled(scale: Scale, factor: usize) -> Vec<AppSpec> {
    let mut apps = suite_scaled(scale, factor);
    apps.push(irreg::spec(&irreg::Params::at(scale).scaled(factor)));
    apps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_builds_at_all_scales() {
        for scale in [Scale::Test, Scale::Bench] {
            let apps = suite(scale);
            assert_eq!(apps.len(), 6);
            let names: Vec<_> = apps.iter().map(|a| a.name).collect();
            assert_eq!(names, ["pde", "shallow", "grav", "lu", "cg", "jacobi"]);
        }
    }

    #[test]
    fn paper_scale_memory_matches_table2_shape() {
        // f64 instead of the original REAL*4, so expect ≈2× Table 2 for
        // the single-precision apps; grav was already counted in 8-byte
        // units there. Only sanity-check the ordering and magnitude here.
        let apps = suite(Scale::Paper);
        let mb: std::collections::BTreeMap<_, _> =
            apps.iter().map(|a| (a.name, a.memory_mb())).collect();
        assert!(mb["jacobi"] > 60.0 && mb["jacobi"] < 70.0); // 2×32
        assert!(mb["pde"] > 45.0 && mb["pde"] < 60.0);
        assert!(mb["lu"] > 7.0 && mb["lu"] < 10.0); // 2×4
        assert!(mb["cg"] < 8.0);
        assert!(mb["grav"] > 15.0 && mb["grav"] < 20.0); // already 17
        assert!(mb["shallow"] > 40.0 && mb["shallow"] < 70.0); // 2×28
    }

    #[test]
    fn scaled_suite_grows_every_app() {
        let base = extended_suite(Scale::Test);
        let big = extended_suite_scaled(Scale::Test, 8);
        assert_eq!(base.len(), big.len());
        for (b, s) in base.iter().zip(&big) {
            assert_eq!(b.name, s.name);
            assert!(
                s.program.memory_bytes() > b.program.memory_bytes(),
                "{} did not grow at factor 8",
                s.name
            );
        }
    }

    #[test]
    fn scale_factor_of_one_is_identity() {
        let base = suite(Scale::Test);
        let same = suite_scaled(Scale::Test, 1);
        for (b, s) in base.iter().zip(&same) {
            assert_eq!(b.problem, s.problem);
            assert_eq!(b.program.memory_bytes(), s.program.memory_bytes());
        }
    }

    #[test]
    fn parse_scale_clamps_and_defaults() {
        assert_eq!(parse_scale(None), 1);
        assert_eq!(parse_scale(Some("")), 1);
        assert_eq!(parse_scale(Some("junk")), 1);
        assert_eq!(parse_scale(Some("0")), 1);
        assert_eq!(parse_scale(Some(" 8 ")), 8);
    }

    #[test]
    fn dim_scale_tracks_roots() {
        assert_eq!(dim_scale(1, 3), 1);
        assert_eq!(dim_scale(8, 3), 2);
        assert_eq!(dim_scale(27, 3), 3);
        assert_eq!(dim_scale(8, 1), 8);
        assert_eq!(dim_scale(4, 2), 2);
    }
}
