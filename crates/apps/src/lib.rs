//! # fgdsm-apps: the paper's application suite (Table 2)
//!
//! | Application | Source of HPF version | Problem size | Memory |
//! |---|---|---|---|
//! | pde | Genesis, HPF by PGI | grid 128, 40 iters (RELAX only) | 56 MB |
//! | shallow | NCAR, HPF by PGI | 1025×513 grid, 100 iters | 28 MB |
//! | grav | HPF by Syracuse | grid 128, 5 iters | 17 MB |
//! | lu | Stanford, HPF by authors | 1024×1024 matrix (5 runs) | 4 MB |
//! | cg | HPF by MIT | 180×360 matrix, 630 iters | 4.6 MB |
//! | jacobi | HPF by authors | 2048×2048 matrix, 100 iters | 32 MB |
//!
//! Each module re-implements the application's communication structure —
//! the producer-consumer sections, reductions and loop nesting the paper's
//! compiler analyzes — as a mini-HPF [`fgdsm_hpf::Program`], with a
//! sequential Rust reference for validation. Sizes are parameterized:
//! `Params::paper()` is the Table 2 configuration; `Params::test()` is a
//! scaled-down configuration for the test suite. (The original codes were
//! single-precision; ours are `f64`, so in-memory footprints are roughly
//! 2× Table 2's — recorded per-app in EXPERIMENTS.md.)

pub mod cg;
pub mod grav;
pub mod irreg;
pub mod jacobi;
pub mod lu;
pub mod pde;
pub mod shallow;

use fgdsm_hpf::Program;

/// Metadata + program for one suite member, as reported in Table 2.
pub struct AppSpec {
    pub name: &'static str,
    pub source: &'static str,
    pub problem: String,
    pub program: Program,
    /// Time-step/iteration count (used for per-iteration normalization).
    pub iters: i64,
}

impl AppSpec {
    /// Memory footprint in MB (Table 2's "Memory" column, f64 elements).
    pub fn memory_mb(&self) -> f64 {
        self.program.memory_bytes() as f64 / (1024.0 * 1024.0)
    }
}

/// Problem-size selector for the whole suite.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Table 2's sizes.
    Paper,
    /// Reduced sizes for quick benchmark runs (~1 min total).
    Bench,
    /// Tiny sizes for the test suite.
    Test,
}

/// Build the entire application suite at a given scale, in Table 2 order.
pub fn suite(scale: Scale) -> Vec<AppSpec> {
    vec![
        pde::spec(&pde::Params::at(scale)),
        shallow::spec(&shallow::Params::at(scale)),
        grav::spec(&grav::Params::at(scale)),
        lu::spec(&lu::Params::at(scale)),
        cg::spec(&cg::Params::at(scale)),
        jacobi::spec(&jacobi::Params::at(scale)),
    ]
}

/// The Table 2 suite plus the extension workloads (currently `irreg`,
/// the paper's §7 future-work affine/indirect mix).
pub fn extended_suite(scale: Scale) -> Vec<AppSpec> {
    let mut apps = suite(scale);
    apps.push(irreg::spec(&irreg::Params::at(scale)));
    apps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_builds_at_all_scales() {
        for scale in [Scale::Test, Scale::Bench] {
            let apps = suite(scale);
            assert_eq!(apps.len(), 6);
            let names: Vec<_> = apps.iter().map(|a| a.name).collect();
            assert_eq!(names, ["pde", "shallow", "grav", "lu", "cg", "jacobi"]);
        }
    }

    #[test]
    fn paper_scale_memory_matches_table2_shape() {
        // f64 instead of the original REAL*4, so expect ≈2× Table 2 for
        // the single-precision apps; grav was already counted in 8-byte
        // units there. Only sanity-check the ordering and magnitude here.
        let apps = suite(Scale::Paper);
        let mb: std::collections::BTreeMap<_, _> =
            apps.iter().map(|a| (a.name, a.memory_mb())).collect();
        assert!(mb["jacobi"] > 60.0 && mb["jacobi"] < 70.0); // 2×32
        assert!(mb["pde"] > 45.0 && mb["pde"] < 60.0);
        assert!(mb["lu"] > 7.0 && mb["lu"] < 10.0); // 2×4
        assert!(mb["cg"] < 8.0);
        assert!(mb["grav"] > 15.0 && mb["grav"] < 20.0); // already 17
        assert!(mb["shallow"] > 40.0 && mb["shallow"] < 70.0); // 2×28
    }
}
