//! `irreg` — the paper's §7 future-work workload: "benchmarks … that show
//! a mix of simple affine array subscript and indirect array subscripts,
//! and are not amenable to purely message-passing approaches."
//!
//! A 1-D transport sweep over BLOCK-distributed vectors: per time step,
//! an affine 3-point stencil (optimizable — the compiler captures its
//! ghost transfers) followed by an indirect gather `y(i) += w·x(idx(i))`
//! whose access pattern exists only at run time. The shared-memory
//! versions handle the gather through the default protocol, faulting in
//! exactly the touched blocks; a message-passing compiler must broadcast
//! conservatively (every node receives all of `x`), which is what makes
//! such codes "far more efficient" under shared memory (§1) — the
//! property this benchmark demonstrates beyond the paper's measured
//! suite.

use crate::{AppSpec, Scale};
use fgdsm_hpf::{
    ARef, ArrayId, CompDist, Dist, Kernel, KernelCtx, ParLoop, Program, ReduceSpec, Stmt, Subscript,
};
use fgdsm_section::{SymRange, Var};
use fgdsm_tempest::ReduceOp;

/// Array ids by declaration order.
pub const X: ArrayId = ArrayId(0);
pub const Y: ArrayId = ArrayId(1);
pub const IDX: ArrayId = ArrayId(2);

/// Problem-size parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    pub n: usize,
    pub iters: i64,
    /// Locality of the gather: indices stay within ±`span` of `i`
    /// (small span ⇒ mostly-local gathers; n ⇒ uniform scatter).
    pub span: usize,
}

impl Params {
    /// Default configuration: 64K elements, 20 steps, ±4096 locality.
    pub fn default_size() -> Self {
        Params {
            n: 65_536,
            iters: 20,
            span: 4_096,
        }
    }

    /// Parameters at a given scale.
    pub fn at(scale: Scale) -> Self {
        match scale {
            Scale::Paper => Self::default_size(),
            Scale::Bench => Params {
                n: 16_384,
                iters: 10,
                span: 2_048,
            },
            Scale::Test => Params {
                n: 512,
                iters: 4,
                span: 96,
            },
        }
    }

    /// Grow per-superstep work ~linearly with `factor`; the gather span
    /// stretches with `n` so the locality profile is scale-invariant.
    pub fn scaled(mut self, factor: usize) -> Self {
        let factor = factor.max(1);
        self.n *= factor;
        self.span *= factor;
        self
    }
}

/// Deterministic pseudo-random gather target for position `i`.
fn gather_target(i: usize, n: usize, span: usize) -> usize {
    let h = i
        .wrapping_mul(0x9E37_79B9)
        .rotate_left(13)
        .wrapping_mul(0x85EB_CA6B);
    let off = (h % (2 * span + 1)) as i64 - span as i64;
    ((i as i64 + off).rem_euclid(n as i64)) as usize
}

fn init_kernel(ctx: &mut KernelCtx) {
    let x = ctx.h(X);
    let y = ctx.h(Y);
    let idx = ctx.h(IDX);
    let n = ctx.scalar("n") as usize;
    let span = ctx.scalar("span") as usize;
    for i in ctx.iter[0].iter() {
        ctx.mem[x.at1(i)] = ((i * 29) % 97) as f64 * 0.125;
        ctx.mem[y.at1(i)] = 0.0;
        ctx.mem[idx.at1(i)] = gather_target(i as usize, n, span) as f64;
    }
}

fn stencil_kernel(ctx: &mut KernelCtx) {
    let x = ctx.h(X);
    let y = ctx.h(Y);
    for i in ctx.iter[0].iter() {
        ctx.mem[y.at1(i)] =
            0.5 * ctx.mem[x.at1(i)] + 0.25 * (ctx.mem[x.at1(i - 1)] + ctx.mem[x.at1(i + 1)]);
    }
}

fn gather_kernel(ctx: &mut KernelCtx) {
    let x = ctx.h(X);
    let y = ctx.h(Y);
    let idx = ctx.h(IDX);
    for i in ctx.iter[0].iter() {
        let j = ctx.mem[idx.at1(i)] as i64;
        ctx.mem[y.at1(i)] += 0.125 * ctx.mem[x.at1(j)];
    }
}

fn copy_kernel(ctx: &mut KernelCtx) {
    let x = ctx.h(X);
    let y = ctx.h(Y);
    for i in ctx.iter[0].iter() {
        ctx.mem[x.at1(i)] = ctx.mem[y.at1(i)];
    }
}

fn norm_kernel(ctx: &mut KernelCtx) {
    let x = ctx.h(X);
    let mut acc = 0.0;
    for i in ctx.iter[0].iter() {
        acc += ctx.mem[x.at1(i)];
    }
    ctx.partial = acc;
}

/// Build the irreg program.
pub fn build(p: &Params) -> Program {
    let t = Var("t");
    let n = p.n as i64;
    let mut b = Program::builder();
    let x = b.array("x", &[p.n], Dist::Block);
    let y = b.array("y", &[p.n], Dist::Block);
    let idx = b.array("idx", &[p.n], Dist::Block);
    assert_eq!((x, y, idx), (X, Y, IDX));
    b.scalar("n", p.n as f64)
        .scalar("span", p.span as f64)
        .scalar("norm", 0.0);
    let iv = Subscript::loop_var(0);
    b.stmt(Stmt::Par(ParLoop {
        name: "init",
        iter: vec![SymRange::new(0, n - 1)],
        dist: CompDist::Owner(x),
        refs: vec![
            ARef::write(x, vec![iv.clone()]),
            ARef::write(y, vec![iv.clone()]),
            ARef::write(idx, vec![iv.clone()]),
        ],
        kernel: Kernel::new(init_kernel),
        cost_per_iter_ns: 120,
        reduction: None,
    }));
    b.stmt(Stmt::Time {
        var: t,
        count: p.iters,
        body: vec![
            // Affine part: captured by compiler-orchestrated transfers.
            Stmt::Par(ParLoop {
                name: "stencil",
                iter: vec![SymRange::new(1, n - 2)],
                dist: CompDist::Owner(y),
                refs: vec![
                    ARef::read(x, vec![Subscript::Loop(0, -1)]),
                    ARef::read(x, vec![iv.clone()]),
                    ARef::read(x, vec![Subscript::Loop(0, 1)]),
                    ARef::write(y, vec![iv.clone()]),
                ],
                kernel: Kernel::new(stencil_kernel),
                cost_per_iter_ns: 180,
                reduction: None,
            }),
            // Irregular part: indirect gather through the default protocol.
            Stmt::Par(ParLoop {
                name: "gather",
                iter: vec![SymRange::new(0, n - 1)],
                dist: CompDist::Owner(y),
                refs: vec![
                    ARef::read(idx, vec![iv.clone()]),
                    ARef::read(x, vec![Subscript::Indirect(idx, 0)]),
                    ARef::read(y, vec![iv.clone()]),
                    ARef::write(y, vec![iv.clone()]),
                ],
                kernel: Kernel::new(gather_kernel),
                cost_per_iter_ns: 220,
                reduction: None,
            }),
            Stmt::Par(ParLoop {
                name: "copy",
                iter: vec![SymRange::new(1, n - 2)],
                dist: CompDist::Owner(x),
                refs: vec![
                    ARef::read(y, vec![iv.clone()]),
                    ARef::write(x, vec![iv.clone()]),
                ],
                kernel: Kernel::new(copy_kernel),
                cost_per_iter_ns: 70,
                reduction: None,
            }),
        ],
    });
    b.stmt(Stmt::Par(ParLoop {
        name: "norm",
        iter: vec![SymRange::new(0, n - 1)],
        dist: CompDist::Owner(x),
        refs: vec![ARef::read(x, vec![iv])],
        kernel: Kernel::new(norm_kernel),
        cost_per_iter_ns: 40,
        reduction: Some(ReduceSpec {
            op: ReduceOp::Sum,
            target: "norm",
        }),
    }));
    b.build()
}

/// Extension-suite metadata (not part of Table 2).
pub fn spec(p: &Params) -> AppSpec {
    AppSpec {
        name: "irreg",
        source: "extension (paper §7 future work)",
        problem: format!(
            "{} elements, {} iters, gather span ±{}",
            p.n, p.iters, p.span
        ),
        program: build(p),
        iters: p.iters,
    }
}

/// Sequential reference replicating the chunked reduction order. Returns
/// final `x` and the norm.
pub fn reference(p: &Params, nprocs: usize) -> (Vec<f64>, f64) {
    let n = p.n;
    let mut x = vec![0.0f64; n];
    let mut y = vec![0.0f64; n];
    let mut idx = vec![0usize; n];
    for i in 0..n {
        x[i] = ((i * 29) % 97) as f64 * 0.125;
        idx[i] = gather_target(i, n, p.span);
    }
    for _ in 0..p.iters {
        for i in 1..n - 1 {
            y[i] = 0.5 * x[i] + 0.25 * (x[i - 1] + x[i + 1]);
        }
        // Boundary y entries keep their previous value (not recomputed).
        for i in 0..n {
            y[i] += 0.125 * x[idx[i]];
        }
        x[1..n - 1].copy_from_slice(&y[1..n - 1]);
    }
    let chunk = n.div_ceil(nprocs);
    let mut norm = 0.0;
    for pid in 0..nprocs {
        let mut part = 0.0;
        for v in x.iter().skip(pid * chunk).take(chunk) {
            part += v;
        }
        norm += part;
    }
    (x, norm)
}
