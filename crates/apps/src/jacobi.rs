//! `jacobi` — 4-point Jacobi relaxation, 2048×2048, 100 iterations
//! ("HPF by authors").
//!
//! The textbook regular stencil: `b(i,j) = ¼(a(i±1,j) + a(i,j±1))`
//! followed by a copy-back, on BLOCK-distributed columns. Communication is
//! one ghost column per neighbor per sweep — the ideal case for the
//! paper's optimizations (96.7% of misses removed in Table 3).

use crate::{AppSpec, Scale};
use fgdsm_hpf::{
    ARef, ArrayId, CompDist, Dist, Kernel, KernelCtx, ParLoop, Program, ReduceSpec, Stmt, Subscript,
};
use fgdsm_section::{SymRange, Var};
use fgdsm_tempest::ReduceOp;

/// Array ids by declaration order.
pub const A: ArrayId = ArrayId(0);
pub const B: ArrayId = ArrayId(1);

/// Problem-size parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    pub n: usize,
    pub m: usize,
    pub iters: i64,
}

impl Params {
    /// Table 2: 2048×2048, 100 iterations.
    pub fn paper() -> Self {
        Params {
            n: 2048,
            m: 2048,
            iters: 100,
        }
    }

    /// Parameters at a given scale.
    pub fn at(scale: Scale) -> Self {
        match scale {
            Scale::Paper => Self::paper(),
            Scale::Bench => Params {
                n: 512,
                m: 512,
                iters: 25,
            },
            Scale::Test => Params {
                n: 96,
                m: 48,
                iters: 5,
            },
        }
    }

    /// Grow per-superstep work ~linearly with `factor` by stretching the
    /// row extent (the sweep is linear in `n`).
    pub fn scaled(mut self, factor: usize) -> Self {
        self.n *= factor.max(1);
        self
    }
}

fn init_kernel(ctx: &mut KernelCtx) {
    let a = ctx.h(A);
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            ctx.mem[a.at2(i, j)] = ((i * 13 + j * 17) % 101) as f64 * 0.01;
        }
    }
}

fn sweep_kernel(ctx: &mut KernelCtx) {
    let a = ctx.h(A);
    let b = ctx.h(B);
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            ctx.mem[b.at2(i, j)] = 0.25
                * (ctx.mem[a.at2(i - 1, j)]
                    + ctx.mem[a.at2(i + 1, j)]
                    + ctx.mem[a.at2(i, j - 1)]
                    + ctx.mem[a.at2(i, j + 1)]);
        }
    }
}

fn copy_kernel(ctx: &mut KernelCtx) {
    let a = ctx.h(A);
    let b = ctx.h(B);
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            ctx.mem[a.at2(i, j)] = ctx.mem[b.at2(i, j)];
        }
    }
}

fn checksum_kernel(ctx: &mut KernelCtx) {
    let a = ctx.h(A);
    let mut acc = 0.0;
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            acc += ctx.mem[a.at2(i, j)];
        }
    }
    ctx.partial = acc;
}

/// Build the jacobi program.
pub fn build(p: &Params) -> Program {
    let t = Var("t");
    let (n, m) = (p.n as i64, p.m as i64);
    let mut b = Program::builder();
    let a = b.array("a", &[p.n, p.m], Dist::Block);
    let bb = b.array("b", &[p.n, p.m], Dist::Block);
    assert_eq!((a, bb), (A, B));
    b.scalar("checksum", 0.0);
    let all = |hi: i64| SymRange::new(0, hi - 1);
    let interior = |hi: i64| SymRange::new(1, hi - 2);
    b.stmt(Stmt::Par(ParLoop {
        name: "init",
        iter: vec![all(n), all(m)],
        dist: CompDist::Owner(a),
        refs: vec![ARef::write(
            a,
            vec![Subscript::loop_var(0), Subscript::loop_var(1)],
        )],
        kernel: Kernel::new(init_kernel),
        cost_per_iter_ns: 90,
        reduction: None,
    }));
    b.stmt(Stmt::Time {
        var: t,
        count: p.iters,
        body: vec![
            Stmt::Par(ParLoop {
                name: "sweep",
                iter: vec![interior(n), interior(m)],
                dist: CompDist::Owner(bb),
                refs: vec![
                    ARef::read(a, vec![Subscript::Loop(0, -1), Subscript::loop_var(1)]),
                    ARef::read(a, vec![Subscript::Loop(0, 1), Subscript::loop_var(1)]),
                    ARef::read(a, vec![Subscript::loop_var(0), Subscript::Loop(1, -1)]),
                    ARef::read(a, vec![Subscript::loop_var(0), Subscript::Loop(1, 1)]),
                    ARef::write(bb, vec![Subscript::loop_var(0), Subscript::loop_var(1)]),
                ],
                kernel: Kernel::new(sweep_kernel),
                cost_per_iter_ns: 440,
                reduction: None,
            }),
            Stmt::Par(ParLoop {
                name: "copy",
                iter: vec![interior(n), interior(m)],
                dist: CompDist::Owner(a),
                refs: vec![
                    ARef::read(bb, vec![Subscript::loop_var(0), Subscript::loop_var(1)]),
                    ARef::write(a, vec![Subscript::loop_var(0), Subscript::loop_var(1)]),
                ],
                kernel: Kernel::new(copy_kernel),
                cost_per_iter_ns: 150,
                reduction: None,
            }),
        ],
    });
    b.stmt(Stmt::Par(ParLoop {
        name: "checksum",
        iter: vec![all(n), all(m)],
        dist: CompDist::Owner(a),
        refs: vec![ARef::read(
            a,
            vec![Subscript::loop_var(0), Subscript::loop_var(1)],
        )],
        kernel: Kernel::new(checksum_kernel),
        cost_per_iter_ns: 40,
        reduction: Some(ReduceSpec {
            op: ReduceOp::Sum,
            target: "checksum",
        }),
    }));
    b.build()
}

/// Table 2 metadata.
pub fn spec(p: &Params) -> AppSpec {
    AppSpec {
        name: "jacobi",
        source: "HPF by authors",
        problem: format!("{}x{} matrix, {} iters", p.n, p.m, p.iters),
        program: build(p),
        iters: p.iters,
    }
}

/// Sequential reference: final contents of `a` and the checksum.
pub fn reference(p: &Params) -> (Vec<f64>, f64) {
    let (n, m) = (p.n, p.m);
    let at = |i: usize, j: usize| i + j * n;
    let mut a = vec![0.0f64; n * m];
    let mut b = vec![0.0f64; n * m];
    for j in 0..m {
        for i in 0..n {
            a[at(i, j)] = ((i * 13 + j * 17) % 101) as f64 * 0.01;
        }
    }
    for _ in 0..p.iters {
        for j in 1..m - 1 {
            for i in 1..n - 1 {
                b[at(i, j)] =
                    0.25 * (a[at(i - 1, j)] + a[at(i + 1, j)] + a[at(i, j - 1)] + a[at(i, j + 1)]);
            }
        }
        for j in 1..m - 1 {
            for i in 1..n - 1 {
                a[at(i, j)] = b[at(i, j)];
            }
        }
    }
    let sum = a.iter().sum();
    (a, sum)
}
