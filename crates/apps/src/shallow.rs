//! `shallow` — the NCAR shallow-water weather benchmark, 1025×513 grid,
//! 100 iterations ("NCAR. HPF by PGI").
//!
//! The classic three-sweep structure: per time step, loop 100 computes
//! the mass fluxes `cu`,`cv`, potential vorticity `z` and height `h` from
//! `p`,`u`,`v` (backward stencils), loop 200 advances `unew`,`vnew`,`pnew`
//! from the fluxes (forward stencils), and loop 300 applies Robert time
//! smoothing — plus periodic-boundary copies that wrap the first and last
//! columns across the machine. Fourteen 1025×513 arrays, BLOCK distributed
//! on the second dimension. Regular ghost-column communication makes it a
//! showcase for the paper (85.7% of misses removed).

use crate::{AppSpec, Scale};
use fgdsm_hpf::{
    ARef, ArrayId, CompDist, Dist, Kernel, KernelCtx, ParLoop, Program, Stmt, Subscript,
};
use fgdsm_section::{Affine, SymRange, Var};

/// Array ids by declaration order.
pub const U: ArrayId = ArrayId(0);
pub const V: ArrayId = ArrayId(1);
pub const P: ArrayId = ArrayId(2);
pub const UNEW: ArrayId = ArrayId(3);
pub const VNEW: ArrayId = ArrayId(4);
pub const PNEW: ArrayId = ArrayId(5);
pub const UOLD: ArrayId = ArrayId(6);
pub const VOLD: ArrayId = ArrayId(7);
pub const POLD: ArrayId = ArrayId(8);
pub const CU: ArrayId = ArrayId(9);
pub const CV: ArrayId = ArrayId(10);
pub const Z: ArrayId = ArrayId(11);
pub const H: ArrayId = ArrayId(12);
pub const PSI: ArrayId = ArrayId(13);

/// Problem-size parameters: arrays are `(m+1) × (n+1)`.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    pub m: usize,
    pub n: usize,
    pub iters: i64,
}

impl Params {
    /// Table 2: 1025×513 grid, 100 iterations.
    pub fn paper() -> Self {
        Params {
            m: 1024,
            n: 512,
            iters: 100,
        }
    }

    /// Parameters at a given scale.
    pub fn at(scale: Scale) -> Self {
        match scale {
            Scale::Paper => Self::paper(),
            Scale::Bench => Params {
                m: 256,
                n: 128,
                iters: 20,
            },
            Scale::Test => Params {
                m: 64,
                n: 32,
                iters: 4,
            },
        }
    }

    /// Grow per-superstep work ~linearly with `factor` by stretching the
    /// first grid extent (every sweep is linear in `m`).
    pub fn scaled(mut self, factor: usize) -> Self {
        self.m *= factor.max(1);
        self
    }
}

// Physical constants of the benchmark (shape-faithful, simplified: tdt is
// held constant rather than doubled after the first step).
const DT: f64 = 90.0;
const DX: f64 = 100_000.0;
const DY: f64 = 100_000.0;
const AA: f64 = 1_000_000.0;
const ALPHA: f64 = 0.001;

fn init_psi_kernel(ctx: &mut KernelCtx) {
    let psi = ctx.h(PSI);
    let di = ctx.scalar("di");
    let dj = ctx.scalar("dj");
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            ctx.mem[psi.at2(i, j)] =
                AA * ((i as f64 + 0.5) * di).sin() * ((j as f64 + 0.5) * dj).sin();
        }
    }
}

fn init_uvp_kernel(ctx: &mut KernelCtx) {
    let u = ctx.h(U);
    let v = ctx.h(V);
    let p = ctx.h(P);
    let psi = ctx.h(PSI);
    let di = ctx.scalar("di");
    let dj = ctx.scalar("dj");
    let pcf = ctx.scalar("pcf");
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            ctx.mem[u.at2(i, j)] = -(ctx.mem[psi.at2(i, j)] - ctx.mem[psi.at2(i - 1, j)]) / DY;
            ctx.mem[v.at2(i, j)] = (ctx.mem[psi.at2(i, j)] - ctx.mem[psi.at2(i, j - 1)]) / DX;
            ctx.mem[p.at2(i, j)] =
                pcf * ((2.0 * i as f64 * di).cos() + (2.0 * j as f64 * dj).cos()) + 50_000.0;
        }
    }
}

fn init_old_kernel(ctx: &mut KernelCtx) {
    let (u, v, p) = (ctx.h(U), ctx.h(V), ctx.h(P));
    let (uo, vo, po) = (ctx.h(UOLD), ctx.h(VOLD), ctx.h(POLD));
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            ctx.mem[uo.at2(i, j)] = ctx.mem[u.at2(i, j)];
            ctx.mem[vo.at2(i, j)] = ctx.mem[v.at2(i, j)];
            ctx.mem[po.at2(i, j)] = ctx.mem[p.at2(i, j)];
        }
    }
}

fn loop100_kernel(ctx: &mut KernelCtx) {
    let (u, v, p) = (ctx.h(U), ctx.h(V), ctx.h(P));
    let (cu, cv, z, h) = (ctx.h(CU), ctx.h(CV), ctx.h(Z), ctx.h(H));
    let fsdx = ctx.scalar("fsdx");
    let fsdy = ctx.scalar("fsdy");
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            let pij = ctx.mem[p.at2(i, j)];
            let uij = ctx.mem[u.at2(i, j)];
            let vij = ctx.mem[v.at2(i, j)];
            ctx.mem[cu.at2(i, j)] = 0.5 * (pij + ctx.mem[p.at2(i - 1, j)]) * uij;
            ctx.mem[cv.at2(i, j)] = 0.5 * (pij + ctx.mem[p.at2(i, j - 1)]) * vij;
            ctx.mem[z.at2(i, j)] = (fsdx * (vij - ctx.mem[v.at2(i - 1, j)])
                - fsdy * (uij - ctx.mem[u.at2(i, j - 1)]))
                / (ctx.mem[p.at2(i - 1, j - 1)]
                    + ctx.mem[p.at2(i, j - 1)]
                    + pij
                    + ctx.mem[p.at2(i - 1, j)]);
            let um = ctx.mem[u.at2(i - 1, j)];
            let vm = ctx.mem[v.at2(i, j - 1)];
            ctx.mem[h.at2(i, j)] = pij + 0.25 * (uij * uij + um * um + vij * vij + vm * vm);
        }
    }
}

fn bc1_cols_kernel(ctx: &mut KernelCtx) {
    let (cu, cv, z, h) = (ctx.h(CU), ctx.h(CV), ctx.h(Z), ctx.h(H));
    let n = ctx.scalar("jmax") as i64;
    for i in ctx.iter[0].iter() {
        ctx.mem[cu.at2(i, 0)] = ctx.mem[cu.at2(i, n)];
        ctx.mem[cv.at2(i, 0)] = ctx.mem[cv.at2(i, n)];
        ctx.mem[z.at2(i, 0)] = ctx.mem[z.at2(i, n)];
        ctx.mem[h.at2(i, 0)] = ctx.mem[h.at2(i, n)];
    }
}

fn bc1_rows_kernel(ctx: &mut KernelCtx) {
    let (cu, cv, z, h) = (ctx.h(CU), ctx.h(CV), ctx.h(Z), ctx.h(H));
    let m = ctx.scalar("imax") as i64;
    for j in ctx.iter[0].iter() {
        ctx.mem[cu.at2(0, j)] = ctx.mem[cu.at2(m, j)];
        ctx.mem[cv.at2(0, j)] = ctx.mem[cv.at2(m, j)];
        ctx.mem[z.at2(0, j)] = ctx.mem[z.at2(m, j)];
        ctx.mem[h.at2(0, j)] = ctx.mem[h.at2(m, j)];
    }
}

fn loop200_kernel(ctx: &mut KernelCtx) {
    let (cu, cv, z, h) = (ctx.h(CU), ctx.h(CV), ctx.h(Z), ctx.h(H));
    let (un, vn, pn) = (ctx.h(UNEW), ctx.h(VNEW), ctx.h(PNEW));
    let (uo, vo, po) = (ctx.h(UOLD), ctx.h(VOLD), ctx.h(POLD));
    let tdts8 = ctx.scalar("tdts8");
    let tdtsdx = ctx.scalar("tdtsdx");
    let tdtsdy = ctx.scalar("tdtsdy");
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            let zc = ctx.mem[z.at2(i, j)];
            ctx.mem[un.at2(i, j)] = ctx.mem[uo.at2(i, j)]
                + tdts8
                    * (ctx.mem[z.at2(i + 1, j)] + zc)
                    * (ctx.mem[cv.at2(i + 1, j)] + ctx.mem[cv.at2(i, j)])
                - tdtsdx * (ctx.mem[h.at2(i + 1, j)] - ctx.mem[h.at2(i, j)]);
            ctx.mem[vn.at2(i, j)] = ctx.mem[vo.at2(i, j)]
                - tdts8
                    * (ctx.mem[z.at2(i, j + 1)] + zc)
                    * (ctx.mem[cu.at2(i, j + 1)] + ctx.mem[cu.at2(i, j)])
                - tdtsdy * (ctx.mem[h.at2(i, j + 1)] - ctx.mem[h.at2(i, j)]);
            ctx.mem[pn.at2(i, j)] = ctx.mem[po.at2(i, j)]
                - tdtsdx * (ctx.mem[cu.at2(i + 1, j)] - ctx.mem[cu.at2(i, j)])
                - tdtsdy * (ctx.mem[cv.at2(i, j + 1)] - ctx.mem[cv.at2(i, j)]);
        }
    }
}

fn bc2_cols_kernel(ctx: &mut KernelCtx) {
    let (un, vn, pn) = (ctx.h(UNEW), ctx.h(VNEW), ctx.h(PNEW));
    let n = ctx.scalar("jmax") as i64;
    for i in ctx.iter[0].iter() {
        ctx.mem[un.at2(i, n)] = ctx.mem[un.at2(i, 0)];
        ctx.mem[vn.at2(i, n)] = ctx.mem[vn.at2(i, 0)];
        ctx.mem[pn.at2(i, n)] = ctx.mem[pn.at2(i, 0)];
    }
}

fn bc2_rows_kernel(ctx: &mut KernelCtx) {
    let (un, vn, pn) = (ctx.h(UNEW), ctx.h(VNEW), ctx.h(PNEW));
    let m = ctx.scalar("imax") as i64;
    for j in ctx.iter[0].iter() {
        ctx.mem[un.at2(m, j)] = ctx.mem[un.at2(0, j)];
        ctx.mem[vn.at2(m, j)] = ctx.mem[vn.at2(0, j)];
        ctx.mem[pn.at2(m, j)] = ctx.mem[pn.at2(0, j)];
    }
}

fn loop300_kernel(ctx: &mut KernelCtx) {
    let (u, v, p) = (ctx.h(U), ctx.h(V), ctx.h(P));
    let (un, vn, pn) = (ctx.h(UNEW), ctx.h(VNEW), ctx.h(PNEW));
    let (uo, vo, po) = (ctx.h(UOLD), ctx.h(VOLD), ctx.h(POLD));
    for j in ctx.iter[1].iter() {
        for i in ctx.iter[0].iter() {
            let (uc, vc, pc) = (
                ctx.mem[u.at2(i, j)],
                ctx.mem[v.at2(i, j)],
                ctx.mem[p.at2(i, j)],
            );
            ctx.mem[uo.at2(i, j)] =
                uc + ALPHA * (ctx.mem[un.at2(i, j)] - 2.0 * uc + ctx.mem[uo.at2(i, j)]);
            ctx.mem[vo.at2(i, j)] =
                vc + ALPHA * (ctx.mem[vn.at2(i, j)] - 2.0 * vc + ctx.mem[vo.at2(i, j)]);
            ctx.mem[po.at2(i, j)] =
                pc + ALPHA * (ctx.mem[pn.at2(i, j)] - 2.0 * pc + ctx.mem[po.at2(i, j)]);
            ctx.mem[u.at2(i, j)] = ctx.mem[un.at2(i, j)];
            ctx.mem[v.at2(i, j)] = ctx.mem[vn.at2(i, j)];
            ctx.mem[p.at2(i, j)] = ctx.mem[pn.at2(i, j)];
        }
    }
}

/// Build the shallow program.
pub fn build(pr: &Params) -> Program {
    let t = Var("t");
    let (m, n) = (pr.m as i64, pr.n as i64);
    let (mp1, np1) = (pr.m + 1, pr.n + 1);
    let mut b = Program::builder();
    let ids: Vec<ArrayId> = [
        "u", "v", "p", "unew", "vnew", "pnew", "uold", "vold", "pold", "cu", "cv", "z", "h", "psi",
    ]
    .iter()
    .map(|name| b.array(name, &[mp1, np1], Dist::Block))
    .collect();
    assert_eq!(ids[13], PSI);
    let tdt = DT; // constant tdt (the original doubles it after step 1)
    b.scalar("di", std::f64::consts::PI / pr.m as f64)
        .scalar("dj", std::f64::consts::PI / pr.n as f64)
        .scalar("pcf", 3.0)
        .scalar("fsdx", 4.0 / DX)
        .scalar("fsdy", 4.0 / DY)
        .scalar("tdts8", tdt / 8.0)
        .scalar("tdtsdx", tdt / DX)
        .scalar("tdtsdy", tdt / DY)
        .scalar("imax", m as f64)
        .scalar("jmax", n as f64);
    let iv = |d: usize, c: i64| Subscript::Loop(d, c);
    let here = vec![iv(0, 0), iv(1, 0)];
    let rw = |a: ArrayId| ARef::write(a, here.clone());
    let rd = |a: ArrayId| ARef::read(a, here.clone());
    let rd_at = |a: ArrayId, c0: i64, c1: i64| ARef::read(a, vec![iv(0, c0), iv(1, c1)]);

    b.stmt(Stmt::Par(ParLoop {
        name: "init_psi",
        iter: vec![SymRange::new(0, m), SymRange::new(0, n)],
        dist: CompDist::Owner(PSI),
        refs: vec![rw(PSI)],
        kernel: Kernel::new(init_psi_kernel),
        cost_per_iter_ns: 420,
        reduction: None,
    }));
    b.stmt(Stmt::Par(ParLoop {
        name: "init_uvp",
        iter: vec![SymRange::new(1, m), SymRange::new(1, n)],
        dist: CompDist::Owner(U),
        refs: vec![
            rd(PSI),
            rd_at(PSI, -1, 0),
            rd_at(PSI, 0, -1),
            rw(U),
            rw(V),
            rw(P),
        ],
        kernel: Kernel::new(init_uvp_kernel),
        cost_per_iter_ns: 520,
        reduction: None,
    }));
    b.stmt(Stmt::Par(ParLoop {
        name: "init_old",
        iter: vec![SymRange::new(0, m), SymRange::new(0, n)],
        dist: CompDist::Owner(UOLD),
        refs: vec![rd(U), rd(V), rd(P), rw(UOLD), rw(VOLD), rw(POLD)],
        kernel: Kernel::new(init_old_kernel),
        cost_per_iter_ns: 190,
        reduction: None,
    }));

    let loop100 = Stmt::Par(ParLoop {
        name: "loop100",
        iter: vec![SymRange::new(1, m), SymRange::new(1, n)],
        dist: CompDist::Owner(CU),
        refs: vec![
            rd(P),
            rd_at(P, -1, 0),
            rd_at(P, 0, -1),
            rd_at(P, -1, -1),
            rd(U),
            rd_at(U, -1, 0),
            rd_at(U, 0, -1),
            rd(V),
            rd_at(V, -1, 0),
            rd_at(V, 0, -1),
            rw(CU),
            rw(CV),
            rw(Z),
            rw(H),
        ],
        kernel: Kernel::new(loop100_kernel),
        cost_per_iter_ns: 1000,
        reduction: None,
    });
    let span_rows = SymRange::new(1, m);
    let bc1_cols = Stmt::Par(ParLoop {
        name: "bc1_cols",
        iter: vec![span_rows.clone()],
        dist: CompDist::OwnerOfIndex(CU, Affine::constant(0)),
        refs: [CU, CV, Z, H]
            .iter()
            .flat_map(|&a| {
                [
                    ARef::write(
                        a,
                        vec![
                            Subscript::Span(span_rows.clone()),
                            Subscript::At(Affine::constant(0)),
                        ],
                    ),
                    ARef::read(
                        a,
                        vec![
                            Subscript::Span(span_rows.clone()),
                            Subscript::At(Affine::constant(n)),
                        ],
                    ),
                ]
            })
            .collect(),
        kernel: Kernel::new(bc1_cols_kernel),
        cost_per_iter_ns: 60,
        reduction: None,
    });
    let bc1_rows = Stmt::Par(ParLoop {
        name: "bc1_rows",
        iter: vec![SymRange::new(0, n)],
        dist: CompDist::Owner(CU),
        refs: [CU, CV, Z, H]
            .iter()
            .flat_map(|&a| {
                [
                    ARef::write(
                        a,
                        vec![Subscript::At(Affine::constant(0)), Subscript::loop_var(0)],
                    ),
                    ARef::read(
                        a,
                        vec![Subscript::At(Affine::constant(m)), Subscript::loop_var(0)],
                    ),
                ]
            })
            .collect(),
        kernel: Kernel::new(bc1_rows_kernel),
        cost_per_iter_ns: 60,
        reduction: None,
    });
    let loop200 = Stmt::Par(ParLoop {
        name: "loop200",
        iter: vec![SymRange::new(0, m - 1), SymRange::new(0, n - 1)],
        dist: CompDist::Owner(UNEW),
        refs: vec![
            rd(Z),
            rd_at(Z, 1, 0),
            rd_at(Z, 0, 1),
            rd(CU),
            rd_at(CU, 1, 0),
            rd_at(CU, 0, 1),
            rd(CV),
            rd_at(CV, 1, 0),
            rd_at(CV, 0, 1),
            rd(H),
            rd_at(H, 1, 0),
            rd_at(H, 0, 1),
            rd(UOLD),
            rd(VOLD),
            rd(POLD),
            rw(UNEW),
            rw(VNEW),
            rw(PNEW),
        ],
        kernel: Kernel::new(loop200_kernel),
        cost_per_iter_ns: 1150,
        reduction: None,
    });
    let span_rows2 = SymRange::new(0, m - 1);
    let bc2_cols = Stmt::Par(ParLoop {
        name: "bc2_cols",
        iter: vec![span_rows2.clone()],
        dist: CompDist::OwnerOfIndex(UNEW, Affine::constant(n)),
        refs: [UNEW, VNEW, PNEW]
            .iter()
            .flat_map(|&a| {
                [
                    ARef::write(
                        a,
                        vec![
                            Subscript::Span(span_rows2.clone()),
                            Subscript::At(Affine::constant(n)),
                        ],
                    ),
                    ARef::read(
                        a,
                        vec![
                            Subscript::Span(span_rows2.clone()),
                            Subscript::At(Affine::constant(0)),
                        ],
                    ),
                ]
            })
            .collect(),
        kernel: Kernel::new(bc2_cols_kernel),
        cost_per_iter_ns: 60,
        reduction: None,
    });
    let bc2_rows = Stmt::Par(ParLoop {
        name: "bc2_rows",
        iter: vec![SymRange::new(0, n)],
        dist: CompDist::Owner(UNEW),
        refs: [UNEW, VNEW, PNEW]
            .iter()
            .flat_map(|&a| {
                [
                    ARef::write(
                        a,
                        vec![Subscript::At(Affine::constant(m)), Subscript::loop_var(0)],
                    ),
                    ARef::read(
                        a,
                        vec![Subscript::At(Affine::constant(0)), Subscript::loop_var(0)],
                    ),
                ]
            })
            .collect(),
        kernel: Kernel::new(bc2_rows_kernel),
        cost_per_iter_ns: 60,
        reduction: None,
    });
    let loop300 = Stmt::Par(ParLoop {
        name: "loop300",
        iter: vec![SymRange::new(0, m), SymRange::new(0, n)],
        dist: CompDist::Owner(U),
        refs: vec![
            rd(U),
            rd(V),
            rd(P),
            rd(UNEW),
            rd(VNEW),
            rd(PNEW),
            rd(UOLD),
            rd(VOLD),
            rd(POLD),
            rw(UOLD),
            rw(VOLD),
            rw(POLD),
            rw(U),
            rw(V),
            rw(P),
        ],
        kernel: Kernel::new(loop300_kernel),
        cost_per_iter_ns: 900,
        reduction: None,
    });
    b.stmt(Stmt::Time {
        var: t,
        count: pr.iters,
        body: vec![
            loop100, bc1_cols, bc1_rows, loop200, bc2_cols, bc2_rows, loop300,
        ],
    });
    b.build()
}

/// Table 2 metadata.
pub fn spec(p: &Params) -> AppSpec {
    AppSpec {
        name: "shallow",
        source: "NCAR. HPF by PGI",
        problem: format!("{}x{} grid, {} iters", p.m + 1, p.n + 1, p.iters),
        program: build(p),
        iters: p.iters,
    }
}

/// Sequential reference (bitwise-identical: shallow has no reductions).
/// Returns the final `p` field.
pub fn reference(pr: &Params) -> Vec<f64> {
    let (m, n) = (pr.m, pr.n);
    let (mp1, np1) = (m + 1, n + 1);
    let at = |i: usize, j: usize| i + j * mp1;
    let sz = mp1 * np1;
    let (mut u, mut v, mut p) = (vec![0.0; sz], vec![0.0; sz], vec![0.0; sz]);
    let (mut un, mut vn, mut pn) = (vec![0.0; sz], vec![0.0; sz], vec![0.0; sz]);
    let (mut uo, mut vo, mut po) = (vec![0.0; sz], vec![0.0; sz], vec![0.0; sz]);
    let (mut cu, mut cv, mut z, mut h) =
        (vec![0.0; sz], vec![0.0; sz], vec![0.0; sz], vec![0.0; sz]);
    let mut psi = vec![0.0; sz];
    let di = std::f64::consts::PI / m as f64;
    let dj = std::f64::consts::PI / n as f64;
    let pcf = 3.0;
    let fsdx = 4.0 / DX;
    let fsdy = 4.0 / DY;
    let tdt = DT;
    let (tdts8, tdtsdx, tdtsdy) = (tdt / 8.0, tdt / DX, tdt / DY);
    for j in 0..np1 {
        for i in 0..mp1 {
            psi[at(i, j)] = AA * ((i as f64 + 0.5) * di).sin() * ((j as f64 + 0.5) * dj).sin();
        }
    }
    for j in 1..np1 {
        for i in 1..mp1 {
            u[at(i, j)] = -(psi[at(i, j)] - psi[at(i - 1, j)]) / DY;
            v[at(i, j)] = (psi[at(i, j)] - psi[at(i, j - 1)]) / DX;
            p[at(i, j)] =
                pcf * ((2.0 * i as f64 * di).cos() + (2.0 * j as f64 * dj).cos()) + 50_000.0;
        }
    }
    uo.copy_from_slice(&u);
    vo.copy_from_slice(&v);
    po.copy_from_slice(&p);
    for _ in 0..pr.iters {
        for j in 1..np1 {
            for i in 1..mp1 {
                let pij = p[at(i, j)];
                let uij = u[at(i, j)];
                let vij = v[at(i, j)];
                cu[at(i, j)] = 0.5 * (pij + p[at(i - 1, j)]) * uij;
                cv[at(i, j)] = 0.5 * (pij + p[at(i, j - 1)]) * vij;
                z[at(i, j)] = (fsdx * (vij - v[at(i - 1, j)]) - fsdy * (uij - u[at(i, j - 1)]))
                    / (p[at(i - 1, j - 1)] + p[at(i, j - 1)] + pij + p[at(i - 1, j)]);
                let um = u[at(i - 1, j)];
                let vm = v[at(i, j - 1)];
                h[at(i, j)] = pij + 0.25 * (uij * uij + um * um + vij * vij + vm * vm);
            }
        }
        for i in 1..mp1 {
            cu[at(i, 0)] = cu[at(i, n)];
            cv[at(i, 0)] = cv[at(i, n)];
            z[at(i, 0)] = z[at(i, n)];
            h[at(i, 0)] = h[at(i, n)];
        }
        for j in 0..np1 {
            cu[at(0, j)] = cu[at(m, j)];
            cv[at(0, j)] = cv[at(m, j)];
            z[at(0, j)] = z[at(m, j)];
            h[at(0, j)] = h[at(m, j)];
        }
        for j in 0..n {
            for i in 0..m {
                let zc = z[at(i, j)];
                un[at(i, j)] = uo[at(i, j)]
                    + tdts8 * (z[at(i + 1, j)] + zc) * (cv[at(i + 1, j)] + cv[at(i, j)])
                    - tdtsdx * (h[at(i + 1, j)] - h[at(i, j)]);
                vn[at(i, j)] = vo[at(i, j)]
                    - tdts8 * (z[at(i, j + 1)] + zc) * (cu[at(i, j + 1)] + cu[at(i, j)])
                    - tdtsdy * (h[at(i, j + 1)] - h[at(i, j)]);
                pn[at(i, j)] = po[at(i, j)]
                    - tdtsdx * (cu[at(i + 1, j)] - cu[at(i, j)])
                    - tdtsdy * (cv[at(i, j + 1)] - cv[at(i, j)]);
            }
        }
        for i in 0..m {
            un[at(i, n)] = un[at(i, 0)];
            vn[at(i, n)] = vn[at(i, 0)];
            pn[at(i, n)] = pn[at(i, 0)];
        }
        for j in 0..np1 {
            un[at(m, j)] = un[at(0, j)];
            vn[at(m, j)] = vn[at(0, j)];
            pn[at(m, j)] = pn[at(0, j)];
        }
        for j in 0..np1 {
            for i in 0..mp1 {
                let (uc, vc, pc) = (u[at(i, j)], v[at(i, j)], p[at(i, j)]);
                uo[at(i, j)] = uc + ALPHA * (un[at(i, j)] - 2.0 * uc + uo[at(i, j)]);
                vo[at(i, j)] = vc + ALPHA * (vn[at(i, j)] - 2.0 * vc + vo[at(i, j)]);
                po[at(i, j)] = pc + ALPHA * (pn[at(i, j)] - 2.0 * pc + po[at(i, j)]);
                u[at(i, j)] = un[at(i, j)];
                v[at(i, j)] = vn[at(i, j)];
                p[at(i, j)] = pn[at(i, j)];
            }
        }
    }
    p
}
